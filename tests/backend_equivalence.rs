//! Cross-backend differential harness: the Model, Cycle and Cpu backends
//! must be interchangeable.
//!
//! * **Outputs**: bit-identical to each other and to the software golden
//!   model (`forward_quant`) on random `NetworkSpec`s.
//! * **Statistics**: Model and Cpu charge cycles with the same
//!   closed-form model, so their cycle counts and DDR byte counts are
//!   *equal*, not merely close; Cycle agrees within the documented
//!   tolerance.
//! * **Transient faults**: the staged pipeline issues the same DMA
//!   descriptor sequence on every backend, and DMA fault detection is
//!   value-independent — an injected `dma:*` fault must surface as the
//!   same structured error everywhere.

use proptest::prelude::*;
use zskip::accel::{AccelConfig, BackendKind, Driver, DriverError, Error};
use zskip::fault::{FaultKind, FaultPlan};
use zskip::hls::AccelArch;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::soc::dma::DmaError;
use zskip::tensor::{Shape, Tensor};

fn config(bank_tiles: usize, instances: usize) -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances, bank_tiles }, 100.0)
}

fn tiny_spec() -> NetworkSpec {
    NetworkSpec {
        name: "tiny".into(),
        input: Shape::new(3, 12, 12),
        layers: vec![
            conv3x3("c1", 3, 6),
            maxpool2x2("p1"),
            conv3x3("c2", 6, 9),
            maxpool2x2("p2"),
            LayerSpec::Fc { name: "fc".into(), in_features: 9 * 3 * 3, out_features: 5, relu: false },
        ],
    }
}

fn quantized(density: f64, seed: u64) -> (QuantizedNetwork, Tensor<f32>) {
    let spec = tiny_spec();
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed, density: DensityProfile::uniform(2, density) },
    );
    let calib = synthetic_inputs(seed ^ 1, 2, spec.input);
    let qnet = net.quantize(&calib);
    let input = synthetic_inputs(seed ^ 2, 1, spec.input).pop().expect("one input");
    (qnet, input)
}

/// A random small network: 1-3 padded conv layers with random channel
/// counts and kernel sizes, optionally pooled, optionally FC-capped.
fn network_strategy() -> impl Strategy<Value = NetworkSpec> {
    let conv = (1usize..=3, 2usize..=8, prop::bool::ANY);
    (
        8usize..=19,                 // input h/w
        1usize..=3,                  // input channels
        prop::collection::vec(conv, 1..=3),
        prop::bool::ANY,             // pool after first conv
        prop::bool::ANY,             // fc head
    )
        .prop_map(|(hw, in_c, convs, pool, fc)| {
            let mut layers = Vec::new();
            let mut c = in_c;
            for (i, (k, out_c, relu)) in convs.into_iter().enumerate() {
                layers.push(LayerSpec::Conv {
                    name: format!("c{i}"),
                    in_c: c,
                    out_c,
                    k,
                    stride: 1,
                    pad: k / 2,
                    relu,
                });
                c = out_c;
                if i == 0 && pool && hw >= 8 {
                    layers.push(LayerSpec::MaxPool { name: "p".into(), k: 2, stride: 2 });
                }
            }
            let mut spec = NetworkSpec { name: "rand".into(), input: Shape::new(in_c, hw, hw), layers };
            if fc {
                if let Ok(shapes) = spec.shapes() {
                    let s = shapes.last().copied().expect("non-empty");
                    spec.layers.push(LayerSpec::Fc {
                        name: "fc".into(),
                        in_features: s.c * s.h * s.w,
                        out_features: 4,
                        relu: false,
                    });
                }
            }
            spec
        })
        .prop_filter("kernel must fit every intermediate map", |spec| spec.shapes().is_ok())
}

/// Builds one residual block: `w_in -> w_out` with an optional
/// downsampling maxpool and 1x1-projection skip, optional batch-norm
/// (folded into the convs at quantization time).
fn push_residual_block(
    layers: &mut Vec<LayerSpec>,
    b: usize,
    w_in: usize,
    w_out: usize,
    bn: bool,
    down: bool,
    join_relu: bool,
) {
    let conv = |name: String, in_c: usize, out_c: usize, k: usize, relu: bool| LayerSpec::Conv {
        name,
        in_c,
        out_c,
        k,
        stride: 1,
        pad: k / 2,
        relu,
    };
    // `block_in` is the layer whose output both branches consume (or the
    // network input when the block opens the network).
    let block_in = match layers.len() {
        0 => zskip::nn::LayerRef::Input,
        n => zskip::nn::LayerRef::Layer(n - 1),
    };
    if down {
        layers.push(LayerSpec::MaxPool { name: format!("b{b}_pool"), k: 2, stride: 2 });
    }
    layers.push(conv(format!("b{b}_c1"), w_in, w_out, 3, !bn));
    if bn {
        layers.push(LayerSpec::BatchNorm { name: format!("b{b}_bn1"), relu: true });
    }
    layers.push(conv(format!("b{b}_c2"), w_out, w_out, 3, false));
    if bn {
        layers.push(LayerSpec::BatchNorm { name: format!("b{b}_bn2"), relu: false });
    }
    if down || w_in != w_out {
        // Projection skip: re-open the block input, mirror the pooling,
        // project to the new width with a 1x1 conv.
        let main_end = zskip::nn::LayerRef::Layer(layers.len() - 1);
        layers.push(LayerSpec::Ref { name: format!("b{b}_skip"), from: block_in });
        if down {
            layers.push(LayerSpec::MaxPool { name: format!("b{b}_skip_pool"), k: 2, stride: 2 });
        }
        layers.push(conv(format!("b{b}_proj"), w_in, w_out, 1, false));
        if bn {
            layers.push(LayerSpec::BatchNorm { name: format!("b{b}_proj_bn"), relu: false });
        }
        layers.push(LayerSpec::Add { name: format!("b{b}_add"), from: main_end, relu: join_relu });
    } else {
        layers.push(LayerSpec::Add { name: format!("b{b}_add"), from: block_in, relu: join_relu });
    }
}

/// A random residual (DAG) network: stem conv, 1-2 residual blocks
/// (identity joins, or a downsampling block whose skip branch is a
/// maxpool + 1x1 projection), optional batch-norm everywhere, optional
/// global-average-pool + FC head.
fn dag_network_strategy() -> impl Strategy<Value = NetworkSpec> {
    (
        (
            8usize..=14, // input h/w
            1usize..=3,  // input channels
            2usize..=5,  // block width
            1usize..=2,  // residual blocks
        ),
        (
            prop::bool::ANY, // batch-norm
            prop::bool::ANY, // downsample + project in the last block
            prop::bool::ANY, // gap + fc head
            prop::bool::ANY, // relu at the joins
        ),
    )
        .prop_map(|((hw, in_c, w, blocks), (bn, down, head, join_relu))| {
            let mut layers = vec![LayerSpec::Conv {
                name: "stem".into(),
                in_c,
                out_c: w,
                k: 3,
                stride: 1,
                pad: 1,
                relu: !bn,
            }];
            if bn {
                layers.push(LayerSpec::BatchNorm { name: "stem_bn".into(), relu: true });
            }
            let mut width = w;
            for b in 0..blocks {
                let last = b + 1 == blocks;
                let w_out = if last && down { width * 2 } else { width };
                push_residual_block(&mut layers, b, width, w_out, bn, last && down, join_relu);
                width = w_out;
            }
            if head {
                layers.push(LayerSpec::GlobalAvgPool { name: "gap".into() });
                layers.push(LayerSpec::Fc {
                    name: "fc".into(),
                    in_features: width,
                    out_features: 4,
                    relu: false,
                });
            }
            NetworkSpec { name: "rand-dag".into(), input: Shape::new(in_c, hw, hw), layers }
        })
        .prop_filter("every shape must fit", |spec| spec.shapes().is_ok())
}

fn quantize_spec(spec: &NetworkSpec, density: f64, seed: u64) -> (QuantizedNetwork, Tensor<f32>) {
    let conv_count = spec.conv_layers().len();
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed, density: DensityProfile::uniform(conv_count, density) },
    );
    let qnet = net.quantize(&synthetic_inputs(seed ^ 1, 1, spec.input));
    let input = synthetic_inputs(seed ^ 2, 1, spec.input).pop().expect("one");
    (qnet, input)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Model and Cpu: bit-identical outputs AND identical statistics on
    /// random specs (both run the same staged pipeline and closed-form
    /// cycle model; only the functional arithmetic engine differs).
    #[test]
    fn cpu_and_model_backends_are_equivalent_on_random_specs(
        spec in network_strategy(),
        density in 0.1f64..1.0,
        seed in 0u64..10_000,
    ) {
        let (qnet, input) = quantize_spec(&spec, density, seed);
        let cfg = config(2048, 1);
        let model = Driver::builder(cfg).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
        let cpu = Driver::builder(cfg).backend(BackendKind::Cpu).build().unwrap().run_network(&qnet, &input).expect("fits");
        // Intra-image multithreaded cpu backend: panel decomposition over a
        // 3-worker pool must not change outputs or statistics either.
        let mt = Driver::builder(cfg)
            .backend(BackendKind::Cpu)
            .threads(3)
            .build()
            .expect("valid config")
            .run_network(&qnet, &input)
            .expect("fits");
        prop_assert_eq!(&model.output, &qnet.forward_quant(&input));
        prop_assert_eq!(&cpu.output, &model.output);
        prop_assert_eq!(&mt.output, &model.output);
        prop_assert_eq!(cpu.total_cycles, model.total_cycles);
        prop_assert_eq!(mt.total_cycles, model.total_cycles);
        prop_assert_eq!(cpu.ddr_bytes, model.ddr_bytes);
        prop_assert_eq!(mt.ddr_bytes, model.ddr_bytes);
        prop_assert_eq!(cpu.layers.len(), model.layers.len());
        for (c, m) in cpu.layers.iter().zip(&model.layers) {
            prop_assert_eq!(&c.name, &m.name);
            prop_assert_eq!(c.stats.total_cycles, m.stats.total_cycles);
            prop_assert_eq!(c.stats.compute_cycles, m.stats.compute_cycles);
            prop_assert_eq!(c.stats.io_dma_cycles, m.stats.io_dma_cycles);
            prop_assert_eq!(c.stats.weight_dma_cycles, m.stats.weight_dma_cycles);
            prop_assert_eq!(c.stats.stripes, m.stats.stripes);
            prop_assert_eq!(c.stats.counters.get("macs"), m.stats.counters.get("macs"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Model and Cpu on random *DAG* specs — skip connections, 1x1
    /// projections, folded batch-norm, GAP heads: bit-identical outputs
    /// and identical per-layer statistics, single- and multi-threaded.
    #[test]
    fn cpu_and_model_backends_are_equivalent_on_dag_specs(
        spec in dag_network_strategy(),
        density in 0.1f64..1.0,
        seed in 0u64..10_000,
    ) {
        let (qnet, input) = quantize_spec(&spec, density, seed);
        let cfg = config(2048, 1);
        let model = Driver::builder(cfg).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
        let cpu = Driver::builder(cfg).backend(BackendKind::Cpu).build().unwrap().run_network(&qnet, &input).expect("fits");
        let mt = Driver::builder(cfg)
            .backend(BackendKind::Cpu)
            .threads(3)
            .build()
            .expect("valid config")
            .run_network(&qnet, &input)
            .expect("fits");
        prop_assert_eq!(&model.output, &qnet.forward_quant(&input));
        prop_assert_eq!(&cpu.output, &model.output);
        prop_assert_eq!(&mt.output, &model.output);
        prop_assert_eq!(cpu.total_cycles, model.total_cycles);
        prop_assert_eq!(mt.total_cycles, model.total_cycles);
        prop_assert_eq!(cpu.ddr_bytes, model.ddr_bytes);
        prop_assert_eq!(cpu.layers.len(), model.layers.len());
        for (c, m) in cpu.layers.iter().zip(&model.layers) {
            prop_assert_eq!(&c.name, &m.name);
            prop_assert_eq!(c.stats.total_cycles, m.stats.total_cycles);
            prop_assert_eq!(c.stats.compute_cycles, m.stats.compute_cycles);
            prop_assert_eq!(c.stats.io_dma_cycles, m.stats.io_dma_cycles);
            prop_assert_eq!(c.stats.weight_dma_cycles, m.stats.weight_dma_cycles);
            prop_assert_eq!(c.stats.stripes, m.stats.stripes);
            prop_assert_eq!(c.stats.counters.get("macs"), m.stats.counters.get("macs"));
        }
    }
}

proptest! {
    // The cycle backend is ~100x slower; fewer cases, smaller nets.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// All three backends produce bit-identical outputs on random specs.
    #[test]
    fn all_three_backends_agree_on_random_specs(
        hw in 6usize..=10,
        out_c in 2usize..=6,
        k in 1usize..=3,
        density in 0.2f64..1.0,
        seed in 0u64..1_000,
    ) {
        let spec = NetworkSpec {
            name: "rand3".into(),
            input: Shape::new(2, hw, hw),
            layers: vec![LayerSpec::Conv {
                name: "c".into(),
                in_c: 2,
                out_c,
                k,
                stride: 1,
                pad: k / 2,
                relu: true,
            }],
        };
        prop_assume!(spec.shapes().is_ok());
        let (qnet, input) = quantize_spec(&spec, density, seed);
        let cfg = config(1024, 1);
        let golden = qnet.forward_quant(&input);
        for backend in BackendKind::ALL {
            let report = Driver::builder(cfg).backend(backend).build().unwrap().run_network(&qnet, &input).expect("fits");
            prop_assert_eq!(&report.output, &golden, "backend {}", backend);
        }
    }

    /// All three backends on small random residual blocks: bit-identical
    /// outputs, and per-layer structure/work statistics agree everywhere
    /// (cycle counts are pinned exactly between Model and Cpu only — the
    /// cycle-exact engine has its own documented tolerance).
    #[test]
    fn all_three_backends_agree_on_dag_specs(
        hw in 6usize..=8,
        w in 2usize..=3,
        bn in prop::bool::ANY,
        down in prop::bool::ANY,
        density in 0.2f64..1.0,
        seed in 0u64..1_000,
    ) {
        let mut layers = vec![LayerSpec::Conv {
            name: "stem".into(), in_c: 2, out_c: w, k: 3, stride: 1, pad: 1, relu: true,
        }];
        push_residual_block(&mut layers, 0, w, if down { w * 2 } else { w }, bn, down, true);
        let spec = NetworkSpec { name: "dag3".into(), input: Shape::new(2, hw, hw), layers };
        prop_assume!(spec.shapes().is_ok());
        let (qnet, input) = quantize_spec(&spec, density, seed);
        let cfg = config(1024, 1);
        let golden = qnet.forward_quant(&input);
        let reports: Vec<_> = BackendKind::ALL
            .iter()
            .map(|&b| Driver::builder(cfg).backend(b).build().unwrap().run_network(&qnet, &input).expect("fits"))
            .collect();
        let (model, cycle, cpu) = (&reports[0], &reports[1], &reports[2]);
        for (r, b) in reports.iter().zip(BackendKind::ALL) {
            prop_assert_eq!(&r.output, &golden, "backend {}", b);
            prop_assert_eq!(r.layers.len(), model.layers.len(), "backend {}", b);
            for (l, m) in r.layers.iter().zip(&model.layers) {
                prop_assert_eq!(&l.name, &m.name, "backend {}", b);
                prop_assert_eq!(l.stats.stripes, m.stats.stripes, "backend {}", b);
                prop_assert_eq!(
                    l.stats.counters.get("macs"), m.stats.counters.get("macs"),
                    "backend {} layer {}", b, &l.name
                );
            }
        }
        prop_assert_eq!(cpu.total_cycles, model.total_cycles);
        prop_assert_eq!(cpu.ddr_bytes, model.ddr_bytes);
        prop_assert_eq!(cycle.ddr_bytes, model.ddr_bytes);
    }
}

/// A fixed residual network (downsampling block, projection skip, folded
/// batch-norm) for the fault-equivalence test below.
fn residual_fixture(seed: u64) -> (QuantizedNetwork, Tensor<f32>) {
    let mut layers = vec![LayerSpec::Conv {
        name: "stem".into(), in_c: 2, out_c: 3, k: 3, stride: 1, pad: 1, relu: true,
    }];
    push_residual_block(&mut layers, 0, 3, 3, true, false, true);
    push_residual_block(&mut layers, 1, 3, 6, true, true, true);
    let spec = NetworkSpec { name: "res-fixture".into(), input: Shape::new(2, 12, 12), layers };
    quantize_spec(&spec, 0.6, seed)
}

/// The DAG plan walk must not change fault equivalence: on a residual
/// network, one injected DMA fault surfaces as the same structured error
/// with the same stable code on every backend.
#[test]
fn transient_dma_faults_surface_identically_on_dag_networks() {
    let (qnet, input) = residual_fixture(21);
    for (kind, want_code) in [
        (FaultKind::DmaTruncate { tiles: 1 }, "dma.truncated"),
        (FaultKind::DmaCorrupt { xor: 0x40 }, "dma.parity"),
    ] {
        for at in [0, 2, 7] {
            let mut codes = Vec::new();
            for backend in BackendKind::ALL {
                let plan = FaultPlan::new().inject("dma:xfer", at, kind).shared();
                let driver = Driver::builder(config(4096, 1))
                    .backend(backend)
                    .fault_plan(plan.clone())
                    .build()
                    .expect("valid config");
                let err = driver.run_network(&qnet, &input).unwrap_err();
                assert!(err.is_transient(), "{backend}: DMA faults are transient");
                assert_eq!(plan.lock().unwrap().fired().len(), 1, "{backend}: exactly one fault fired");
                codes.push(Error::from(err).code());
            }
            assert_eq!(codes, vec![want_code; 3], "fault {kind:?} at {at}");
        }
    }
}

#[test]
fn every_backend_matches_software_reference_bit_exact() {
    let (qnet, input) = quantized(0.6, 11);
    let golden = qnet.forward_quant(&input);
    for backend in BackendKind::ALL {
        let report = Driver::builder(config(4096, 1)).backend(backend).build().unwrap().run_network(&qnet, &input).expect("runs");
        assert_eq!(report.output, golden, "backend {backend}");
        assert!(report.total_cycles > 0);
        assert!(report.ddr_bytes > 0);
        assert_eq!(report.conv_layers().count(), 2);
    }
}

#[test]
fn model_and_cycle_backends_agree_on_cycles_within_tolerance() {
    let (qnet, input) = quantized(0.4, 33);
    let model = Driver::builder(config(4096, 1)).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).unwrap();
    let cycle = Driver::builder(config(4096, 1)).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).unwrap();
    assert_eq!(model.output, cycle.output, "functional equality");
    let diff = model.total_cycles.abs_diff(cycle.total_cycles) as f64;
    assert!(
        diff <= 0.03 * cycle.total_cycles as f64 + 400.0,
        "model {} vs cycle {}",
        model.total_cycles,
        cycle.total_cycles
    );
}

#[test]
fn striping_preserves_results_on_every_backend() {
    let (qnet, input) = quantized(0.7, 44);
    let golden = qnet.forward_quant(&input);
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        // Tiny banks: forces multiple stripes per layer.
        let striped = Driver::builder(config(20, 1)).backend(backend).build().unwrap().run_network(&qnet, &input).unwrap();
        assert_eq!(striped.output, golden, "backend {backend}");
        let roomy = Driver::builder(config(8192, 1)).backend(backend).build().unwrap().run_network(&qnet, &input).unwrap();
        let stripes_tight: usize = striped.layers.iter().map(|l| l.stats.stripes).sum();
        let stripes_roomy: usize = roomy.layers.iter().map(|l| l.stats.stripes).sum();
        assert!(stripes_tight > stripes_roomy, "{stripes_tight} vs {stripes_roomy}");
        // Halo re-fetch shows up as striping factor > 1 on conv layers.
        assert!(striped.conv_layers().any(|l| l.stats.striping_factor > 1.01));
    }
}

#[test]
fn two_instances_cut_compute_on_striped_layers() {
    let (qnet, input) = quantized(1.0, 55);
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        let one = Driver::builder(config(20, 1)).backend(backend).build().unwrap().run_network(&qnet, &input).unwrap();
        let two = Driver::builder(config(20, 2)).backend(backend).build().unwrap().run_network(&qnet, &input).unwrap();
        assert_eq!(two.output, qnet.forward_quant(&input));
        let c1: u64 = one.conv_layers().map(|l| l.stats.compute_cycles).sum();
        let c2: u64 = two.conv_layers().map(|l| l.stats.compute_cycles).sum();
        assert!(c2 < c1, "scale-out must reduce busiest-instance compute: {c2} vs {c1}");
    }
}

#[test]
fn filter_grouping_keeps_results_and_not_slower() {
    let (qnet, input) = quantized(0.3, 66);
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        let plain = Driver::builder(config(4096, 1)).backend(backend).build().unwrap();
        let grouped =
            Driver::builder(config(4096, 1)).backend(backend).filter_grouping(true).build().unwrap();
        let a = plain.run_network(&qnet, &input).unwrap();
        let b = grouped.run_network(&qnet, &input).unwrap();
        assert_eq!(a.output, b.output, "grouping must not change results ({backend})");
        let ca: u64 = a.conv_layers().map(|l| l.stats.compute_cycles).sum();
        let cb: u64 = b.conv_layers().map(|l| l.stats.compute_cycles).sum();
        assert!(cb <= ca + ca / 50, "grouping should not slow down: {cb} vs {ca}");
    }
}

#[test]
fn pruned_network_runs_faster_than_dense() {
    let (dense, input) = quantized(1.0, 77);
    let (pruned, _) = quantized(0.3, 77);
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        let driver = Driver::builder(config(4096, 1)).backend(backend).build().unwrap();
        let d = driver.run_network(&dense, &input).unwrap();
        let p = driver.run_network(&pruned, &input).unwrap();
        let cd: u64 = d.conv_layers().map(|l| l.stats.compute_cycles).sum();
        let cp: u64 = p.conv_layers().map(|l| l.stats.compute_cycles).sum();
        assert!(cp < cd, "zero-skipping must help: pruned {cp} vs dense {cd}");
    }
}

#[test]
fn layer_too_large_is_reported_identically() {
    let (qnet, input) = quantized(1.0, 88);
    for backend in BackendKind::ALL {
        let err = Driver::builder(config(8, 1)).backend(backend).build().unwrap().run_network(&qnet, &input).unwrap_err();
        match err {
            DriverError::LayerTooLarge { needed, capacity, .. } => {
                assert!(needed > capacity);
            }
            other => panic!("expected LayerTooLarge on {backend}, got {other:?}"),
        }
    }
}

#[test]
fn gops_reporting_is_consistent() {
    let (qnet, input) = quantized(1.0, 99);
    let cfg = config(4096, 1);
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        let report = Driver::builder(cfg).backend(backend).build().unwrap().run_network(&qnet, &input).unwrap();
        let mean = report.mean_gops(&cfg);
        let peak = report.peak_gops(&cfg);
        assert!(peak >= mean && mean > 0.0, "peak {peak} mean {mean}");
        // Effective GOPS can never exceed peak arithmetic throughput for a
        // dense (unpruned) network.
        assert!(peak <= cfg.peak_gops() * 1.001, "peak {peak} vs hw {}", cfg.peak_gops());
    }
}

/// One injected DMA fault must surface as the same structured error with
/// the same stable code on every backend: the staged pipeline issues the
/// identical descriptor sequence, and DMA fault detection is
/// value-independent.
#[test]
fn transient_dma_faults_surface_identically_across_backends() {
    let (qnet, input) = quantized(0.6, 11);
    for (kind, want_code) in [
        (FaultKind::DmaTruncate { tiles: 1 }, "dma.truncated"),
        (FaultKind::DmaCorrupt { xor: 0x40 }, "dma.parity"),
    ] {
        for at in [0, 2, 7] {
            let mut codes = Vec::new();
            for backend in BackendKind::ALL {
                let plan = FaultPlan::new().inject("dma:xfer", at, kind).shared();
                let driver = Driver::builder(config(4096, 1))
                    .backend(backend)
                    .fault_plan(plan.clone())
                    .build()
                    .expect("valid config");
                let err = driver.run_network(&qnet, &input).unwrap_err();
                assert!(err.is_transient(), "{backend}: DMA faults are transient");
                assert_eq!(plan.lock().unwrap().fired().len(), 1, "{backend}: exactly one fault fired");
                codes.push(Error::from(err).code());
            }
            assert_eq!(codes, vec![want_code; 3], "fault {kind:?} at {at}");
        }
    }
}

#[test]
fn injected_dma_truncation_surfaces_as_structured_error() {
    let (qnet, input) = quantized(0.6, 11);
    let plan = FaultPlan::new().inject("dma:xfer", 2, FaultKind::DmaTruncate { tiles: 1 }).shared();
    let driver =
        Driver::builder(config(4096, 1)).fault_plan(plan.clone()).build().expect("valid config");
    let err = driver.run_network(&qnet, &input).unwrap_err();
    assert!(
        matches!(err, DriverError::Dma(DmaError::Truncated { .. })),
        "expected truncation, got {err:?}"
    );
    assert_eq!(plan.lock().unwrap().fired().len(), 1, "exactly one fault fired");
}
