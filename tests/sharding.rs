//! Placement-differential harness: stripe-, image- and layer-pipelined
//! sharding must be bit-identical to single-instance execution.
//!
//! * **Outputs**: every placement's per-image outputs equal an
//!   `instances: 1` run of the same configuration, on random
//!   `NetworkSpec`s across the Model and Cpu backends (and the Cycle
//!   backend on a reduced deterministic case — it is ~100x slower).
//! * **Statistics**: image- and layer-pipelined placements execute each
//!   image through a single-instance view, so their per-layer stats are
//!   *equal* to the reference, not merely close; the stripe placement
//!   preserves work totals (MACs, weight DMA) while distributing them.
//! * **Faults**: an injected `dma:xfer` fault surfaces as the same
//!   stable `Error::code()` whatever the placement, because placement
//!   never changes the DMA descriptor prefix of the first image.

use proptest::prelude::*;
use zskip::accel::{
    run_sharded, AccelConfig, BackendKind, Driver, DriverError, Error, InferenceReport, Placement,
    Session,
};
use zskip::fault::{FaultKind, FaultPlan};
use zskip::hls::AccelArch;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::{Shape, Tensor};

fn config(bank_tiles: usize, instances: usize) -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances, bank_tiles }, 100.0)
}

fn tiny_spec() -> NetworkSpec {
    NetworkSpec {
        name: "tiny".into(),
        input: Shape::new(3, 12, 12),
        layers: vec![
            conv3x3("c1", 3, 6),
            maxpool2x2("p1"),
            conv3x3("c2", 6, 9),
            maxpool2x2("p2"),
            LayerSpec::Fc { name: "fc".into(), in_features: 9 * 3 * 3, out_features: 5, relu: false },
        ],
    }
}

fn quantized(density: f64, seed: u64, images: usize) -> (QuantizedNetwork, Vec<Tensor<f32>>) {
    let spec = tiny_spec();
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed, density: DensityProfile::uniform(2, density) },
    );
    let calib = synthetic_inputs(seed ^ 1, 2, spec.input);
    let qnet = net.quantize(&calib);
    let inputs = synthetic_inputs(seed ^ 2, images, spec.input);
    (qnet, inputs)
}

/// A random small network, as in `backend_equivalence.rs`.
fn network_strategy() -> impl Strategy<Value = NetworkSpec> {
    let conv = (1usize..=3, 2usize..=8, prop::bool::ANY);
    (
        8usize..=19,
        1usize..=3,
        prop::collection::vec(conv, 1..=3),
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(hw, in_c, convs, pool, fc)| {
            let mut layers = Vec::new();
            let mut c = in_c;
            for (i, (k, out_c, relu)) in convs.into_iter().enumerate() {
                layers.push(LayerSpec::Conv {
                    name: format!("c{i}"),
                    in_c: c,
                    out_c,
                    k,
                    stride: 1,
                    pad: k / 2,
                    relu,
                });
                c = out_c;
                if i == 0 && pool && hw >= 8 {
                    layers.push(LayerSpec::MaxPool { name: "p".into(), k: 2, stride: 2 });
                }
            }
            let mut spec = NetworkSpec { name: "rand".into(), input: Shape::new(in_c, hw, hw), layers };
            if fc {
                if let Ok(shapes) = spec.shapes() {
                    let s = shapes.last().copied().expect("non-empty");
                    spec.layers.push(LayerSpec::Fc {
                        name: "fc".into(),
                        in_features: s.c * s.h * s.w,
                        out_features: 4,
                        relu: false,
                    });
                }
            }
            spec
        })
        .prop_filter("kernel must fit every intermediate map", |spec| spec.shapes().is_ok())
}

fn quantize_spec(
    spec: &NetworkSpec,
    density: f64,
    seed: u64,
    images: usize,
) -> (QuantizedNetwork, Vec<Tensor<f32>>) {
    let conv_count = spec.conv_layers().len();
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed, density: DensityProfile::uniform(conv_count, density) },
    );
    let qnet = net.quantize(&synthetic_inputs(seed ^ 1, 1, spec.input));
    let inputs = synthetic_inputs(seed ^ 2, images, spec.input);
    (qnet, inputs)
}

fn macs_total(r: &InferenceReport) -> u64 {
    r.layers.iter().map(|l| l.stats.counters.get("macs")).sum()
}

fn weight_dma_total(r: &InferenceReport) -> u64 {
    r.layers.iter().map(|l| l.stats.weight_dma_cycles).sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Every placement is bit-identical to `instances: 1` on random
    /// specs (Model and Cpu backends): outputs always; full per-layer
    /// stats for image/pipeline placements (they run a single-instance
    /// view); work totals for the stripe placement (it distributes the
    /// same instruction batches).
    #[test]
    fn placements_match_single_instance_on_random_specs(
        spec in network_strategy(),
        density in 0.1f64..1.0,
        seed in 0u64..10_000,
        images in 1usize..=3,
        instances in (0usize..2).prop_map(|i| if i == 0 { 2usize } else { 4 }),
    ) {
        let (qnet, inputs) = quantize_spec(&spec, density, seed, images);
        for backend in [BackendKind::Model, BackendKind::Cpu] {
            let reference: Vec<InferenceReport> = {
                let d = Driver::builder(config(2048, 1)).backend(backend).build().unwrap();
                inputs.iter().map(|i| d.run_network(&qnet, i).expect("fits")).collect()
            };
            let sharded = Driver::builder(config(2048, instances)).backend(backend).build().unwrap();
            for placement in [Placement::Stripe, Placement::Image, Placement::Pipeline, Placement::Auto] {
                let report = match run_sharded(&sharded, &qnet, &inputs, placement) {
                    Ok(r) => r,
                    Err(e @ DriverError::InvalidConfig(_)) => {
                        // An explicit stripe placement may reject shallow
                        // specs whose stripes cannot cover every instance
                        // — with the stable config code, never a panic.
                        prop_assert_eq!(placement, Placement::Stripe);
                        prop_assert_eq!(Error::from(e).code(), "config.invalid");
                        continue;
                    }
                    Err(other) => panic!("unexpected error under {placement}: {other}"),
                };
                prop_assert_eq!(report.instances, instances);
                prop_assert_ne!(report.placement, Placement::Auto, "resolve() ran");
                prop_assert_eq!(report.items.len(), inputs.len());
                for (item, want) in report.items.iter().zip(&reference) {
                    prop_assert_eq!(&item.output, &want.output,
                        "{} outputs must be bit-identical ({})", report.placement, backend);
                    prop_assert_eq!(macs_total(item), macs_total(want));
                    prop_assert_eq!(weight_dma_total(item), weight_dma_total(want));
                    if matches!(report.placement, Placement::Image | Placement::Pipeline) {
                        // Single-instance view: stats equal, not just close.
                        prop_assert_eq!(item.total_cycles, want.total_cycles);
                        prop_assert_eq!(item.ddr_bytes, want.ddr_bytes);
                        for (a, b) in item.layers.iter().zip(&want.layers) {
                            prop_assert_eq!(&a.name, &b.name);
                            prop_assert_eq!(a.stats.total_cycles, b.stats.total_cycles);
                            prop_assert_eq!(a.stats.io_dma_cycles, b.stats.io_dma_cycles);
                            prop_assert_eq!(a.stats.weight_dma_cycles, b.stats.weight_dma_cycles);
                            prop_assert_eq!(a.stats.stripes, b.stats.stripes);
                        }
                    }
                }
                prop_assert!(report.makespan_cycles > 0);
                prop_assert!(report.per_instance_busy.iter().sum::<u64>() > 0);
            }
        }
    }
}

/// The cycle backend agrees too — one deterministic case (it is ~100x
/// slower than the model, so no random sweep).
#[test]
fn placements_match_single_instance_on_cycle_backend() {
    let (qnet, inputs) = quantized(0.6, 21, 2);
    let reference: Vec<InferenceReport> = {
        let d = Driver::builder(config(2048, 1)).backend(BackendKind::Cycle).build().unwrap();
        inputs.iter().map(|i| d.run_network(&qnet, i).expect("fits")).collect()
    };
    let sharded = Driver::builder(config(2048, 2)).backend(BackendKind::Cycle).build().unwrap();
    for placement in [Placement::Image, Placement::Pipeline] {
        let report = run_sharded(&sharded, &qnet, &inputs, placement).expect("runs");
        for (item, want) in report.items.iter().zip(&reference) {
            assert_eq!(item.output, want.output, "{placement}");
            assert_eq!(item.total_cycles, want.total_cycles, "{placement}");
        }
    }
}

/// Stripe placement on a genuinely striped workload: tiny banks force
/// multi-stripe layers, all instances get work, and the distributed
/// compute totals match the single-instance run exactly.
#[test]
fn stripe_placement_distributes_real_stripes() {
    let (qnet, inputs) = quantized(1.0, 55, 2);
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        let one = Driver::builder(config(20, 1)).backend(backend).build().unwrap();
        let reference: Vec<InferenceReport> =
            inputs.iter().map(|i| one.run_network(&qnet, i).expect("fits")).collect();
        let sharded = Driver::builder(config(20, 2)).backend(backend).build().unwrap();
        let report = run_sharded(&sharded, &qnet, &inputs, Placement::Stripe).expect("covers");
        assert_eq!(report.placement, Placement::Stripe);
        for (item, want) in report.items.iter().zip(&reference) {
            assert_eq!(item.output, want.output, "{backend}");
            assert_eq!(macs_total(item), macs_total(want));
        }
        // Both instances genuinely busy, and the makespan is just the
        // images run back to back.
        assert!(report.per_instance_busy.iter().all(|&b| b > 0), "{:?}", report.per_instance_busy);
        let total: u64 = report.items.iter().map(|r| r.total_cycles).sum();
        assert_eq!(report.makespan_cycles, total);
        // The distributed schedule never loses to the serial
        // reconstruction (at tiny banks the layers are DMA-bound, so
        // the win can be slim), and at least one layer's critical path
        // genuinely shrank from the split.
        assert!(report.speedup() >= 1.0, "speedup {}", report.speedup());
        let shrunk = report.items.iter().flat_map(|r| r.layers.iter()).any(|l| {
            let max = l.stats.per_instance_cycles.iter().copied().max().unwrap_or(0);
            let sum: u64 = l.stats.per_instance_cycles.iter().sum();
            max < sum
        });
        assert!(shrunk, "no layer distributed compute across instances");
    }
}

/// An explicit stripe placement that cannot occupy every instance is a
/// clean `config.invalid`, with Auto never tripping it.
#[test]
fn uncoverable_stripe_placement_is_config_invalid() {
    // One conv layer, 2 output channels => 1 OFM group at 4 lanes, and
    // roomy banks => a single stripe: coverage 1 of 4.
    let spec = NetworkSpec {
        name: "shallow".into(),
        input: Shape::new(2, 8, 8),
        layers: vec![LayerSpec::Conv {
            name: "only".into(),
            in_c: 2,
            out_c: 2,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        }],
    };
    let (qnet, inputs) = quantize_spec(&spec, 0.8, 3, 2);
    let driver = Driver::builder(config(4096, 4)).build().unwrap();
    let err = run_sharded(&driver, &qnet, &inputs, Placement::Stripe).unwrap_err();
    assert!(
        matches!(err, DriverError::InvalidConfig(ref r)
            if r.contains("cannot cover 4 instances") && r.contains("image | pipeline")),
        "got {err:?}"
    );
    assert_eq!(Error::from(err).code(), "config.invalid");
    // Auto picks a covering placement instead of erroring.
    let auto = run_sharded(&driver, &qnet, &inputs, Placement::Auto).expect("auto never errors");
    assert_ne!(auto.placement, Placement::Stripe);
}

/// Image-parallel throughput: a batch sharded over N instances finishes
/// in ~1/N the serial cycles (same per-image work, parallel lanes).
#[test]
fn image_placement_scales_throughput() {
    let (qnet, inputs) = quantized(0.7, 33, 8);
    let driver = Driver::builder(config(2048, 4)).build().unwrap();
    let report = run_sharded(&driver, &qnet, &inputs, Placement::Image).expect("runs");
    assert_eq!(report.placement, Placement::Image);
    let total: u64 = report.items.iter().map(|r| r.total_cycles).sum();
    // 8 equal images over 4 lanes: exactly 2 images per lane.
    assert_eq!(report.makespan_cycles * 4, total);
    assert!(report.speedup() > 3.9, "speedup {}", report.speedup());
    assert!(report.utilization() > 0.9, "utilization {}", report.utilization());
}

/// Layer-pipelined latency: resident block weights pull the downstream
/// weight staging off the critical path, so a single image finishes
/// earlier than on one instance (which is what image placement degrades
/// to at batch 1).
#[test]
fn pipeline_placement_beats_image_on_single_image_latency() {
    let (qnet, inputs) = quantized(0.7, 44, 1);
    let driver = Driver::builder(config(2048, 2)).build().unwrap();
    let image = run_sharded(&driver, &qnet, &inputs, Placement::Image).expect("runs");
    let pipeline = run_sharded(&driver, &qnet, &inputs, Placement::Pipeline).expect("runs");
    assert!(
        pipeline.makespan_cycles < image.makespan_cycles,
        "pipeline {} vs image {}",
        pipeline.makespan_cycles,
        image.makespan_cycles
    );
    assert!(pipeline.staging_hidden_cycles > 0);
    assert_eq!(pipeline.layer_bubbles.len(), 2, "one bubble entry per stage");
}

/// Streaming a batch through the pipeline hides per-image weight
/// staging entirely after the fill: hidden staging grows with the batch
/// while exposed staging stays the fill cost.
#[test]
fn pipeline_placement_hides_weight_staging_across_a_batch() {
    let (qnet, inputs) = quantized(0.7, 66, 6);
    let driver = Driver::builder(config(2048, 2)).build().unwrap();
    let report = run_sharded(&driver, &qnet, &inputs, Placement::Pipeline).expect("runs");
    let staged_serial: u64 = report.items.iter().map(weight_dma_total).sum();
    assert_eq!(report.staging_exposed_cycles + report.staging_hidden_cycles, staged_serial);
    assert!(report.staging_hidden_cycles > report.staging_exposed_cycles);
    assert!(report.speedup() > 1.0, "speedup {}", report.speedup());
    // The timeline is self-consistent: no instance is busy longer than
    // the makespan.
    for &b in &report.per_instance_busy {
        assert!(b <= report.makespan_cycles);
    }
}

/// One injected `dma:xfer` fault surfaces as the same stable code under
/// every placement and backend: placement never changes the first
/// image's descriptor prefix, and fault detection is value-independent.
#[test]
fn dma_faults_surface_identically_across_placements() {
    let (qnet, inputs) = quantized(0.6, 11, 2);
    for (kind, want_code) in [
        (FaultKind::DmaTruncate { tiles: 1 }, "dma.truncated"),
        (FaultKind::DmaCorrupt { xor: 0x40 }, "dma.parity"),
    ] {
        for at in [0, 2, 5] {
            for backend in BackendKind::ALL {
                let mut codes = Vec::new();
                for placement in [Placement::Stripe, Placement::Image, Placement::Pipeline] {
                    let plan = FaultPlan::new().inject("dma:xfer", at, kind).shared();
                    let driver = Driver::builder(config(2048, 2))
                        .backend(backend)
                        .fault_plan(plan.clone())
                        .build()
                        .expect("valid config");
                    let err = run_sharded(&driver, &qnet, &inputs, placement).unwrap_err();
                    assert!(err.is_transient(), "{backend}/{placement}: DMA faults are transient");
                    assert_eq!(
                        plan.lock().unwrap().fired().len(),
                        1,
                        "{backend}/{placement}: exactly one fault fired"
                    );
                    codes.push(Error::from(err).code());
                }
                assert_eq!(codes, vec![want_code; 3], "fault {kind:?} at {at} on {backend}");
            }
        }
    }
}

/// The session surface routes placement and instance count end to end.
#[test]
fn session_run_sharded_matches_infer() {
    let (qnet, inputs) = quantized(0.5, 77, 3);
    let session = Session::builder(config(2048, 1))
        .instances(2)
        .placement(Placement::Pipeline)
        .build()
        .expect("valid config");
    assert_eq!(session.batch_config().placement, Placement::Pipeline);
    assert_eq!(session.driver().config.instances, 2);
    assert_eq!(session.driver().config.bank_tiles, 1024, "RAM-preserving rescale");
    let report = session.run_sharded(&qnet, &inputs).expect("runs");
    assert_eq!(report.placement, Placement::Pipeline);
    // Bit-identical to the one-at-a-time session surface (which uses
    // the same single-instance geometry after the rescale halves banks).
    let single = Session::builder(config(1024, 1)).build().expect("valid config");
    for (item, input) in report.items.iter().zip(&inputs) {
        let want = single.infer(&qnet, input).expect("runs");
        assert_eq!(item.output, want.output);
        assert_eq!(item.total_cycles, want.total_cycles);
    }
}
