//! SoC protocol integration: the ARM-side control path of paper Fig. 1 —
//! Avalon bus, CSR doorbells, DMA descriptors, DDR staging, and the
//! accelerator — wired together the way the real system is.

use zskip::accel::cycle::run_instructions;
use zskip::accel::{AccelConfig, BankSet, ConvInstr, FmLayout, GroupWeights, Instruction};
use zskip::hls::AccelArch;
use zskip::nn::conv::{conv2d_quant, QuantConvWeights};
use zskip::quant::{Requantizer, Sm8};
use zskip::soc::csr::{status, AccelCsr, CsrFile, ACCEL_CSR_BASE, CSR_BLOCK_LEN};
use zskip::soc::dma::{DmaController, DmaDescriptor, DmaDirection};
use zskip::soc::{AvalonBus, DdrModel, HostCpu};
use zskip::tensor::{Shape, Tensor, TiledFeatureMap};

fn config() -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 2048 }, 100.0)
}

fn small_layer() -> (QuantConvWeights, Tensor<Sm8>) {
    let qw = QuantConvWeights::new(
        4,
        4,
        3,
        (0..144)
            .map(|i| if i % 4 == 0 { Sm8::ZERO } else { Sm8::from_i32_saturating((i % 11) - 5) })
            .collect(),
        vec![1, -1, 2, -2],
        Requantizer::from_ratio(1.0 / 32.0),
        true,
    );
    let input = Tensor::from_fn(4, 8, 8, |c, y, x| Sm8::from_i32_saturating(((c * 13 + y * 5 + x) % 160) as i32 - 80));
    (qw, input)
}

/// The full host-visible flow: stage data in DDR, DMA it into banks,
/// program the CSRs over Avalon, ring the doorbell, execute, poll DONE,
/// DMA results back, verify against the golden model.
#[test]
fn full_csr_dma_inference_round_trip() {
    let cfg = config();
    let (qw, input) = small_layer();

    // --- Host side: Avalon bus with the accelerator CSR block mapped.
    let mut bus = AvalonBus::new();
    bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(CsrFile::new()));
    let mut host = HostCpu::new();

    // --- Stage activations + weights + instruction stream in DDR.
    let mut ddr = DdrModel::new(1 << 20);
    let padded = input.padded(1);
    let tiled = TiledFeatureMap::from_tensor(&padded);
    let in_layout = FmLayout::full(0, padded.shape());
    let out_shape = Shape::new(qw.out_c, 8, 8);
    let out_layout = FmLayout::full(in_layout.end(), out_shape);

    let fm_bytes: Vec<u8> = tiled
        .as_tiles()
        .iter()
        .flat_map(|t| t.as_array().iter().map(|v| v.to_bits()).collect::<Vec<u8>>())
        .collect();
    ddr.write_block(0, &fm_bytes);

    let gw = GroupWeights::from_filters(&qw, 0, cfg.lanes);
    let scratchpad = gw.to_bytes();

    let instr = Instruction::Conv(ConvInstr {
        ofm_first: 0,
        ifm_count: 4,
        ifm_base: 0,
        ifm_tiles_x: in_layout.tiles_x as u16,
        ifm_tile_rows: in_layout.tile_rows as u16,
        ifm_row_offset: 0,
        ofm_base: out_layout.base as u32,
        ofm_tiles_x: out_layout.tiles_x as u16,
        ofm_tile_rows: out_layout.tile_rows as u16,
        wgt_base: 0,
        bias: [1, -1, 2, -2],
        requant_mult: qw.requant.mult as u16,
        requant_shift: qw.requant.shift as u8,
        relu: true,
        active_lanes: 4,
    });
    let stream = Instruction::encode_stream(&[instr]);
    let instr_addr = 0x8000;
    ddr.write_block(instr_addr, &stream);

    // --- DMA activations into the banks, channel by channel.
    let mut banks = BankSet::new(&cfg);
    let mut dma = DmaController::new();
    for c in 0..4 {
        let tiles_per_channel = in_layout.tile_rows * in_layout.tiles_x;
        dma.run(
            &DmaDescriptor {
                direction: DmaDirection::DdrToBank,
                ddr_addr: c * tiles_per_channel * 16,
                bank: FmLayout::bank_of(c),
                bank_tile_index: in_layout.addr(c, 0, 0),
                tiles: tiles_per_channel,
            },
            &mut ddr,
            &mut banks,
        )
        .expect("in-range");
    }

    // --- Host programs the CSRs and rings the doorbell.
    host.launch(&mut bus, instr_addr as u32, 1).expect("bus ok");

    // --- Device side: fetch and decode the stream the CSRs point at,
    //     execute it, post DONE with the cycle count.
    let count = bus.read(ACCEL_CSR_BASE + AccelCsr::InstrCount as u32).expect("read count") as usize;
    let addr = bus.read(ACCEL_CSR_BASE + AccelCsr::InstrAddr as u32).expect("read addr") as usize;
    let (bytes, _) = ddr.read_block(addr, count * zskip::accel::isa::INSTR_BYTES);
    let decoded = Instruction::decode_stream(bytes).expect("well-formed stream");
    let outcome = run_instructions(&cfg, banks, scratchpad, &decoded, 10_000_000).expect("executes");
    bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::DONE).expect("post done");
    bus.write(ACCEL_CSR_BASE + AccelCsr::CyclesLo as u32, outcome.cycles as u32).expect("post cycles");

    // --- Host polls DONE, reads the cycle counter.
    let st = host.wait_done(&mut bus, 100).expect("bus ok");
    assert_eq!(st & status::DONE, status::DONE);
    let cycles = bus.read(ACCEL_CSR_BASE + AccelCsr::CyclesLo as u32).expect("read cycles");
    assert!(cycles > 0);

    // --- DMA results back to DDR and verify bit-exactly.
    let mut banks = outcome.banks;
    let out_ddr = 0x4000;
    for c in 0..4 {
        let tiles_per_channel = out_layout.tile_rows * out_layout.tiles_x;
        dma.run(
            &DmaDescriptor {
                direction: DmaDirection::BankToDdr,
                ddr_addr: out_ddr + c * tiles_per_channel * 16,
                bank: FmLayout::bank_of(c),
                bank_tile_index: out_layout.addr(c, 0, 0),
                tiles: tiles_per_channel,
            },
            &mut ddr,
            &mut banks,
        )
        .expect("in-range");
    }
    let want = conv2d_quant(&input, &qw, 1, 1);
    let tiles_per_channel = out_layout.tile_rows * out_layout.tiles_x;
    let (out_bytes, _) = ddr.read_block(out_ddr, 4 * tiles_per_channel * 16);
    let mut got = TiledFeatureMap::<Sm8>::zeros(out_shape);
    for c in 0..4 {
        for t in 0..tiles_per_channel {
            let base = (c * tiles_per_channel + t) * 16;
            let (ty, tx) = (t / out_layout.tiles_x, t % out_layout.tiles_x);
            for i in 0..16 {
                got.tile_mut(c, ty, tx).as_mut_array()[i] = Sm8::from_bits(out_bytes[base + i]);
            }
        }
    }
    assert_eq!(got.to_tensor().cropped(8, 8), want, "DDR round-trip result matches golden model");
}

/// A corrupted instruction stream is rejected at decode and surfaces as
/// the ERROR status bit — the illegal-instruction path.
#[test]
fn illegal_instruction_sets_error_status() {
    let mut bus = AvalonBus::new();
    bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(CsrFile::new()));
    let mut host = HostCpu::new();
    let mut ddr = DdrModel::new(1 << 16);

    // Garbage opcode.
    let mut bad = [0u8; zskip::accel::isa::INSTR_BYTES];
    bad[0] = 0xff;
    ddr.write_block(0x100, &bad);

    host.launch(&mut bus, 0x100, 1).expect("bus ok");
    let addr = bus.read(ACCEL_CSR_BASE + AccelCsr::InstrAddr as u32).expect("addr") as usize;
    let (bytes, _) = ddr.read_block(addr, zskip::accel::isa::INSTR_BYTES);
    let decode = Instruction::decode_stream(bytes);
    assert!(decode.is_err(), "garbage must not decode");
    bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::ERROR).expect("post error");

    let st = host.wait_done(&mut bus, 10).expect("bus ok");
    assert_eq!(st & status::ERROR, status::ERROR);
}
