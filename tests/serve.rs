//! Serving-daemon integration: concurrent requests through the real
//! `ServeEngine`, including a request that absorbs an injected transient
//! DMA fault. The contract under test is fault *isolation*: the poisoned
//! request errors with its stable `Error::code()` while every other
//! request in the same serving session completes bit-identical to a
//! direct `zskip infer` run. A second test drives the same engine over a
//! real localhost TCP socket through the newline-delimited JSON wire
//! protocol with concurrent clients.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use zskip::fault::{FaultKind, FaultPlan};
use zskip::hls::AccelArch;
use zskip::json::Json;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::prelude::*;
use zskip::quant::DensityProfile;
use zskip::tensor::Shape;

fn small_net(hw: usize) -> QuantizedNetwork {
    let spec = NetworkSpec {
        name: "serve-it".into(),
        input: Shape::new(3, hw, hw),
        layers: vec![conv3x3("c1", 3, 4), maxpool2x2("p1"), conv3x3("c2", 4, 4)],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 17, density: DensityProfile::uniform(2, 0.5) },
    );
    net.quantize(&synthetic_inputs(18, 2, spec.input))
}

fn config() -> AccelConfig {
    AccelConfig::from_arch(
        &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
        100.0,
    )
}

/// One single-shot DMA parity fault lands in a six-request serving
/// session with retries disabled: exactly one request fails, with the
/// stable `dma.parity` code, and the other five are bit-identical to
/// direct inference on a fault-free session.
#[test]
fn faulted_request_errors_while_others_serve_bit_identical() {
    let qnet = Arc::new(small_net(8));
    let inputs = synthetic_inputs(21, 6, qnet.spec.input);

    // Golden outputs from a clean session — the `zskip infer` path.
    let clean = Session::builder(config()).backend(BackendKind::Model).build().unwrap();
    let golden: Vec<_> = inputs
        .iter()
        .map(|input| clean.infer(&qnet, input).expect("clean run succeeds").output)
        .collect();

    // The served session carries the fault plan. RetryPolicy::none()
    // keeps the resilient batch engine from absorbing the (one-shot)
    // fault, so it must surface on exactly one request.
    let plan = FaultPlan::new().inject("dma:xfer", 1, FaultKind::DmaCorrupt { xor: 0x40 }).shared();
    let session = Session::builder(config())
        .backend(BackendKind::Model)
        .fault_plan(plan.clone())
        .retry(RetryPolicy::none())
        .max_batch(inputs.len())
        .batch_window(Duration::from_millis(50))
        .build()
        .unwrap();
    let engine = ServeEngine::start(session, Arc::clone(&qnet));
    let handle = engine.handle();
    let (tx, rx) = mpsc::channel();
    for (i, input) in inputs.iter().enumerate() {
        handle.submit(format!("r{i}"), input.clone(), tx.clone()).expect("admitted");
    }
    drop(tx);

    let replies: Vec<ServeReply> = rx.iter().collect();
    assert_eq!(replies.len(), inputs.len(), "every accepted request completes exactly once");
    let mut failed = Vec::new();
    for reply in &replies {
        let idx: usize = reply.id[1..].parse().expect("id is r<index>");
        match &reply.result {
            Ok(report) => assert_eq!(
                report.output, golden[idx],
                "request {} must be bit-identical to direct inference",
                reply.id
            ),
            Err(e) => {
                assert_eq!(e.code(), "dma.parity", "stable code for the injected fault: {e}");
                failed.push(idx);
            }
        }
    }
    assert_eq!(failed.len(), 1, "the one-shot fault poisons exactly one request: {failed:?}");
    assert_eq!(plan.lock().expect("unpoisoned").fired().len(), 1, "the injection fired once");

    let stats = engine.join();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.served, (inputs.len() - 1) as u64);
    assert_eq!(stats.completed(), inputs.len() as u64);
}

/// Reads newline-delimited JSON responses until the server closes the
/// connection.
fn read_replies(stream: &TcpStream) -> Vec<Json> {
    BufReader::new(stream)
        .lines()
        .map(|line| Json::parse(&line.expect("socket read")).expect("response line is JSON"))
        .collect()
}

/// Two concurrent TCP clients drive the wire protocol against one
/// engine: every seed-addressed request comes back `ok` with the output
/// of direct inference on the same seed, a garbage line gets the
/// `serve.protocol` code without disturbing its neighbours, and the
/// drain after shutdown loses nothing.
#[test]
fn tcp_clients_round_trip_concurrently() {
    let qnet = Arc::new(small_net(8));
    let shape = qnet.spec.input;
    let session = Session::builder(config())
        .backend(BackendKind::Model)
        .batch_window(Duration::from_millis(1))
        .build()
        .unwrap();
    // Golden path: what `zskip infer --seed <s>` computes for each seed.
    let golden = |seed: u64| {
        let input = synthetic_inputs(seed, 1, shape).remove(0);
        let out = session.driver().run_network(&qnet, &input).expect("clean run").output;
        out.iter().map(|v| v.to_i32()).collect::<Vec<i32>>()
    };
    let want: Vec<(u64, Vec<i32>)> = (40..46).map(|s| (s, golden(s))).collect();

    let engine = ServeEngine::start(session, Arc::clone(&qnet));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound addr");

    std::thread::scope(|scope| {
        // Server: accept exactly two connections, one wire loop each.
        let handle = engine.handle();
        scope.spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().expect("accept");
                let handle = handle.clone();
                scope.spawn(move || {
                    let reader = BufReader::new(stream.try_clone().expect("clone socket"));
                    let mut writer = &stream;
                    wire::serve_connection(&handle, shape, reader, &mut writer)
                        .expect("connection io");
                });
            }
        });

        // Client A: three seeds, then a garbage line.
        let want_a = &want[..3];
        let a = scope.spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut w = &stream;
            for (seed, _) in want_a {
                writeln!(w, r#"{{"op":"infer","id":"s{seed}","seed":{seed}}}"#).expect("send");
            }
            writeln!(w, "this is not json").expect("send");
            stream.shutdown(Shutdown::Write).expect("half-close");
            read_replies(&stream)
        });
        // Client B: the other three seeds.
        let want_b = &want[3..];
        let b = scope.spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut w = &stream;
            for (seed, _) in want_b {
                writeln!(w, r#"{{"op":"infer","id":"s{seed}","seed":{seed}}}"#).expect("send");
            }
            stream.shutdown(Shutdown::Write).expect("half-close");
            read_replies(&stream)
        });

        let replies_a = a.join().expect("client a");
        let replies_b = b.join().expect("client b");
        assert_eq!(replies_a.len(), 4, "3 replies + 1 protocol error: {replies_a:?}");
        assert_eq!(replies_b.len(), 3);

        let all: Vec<&Json> = replies_a.iter().chain(&replies_b).collect();
        assert_eq!(
            all.iter()
                .filter(|j| j.get("code").and_then(Json::as_str) == Some("serve.protocol"))
                .count(),
            1,
            "the garbage line answers with the stable protocol code"
        );
        for (seed, want_out) in &want {
            let reply = all
                .iter()
                .find(|j| j.get("id").and_then(Json::as_str) == Some(&format!("s{seed}")))
                .unwrap_or_else(|| panic!("no reply for seed {seed}"));
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            let got: Vec<i32> = reply
                .get("output")
                .and_then(Json::as_arr)
                .expect("output array")
                .iter()
                .map(|v| v.as_f64().expect("int") as i32)
                .collect();
            assert_eq!(&got, want_out, "seed {seed} served over TCP matches direct inference");
        }
    });

    let stats = engine.join();
    assert_eq!(stats.served, 6);
    assert_eq!(stats.failed, 0);
    assert!(stats.batches >= 1);
}
