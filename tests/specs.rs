//! The in-repo `specs/*.json` artifacts stay byte-identical to the
//! `zskip::nn::resnet` builders. Regenerate with `ZSKIP_BLESS=1 cargo
//! test --test specs` after changing a builder.

use zskip::nn::{resnet18_spec, resnet34_spec, NetworkSpec};

fn check(file: &str, spec: NetworkSpec) {
    let path = format!("{}/specs/{file}", env!("CARGO_MANIFEST_DIR"));
    let rendered = spec.to_json();
    if std::env::var_os("ZSKIP_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("bless spec artifact");
        return;
    }
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with ZSKIP_BLESS=1 to generate)"));
    assert_eq!(text, rendered, "{path} is stale: rerun with ZSKIP_BLESS=1");
    let parsed = NetworkSpec::from_json(&text).expect("artifact parses");
    assert_eq!(parsed, spec, "{path} does not parse back to the builder spec");
}

#[test]
fn resnet18_artifact_matches_builder() {
    check("resnet18.json", resnet18_spec());
}

#[test]
fn resnet34_artifact_matches_builder() {
    check("resnet34.json", resnet34_spec());
}
