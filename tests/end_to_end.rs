//! End-to-end integration: network inference through the full stack
//! (driver -> DMA/DDR -> striping -> instruction streams -> accelerator
//! backends) across architecture variants.

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::{Shape, Tensor};

fn testnet(seed: u64, density: f64) -> (QuantizedNetwork, Tensor<f32>) {
    let spec = NetworkSpec {
        name: "itest".into(),
        input: Shape::new(3, 16, 16),
        layers: vec![
            conv3x3("c1", 3, 8),
            maxpool2x2("p1"),
            conv3x3("c2", 8, 12),
            maxpool2x2("p2"),
            LayerSpec::Fc { name: "fc".into(), in_features: 12 * 4 * 4, out_features: 6, relu: false },
            LayerSpec::Softmax,
        ],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed, density: DensityProfile::uniform(2, density) },
    );
    let qnet = net.quantize(&synthetic_inputs(seed ^ 9, 3, spec.input));
    let input = synthetic_inputs(seed ^ 5, 1, spec.input).pop().expect("one");
    (qnet, input)
}

#[test]
fn every_variant_is_bit_exact_on_the_model_backend() {
    let (qnet, input) = testnet(1, 0.5);
    let golden = qnet.forward_quant(&input);
    for variant in Variant::all() {
        let config = AccelConfig::for_variant(variant);
        let report = Driver::builder(config).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
        assert_eq!(report.output, golden, "{variant} output mismatch");
    }
}

#[test]
fn cycle_backend_matches_on_full_and_single_unit_variants() {
    let (qnet, input) = testnet(2, 0.4);
    let golden = qnet.forward_quant(&input);
    for variant in [Variant::U256Opt, Variant::U16Unopt] {
        let config = AccelConfig::for_variant(variant);
        let report = Driver::builder(config).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).expect("fits");
        assert_eq!(report.output, golden, "{variant} cycle-backend mismatch");
    }
}

#[test]
fn runs_are_deterministic() {
    let (qnet, input) = testnet(3, 0.6);
    let config = AccelConfig::for_variant(Variant::U256Opt);
    let a = Driver::builder(config).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
    let b = Driver::builder(config).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
    assert_eq!(a.output, b.output);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.ddr_bytes, b.ddr_bytes);
}

#[test]
fn wider_datapath_is_faster() {
    let (qnet, input) = testnet(4, 1.0);
    let cycles = |v: Variant| {
        let config = AccelConfig::for_variant(v);
        Driver::builder(config).backend(BackendKind::Model).build().unwrap()
            .run_network(&qnet, &input)
            .expect("fits")
            .conv_layers()
            .map(|l| l.stats.compute_cycles)
            .sum::<u64>()
    };
    let c16 = cycles(Variant::U16Unopt);
    let c256 = cycles(Variant::U256Opt);
    assert!(c16 > c256 * 4, "16-MAC variant must be much slower: {c16} vs {c256}");
}

#[test]
fn effective_gops_never_exceeds_peak_for_dense_model() {
    let (qnet, input) = testnet(5, 1.0);
    for variant in Variant::all() {
        let config = AccelConfig::for_variant(variant);
        let report = Driver::builder(config).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
        let peak = config.peak_gops();
        for l in report.conv_layers() {
            assert!(
                l.effective_gops(&config) <= peak * 1.001,
                "{variant}/{}: {} > {peak}",
                l.name,
                l.effective_gops(&config)
            );
        }
    }
}

#[test]
fn pruned_network_beats_dense_on_every_variant() {
    let (dense, input) = testnet(6, 1.0);
    let (pruned, _) = testnet(6, 0.3);
    for variant in Variant::all() {
        let config = AccelConfig::for_variant(variant);
        let d: u64 = Driver::builder(config).backend(BackendKind::Model).build().unwrap()
            .run_network(&dense, &input)
            .expect("fits")
            .conv_layers()
            .map(|l| l.stats.compute_cycles)
            .sum();
        let p: u64 = Driver::builder(config).backend(BackendKind::Model).build().unwrap()
            .run_network(&pruned, &input)
            .expect("fits")
            .conv_layers()
            .map(|l| l.stats.compute_cycles)
            .sum();
        assert!(p < d, "{variant}: pruned {p} !< dense {d}");
    }
}

#[test]
fn zero_skip_ablation_changes_cycles_not_results() {
    let (qnet, input) = testnet(7, 0.3);
    let config = AccelConfig::for_variant(Variant::U256Opt);
    let with = Driver::builder(config).backend(BackendKind::Model).build().unwrap();
    let mut without = with.clone();
    without.zero_skipping = false;
    let a = with.run_network(&qnet, &input).expect("fits");
    let b = without.run_network(&qnet, &input).expect("fits");
    assert_eq!(a.output, b.output, "zero-skipping must never change results");
    let ca: u64 = a.conv_layers().map(|l| l.stats.compute_cycles).sum();
    let cb: u64 = b.conv_layers().map(|l| l.stats.compute_cycles).sum();
    assert!(ca < cb, "skipping saves cycles: {ca} vs {cb}");
}

/// The two-instance variant is bit-exact on the cycle-exact backend too
/// (each stripe/group batch simulates all 21 kernels).
#[test]
fn five_twelve_opt_cycle_backend_is_bit_exact() {
    let (qnet, input) = testnet(8, 0.5);
    let config = AccelConfig::for_variant(Variant::U512Opt);
    let report = Driver::builder(config).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).expect("fits");
    assert_eq!(report.output, qnet.forward_quant(&input));
}
