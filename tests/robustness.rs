//! Robustness and failure injection: striping under extreme bank
//! pressure, minimal FIFO depths, capacity errors, degenerate networks.

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::AccelArch;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::{Shape, Tensor};

fn net(input_hw: usize, seed: u64) -> (QuantizedNetwork, Tensor<f32>) {
    let spec = NetworkSpec {
        name: "robust".into(),
        input: Shape::new(3, input_hw, input_hw),
        layers: vec![conv3x3("c1", 3, 8), maxpool2x2("p1"), conv3x3("c2", 8, 8)],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed, density: DensityProfile::uniform(2, 0.5) },
    );
    let qnet = net.quantize(&synthetic_inputs(seed, 2, spec.input));
    let input = synthetic_inputs(seed ^ 3, 1, spec.input).pop().expect("one");
    (qnet, input)
}

fn config_with(bank_tiles: usize, fifo_depth: usize) -> AccelConfig {
    let base = AccelConfig::from_arch(
        &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles },
        100.0,
    );
    AccelConfig { fifo_depth, ..base }
}

/// Sweeping bank capacity down to the minimum keeps results bit-exact —
/// the striping planner and the halo bookkeeping never corrupt data.
#[test]
fn extreme_striping_pressure_is_bit_exact() {
    let (qnet, input) = net(16, 1);
    let golden = qnet.forward_quant(&input);
    for bank_tiles in [4096, 256, 64, 40, 24] {
        let driver = Driver::builder(config_with(bank_tiles, 4)).backend(BackendKind::Model).build().unwrap();
        match driver.run_network(&qnet, &input) {
            Ok(report) => assert_eq!(report.output, golden, "bank_tiles={bank_tiles}"),
            Err(e) => panic!("bank_tiles={bank_tiles} should stripe, got {e}"),
        }
    }
}

/// Depth-1 FIFOs throttle throughput but must not deadlock or corrupt —
/// the classic streaming-hardware failure mode.
#[test]
fn depth_one_fifos_complete_without_deadlock() {
    let (qnet, input) = net(8, 2);
    let golden = qnet.forward_quant(&input);
    let fast = Driver::builder(config_with(2048, 4)).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).expect("runs");
    let slow = Driver::builder(config_with(2048, 1)).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).expect("runs");
    assert_eq!(fast.output, golden);
    assert_eq!(slow.output, golden);
    // Registered FIFOs sustain one transfer per cycle even at depth 1 when
    // the consumer keeps pace, so depth can only ever add cycles.
    assert!(
        slow.total_cycles >= fast.total_cycles,
        "depth-1 FIFOs may not be faster: {} vs {}",
        slow.total_cycles,
        fast.total_cycles
    );
}

/// Capacity exhaustion surfaces as a structured error naming the layer.
#[test]
fn impossible_capacity_is_a_clean_error() {
    let (qnet, input) = net(16, 3);
    let err = Driver::builder(config_with(4, 4)).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("stripe") && msg.contains("capacity"), "unhelpful error: {msg}");
}

/// A conv-only network (no pool, no FC) and a pool-only network both run.
#[test]
fn degenerate_layer_mixes_run() {
    let conv_only = NetworkSpec {
        name: "conv-only".into(),
        input: Shape::new(4, 8, 8),
        layers: vec![conv3x3("c", 4, 4)],
    };
    let pool_only = NetworkSpec {
        name: "pool-only".into(),
        input: Shape::new(4, 8, 8),
        layers: vec![maxpool2x2("p")],
    };
    for spec in [conv_only, pool_only] {
        let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&synthetic_inputs(1, 1, spec.input));
        let input = synthetic_inputs(2, 1, spec.input).pop().expect("one");
        let report = Driver::builder(config_with(2048, 4)).backend(BackendKind::Model).build().unwrap()
            .run_network(&qnet, &input)
            .expect("degenerate net runs");
        assert_eq!(report.output, qnet.forward_quant(&input), "{}", spec.name);
    }
}

/// Single-channel input exercises the staging-unit imbalance path
/// (three of four units idle).
#[test]
fn single_input_channel_is_correct_despite_imbalance() {
    let spec = NetworkSpec {
        name: "mono".into(),
        input: Shape::new(1, 12, 12),
        layers: vec![conv3x3("c", 1, 8)],
    };
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
    let qnet = net.quantize(&synthetic_inputs(4, 1, spec.input));
    let input = synthetic_inputs(5, 1, spec.input).pop().expect("one");
    for backend in [BackendKind::Model, BackendKind::Cycle] {
        let report = Driver::builder(config_with(2048, 4)).backend(backend).build().unwrap().run_network(&qnet, &input).expect("runs");
        assert_eq!(report.output, qnet.forward_quant(&input));
    }
}

/// 1x1 kernels (a degenerate weight tile with one occupied slot) work.
#[test]
fn one_by_one_kernels_work() {
    let spec = NetworkSpec {
        name: "1x1".into(),
        input: Shape::new(4, 8, 8),
        layers: vec![LayerSpec::Conv { name: "pw".into(), in_c: 4, out_c: 6, k: 1, stride: 1, pad: 0, relu: true }],
    };
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
    let qnet = net.quantize(&synthetic_inputs(6, 1, spec.input));
    let input = synthetic_inputs(7, 1, spec.input).pop().expect("one");
    for backend in [BackendKind::Model, BackendKind::Cycle] {
        let report = Driver::builder(config_with(2048, 4)).backend(backend).build().unwrap().run_network(&qnet, &input).expect("runs");
        assert_eq!(report.output, qnet.forward_quant(&input));
    }
}

/// Odd, non-multiple-of-4 spatial dims through conv + overlapping pool —
/// regression for the round-up-region contamination bug.
#[test]
fn odd_dims_with_overlapping_pool_are_bit_exact() {
    let spec = NetworkSpec {
        name: "odd".into(),
        input: Shape::new(3, 19, 23),
        layers: vec![
            conv3x3("c1", 3, 8),
            LayerSpec::MaxPool { name: "p1".into(), k: 3, stride: 2 },
            conv3x3("c2", 8, 8),
        ],
    };
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
    let qnet = net.quantize(&synthetic_inputs(8, 2, spec.input));
    let input = synthetic_inputs(9, 1, spec.input).pop().expect("one");
    for backend in [BackendKind::Model, BackendKind::Cycle] {
        let report = Driver::builder(config_with(2048, 4)).backend(backend).build().unwrap().run_network(&qnet, &input).expect("runs");
        assert_eq!(report.output, qnet.forward_quant(&input));
    }
}

/// Kernel sizes 2 and 4 (the full range a 4x4 weight tile admits) run
/// bit-exactly on both backends.
#[test]
fn kernel_sizes_two_and_four_are_bit_exact() {
    for (k, pad) in [(2usize, 1usize), (4, 2)] {
        let spec = NetworkSpec {
            name: format!("k{k}"),
            input: Shape::new(3, 12, 12),
            layers: vec![LayerSpec::Conv {
                name: format!("c{k}"),
                in_c: 3,
                out_c: 6,
                k,
                stride: 1,
                pad,
                relu: true,
            }],
        };
        let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&synthetic_inputs(k as u64, 1, spec.input));
        let input = synthetic_inputs(k as u64 + 9, 1, spec.input).pop().expect("one");
        for backend in [BackendKind::Model, BackendKind::Cycle] {
            let report = Driver::builder(config_with(4096, 4)).backend(backend).build().unwrap().run_network(&qnet, &input).expect("runs");
            assert_eq!(report.output, qnet.forward_quant(&input), "k={k} {backend:?}");
        }
    }
}

/// Unsupported geometries are typed errors, not panics.
#[test]
fn unsupported_geometry_is_a_typed_error() {
    for (k, stride, needle) in [(5usize, 1usize, "weight tile"), (3, 2, "stride")] {
        let spec = NetworkSpec {
            name: "bad".into(),
            input: Shape::new(3, 16, 16),
            layers: vec![LayerSpec::Conv {
                name: "c".into(),
                in_c: 3,
                out_c: 4,
                k,
                stride,
                pad: 0,
                relu: false,
            }],
        };
        let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&synthetic_inputs(1, 1, spec.input));
        let input = synthetic_inputs(2, 1, spec.input).pop().expect("one");
        let err = Driver::builder(config_with(4096, 4)).backend(BackendKind::Model).build().unwrap()
            .run_network(&qnet, &input)
            .unwrap_err();
        assert!(err.to_string().contains(needle), "{err}");
    }
}
