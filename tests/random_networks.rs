//! Randomized end-to-end property test: arbitrary small networks through
//! the full driver stack must match the software golden model bit-for-bit
//! on the fast backend, and the two backends must agree with each other.

use proptest::prelude::*;
use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::AccelArch;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::Shape;

/// A random small network: 1-3 conv layers with random channel counts and
/// kernel sizes, optionally interleaved with pooling.
fn network_strategy() -> impl Strategy<Value = NetworkSpec> {
    let conv = (1usize..=3, 2usize..=8, prop::bool::ANY);
    (
        8usize..=19,                 // input h/w
        1usize..=3,                  // input channels
        prop::collection::vec(conv, 1..=3),
        prop::bool::ANY,             // pool after first conv
    )
        .prop_map(|(hw, in_c, convs, pool)| {
            let mut layers = Vec::new();
            let mut c = in_c;
            for (i, (k, out_c, relu)) in convs.into_iter().enumerate() {
                layers.push(LayerSpec::Conv {
                    name: format!("c{i}"),
                    in_c: c,
                    out_c,
                    k,
                    stride: 1,
                    pad: k / 2,
                    relu,
                });
                c = out_c;
                if i == 0 && pool && hw >= 8 {
                    layers.push(LayerSpec::MaxPool { name: "p".into(), k: 2, stride: 2 });
                }
            }
            NetworkSpec { name: "rand".into(), input: Shape::new(in_c, hw, hw), layers }
        })
        .prop_filter("kernel must fit every intermediate map", |spec| spec.shapes().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn random_network_is_bit_exact_on_model_backend(
        spec in network_strategy(),
        density in 0.1f64..1.0,
        seed in 0u64..10_000,
    ) {
        let conv_count = spec.conv_layers().len();
        let net = Network::synthetic(
            spec.clone(),
            &SyntheticModelConfig { seed, density: DensityProfile::uniform(conv_count, density) },
        );
        let qnet = net.quantize(&synthetic_inputs(seed ^ 1, 1, spec.input));
        let input = synthetic_inputs(seed ^ 2, 1, spec.input).pop().expect("one");
        let config = AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 2048 },
            100.0,
        );
        let report = Driver::builder(config).backend(BackendKind::Model).build().unwrap()
            .run_network(&qnet, &input)
            .expect("small networks always fit");
        prop_assert_eq!(report.output, qnet.forward_quant(&input));
    }
}

proptest! {
    // The cycle backend is ~100x slower; fewer cases, smaller nets.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn random_network_backends_agree(
        hw in 6usize..=10,
        out_c in 2usize..=6,
        k in 1usize..=3,
        density in 0.2f64..1.0,
        seed in 0u64..1_000,
    ) {
        let spec = NetworkSpec {
            name: "rand2".into(),
            input: Shape::new(2, hw, hw),
            layers: vec![LayerSpec::Conv {
                name: "c".into(),
                in_c: 2,
                out_c,
                k,
                stride: 1,
                pad: k / 2,
                relu: true,
            }],
        };
        prop_assume!(spec.shapes().is_ok());
        let net = Network::synthetic(
            spec.clone(),
            &SyntheticModelConfig { seed, density: DensityProfile::uniform(1, density) },
        );
        let qnet = net.quantize(&synthetic_inputs(seed ^ 1, 1, spec.input));
        let input = synthetic_inputs(seed ^ 2, 1, spec.input).pop().expect("one");
        let config = AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 1024 },
            100.0,
        );
        let a = Driver::builder(config).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
        let b = Driver::builder(config).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).expect("fits");
        prop_assert_eq!(&a.output, &b.output);
        prop_assert_eq!(a.output, qnet.forward_quant(&input));
    }
}
