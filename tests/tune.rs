//! Autotuner integration: the contracts `zskip tune` ships on.
//!
//! * The versioned `TunedConfig` artifact round-trips through its JSON
//!   text **byte-identically** over randomized configs (proptest) — the
//!   canonical form is a serialization fixed point.
//! * Same seed + space + budget on the deterministic `cycles` objective
//!   produce a byte-identical artifact, across randomized seeds and
//!   budgets (proptest), including the embedded provenance score.
//! * `SessionBuilder::from_tuned` applies every artifact knob, and
//!   explicit builder overrides layered on top win — the precedence rule
//!   the CLI's `--config` + flags combination relies on.
//! * The evaluator's `cycles` score equals a direct model-backend
//!   `run_sharded` and a direct cycle-exact run (re-asserting the
//!   model ≡ cycle equivalence the score's cheapness depends on).
//! * One artifact drives `infer`, `run_batch` and the serving daemon end
//!   to end, each bit-identical to the software golden model.

use std::sync::{mpsc, Arc};

use proptest::prelude::*;
use zskip::accel::tune::{Evaluator, Objective, Provenance, SearchSpace, Searcher, TunedConfig, Tuner};
use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::nn::simd::KernelTier;
use zskip::prelude::*;
use zskip::quant::DensityProfile;
use zskip::tensor::Shape;

fn small_net(hw: usize) -> QuantizedNetwork {
    let spec = NetworkSpec {
        name: "tune-it".into(),
        input: Shape::new(3, hw, hw),
        layers: vec![conv3x3("c1", 3, 4), maxpool2x2("p1"), conv3x3("c2", 4, 4)],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 23, density: DensityProfile::uniform(2, 0.5) },
    );
    net.quantize(&synthetic_inputs(24, 2, spec.input))
}

/// Arbitrary artifact: every knob drawn independently, provenance
/// optional. Scores are dyadic so the float is exact in decimal — the
/// byte-identity contract is about canonical serialization, not about
/// repairing lossy float formatting.
fn arb_config() -> impl Strategy<Value = TunedConfig> {
    // The vendored proptest has no Option strategy: optional knobs pair a
    // presence bool with the value range.
    let hardware = (0usize..4, 1usize..5, 0usize..4, (prop::bool::ANY, 1u32..32));
    let software = (0usize..3, 0usize..5, (prop::bool::ANY, 0usize..4), prop::bool::ANY);
    let batch = (0usize..5, 1usize..17, 0u64..6, 1usize..129);
    let provenance = (prop::bool::ANY, 0u64..1_000_000, 0u64..1000, 0u64..(1 << 20), 0u64..200);
    (hardware, software, batch, provenance).prop_map(
        |(
            (v, instances, pl, (has_park, park)),
            (b, threads, (has_kernel, k), weight_cache),
            (batch_workers, max_batch, batch_window_ms, queue_depth),
            (has_provenance, seed, budget, score_bits, evals),
        )| {
            TunedConfig {
                variant: Variant::all()[v],
                instances,
                backend: BackendKind::ALL[b],
                threads,
                kernel: if has_kernel { Some(KernelTier::ALL[k]) } else { None },
                weight_cache,
                park_hysteresis: if has_park { Some(park) } else { None },
                placement: Placement::ALL[pl],
                batch_workers,
                max_batch,
                batch_window_ms,
                queue_depth,
                provenance: if has_provenance {
                    Some(Provenance {
                        seed,
                        budget,
                        objective: "cycles".into(),
                        space: "full".into(),
                        searcher: "spsa".into(),
                        // Dyadic: exact in f64 and in decimal.
                        score: score_bits as f64 * (1.0 / (1u64 << 20) as f64),
                        evals,
                        cache_hits: evals / 2,
                    })
                } else {
                    None
                },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn artifact_json_round_trip_is_byte_identical(config in arb_config()) {
        let text = config.to_json_string();
        let back = TunedConfig::from_json_str(&text).expect("canonical text parses");
        prop_assert_eq!(&back, &config, "structural round trip");
        prop_assert_eq!(back.to_json_string(), text, "byte-identical fixed point");
    }
}

proptest! {
    // Each case runs two full (small-budget) searches; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn same_seed_space_budget_give_byte_identical_artifacts(
        seed in 0u64..1000,
        budget in 1u64..10,
        spsa in prop::bool::ANY,
    ) {
        let qnet = small_net(8);
        let inputs = synthetic_inputs(5, 2, qnet.spec.input);
        let searcher = if spsa { Searcher::Spsa } else { Searcher::CoordinateDescent };
        let run = || {
            Tuner::new(SearchSpace::hls(), Objective::Cycles, &qnet, &inputs)
                .searcher(searcher)
                .seed(seed)
                .budget(budget)
                .run()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.best.to_json_string(),
            b.best.to_json_string(),
            "same seed+space+budget must reproduce the artifact byte for byte"
        );
        prop_assert_eq!(a.best_score, b.best_score);
    }
}

#[test]
fn from_tuned_applies_knobs_and_explicit_overrides_win() {
    let dir = std::env::temp_dir().join(format!("zskip-tune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("precedence.json");
    let artifact = TunedConfig {
        backend: BackendKind::Cpu,
        threads: 2,
        kernel: Some(KernelTier::Scalar),
        weight_cache: false,
        placement: Placement::Image,
        max_batch: 5,
        ..TunedConfig::default()
    };
    artifact.save(&path).expect("saves");

    // The artifact's knobs land on the built session...
    let session = SessionBuilder::from_tuned(&path).expect("loads").build().expect("valid");
    assert_eq!(session.driver().backend, BackendKind::Cpu);
    assert_eq!(session.driver().threads, 2);
    assert_eq!(session.driver().kernel_tier, KernelTier::Scalar);
    assert!(!session.driver().weight_cache);
    assert_eq!(session.batch_config().placement, Placement::Image);
    assert_eq!(session.batch_config().max_batch, 5);

    // ...and a later explicit override beats the artifact (the CLI's
    // `--config` + explicit-flag precedence, at the library layer).
    let overridden = SessionBuilder::from_tuned(&path)
        .expect("loads")
        .backend(BackendKind::Model)
        .max_batch(9)
        .build()
        .expect("valid");
    assert_eq!(overridden.driver().backend, BackendKind::Model);
    assert_eq!(overridden.batch_config().max_batch, 9);
    assert_eq!(overridden.driver().threads, 2, "untouched knobs keep the tuned value");

    // A missing or malformed artifact fails with the stable code.
    let missing = SessionBuilder::from_tuned(dir.join("absent.json")).unwrap_err();
    assert_eq!(missing.code(), "config.invalid");
    std::fs::write(dir.join("bad.json"), "{]").expect("write");
    let bad = SessionBuilder::from_tuned(dir.join("bad.json")).unwrap_err();
    assert_eq!(bad.code(), "config.invalid");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cycles_score_matches_direct_model_and_cycle_runs() {
    let qnet = small_net(8);
    let inputs = synthetic_inputs(5, 2, qnet.spec.input);
    let config = TunedConfig { instances: 2, ..TunedConfig::default() };
    let eval = Evaluator::new(Objective::Cycles, &qnet, &inputs);
    let score = eval.measure(&config).expect("scores");

    // Direct stats-only model run, same knobs: identical simulated time.
    let session =
        config.session().backend(BackendKind::Model).functional(false).build().expect("valid");
    let report = session.run_sharded(&qnet, &inputs[..1]).expect("runs");
    let direct = report.makespan_cycles as f64 * session.driver().config.cycle_seconds();
    assert_eq!(score, direct, "evaluator is the direct measurement, cached not re-derived");

    // Cycle-exact backend, same knobs: the makespan the score stands in
    // for. This re-pins the model == cycle equivalence the evaluator's
    // speed depends on.
    let cycle_session = config.session().backend(BackendKind::Cycle).build().expect("valid");
    let cycle_report = cycle_session.run_sharded(&qnet, &inputs[..1]).expect("runs");
    assert_eq!(
        report.makespan_cycles, cycle_report.makespan_cycles,
        "transaction model and cycle-exact engine must agree on the makespan"
    );
}

#[test]
fn one_artifact_drives_infer_batch_and_serve_bit_exactly() {
    let dir = std::env::temp_dir().join(format!("zskip-tune-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("deployed.json");
    TunedConfig {
        backend: BackendKind::Cpu,
        threads: 1,
        kernel: Some(KernelTier::Scalar),
        max_batch: 2,
        batch_window_ms: 0,
        ..TunedConfig::default()
    }
    .save(&path)
    .expect("saves");

    let qnet = small_net(8);
    let inputs = synthetic_inputs(6, 3, qnet.spec.input);
    let golden: Vec<_> = inputs.iter().map(|i| qnet.forward_quant(i)).collect();

    // infer
    let session = SessionBuilder::from_tuned(&path).expect("loads").build().expect("valid");
    let report = session.infer(&qnet, &inputs[0]).expect("infers");
    assert_eq!(report.output, golden[0], "infer path");

    // batch
    let session = SessionBuilder::from_tuned(&path).expect("loads").build().expect("valid");
    let batch = session.run_batch(&qnet, &inputs).expect("batches");
    for (r, want) in batch.reports.iter().zip(&golden) {
        assert_eq!(&r.output, want, "batch path");
    }

    // serve
    let session = SessionBuilder::from_tuned(&path).expect("loads").build().expect("valid");
    let engine = ServeEngine::start(session, Arc::new(qnet.clone()));
    let handle = engine.handle();
    let (tx, rx) = mpsc::channel();
    for (i, input) in inputs.iter().enumerate() {
        handle.submit(format!("req-{i}"), input.clone(), tx.clone()).expect("admitted");
    }
    drop(tx);
    for _ in 0..inputs.len() {
        let reply = rx.recv().expect("answered");
        let report = reply.result.expect("request succeeds");
        let idx: usize = reply.id.strip_prefix("req-").unwrap().parse().unwrap();
        assert_eq!(report.output, golden[idx], "serve path");
    }
    handle.shutdown();
    let stats = engine.join();
    assert_eq!(stats.served, inputs.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
