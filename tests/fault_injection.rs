//! Fault-injection robustness: any single injected fault must degrade
//! gracefully — either the run completes bit-identical to the clean run,
//! or it returns a structured error with a stable code. Never a panic,
//! never a hang past the deadlock window.

use proptest::prelude::*;
use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::fault::{FaultKind, FaultPlan};
use zskip::hls::AccelArch;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{conv3x3, maxpool2x2, NetworkSpec};
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::soc::csr::{AccelCsr, CsrFile, ACCEL_CSR_BASE, CSR_BLOCK_LEN};
use zskip::soc::{AvalonBus, BusError, HostCpu};
use zskip::tensor::{Shape, Tensor};

fn small_net(hw: usize) -> (QuantizedNetwork, Tensor<f32>) {
    let spec = NetworkSpec {
        name: "fi".into(),
        input: Shape::new(3, hw, hw),
        layers: vec![conv3x3("c1", 3, 4), maxpool2x2("p1"), conv3x3("c2", 4, 4)],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 11, density: DensityProfile::uniform(2, 0.5) },
    );
    let qnet = net.quantize(&synthetic_inputs(12, 2, spec.input));
    let input = synthetic_inputs(13, 1, spec.input).pop().expect("one");
    (qnet, input)
}

fn config() -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 }, 100.0)
}

/// The FIFOs that exist in the 4-unit design (`crates/core/src/cycle`).
/// A stall injected on any of them, at any cycle, in either direction,
/// must never escape the deadlock detector.
const FIFO_NAMES: &[&str] = &[
    "cmd0", "cmd3", "work1", "pwork2", "prod0_0", "prod3_3", "acfg0", "acfg2", "aout1", "aout3",
    "pout0", "pout2", "wcmd1", "done",
];

proptest! {
    // The cycle backend is slow; keep the case count modest — each case
    // still covers a distinct (fifo, direction, cycle, duration) corner.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Property: one injected FIFO stall — any site, any trigger cycle,
    /// finite or permanent — either leaves the output bit-identical or
    /// surfaces as a structured error that converts into `zskip::Error`.
    /// The test completing at all proves the deadlock window bounds every
    /// permanent stall.
    #[test]
    fn single_fifo_stall_degrades_gracefully(
        fifo_idx in 0usize..FIFO_NAMES.len(),
        pop_side in prop::bool::ANY,
        at in 0u64..20_000,
        forever in prop::bool::ANY,
        cycles in 1u64..2_000,
    ) {
        let (qnet, input) = small_net(8);
        let golden = qnet.forward_quant(&input);
        let site = format!(
            "fifo:{}:{}",
            FIFO_NAMES[fifo_idx],
            if pop_side { "pop" } else { "push" }
        );
        let stall = FaultKind::FifoStall { cycles: if forever { u64::MAX } else { cycles } };
        let plan = FaultPlan::new().inject(site.clone(), at, stall).shared();
        let driver = Driver::builder(config())
            .backend(BackendKind::Cycle)
            .fault_plan(plan)
            .build()
            .expect("valid config");
        match driver.run_network(&qnet, &input) {
            Ok(report) => prop_assert_eq!(report.output, golden, "fault at {} corrupted output", site),
            Err(e) => {
                let code = zskip::Error::from(e).code();
                prop_assert!(!code.is_empty(), "error without a stable code at {}", site);
            }
        }
    }
}

/// A permanent stall on the load-bearing `done` queue deadlocks, and the
/// error names that exact FIFO.
#[test]
fn deadlock_error_names_the_wedged_fifo() {
    let (qnet, input) = small_net(8);
    let plan = FaultPlan::new()
        .inject("fifo:done:pop", 10, FaultKind::FifoStall { cycles: u64::MAX })
        .shared();
    let driver = Driver::builder(config())
        .backend(BackendKind::Cycle)
        .fault_plan(plan)
        .build()
        .expect("valid config");
    let err = driver.run_network(&qnet, &input).expect_err("permanent stall deadlocks");
    let msg = err.to_string();
    assert!(msg.contains("deadlock"), "not a deadlock: {msg}");
    assert!(msg.contains("wedged fifo: done"), "wedged fifo not named: {msg}");
    assert_eq!(zskip::Error::from(err).code(), "sim.deadlock");
}

/// DMA truncation surfaces as a typed `dma.truncated` error through the
/// full driver stack, and a retry (the injection is one-shot) recovers
/// bit-identically.
#[test]
fn dma_truncation_is_structured_and_retry_recovers() {
    let (qnet, input) = small_net(8);
    let golden = qnet.forward_quant(&input);
    let plan = FaultPlan::new().inject("dma:xfer", 1, FaultKind::DmaTruncate { tiles: 0 }).shared();
    let driver =
        Driver::builder(config()).fault_plan(plan.clone()).build().expect("valid config");

    let err = driver.run_network(&qnet, &input).expect_err("truncation is an error");
    assert_eq!(zskip::Error::from(err.clone()).code(), "dma.truncated");
    assert!(err.is_transient(), "DMA faults are retryable");
    assert_eq!(plan.lock().expect("unpoisoned").fired().len(), 1);

    let retry = driver.run_network(&qnet, &input).expect("one-shot fault is consumed");
    assert_eq!(retry.output, golden);
}

/// An Avalon bus timeout is a typed `bus.timeout` error at the SoC layer,
/// and the next access (counters only advance on success) goes through.
#[test]
fn avalon_timeout_is_structured_and_transient() {
    let plan = FaultPlan::new().inject("avalon:write", 0, FaultKind::BusTimeout).shared();
    let mut bus = AvalonBus::new();
    bus.set_fault_plan(plan);
    let mut csr = CsrFile::new();
    csr.set_fault_plan(FaultPlan::new().shared());
    bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(csr));
    let mut host = HostCpu::new();

    let err = host.write_csr(&mut bus, AccelCsr::InstrAddr, 0x40).expect_err("times out");
    assert!(matches!(err, BusError::Timeout(_)), "wrong error: {err}");
    assert_eq!(zskip::Error::from(err).code(), "bus.timeout");

    host.write_csr(&mut bus, AccelCsr::InstrAddr, 0x40).expect("retry succeeds");
    assert_eq!(host.read_csr(&mut bus, AccelCsr::InstrAddr).expect("reads"), 0x40);
}
