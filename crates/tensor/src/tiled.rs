//! Feature maps re-laid-out as row-major 4x4 tiles (paper Fig. 2).

use crate::{Shape, Tensor, Tile, TILE_DIM};

/// A CHW feature-map volume stored as row-major tiles per channel.
///
/// Spatial dimensions are rounded up to a multiple of [`TILE_DIM`]; the
/// round-up region is filled with the element default (zero). Tiles within a
/// channel are stored row-major (the coloured layout on the right of paper
/// Fig. 2), and channels are stored consecutively.
///
/// # Example
/// ```
/// use zskip_tensor::{Tensor, TiledFeatureMap};
/// let t = Tensor::from_fn(2, 6, 6, |c, y, x| (c * 36 + y * 6 + x) as i32);
/// let tiled = TiledFeatureMap::from_tensor(&t);
/// assert_eq!(tiled.tiles_y(), 2);
/// assert_eq!(tiled.tiles_x(), 2);
/// // Element (0, 5, 5) lives in tile (1, 1) at intra-tile (1, 1).
/// assert_eq!(tiled.tile(0, 1, 1)[(1, 1)], 35);
/// assert_eq!(tiled.to_tensor().cropped(6, 6), t);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TiledFeatureMap<T> {
    /// Original (un-rounded) shape, kept so `to_tensor` consumers can crop.
    logical: Shape,
    tiles_y: usize,
    tiles_x: usize,
    channels: usize,
    tiles: Vec<Tile<T>>,
}

impl<T: Copy + Default> TiledFeatureMap<T> {
    /// Creates an all-zero tiled volume for a logical shape.
    pub fn zeros(shape: Shape) -> Self {
        let tiles_y = shape.h.div_ceil(TILE_DIM);
        let tiles_x = shape.w.div_ceil(TILE_DIM);
        TiledFeatureMap {
            logical: shape,
            tiles_y,
            tiles_x,
            channels: shape.c,
            tiles: vec![Tile::zero(); shape.c * tiles_y * tiles_x],
        }
    }

    /// Re-lays-out a dense tensor into tiles (the host pre-processing step
    /// the paper runs on the ARM: "reordering of data into tiled format").
    pub fn from_tensor(t: &Tensor<T>) -> Self {
        let mut out = Self::zeros(t.shape());
        for c in 0..out.channels {
            for ty in 0..out.tiles_y {
                for tx in 0..out.tiles_x {
                    let tile = Tile::from_fn(|y, x| {
                        t.get_or(c, (ty * TILE_DIM + y) as isize, (tx * TILE_DIM + x) as isize, T::default())
                    });
                    *out.tile_mut(c, ty, tx) = tile;
                }
            }
        }
        out
    }

    /// Converts back to a dense tensor of the *rounded-up* shape.
    ///
    /// Crop with [`Tensor::cropped`] to recover the logical extent.
    pub fn to_tensor(&self) -> Tensor<T> {
        let h = self.tiles_y * TILE_DIM;
        let w = self.tiles_x * TILE_DIM;
        Tensor::from_fn(self.channels, h, w, |c, y, x| {
            self.tile(c, y / TILE_DIM, x / TILE_DIM)[(y % TILE_DIM, x % TILE_DIM)]
        })
    }

    /// Logical (pre-round-up) shape.
    pub fn logical_shape(&self) -> Shape {
        self.logical
    }

    /// Number of tile rows per channel.
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Number of tile columns per channel.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total number of tiles across all channels.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Linear tile index of tile `(c, ty, tx)` — the SRAM word address
    /// offset used by the bank layout.
    #[inline]
    pub fn tile_index(&self, c: usize, ty: usize, tx: usize) -> usize {
        debug_assert!(c < self.channels && ty < self.tiles_y && tx < self.tiles_x);
        (c * self.tiles_y + ty) * self.tiles_x + tx
    }

    /// Borrow tile `(c, ty, tx)`.
    #[inline]
    pub fn tile(&self, c: usize, ty: usize, tx: usize) -> &Tile<T> {
        &self.tiles[self.tile_index(c, ty, tx)]
    }

    /// Mutably borrow tile `(c, ty, tx)`.
    #[inline]
    pub fn tile_mut(&mut self, c: usize, ty: usize, tx: usize) -> &mut Tile<T> {
        let i = self.tile_index(c, ty, tx);
        &mut self.tiles[i]
    }

    /// Tile at `(c, ty, tx)`, or an all-zero tile when the coordinates fall
    /// outside the map. Models fetching beyond the feature-map boundary,
    /// which the hardware satisfies with zero data.
    pub fn tile_or_zero(&self, c: usize, ty: isize, tx: isize) -> Tile<T> {
        if ty < 0 || tx < 0 || ty as usize >= self.tiles_y || tx as usize >= self.tiles_x {
            Tile::zero()
        } else {
            *self.tile(c, ty as usize, tx as usize)
        }
    }

    /// Fetches the 2x2 block of tiles anchored at tile `(ty, tx)` as an 8x8
    /// row-major region. This is exactly the four contiguous IFM tiles the
    /// convolution unit holds while applying one weight tile (paper Fig. 4a:
    /// tiles A, B, C, D).
    pub fn quad_region(&self, c: usize, ty: usize, tx: usize) -> [T; 8 * 8] {
        let mut out = [T::default(); 64];
        for (oy, ox) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let tile = self.tile_or_zero(c, (ty + oy) as isize, (tx + ox) as isize);
            for y in 0..TILE_DIM {
                for x in 0..TILE_DIM {
                    out[(oy * TILE_DIM + y) * 8 + ox * TILE_DIM + x] = tile[(y, x)];
                }
            }
        }
        out
    }

    /// Zeroes every cell beyond the logical extent (the round-up region).
    ///
    /// Tile-aligned producers (convolution, pooling) compute whole tiles,
    /// so the cells past the logical height/width of an output feature map
    /// hold don't-care values; consumers that window across the boundary
    /// (padding, overlapping pooling) require them to read as zero. The
    /// host driver applies this mask after every accelerator pass.
    pub fn zero_round_up_region(&mut self) {
        let Shape { c: _, h, w } = self.logical;
        for c in 0..self.channels {
            for ty in 0..self.tiles_y {
                for tx in 0..self.tiles_x {
                    let (y0, x0) = (ty * TILE_DIM, tx * TILE_DIM);
                    if y0 + TILE_DIM <= h && x0 + TILE_DIM <= w {
                        continue; // fully interior tile
                    }
                    let idx = self.tile_index(c, ty, tx);
                    let tile = &mut self.tiles[idx];
                    for y in 0..TILE_DIM {
                        for x in 0..TILE_DIM {
                            if y0 + y >= h || x0 + x >= w {
                                tile[(y, x)] = T::default();
                            }
                        }
                    }
                }
            }
        }
    }

    /// All tiles in row-major `(c, ty, tx)` order — the bank memory image.
    pub fn as_tiles(&self) -> &[Tile<T>] {
        &self.tiles
    }

    /// Mutable view of all tiles.
    pub fn as_tiles_mut(&mut self) -> &mut [Tile<T>] {
        &mut self.tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_multiple() {
        let t = Tensor::from_fn(3, 8, 8, |c, y, x| (c * 64 + y * 8 + x) as i32);
        let tiled = TiledFeatureMap::from_tensor(&t);
        assert_eq!(tiled.to_tensor(), t);
    }

    #[test]
    fn round_trip_with_round_up() {
        let t = Tensor::from_fn(2, 7, 5, |c, y, x| (c * 100 + y * 10 + x) as i32 + 1);
        let tiled = TiledFeatureMap::from_tensor(&t);
        assert_eq!(tiled.tiles_y(), 2);
        assert_eq!(tiled.tiles_x(), 2);
        let dense = tiled.to_tensor();
        assert_eq!(dense.shape(), Shape::new(2, 8, 8));
        assert_eq!(dense.cropped(7, 5), t);
        // Round-up region is zero.
        assert_eq!(dense[(0, 7, 7)], 0);
    }

    #[test]
    fn quad_region_assembles_2x2_block() {
        // 8x8 single channel: tiles (0,0),(0,1),(1,0),(1,1).
        let t = Tensor::from_fn(1, 8, 8, |_, y, x| (y * 8 + x) as i32);
        let tiled = TiledFeatureMap::from_tensor(&t);
        let region = tiled.quad_region(0, 0, 0);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(region[y * 8 + x], (y * 8 + x) as i32);
            }
        }
    }

    #[test]
    fn quad_region_zero_fills_beyond_edge() {
        let t = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as i32 + 1);
        let tiled = TiledFeatureMap::from_tensor(&t);
        let region = tiled.quad_region(0, 0, 0);
        // Top-left 4x4 is data; rest is zero-filled.
        assert_eq!(region[0], 1);
        assert_eq!(region[3 * 8 + 3], 16);
        assert_eq!(region[4 * 8], 0);
        assert_eq!(region[7 * 8 + 7], 0);
    }

    #[test]
    fn tile_index_is_dense_and_unique() {
        let tiled = TiledFeatureMap::<i32>::zeros(Shape::new(3, 9, 13));
        let mut seen = std::collections::HashSet::new();
        for c in 0..3 {
            for ty in 0..tiled.tiles_y() {
                for tx in 0..tiled.tiles_x() {
                    assert!(seen.insert(tiled.tile_index(c, ty, tx)));
                }
            }
        }
        assert_eq!(seen.len(), tiled.tile_count());
    }
}

#[cfg(test)]
mod round_up_tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn zero_round_up_region_clears_only_outside() {
        let t = Tensor::from_fn(2, 6, 7, |c, y, x| (c * 100 + y * 10 + x) as i32 + 1);
        let mut tiled = TiledFeatureMap::from_tensor(&t);
        // Scribble junk into the round-up cells.
        for c in 0..2 {
            tiled.tile_mut(c, 1, 1)[(3, 3)] = -99; // (7,7): outside 6x7
            tiled.tile_mut(c, 0, 1)[(0, 3)] = -77; // (0,7): outside width
        }
        tiled.zero_round_up_region();
        assert_eq!(tiled.to_tensor().cropped(6, 7), t, "logical region untouched");
        assert_eq!(tiled.tile(0, 1, 1)[(3, 3)], 0);
        assert_eq!(tiled.tile(1, 0, 1)[(0, 3)], 0);
    }

    #[test]
    fn zero_round_up_region_is_noop_on_aligned_maps() {
        let t = Tensor::from_fn(1, 8, 8, |_, y, x| (y * 8 + x) as i32);
        let mut tiled = TiledFeatureMap::from_tensor(&t);
        let before = tiled.clone();
        tiled.zero_round_up_region();
        assert_eq!(tiled, before);
    }
}
