//! Feature-map shapes and geometry helpers.

use std::fmt;

/// Shape of a CHW feature-map volume (channels, height, width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Shape {
    /// Number of channels (feature maps).
    pub c: usize,
    /// Height in elements.
    pub h: usize,
    /// Width in elements.
    pub w: usize,
}

impl Shape {
    /// Creates a new shape.
    ///
    /// # Example
    /// ```
    /// let s = zskip_tensor::Shape::new(64, 224, 224);
    /// assert_eq!(s.len(), 64 * 224 * 224);
    /// ```
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Shape { c, h, w }
    }

    /// Total number of elements in the volume.
    pub const fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether the volume is empty (any dimension zero).
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements in one channel plane.
    pub const fn plane(&self) -> usize {
        self.h * self.w
    }

    /// Linear CHW index of element `(c, y, x)`.
    ///
    /// # Panics
    /// Panics in debug builds if the coordinates are out of range.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w, "({c},{y},{x}) out of {self}");
        (c * self.h + y) * self.w + x
    }

    /// Shape after zero-padding the perimeter by `pad` elements on each side.
    pub const fn padded(&self, pad: usize) -> Shape {
        Shape::new(self.c, self.h + 2 * pad, self.w + 2 * pad)
    }

    /// Shape rounded up so height and width are multiples of `m`.
    pub const fn round_up_to(&self, m: usize) -> Shape {
        Shape::new(self.c, self.h.div_ceil(m) * m, self.w.div_ceil(m) * m)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Output spatial size of a convolution/pool window sweep.
///
/// `out = (in + 2*pad - k) / stride + 1`, the standard formula. Returns
/// `None` when the window does not fit even once.
pub fn conv_out_dim(input: usize, k: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = input + 2 * pad;
    if padded < k || stride == 0 {
        return None;
    }
    Some((padded - k) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_chw_row_major() {
        let s = Shape::new(2, 3, 4);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.index(1, 2, 3), 23);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn padded_grows_spatial_dims_only() {
        let s = Shape::new(3, 10, 12).padded(1);
        assert_eq!(s, Shape::new(3, 12, 14));
    }

    #[test]
    fn round_up_is_idempotent() {
        let s = Shape::new(3, 10, 12).round_up_to(4);
        assert_eq!(s, Shape::new(3, 12, 12));
        assert_eq!(s.round_up_to(4), s);
    }

    #[test]
    fn conv_out_dim_matches_vgg_layers() {
        // VGG-16: 3x3 conv stride 1 pad 1 preserves dims.
        assert_eq!(conv_out_dim(224, 3, 1, 1), Some(224));
        // 2x2 max-pool stride 2 halves dims.
        assert_eq!(conv_out_dim(224, 2, 2, 0), Some(112));
        assert_eq!(conv_out_dim(14, 2, 2, 0), Some(7));
    }

    #[test]
    fn conv_out_dim_rejects_too_small_input() {
        assert_eq!(conv_out_dim(2, 3, 1, 0), None);
        assert_eq!(conv_out_dim(2, 3, 0, 1), None);
    }
}
