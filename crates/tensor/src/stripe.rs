//! Stripe geometry: subdividing large layers to fit on-chip SRAM.
//!
//! A **stripe** is a region of tile rows spanning the entire width of a
//! feature map (paper Fig. 2). Large convolutional layers are subdivided
//! into stripes small enough for the on-FPGA SRAM banks; computing an output
//! stripe of a 3x3 convolution additionally requires one halo tile row of
//! input above and below, which is re-fetched and re-processed — the source
//! of the paper's "~15% but varies by layer" striping overhead.

use crate::TILE_DIM;

/// Geometry of one stripe of a feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeGeometry {
    /// First output tile row covered by this stripe.
    pub tile_row_start: usize,
    /// Number of output tile rows in this stripe.
    pub tile_rows: usize,
    /// Halo tile rows of *input* required above the stripe.
    pub halo_above: usize,
    /// Halo tile rows of *input* required below the stripe.
    pub halo_below: usize,
}

impl StripeGeometry {
    /// Total input tile rows that must be resident to compute this stripe.
    pub fn input_tile_rows(&self) -> usize {
        self.tile_rows + self.halo_above + self.halo_below
    }
}

/// A plan dividing a layer's tile rows into stripes under a capacity bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripePlan {
    stripes: Vec<StripeGeometry>,
    total_tile_rows: usize,
}

impl StripePlan {
    /// Plans stripes for a feature map of `total_tile_rows` tile rows where
    /// at most `max_resident_tile_rows` input tile rows fit on chip, and the
    /// operation needs `halo` extra tile rows on each interior boundary
    /// (1 for a 3x3 convolution over 4x4 tiles, 0 for pooling/padding).
    ///
    /// # Errors
    /// Returns `Err` if the capacity cannot hold even a single-tile-row
    /// stripe plus its halos.
    pub fn plan(
        total_tile_rows: usize,
        max_resident_tile_rows: usize,
        halo: usize,
    ) -> Result<StripePlan, StripePlanError> {
        if total_tile_rows == 0 {
            return Ok(StripePlan { stripes: Vec::new(), total_tile_rows });
        }
        if max_resident_tile_rows < 1 + 2 * halo {
            return Err(StripePlanError {
                needed: 1 + 2 * halo,
                available: max_resident_tile_rows,
            });
        }
        let body = max_resident_tile_rows - 2 * halo;
        let mut stripes = Vec::new();
        let mut row = 0;
        while row < total_tile_rows {
            let rows = body.min(total_tile_rows - row);
            let halo_above = if row > 0 { halo } else { 0 };
            let halo_below = if row + rows < total_tile_rows { halo } else { 0 };
            stripes.push(StripeGeometry { tile_row_start: row, tile_rows: rows, halo_above, halo_below });
            row += rows;
        }
        Ok(StripePlan { stripes, total_tile_rows })
    }

    /// The stripes, in top-to-bottom order.
    pub fn stripes(&self) -> &[StripeGeometry] {
        &self.stripes
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether the plan is empty (zero-height feature map).
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Total input tile rows fetched across all stripes, including re-fetched
    /// halo rows.
    pub fn fetched_tile_rows(&self) -> usize {
        self.stripes.iter().map(StripeGeometry::input_tile_rows).sum()
    }

    /// The striping overhead factor: fetched rows / ideal rows (>= 1.0).
    ///
    /// This is the per-layer multiplier the paper folds into its *ideal*
    /// throughput ("We add an overhead (~15% but varies by layer) for the
    /// increased number of MAC operations ... due to striping").
    pub fn overhead_factor(&self) -> f64 {
        if self.total_tile_rows == 0 {
            return 1.0;
        }
        self.fetched_tile_rows() as f64 / self.total_tile_rows as f64
    }
}

/// Error: the SRAM capacity cannot hold a minimal stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePlanError {
    /// Tile rows needed for the minimal stripe.
    pub needed: usize,
    /// Tile rows available.
    pub available: usize,
}

impl std::fmt::Display for StripePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stripe capacity too small: need {} resident tile rows, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for StripePlanError {}

/// Convenience: tile rows for a feature map of `h` element rows.
pub fn tile_rows_for_height(h: usize) -> usize {
    h.div_ceil(TILE_DIM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stripe_when_it_fits() {
        let p = StripePlan::plan(10, 32, 1).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.overhead_factor(), 1.0);
        let s = p.stripes()[0];
        assert_eq!(s.tile_rows, 10);
        assert_eq!(s.halo_above + s.halo_below, 0);
    }

    #[test]
    fn stripes_cover_all_rows_exactly_once() {
        let p = StripePlan::plan(56, 10, 1).unwrap();
        let mut covered = 0;
        for s in p.stripes() {
            assert_eq!(s.tile_row_start, covered);
            covered += s.tile_rows;
        }
        assert_eq!(covered, 56);
    }

    #[test]
    fn interior_stripes_have_both_halos() {
        let p = StripePlan::plan(24, 10, 1).unwrap();
        assert_eq!(p.len(), 3);
        let s = p.stripes();
        assert_eq!((s[0].halo_above, s[0].halo_below), (0, 1));
        assert_eq!((s[1].halo_above, s[1].halo_below), (1, 1));
        assert_eq!((s[2].halo_above, s[2].halo_below), (1, 0));
    }

    #[test]
    fn overhead_grows_as_capacity_shrinks() {
        let loose = StripePlan::plan(56, 30, 1).unwrap().overhead_factor();
        let tight = StripePlan::plan(56, 6, 1).unwrap().overhead_factor();
        assert!(tight > loose);
        assert!(loose >= 1.0);
        // A 4-row body with 2 halo rows per interior stripe: overhead ~50%.
        assert!(tight > 1.3, "tight overhead {tight}");
    }

    #[test]
    fn zero_halo_has_no_overhead() {
        let p = StripePlan::plan(56, 8, 0).unwrap();
        assert_eq!(p.overhead_factor(), 1.0);
    }

    #[test]
    fn rejects_impossible_capacity() {
        let err = StripePlan::plan(10, 2, 1).unwrap_err();
        assert_eq!(err.needed, 3);
        assert_eq!(err.available, 2);
        assert!(err.to_string().contains("stripe capacity"));
    }

    #[test]
    fn empty_map_plans_empty() {
        let p = StripePlan::plan(0, 8, 1).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.overhead_factor(), 1.0);
    }

    #[test]
    fn tile_rows_for_height_rounds_up() {
        assert_eq!(tile_rows_for_height(224), 56);
        assert_eq!(tile_rows_for_height(7), 2);
        assert_eq!(tile_rows_for_height(1), 1);
    }
}
