//! Tensor containers and the tiled data layout of the SOCC'17 accelerator.
//!
//! The accelerator described in the paper organizes feature maps into 4x4
//! **tiles** stored in row-major tile order, and groups rows of tiles into
//! **stripes** that fit the on-FPGA SRAM banks (paper Fig. 2). This crate
//! provides:
//!
//! * [`Tensor`]: a dense CHW tensor over any element type,
//! * [`Tile`]: one 4x4 tile (16 values, one SRAM word),
//! * [`TiledFeatureMap`]: a feature map re-laid-out as row-major tiles,
//! * [`stripe`]: stripe geometry and halo computation used by the striping
//!   planner in `zskip-core`.
//!
//! # Example
//!
//! ```
//! use zskip_tensor::{Tensor, TiledFeatureMap};
//!
//! let t = Tensor::from_fn(3, 8, 8, |c, y, x| (c * 100 + y * 8 + x) as i32);
//! let tiled = TiledFeatureMap::from_tensor(&t);
//! let back = tiled.to_tensor();
//! assert_eq!(t, back);
//! ```

pub mod shape;
pub mod stripe;
pub mod tensor;
pub mod tile;
pub mod tiled;

pub use shape::Shape;
pub use stripe::{StripeGeometry, StripePlan};
pub use tensor::Tensor;
pub use tile::{dydx_to_offset, offset_to_dydx, Tile, TILE_DIM, TILE_ELEMS};
pub use tiled::TiledFeatureMap;
