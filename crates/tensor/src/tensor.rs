//! Dense CHW tensor container.

use crate::Shape;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense tensor in CHW (channel, row, column) order.
///
/// This is the reference-side container used by the software model
/// (`zskip-nn`) and by the host driver before data is re-laid-out into the
/// accelerator's tiled format.
///
/// # Example
/// ```
/// use zskip_tensor::Tensor;
/// let mut t = Tensor::<f32>::zeros(1, 2, 2);
/// t[(0, 1, 1)] = 3.5;
/// assert_eq!(t[(0, 1, 1)], 3.5);
/// assert_eq!(t.shape().len(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({} ", self.shape)?;
        if self.data.len() <= 32 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{} elements])", self.data.len())
        }
    }
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()` (zero for numeric types).
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        let shape = Shape::new(c, h, w);
        Tensor { shape, data: vec![T::default(); shape.len()] }
    }

    /// Creates a tensor from a generator function over `(c, y, x)`.
    pub fn from_fn(c: usize, h: usize, w: usize, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let shape = Shape::new(c, h, w);
        let mut data = Vec::with_capacity(shape.len());
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    data.push(f(ci, y, x));
                }
            }
        }
        Tensor { shape, data }
    }

    /// Creates a tensor from existing CHW-ordered data.
    ///
    /// # Panics
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<T>) -> Self {
        let shape = Shape::new(c, h, w);
        assert_eq!(data.len(), shape.len(), "data length does not match shape {shape}");
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Borrow the underlying CHW-ordered data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying CHW-ordered data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reshapes in place to `c x h x w`, filling every element with
    /// `T::default()`. The backing allocation is reused (and never shrunk),
    /// so repeated resets across layers of differing shapes stop allocating
    /// once the buffer has grown to the largest shape — the contract the
    /// scratch-arena inference path (`zskip-nn`) relies on.
    pub fn reset(&mut self, c: usize, h: usize, w: usize) {
        let shape = Shape::new(c, h, w);
        self.shape = shape;
        self.data.clear();
        self.data.resize(shape.len(), T::default());
    }

    /// Capacity of the backing allocation in elements (>= `shape().len()`).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Applies `f` elementwise into an existing tensor, reshaping it to
    /// match `self` and reusing its allocation — the zero-allocation
    /// counterpart of [`Tensor::map`].
    pub fn map_into<U: Copy + Default>(&self, out: &mut Tensor<U>, mut f: impl FnMut(T) -> U) {
        out.shape = self.shape;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&v| f(v)));
    }

    /// Element accessor returning `default` outside the bounds.
    ///
    /// This models reading from a zero-padded halo without materializing
    /// the padding. Coordinates are signed so callers can probe `y-1` etc.
    #[inline]
    pub fn get_or(&self, c: usize, y: isize, x: isize, default: T) -> T {
        if y < 0 || x < 0 || y as usize >= self.shape.h || x as usize >= self.shape.w {
            default
        } else {
            self.data[self.shape.index(c, y as usize, x as usize)]
        }
    }

    /// One channel plane as a slice.
    pub fn channel(&self, c: usize) -> &[T] {
        let p = self.shape.plane();
        &self.data[c * p..(c + 1) * p]
    }

    /// Returns a new tensor zero-padded (`T::default()`) by `pad` on each
    /// spatial side. This is the software-reference analogue of the
    /// accelerator's pad instruction.
    pub fn padded(&self, pad: usize) -> Tensor<T> {
        let s = self.shape;
        Tensor::from_fn(s.c, s.h + 2 * pad, s.w + 2 * pad, |c, y, x| {
            self.get_or(c, y as isize - pad as isize, x as isize - pad as isize, T::default())
        })
    }

    /// Returns a copy cropped to `h x w` starting at the spatial origin.
    ///
    /// Used to strip the round-up-to-tile padding after fetching results
    /// back from the accelerator.
    ///
    /// # Panics
    /// Panics if the crop region exceeds the tensor bounds.
    pub fn cropped(&self, h: usize, w: usize) -> Tensor<T> {
        assert!(h <= self.shape.h && w <= self.shape.w, "crop larger than tensor");
        Tensor::from_fn(self.shape.c, h, w, |c, y, x| self[(c, y, x)])
    }

    /// Applies a function to every element, producing a new tensor.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterator over `(c, y, x, value)` in CHW order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, T)> + '_ {
        let s = self.shape;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let x = i % s.w;
            let y = (i / s.w) % s.h;
            let c = i / (s.w * s.h);
            (c, y, x, v)
        })
    }
}

impl<T: Copy + Default> Index<(usize, usize, usize)> for Tensor<T> {
    type Output = T;
    #[inline]
    fn index(&self, (c, y, x): (usize, usize, usize)) -> &T {
        &self.data[self.shape.index(c, y, x)]
    }
}

impl<T: Copy + Default> IndexMut<(usize, usize, usize)> for Tensor<T> {
    #[inline]
    fn index_mut(&mut self, (c, y, x): (usize, usize, usize)) -> &mut T {
        &mut self.data[self.shape.index(c, y, x)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index_agree() {
        let t = Tensor::from_fn(2, 3, 4, |c, y, x| (c * 12 + y * 4 + x) as i32);
        for (c, y, x, v) in t.iter_indexed() {
            assert_eq!(v, (c * 12 + y * 4 + x) as i32);
            assert_eq!(t[(c, y, x)], v);
        }
    }

    #[test]
    fn get_or_returns_default_outside() {
        let t = Tensor::from_fn(1, 2, 2, |_, y, x| (y * 2 + x) as i32 + 1);
        assert_eq!(t.get_or(0, -1, 0, 0), 0);
        assert_eq!(t.get_or(0, 0, 2, 0), 0);
        assert_eq!(t.get_or(0, 1, 1, 0), 4);
    }

    #[test]
    fn padded_places_original_at_offset() {
        let t = Tensor::from_fn(1, 2, 2, |_, y, x| (y * 2 + x) as i32 + 1);
        let p = t.padded(1);
        assert_eq!(p.shape(), Shape::new(1, 4, 4));
        assert_eq!(p[(0, 0, 0)], 0);
        assert_eq!(p[(0, 1, 1)], 1);
        assert_eq!(p[(0, 2, 2)], 4);
        assert_eq!(p[(0, 3, 3)], 0);
    }

    #[test]
    fn cropped_inverts_round_up_padding() {
        let t = Tensor::from_fn(2, 5, 6, |c, y, x| (c + y * 10 + x) as i32);
        let grown = Tensor::from_fn(2, 8, 8, |c, y, x| t.get_or(c, y as isize, x as isize, 0));
        assert_eq!(grown.cropped(5, 6), t);
    }

    #[test]
    fn channel_slices_are_disjoint_planes() {
        let t = Tensor::from_fn(3, 2, 2, |c, _, _| c as i32);
        assert!(t.channel(0).iter().all(|&v| v == 0));
        assert!(t.channel(2).iter().all(|&v| v == 2));
    }

    #[test]
    fn map_preserves_shape() {
        let t = Tensor::from_fn(1, 2, 2, |_, y, x| (y + x) as i32);
        let m = t.map(|v| v as f32 * 0.5);
        assert_eq!(m.shape(), t.shape());
        assert_eq!(m[(0, 1, 1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(1, 2, 2, vec![0i32; 5]);
    }

    #[test]
    fn reset_reuses_capacity_and_zeroes() {
        let mut t = Tensor::from_fn(2, 4, 4, |_, _, _| 7i32);
        let cap = t.capacity();
        t.reset(1, 2, 2);
        assert_eq!(t.shape(), Shape::new(1, 2, 2));
        assert!(t.as_slice().iter().all(|&v| v == 0));
        assert_eq!(t.capacity(), cap, "shrinking reset must keep the allocation");
        // Growing past capacity is allowed (and grows capacity).
        t.reset(4, 4, 4);
        assert_eq!(t.shape().len(), 64);
        assert!(t.capacity() >= 64);
    }

    #[test]
    fn map_into_matches_map_and_reuses_buffer() {
        let t = Tensor::from_fn(2, 3, 3, |c, y, x| (c * 9 + y * 3 + x) as i32);
        let mut out = Tensor::<f32>::zeros(5, 5, 5); // wrong shape, gets reshaped
        let cap = out.capacity();
        t.map_into(&mut out, |v| v as f32 * 0.5);
        assert_eq!(out, t.map(|v| v as f32 * 0.5));
        assert_eq!(out.capacity(), cap, "smaller map_into must not reallocate");
    }
}
