//! The 4x4 tile: the accelerator's unit of storage and transfer.
//!
//! One tile (16 values) is one SRAM word — an entire tile can be read from a
//! bank in a single cycle (paper §III-A).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Tile edge length in elements.
pub const TILE_DIM: usize = 4;
/// Number of elements in a tile (one SRAM word).
pub const TILE_ELEMS: usize = TILE_DIM * TILE_DIM;

/// One 4x4 tile of feature-map or weight data.
///
/// Values are stored row-major: index `i` holds the element at
/// `(y, x) = (i / 4, i % 4)`, matching the `X0..XF` labelling of paper
/// Fig. 2.
///
/// # Example
/// ```
/// use zskip_tensor::Tile;
/// let t = Tile::from_fn(|y, x| (y * 4 + x) as i32);
/// assert_eq!(t[(2, 3)], 11);
/// assert_eq!(t.as_array()[11], 11);
/// ```
/// 16-byte alignment: an `Sm8` tile then occupies exactly one aligned
/// 16-byte line, so SIMD kernels can treat a tile row (or a whole byte
/// tile) as one aligned vector load — the software mirror of the paper's
/// one-SRAM-word-per-cycle tile read.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(16))]
pub struct Tile<T>([T; TILE_ELEMS]);

impl<T: fmt::Debug> fmt::Debug for Tile<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tile[")?;
        for y in 0..TILE_DIM {
            writeln!(f, "  {:?}", &self.0[y * TILE_DIM..(y + 1) * TILE_DIM])?;
        }
        write!(f, "]")
    }
}

impl<T: Copy + Default> Default for Tile<T> {
    fn default() -> Self {
        Tile([T::default(); TILE_ELEMS])
    }
}

impl<T: Copy + Default> Tile<T> {
    /// A tile of all-default (zero) values.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a tile from a generator over intra-tile `(y, x)`.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut vals = [T::default(); TILE_ELEMS];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = f(i / TILE_DIM, i % TILE_DIM);
        }
        Tile(vals)
    }

    /// Builds a tile from a row-major array of 16 values.
    pub fn from_array(vals: [T; TILE_ELEMS]) -> Self {
        Tile(vals)
    }

    /// The tile contents as a row-major array reference.
    pub fn as_array(&self) -> &[T; TILE_ELEMS] {
        &self.0
    }

    /// Mutable access to the row-major contents.
    pub fn as_mut_array(&mut self) -> &mut [T; TILE_ELEMS] {
        &mut self.0
    }

    /// Iterates `(intra-tile offset, value)` pairs in row-major order.
    ///
    /// The offset is the 0..16 index used by the packed-weight format
    /// (`zskip-quant::pack`).
    pub fn iter_offsets(&self) -> impl Iterator<Item = (u8, T)> + '_ {
        self.0.iter().enumerate().map(|(i, &v)| (i as u8, v))
    }

    /// Applies a function element-wise.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Tile<U> {
        let mut out = Tile::default();
        for i in 0..TILE_ELEMS {
            out.0[i] = f(self.0[i]);
        }
        out
    }
}

impl<T: Copy + Default + PartialEq> Tile<T> {
    /// Number of values equal to `zero` — used by the zero-weight packer.
    pub fn count_eq(&self, zero: T) -> usize {
        self.0.iter().filter(|&&v| v == zero).count()
    }
}

impl<T> Index<(usize, usize)> for Tile<T> {
    type Output = T;
    #[inline]
    fn index(&self, (y, x): (usize, usize)) -> &T {
        debug_assert!(y < TILE_DIM && x < TILE_DIM);
        &self.0[y * TILE_DIM + x]
    }
}

impl<T> IndexMut<(usize, usize)> for Tile<T> {
    #[inline]
    fn index_mut(&mut self, (y, x): (usize, usize)) -> &mut T {
        debug_assert!(y < TILE_DIM && x < TILE_DIM);
        &mut self.0[y * TILE_DIM + x]
    }
}

/// Decomposes an intra-tile offset (0..16) into `(dy, dx)`.
///
/// This is the decoding the convolution unit's steering muxes perform on the
/// packed weight offset (paper Fig. 4b).
#[inline]
pub const fn offset_to_dydx(offset: u8) -> (usize, usize) {
    ((offset as usize) / TILE_DIM, (offset as usize) % TILE_DIM)
}

/// Composes `(dy, dx)` into an intra-tile offset.
#[inline]
pub const fn dydx_to_offset(dy: usize, dx: usize) -> u8 {
    (dy * TILE_DIM + dx) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout_matches_paper_figure() {
        // Fig. 2 labels the tile X0..XF row-major.
        let t = Tile::from_fn(|y, x| y * 4 + x);
        for off in 0..16u8 {
            let (dy, dx) = offset_to_dydx(off);
            assert_eq!(t[(dy, dx)], off as usize);
            assert_eq!(dydx_to_offset(dy, dx), off);
        }
    }

    #[test]
    fn count_eq_counts_zeros() {
        let t = Tile::from_fn(|y, x| if (y + x) % 2 == 0 { 0i32 } else { 7 });
        assert_eq!(t.count_eq(0), 8);
        assert_eq!(Tile::<i32>::zero().count_eq(0), 16);
    }

    #[test]
    fn iter_offsets_is_row_major() {
        let t = Tile::from_fn(|y, x| (y * 4 + x) as i32);
        let collected: Vec<_> = t.iter_offsets().collect();
        assert_eq!(collected[5], (5, 5));
        assert_eq!(collected.len(), 16);
    }

    #[test]
    fn map_is_elementwise() {
        let t = Tile::from_fn(|y, x| (y + x) as i32);
        let doubled = t.map(|v| v * 2);
        assert_eq!(doubled[(3, 3)], 12);
    }
}
