//! Regenerates paper Fig. 7: efficiency of each accelerator variant for
//! VGG-16 inference — best / worst / mean conv layer, pruned ("-pr") and
//! unpruned, against the ideal (dotted line at 1.0).

use zskip_bench::{bar, build_vgg16, run_sweep_point, write_artifacts, ModelKind};
use zskip_hls::Variant;

fn main() {
    let mut points = Vec::new();
    for kind in [ModelKind::ReducedPrecision, ModelKind::Pruned] {
        let qnet = build_vgg16(kind);
        for variant in Variant::all() {
            points.push(run_sweep_point(variant, kind, &qnet));
        }
    }

    let mut text = String::new();
    text.push_str("Fig. 7 — Efficiency of each accelerator variant for VGG-16 inference\n");
    text.push_str("(observed/ideal throughput; ideal = dense computations x striping overhead at peak MACs/cycle)\n\n");
    let max = points.iter().map(|p| p.best_efficiency()).fold(1.0, f64::max);
    for p in &points {
        text.push_str(&format!("{:<12}\n", format!("{}{}", p.variant, p.model)));
        for (label, v) in [
            ("best", p.best_efficiency()),
            ("mean", p.mean_efficiency()),
            ("worst", p.worst_efficiency()),
        ] {
            text.push_str(&format!("  {:<6} {:>5.2} |{}\n", label, v, bar(v, max, 48)));
        }
    }
    let ideal_pos = bar(1.0, max, 48).len();
    text.push_str(&format!("\nIdeal = 1.00 {}^\n", " ".repeat(ideal_pos + 1)));
    text.push_str("\nExpected shape (paper): unpruned within ~10% of ideal for most layers,\n");
    text.push_str("worst on deep layers (weight-unpack + tile-rounding overhead); pruned\n");
    text.push_str("exceeds 100% because zero-skipping avoids counted multiply-accumulates.\n");
    print!("{text}");
    write_artifacts("fig7_efficiency", &text, &points);
}
