//! Regenerates paper Fig. 8: absolute effective GOPS across accelerator
//! variants for VGG-16 — average and peak, pruned ("-pr") and unpruned.
//!
//! Paper headline (512-opt): 39.5 average / 61 peak GOPS unpruned;
//! 53.3 average / 138 peak effective GOPS pruned (~1.3x average and
//! ~2.2x peak gain from zero-skipping a pruned model).

use zskip_bench::{bar, build_vgg16, run_sweep_point, write_artifacts, ModelKind};
use zskip_hls::Variant;

fn main() {
    let mut points = Vec::new();
    for kind in [ModelKind::ReducedPrecision, ModelKind::Pruned] {
        let qnet = build_vgg16(kind);
        for variant in Variant::all() {
            points.push(run_sweep_point(variant, kind, &qnet));
        }
    }

    let mut text = String::new();
    text.push_str("Fig. 8 — Absolute effective GOPS across accelerator variants (VGG-16)\n\n");
    let max = points.iter().map(|p| p.peak_gops()).fold(0.0, f64::max);
    for p in &points {
        text.push_str(&format!(
            "{:<13} avg {:>6.1} |{}\n{:<13} peak {:>5.1} |{}\n",
            format!("{}{}", p.variant, p.model),
            p.mean_gops(),
            bar(p.mean_gops(), max, 48),
            "",
            p.peak_gops(),
            bar(p.peak_gops(), max, 48),
        ));
    }

    // Pruning gains (the paper's ~1.3x average / ~2.2x peak).
    text.push('\n');
    for variant in Variant::all() {
        let un = points.iter().find(|p| p.variant == variant.label() && p.model.is_empty());
        let pr = points.iter().find(|p| p.variant == variant.label() && p.model == "-pr");
        if let (Some(u), Some(p)) = (un, pr) {
            text.push_str(&format!(
                "{:<10} pruning gain: {:.2}x average, {:.2}x peak\n",
                variant.label(),
                p.mean_gops() / u.mean_gops(),
                p.peak_gops() / u.peak_gops()
            ));
        }
    }
    text.push_str("\npaper reference (512-opt): 39.5/61 GOPS unpruned, 53.3/138 GOPS pruned;\n");
    text.push_str("gains ~1.3x average / ~2.2x peak. Absolute values differ (simulated\n");
    text.push_str("substrate); ordering and gain ratios are the reproduced shape.\n");
    print!("{text}");
    write_artifacts("fig8_gops", &text, &points);
}
