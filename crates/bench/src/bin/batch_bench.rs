//! Batch + serve + sharding + kernel benchmark — emits `BENCH_batch.json`.
//!
//! Four measurements, all on VGG-16-shaped workloads:
//!
//! 1. **Batch engine**: a batch of scaled VGG-16 inferences through the
//!    parallel work-stealing pool vs. the same inputs run sequentially —
//!    images/sec and simulated-cycles/sec.
//! 2. **Serving daemon**: the same workload offered to a `ServeEngine`
//!    at *paced* arrival rates (fractions of the measured capacity) —
//!    served images/sec and p50/p99 request latency per point, plus the
//!    efficiency of the saturated point against the raw batch engine.
//!    Pacing matters: a burst submitted all at once makes p50 the full
//!    batch wall; spacing arrivals at the stated rate makes the
//!    percentiles measure queueing + service, which is what an operator
//!    sizes against.
//! 3. **Multi-accelerator sharding**: the placement scheduler
//!    (`docs/SCHEDULER.md`) over N simulated instances in simulated
//!    time — image-parallel images/s scaling at N = 1/2/4/8 with the
//!    cost model's device and derated clock per point, and the
//!    layer-pipelined placement's single-image latency and hidden
//!    weight-staging against image-parallel at N = 4.
//! 4. **Compute kernels**: the seed's naive kernels (dense per-pixel
//!    quantized conv scan, naive GEMM) vs. the optimized ones
//!    (packed-nonzero span conv, register-blocked GEMM) on three
//!    VGG-16-shaped layers at deep-compression densities. All pairs are
//!    property-tested bit-identical; this bin just measures the speed.
//!
//! The headline `speedup` field is total naive time over total optimized
//! time for the quantized conv kernels — the path every functional
//! inference (golden model, driver verification, batch engine) runs on.
//!
//! ```sh
//! cargo run --release --bin batch_bench            # full benchmark
//! cargo run --release --bin batch_bench -- --check # regression guard
//! ```
//!
//! `--check` runs a reduced workload and exits nonzero if (a) the
//! serving layer (queue + adaptive batching) delivers less than 0.9x the
//! raw batch engine's throughput, or (b) the sharding scheduler misses
//! its floors: 4-instance image-parallel >= 2.5x single-instance
//! simulated images/s, pipeline beating image-parallel on single-image
//! latency, and nonzero hidden weight staging. The sharding gates run in
//! simulated time, so they are deterministic and strict. This is the
//! guard wired into `scripts/verify.sh`.
//!
//! Writes `BENCH_batch.json` at the repository root plus the usual
//! `experiments/batch_bench.{txt,json}` artifacts.

use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use zskip_bench::{make_conv_layer, write_artifacts};
use zskip_core::{
    run_batch, run_sharded, AccelConfig, BackendKind, CostModel, Driver, Placement, ServeEngine,
    ServeReply, Session,
};
use zskip_hls::Variant;
use zskip_json::{Json, ToJson};
use zskip_nn::conv::{conv2d_quant, conv2d_quant_dense};
use zskip_nn::eval::synthetic_inputs;
use zskip_nn::gemm::{conv2d_gemm_quant, conv2d_gemm_quant_naive};
use zskip_nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip_nn::vgg16::vgg16_scaled_spec;
use zskip_quant::DensityProfile;
use zskip_tensor::Tensor;

struct BatchResult {
    images: usize,
    workers: usize,
    wall_s: f64,
    images_per_s: f64,
    sim_cycles_per_s: f64,
    steals: u64,
    sequential_wall_s: f64,
    sequential_images_per_s: f64,
    parallel_speedup: f64,
}

impl ToJson for BatchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("images", self.images.to_json()),
            ("workers", self.workers.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("images_per_s", self.images_per_s.to_json()),
            ("sim_cycles_per_s", self.sim_cycles_per_s.to_json()),
            ("steals", self.steals.to_json()),
            ("sequential_wall_s", self.sequential_wall_s.to_json()),
            ("sequential_images_per_s", self.sequential_images_per_s.to_json()),
            ("parallel_speedup", self.parallel_speedup.to_json()),
        ])
    }
}

/// One offered-load point of the serving sweep: `offered` requests
/// arriving at `offered_per_s` against a fresh engine.
struct ServePoint {
    offered: usize,
    /// Paced arrival rate; `f64::INFINITY` marks an unpaced burst
    /// (saturation point).
    offered_per_s: f64,
    window_ms: f64,
    wall_s: f64,
    images_per_s: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch: f64,
}

impl ToJson for ServePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("offered", self.offered.to_json()),
            (
                "offered_per_s",
                if self.offered_per_s.is_finite() {
                    self.offered_per_s.to_json()
                } else {
                    Json::Str("saturated".into())
                },
            ),
            ("window_ms", self.window_ms.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("images_per_s", self.images_per_s.to_json()),
            ("p50_us", self.p50_us.to_json()),
            ("p99_us", self.p99_us.to_json()),
            ("mean_batch", self.mean_batch.to_json()),
        ])
    }
}

struct ServeResult {
    max_batch: usize,
    points: Vec<ServePoint>,
    best_images_per_s: f64,
    raw_images_per_s: f64,
    /// Best served throughput over the raw batch engine's; the `--check`
    /// gate requires >= 0.9.
    efficiency: f64,
}

impl ToJson for ServeResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("max_batch", self.max_batch.to_json()),
            ("points", self.points.to_json()),
            ("best_images_per_s", self.best_images_per_s.to_json()),
            ("raw_images_per_s", self.raw_images_per_s.to_json()),
            ("efficiency", self.efficiency.to_json()),
        ])
    }
}

/// One image-parallel scaling point: N instances of the 256-opt
/// datapath, bank RAM divided, clock from the scale-out cost model.
struct ShardPoint {
    instances: usize,
    placement: String,
    device: String,
    clock_mhz: f64,
    images: usize,
    makespan_cycles: u64,
    sim_images_per_s: f64,
    /// Simulated images/s over the 1-instance point's.
    scaling: f64,
    /// Mean busy fraction across instances.
    utilization: f64,
}

impl ToJson for ShardPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("instances", self.instances.to_json()),
            ("placement", self.placement.to_json()),
            ("device", self.device.to_json()),
            ("clock_mhz", self.clock_mhz.to_json()),
            ("images", self.images.to_json()),
            ("makespan_cycles", self.makespan_cycles.to_json()),
            ("sim_images_per_s", self.sim_images_per_s.to_json()),
            ("scaling", self.scaling.to_json()),
            ("utilization", self.utilization.to_json()),
        ])
    }
}

/// The sharding section: image-parallel scaling sweep plus the
/// layer-pipelined placement's latency and staging numbers at N = 4.
struct ShardingResult {
    image_points: Vec<ShardPoint>,
    /// 4-instance image-parallel simulated images/s over 1-instance;
    /// the `--check` gate requires >= 2.5.
    scaling_at_4: f64,
    /// Single-image makespans at N = 4: pipeline must beat image
    /// (which degrades to one instance at batch 1).
    pipeline_latency_cycles: u64,
    image_latency_cycles: u64,
    latency_gain: f64,
    /// Weight staging across an 8-image pipelined batch: cycles the
    /// serial schedule pays per image that the pipeline hides behind
    /// upstream compute vs. the fill cost it still exposes.
    staging_hidden_cycles: u64,
    staging_exposed_cycles: u64,
}

impl ToJson for ShardingResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("image_points", self.image_points.to_json()),
            ("scaling_at_4", self.scaling_at_4.to_json()),
            ("pipeline_latency_cycles", self.pipeline_latency_cycles.to_json()),
            ("image_latency_cycles", self.image_latency_cycles.to_json()),
            ("latency_gain", self.latency_gain.to_json()),
            ("staging_hidden_cycles", self.staging_hidden_cycles.to_json()),
            ("staging_exposed_cycles", self.staging_exposed_cycles.to_json()),
        ])
    }
}

struct KernelRow {
    layer: String,
    out_c: usize,
    in_c: usize,
    hw: usize,
    density: f64,
    quant_dense_ms: f64,
    quant_packed_ms: f64,
    quant_speedup: f64,
    gemm_naive_ms: f64,
    gemm_blocked_ms: f64,
    gemm_speedup: f64,
}

impl ToJson for KernelRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("layer", self.layer.to_json()),
            ("out_c", self.out_c.to_json()),
            ("in_c", self.in_c.to_json()),
            ("hw", self.hw.to_json()),
            ("density", self.density.to_json()),
            ("quant_dense_ms", self.quant_dense_ms.to_json()),
            ("quant_packed_ms", self.quant_packed_ms.to_json()),
            ("quant_speedup", self.quant_speedup.to_json()),
            ("gemm_naive_ms", self.gemm_naive_ms.to_json()),
            ("gemm_blocked_ms", self.gemm_blocked_ms.to_json()),
            ("gemm_speedup", self.gemm_speedup.to_json()),
        ])
    }
}

struct Bench {
    batch: BatchResult,
    serve: ServeResult,
    sharding: ShardingResult,
    kernels: Vec<KernelRow>,
    /// Total naive over total optimized time, quantized conv kernels.
    speedup: f64,
    /// Same ratio for the f32/quant GEMM pairs.
    gemm_speedup: f64,
}

impl ToJson for Bench {
    fn to_json(&self) -> Json {
        Json::obj([
            ("batch", self.batch.to_json()),
            ("serve", self.serve.to_json()),
            ("sharding", self.sharding.to_json()),
            ("kernels", self.kernels.to_json()),
            ("speedup", self.speedup.to_json()),
            ("gemm_speedup", self.gemm_speedup.to_json()),
        ])
    }
}

/// Best-of-3 wall time of `f`, in seconds.
fn time_best<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("ran at least once"))
}

/// The shared VGG-16-shaped workload: a quantized scaled network and a
/// burst of inputs, used by the batch, serve and `--check` measurements.
fn workload(hw: usize, images: usize) -> (Arc<QuantizedNetwork>, Vec<Tensor<f32>>) {
    let spec = vgg16_scaled_spec(hw);
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 1, density: DensityProfile::deep_compression_vgg16() },
    );
    let qnet = net.quantize(&synthetic_inputs(2, 1, spec.input));
    (Arc::new(qnet), synthetic_inputs(3, images, spec.input))
}

fn bench_batch(qnet: &QuantizedNetwork, inputs: &[Tensor<f32>]) -> BatchResult {
    let images = inputs.len();
    let driver = Driver::builder(AccelConfig::for_variant(Variant::U256Opt)).backend(BackendKind::Model).build().unwrap();

    let t0 = Instant::now();
    let report = run_batch(&driver, qnet, inputs, 0).expect("fits");
    let wall_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let sequential: Vec<_> = inputs.iter().map(|i| driver.run_network(qnet, i).expect("fits")).collect();
    let sequential_wall_s = t0.elapsed().as_secs_f64();
    for (par, seq) in report.reports.iter().zip(&sequential) {
        assert_eq!(par.output, seq.output, "batch must be bit-identical to sequential");
    }

    BatchResult {
        images,
        workers: report.workers,
        wall_s,
        images_per_s: images as f64 / wall_s,
        sim_cycles_per_s: report.total_cycles() as f64 / wall_s,
        steals: report.steals,
        sequential_wall_s,
        sequential_images_per_s: images as f64 / sequential_wall_s,
        parallel_speedup: sequential_wall_s / wall_s,
    }
}

/// Offers `offered` requests to a fresh engine, paced at
/// `offered_per_s` (infinite = all at once, the saturation point), and
/// measures served throughput and latency percentiles. Pacing is what
/// makes p50/p99 meaningful: a burst submitted in a tight loop makes the
/// median latency the whole burst's wall time, whereas spaced arrivals
/// measure what each request actually waited (queueing + batching +
/// service). `max_batch` stays at the daemon's production default so the
/// batcher coalesces only what genuinely overlaps.
fn serve_point(
    qnet: &Arc<QuantizedNetwork>,
    inputs: &[Tensor<f32>],
    offered: usize,
    offered_per_s: f64,
    window: Duration,
) -> ServePoint {
    let session = Session::builder(AccelConfig::for_variant(Variant::U256Opt))
        .backend(BackendKind::Model)
        .batch_window(window)
        .build()
        .expect("valid config");
    let engine = ServeEngine::start(session, Arc::clone(qnet));
    let handle = engine.handle();
    let (tx, rx) = mpsc::channel();
    let gap = if offered_per_s.is_finite() {
        Duration::from_secs_f64(1.0 / offered_per_s)
    } else {
        Duration::ZERO
    };
    let t0 = Instant::now();
    for i in 0..offered {
        // Pace against the absolute schedule, not the previous submit:
        // submit() returning late must not push every later arrival.
        let due = gap * i as u32;
        if let Some(wait) = due.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        handle
            .submit(format!("b{i}"), inputs[i % inputs.len()].clone(), tx.clone())
            .expect("admitted");
    }
    drop(tx);
    let replies: Vec<ServeReply> = rx.iter().collect();
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(replies.len(), offered, "every offered request completes");
    assert!(replies.iter().all(|r| r.result.is_ok()), "serve bench requests must succeed");
    let stats = engine.join();
    ServePoint {
        offered,
        offered_per_s,
        window_ms: window.as_secs_f64() * 1e3,
        wall_s,
        images_per_s: offered as f64 / wall_s,
        p50_us: stats.p50_us(),
        p99_us: stats.p99_us(),
        mean_batch: stats.mean_batch(),
    }
}

/// Offered-load sweep: paced arrivals at 0.5x and 0.9x of the measured
/// batch-engine capacity (where latency percentiles measure queueing),
/// plus one unpaced saturation burst for the efficiency comparison.
fn bench_serve(
    qnet: &Arc<QuantizedNetwork>,
    inputs: &[Tensor<f32>],
    raw_images_per_s: f64,
) -> ServeResult {
    let full = inputs.len();
    let window = Duration::from_millis(2);
    let points: Vec<ServePoint> = [0.5, 0.9, f64::INFINITY]
        .into_iter()
        .map(|frac| serve_point(qnet, inputs, full, raw_images_per_s * frac, window))
        .collect();
    let best_images_per_s = points.iter().map(|p| p.images_per_s).fold(0.0, f64::max);
    ServeResult {
        max_batch: zskip_core::session::DEFAULT_MAX_BATCH,
        points,
        best_images_per_s,
        raw_images_per_s,
        efficiency: best_images_per_s / raw_images_per_s,
    }
}

/// Runs the placement scheduler over N simulated instances and reports
/// the simulated-time scaling. Everything here is deterministic: makespan
/// is simulated cycles at the cost model's clock, not host wall time.
fn bench_sharding(qnet: &QuantizedNetwork, inputs: &[Tensor<f32>]) -> ShardingResult {
    let shard_driver = |n: usize| {
        Driver::builder(AccelConfig::for_variant_instances(Variant::U256Opt, n))
            .backend(BackendKind::Model)
            .build()
            .expect("valid config")
    };
    let mut image_points = Vec::new();
    let mut one_images_per_s = 0.0f64;
    for n in [1usize, 2, 4, 8] {
        let cost = CostModel::for_instances(Variant::U256Opt, n);
        let driver = shard_driver(n);
        let report = run_sharded(&driver, qnet, inputs, Placement::Image).expect("fits");
        let sim_images_per_s = report.images_per_s(&driver.config);
        if n == 1 {
            one_images_per_s = sim_images_per_s;
        }
        image_points.push(ShardPoint {
            instances: n,
            placement: report.placement.to_string(),
            device: cost.device.to_string(),
            clock_mhz: cost.clock_mhz,
            images: inputs.len(),
            makespan_cycles: report.makespan_cycles,
            sim_images_per_s,
            scaling: sim_images_per_s / one_images_per_s,
            utilization: report.utilization(),
        })
    }
    let scaling_at_4 =
        image_points.iter().find(|p| p.instances == 4).map(|p| p.scaling).unwrap_or(0.0);

    let four = shard_driver(4);
    let single = &inputs[..1];
    let image_lat = run_sharded(&four, qnet, single, Placement::Image).expect("fits");
    let pipe_lat = run_sharded(&four, qnet, single, Placement::Pipeline).expect("fits");
    let pipe_batch = run_sharded(&four, qnet, inputs, Placement::Pipeline).expect("fits");

    ShardingResult {
        image_points,
        scaling_at_4,
        pipeline_latency_cycles: pipe_lat.makespan_cycles,
        image_latency_cycles: image_lat.makespan_cycles,
        latency_gain: image_lat.makespan_cycles as f64 / pipe_lat.makespan_cycles as f64,
        staging_hidden_cycles: pipe_batch.staging_hidden_cycles,
        staging_exposed_cycles: pipe_batch.staging_exposed_cycles,
    }
}

/// The deterministic sharding floors of `--check`; returns the failures.
fn sharding_gate(s: &ShardingResult) -> Vec<String> {
    let mut fails = Vec::new();
    if s.scaling_at_4 < 2.5 {
        fails.push(format!(
            "4-instance image-parallel scaled {:.2}x over single-instance (need >= 2.5x)",
            s.scaling_at_4
        ));
    }
    if s.pipeline_latency_cycles >= s.image_latency_cycles {
        fails.push(format!(
            "pipeline single-image makespan {} did not beat image-parallel {}",
            s.pipeline_latency_cycles, s.image_latency_cycles
        ));
    }
    if s.staging_hidden_cycles == 0 {
        fails.push("pipelined batch hid zero weight-staging cycles".into());
    }
    fails
}

/// Fast regression guard for `scripts/verify.sh`: a reduced workload,
/// exit nonzero if the serving layer (bounded queue + adaptive batcher)
/// delivers less than 0.9x the raw batch engine's throughput, or the
/// sharding scheduler misses its simulated-time floors. Batch compute
/// dominates both sides of the serve comparison, so the 0.9 bound holds
/// even on a noisy box; the sharding floors are deterministic.
fn check() -> ! {
    let (qnet, inputs) = workload(32, 4);
    let driver = Driver::builder(AccelConfig::for_variant(Variant::U256Opt))
        .backend(BackendKind::Model)
        .build()
        .unwrap();
    // Warm the shared packed-weight cache so neither side pays it, then
    // interleave three rounds per side and compare best against best —
    // the serving overhead is structural (sub-ms against seconds of
    // batch compute), but single rounds on a loaded box swing far more
    // than the 0.9 margin.
    driver.run_network(&qnet, &inputs[0]).expect("fits");

    let mut raw_wall_s = f64::INFINITY;
    let mut point: Option<ServePoint> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        run_batch(&driver, &qnet, &inputs, 0).expect("fits");
        raw_wall_s = raw_wall_s.min(t0.elapsed().as_secs_f64());
        // The production 2 ms window: the burst lands in microseconds,
        // so the window costs at most 2 ms against seconds of compute.
        // (A long window no longer helps — dispatch is window-driven
        // now that max_batch stays at the daemon default.)
        let p = serve_point(&qnet, &inputs, inputs.len(), f64::INFINITY, Duration::from_millis(2));
        if point.as_ref().is_none_or(|best| p.images_per_s > best.images_per_s) {
            point = Some(p);
        }
    }
    let raw_images_per_s = inputs.len() as f64 / raw_wall_s;
    let point = point.expect("three serve rounds ran");
    let efficiency = point.images_per_s / raw_images_per_s;
    println!(
        "check: raw batch {:.2} images/s, served {:.2} images/s ({:.2}x), p99 {} us, mean batch {:.1}",
        raw_images_per_s, point.images_per_s, efficiency, point.p99_us, point.mean_batch
    );
    let mut fails = Vec::new();
    if efficiency < 0.9 {
        fails.push(format!(
            "served throughput {efficiency:.2}x of the raw batch engine (need >= 0.9x)"
        ));
    }
    let sharding = bench_sharding(&qnet, &inputs);
    println!(
        "check: sharding image-parallel x4 {:.2}x, pipeline/image latency {}/{} cycles, staging hidden {}",
        sharding.scaling_at_4,
        sharding.pipeline_latency_cycles,
        sharding.image_latency_cycles,
        sharding.staging_hidden_cycles
    );
    fails.extend(sharding_gate(&sharding));
    if !fails.is_empty() {
        for f in &fails {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn bench_kernels() -> Vec<KernelRow> {
    // VGG-16-shaped layers at deep-compression densities, spatially
    // scaled so the suite stays fast.
    let layers: [(&str, usize, usize, usize, f64); 3] = [
        ("conv1_1-like", 64, 3, 32, 0.58),
        ("conv2_2-like", 128, 128, 16, 0.36),
        ("conv3_2-like", 256, 256, 8, 0.29),
    ];
    layers
        .into_iter()
        .map(|(name, out_c, in_c, hw, density)| {
            let (qw, tiled, _) = make_conv_layer(out_c, in_c, hw, density, 7);
            let input = tiled.to_tensor();
            let (quant_dense_ms, a) = time_best(|| conv2d_quant_dense(&input, &qw, 1, 0));
            let (quant_packed_ms, b) = time_best(|| conv2d_quant(&input, &qw, 1, 0));
            assert_eq!(a, b, "packed conv must be bit-identical");
            let (gemm_naive_ms, c) = time_best(|| conv2d_gemm_quant_naive(&input, &qw, 1, 0));
            let (gemm_blocked_ms, d) = time_best(|| conv2d_gemm_quant(&input, &qw, 1, 0));
            assert_eq!(c, d, "blocked GEMM must be bit-identical");
            KernelRow {
                layer: name.to_string(),
                out_c,
                in_c,
                hw,
                density,
                quant_dense_ms: quant_dense_ms * 1e3,
                quant_packed_ms: quant_packed_ms * 1e3,
                quant_speedup: quant_dense_ms / quant_packed_ms,
                gemm_naive_ms: gemm_naive_ms * 1e3,
                gemm_blocked_ms: gemm_blocked_ms * 1e3,
                gemm_speedup: gemm_naive_ms / gemm_blocked_ms,
            }
        })
        .collect()
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    }

    let (qnet, inputs) = workload(32, 8);
    let batch = bench_batch(&qnet, &inputs);
    let serve = bench_serve(&qnet, &inputs, batch.images_per_s);
    let sharding = bench_sharding(&qnet, &inputs);
    let kernels = bench_kernels();
    let quant_naive: f64 = kernels.iter().map(|k| k.quant_dense_ms).sum();
    let quant_opt: f64 = kernels.iter().map(|k| k.quant_packed_ms).sum();
    let gemm_naive: f64 = kernels.iter().map(|k| k.gemm_naive_ms).sum();
    let gemm_opt: f64 = kernels.iter().map(|k| k.gemm_blocked_ms).sum();
    let bench = Bench {
        batch,
        serve,
        sharding,
        kernels,
        speedup: quant_naive / quant_opt,
        gemm_speedup: gemm_naive / gemm_opt,
    };

    let mut text = String::new();
    text.push_str("Batch + serve + sharding + kernel throughput (naive = seed implementation)\n\n");
    let b = &bench.batch;
    text.push_str(&format!(
        "batch: {} x vgg16-32, {} worker(s): {:.2} images/s, {:.1}M sim cycles/s, {} steals\n",
        b.images,
        b.workers,
        b.images_per_s,
        b.sim_cycles_per_s / 1e6,
        b.steals
    ));
    text.push_str(&format!(
        "       sequential {:.2} images/s -> parallel speedup {:.2}x\n\n",
        b.sequential_images_per_s, b.parallel_speedup
    ));
    text.push_str("serve: paced offered-load sweep through the daemon (window 2 ms)\n");
    for p in &bench.serve.points {
        let rate = if p.offered_per_s.is_finite() {
            format!("{:.1}/s", p.offered_per_s)
        } else {
            "burst".into()
        };
        text.push_str(&format!(
            "       {:>2} offered at {:>7}: {:.2} images/s, p50 {} us, p99 {} us, mean batch {:.1}\n",
            p.offered, rate, p.images_per_s, p.p50_us, p.p99_us, p.mean_batch
        ));
    }
    text.push_str(&format!(
        "       saturated best {:.2} images/s = {:.2}x of the raw batch engine\n\n",
        bench.serve.best_images_per_s, bench.serve.efficiency
    ));
    text.push_str("sharding: placement scheduler over N instances (simulated time)\n");
    for p in &bench.sharding.image_points {
        text.push_str(&format!(
            "       {} x 256-opt ({}, {:.0} MHz): {:.1} sim images/s, {:.2}x scaling, {:.0}% utilization\n",
            p.instances,
            p.device,
            p.clock_mhz,
            p.sim_images_per_s,
            p.scaling,
            p.utilization * 100.0
        ));
    }
    let s = &bench.sharding;
    text.push_str(&format!(
        "       pipeline vs image at 4 instances, 1 image: {} vs {} cycles ({:.2}x latency gain)\n",
        s.pipeline_latency_cycles, s.image_latency_cycles, s.latency_gain
    ));
    text.push_str(&format!(
        "       pipelined batch weight staging: {} cycles hidden, {} exposed\n\n",
        s.staging_hidden_cycles, s.staging_exposed_cycles
    ));
    text.push_str(&format!(
        "{:<14} {:>8} {:>11} {:>12} {:>8} {:>11} {:>12} {:>8}\n",
        "layer", "density", "dense ms", "packed ms", "speedup", "naive ms", "blocked ms", "speedup"
    ));
    for k in &bench.kernels {
        text.push_str(&format!(
            "{:<14} {:>8.2} {:>11.1} {:>12.1} {:>7.2}x {:>11.1} {:>12.1} {:>7.2}x\n",
            k.layer,
            k.density,
            k.quant_dense_ms,
            k.quant_packed_ms,
            k.quant_speedup,
            k.gemm_naive_ms,
            k.gemm_blocked_ms,
            k.gemm_speedup
        ));
    }
    text.push_str(&format!(
        "\nquantized conv speedup (total): {:.2}x   GEMM speedup (total): {:.2}x\n",
        bench.speedup, bench.gemm_speedup
    ));
    print!("{text}");

    write_artifacts("batch_bench", &text, &bench);
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_batch.json"), zskip_json::to_string_pretty(&bench))
        .expect("write BENCH_batch.json");
}
