//! Architecture ablations (DESIGN.md §8): isolate each design choice the
//! paper calls out by toggling it and measuring simulated cycles.
//!
//! 1. zero-weight skipping on/off across sparsity levels (the novel
//!    contribution; upper bound (16-4)/16 = 75% cycle reduction);
//! 2. lockstep filter lanes vs. nnz-sorted filter grouping (the paper's
//!    future work) on a skewed-sparsity layer;
//! 3. striping overhead vs. SRAM bank capacity (the "~15%" ideal
//!    inflation);
//! 4. packed-weight fetch bandwidth (the deep-layer unpack overhead).

use zskip_bench::{make_conv_layer, write_artifacts};
use zskip_core::{AccelConfig, Driver, SocHandle};
use zskip_hls::AccelArch;
use zskip_json::{Json, ToJson};

#[derive(Default)]
struct Ablations {
    zero_skip: Vec<(f64, u64, u64, f64)>,     // density, skip, no-skip, speedup
    grouping: Vec<(String, u64)>,             // label, cycles
    striping: Vec<(usize, f64, u64)>,         // bank_tiles, striping factor, cycles
    weight_bandwidth: Vec<(usize, u64)>,      // bytes/cycle, cycles
    bitwidth: Vec<(String, f64)>,             // label, total ALMs
    fifo_depth: Vec<(usize, u64)>,            // depth, cycle-exact cycles
}

impl ToJson for Ablations {
    fn to_json(&self) -> Json {
        Json::obj([
            ("zero_skip", self.zero_skip.to_json()),
            ("grouping", self.grouping.to_json()),
            ("striping", self.striping.to_json()),
            ("weight_bandwidth", self.weight_bandwidth.to_json()),
            ("bitwidth", self.bitwidth.to_json()),
            ("fifo_depth", self.fifo_depth.to_json()),
        ])
    }
}

fn driver(bank_tiles: usize, weight_bw: usize) -> Driver {
    let cfg = AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles }, 100.0);
    let mut d = Driver::builder(AccelConfig { weight_bytes_per_cycle: weight_bw, ..cfg }).functional(false).build().unwrap();
    d.functional = false;
    d
}

fn main() {
    let mut out = Ablations::default();
    let mut text = String::new();

    // 1. Zero-skipping across sparsity.
    text.push_str("Ablation 1 — zero-weight skipping (conv3_2-like layer, 256 MACs/cycle)\n");
    text.push_str("  density   with-skip      no-skip   speedup   (upper bound 16/4 = 4x at density->0)\n");
    for density in [1.0, 0.75, 0.5, 0.35, 0.25, 0.1, 0.05] {
        let (qw, input, out_shape) = make_conv_layer(64, 64, 56, density, 42);
        let mut skip = driver(32768, 16);
        skip.zero_skipping = true;
        let mut noskip = skip.clone();
        noskip.zero_skipping = false;
        let a = skip.conv_pass("skip", &input, &qw, out_shape, &mut SocHandle::new()).unwrap().1;
        let b = noskip.conv_pass("noskip", &input, &qw, out_shape, &mut SocHandle::new()).unwrap().1;
        let speedup = b.compute_cycles as f64 / a.compute_cycles as f64;
        text.push_str(&format!(
            "  {:>7.2} {:>11} {:>12} {:>8.2}x\n",
            density, a.compute_cycles, b.compute_cycles, speedup
        ));
        out.zero_skip.push((density, a.compute_cycles, b.compute_cycles, speedup));
    }

    // 2. Filter grouping on a skewed layer: half the filters dense, half
    // very sparse, interleaved (worst case for lockstep lanes).
    text.push_str("\nAblation 2 — lockstep lanes vs. nnz-sorted filter grouping (skewed sparsity)\n");
    {
        let (mut qw, input, out_shape) = make_conv_layer(64, 64, 28, 1.0, 7);
        // Interleave dense and ~10% filters.
        for o in 0..64 {
            if o % 2 == 0 {
                let per = 64 * 9;
                for i in 0..per {
                    if (i * 31 + o) % 10 != 0 {
                        qw.w[o * per + i] = zskip_quant::Sm8::ZERO;
                    }
                }
            }
        }
        qw.invalidate_caches();
        for (label, grouping) in [("lockstep (paper baseline)", false), ("grouped by nnz (future work)", true)] {
            let mut d = driver(32768, 16);
            d.filter_grouping = grouping;
            let stats = d.conv_pass("g", &input, &qw, out_shape, &mut SocHandle::new()).unwrap().1;
            text.push_str(&format!("  {:<30} {:>10} cycles\n", label, stats.compute_cycles));
            out.grouping.push((label.to_string(), stats.compute_cycles));
        }
    }

    // 3. Striping overhead vs. bank capacity (conv2_2-like layer).
    text.push_str("\nAblation 3 — striping overhead vs. SRAM bank capacity\n");
    text.push_str("  bank tiles   striping factor   compute cycles\n");
    for bank_tiles in [32768usize, 16384, 8192, 4096, 3000] {
        let (qw, input, out_shape) = make_conv_layer(128, 128, 112, 1.0, 3);
        let d = driver(bank_tiles, 16);
        let stats = d.conv_pass("s", &input, &qw, out_shape, &mut SocHandle::new()).unwrap().1;
        text.push_str(&format!(
            "  {:>10} {:>17.3} {:>16}\n",
            bank_tiles, stats.striping_factor, stats.compute_cycles
        ));
        out.striping.push((bank_tiles, stats.striping_factor, stats.compute_cycles));
    }

    // 4. Weight-fetch bandwidth (deep, weight-heavy layer).
    text.push_str("\nAblation 4 — packed-weight fetch bandwidth (conv5-like layer)\n");
    text.push_str("  bytes/cycle   compute cycles\n");
    for bw in [2usize, 4, 8, 16, 32] {
        let (qw, input, out_shape) = make_conv_layer(512, 512, 16, 1.0, 9);
        let d = driver(32768, bw);
        let stats = d.conv_pass("w", &input, &qw, out_shape, &mut SocHandle::new()).unwrap().1;
        text.push_str(&format!("  {:>11} {:>16}\n", bw, stats.compute_cycles));
        out.weight_bandwidth.push((bw, stats.compute_cycles));
    }

    // 5. Bitwidth minimization (the paper's §IV-A range analysis).
    text.push_str("\nAblation 5 — automated bitwidth minimization (256-opt synthesis)\n");
    {
        use zskip_hls::bitwidth::conservative_widths;
        use zskip_hls::design::synthesize_with_widths;
        use zskip_hls::{AccelArch as HArch, Device, HlsConstraints, Variant};
        let device = Device::arria10_sx660();
        let c = HlsConstraints::optimized_150mhz();
        let minimized = Variant::U256Opt.synthesize();
        let conservative =
            synthesize_with_widths(&HArch::full(1), &c, &device, &conservative_widths());
        for (label, r) in [("range-minimized (paper default)", &minimized), ("conservative 32-bit", &conservative)] {
            text.push_str(&format!("  {:<32} {:>9.0} ALMs  (ALM util {:>4.1}%)\n", label, r.total.alms, r.utilization.alm * 100.0));
            out.bitwidth.push((label.to_string(), r.total.alms));
        }
    }

    // 6. FIFO depth (cycle-exact backend; queue slack hides the
    // accumulator finalize/barrier latency between positions).
    text.push_str("\nAblation 6 — inter-kernel FIFO depth (cycle-exact small conv)\n");
    text.push_str("  depth   cycles\n");
    {
        use zskip_core::{cycle, BankSet, ConvInstr, FmLayout, GroupWeights, Instruction};
        use zskip_quant::Sm8;
        use zskip_tensor::{Shape, Tensor, TiledFeatureMap};
        let (qw, _, _) = make_conv_layer(8, 8, 16, 0.6, 4);
        let input = Tensor::from_fn(8, 16, 16, |c, y, x| {
            Sm8::from_i32_saturating(((c * 31 + y * 7 + x) % 200) as i32 - 100)
        })
        .padded(1);
        for depth in [1usize, 2, 4, 8, 16] {
            let base = driver(32768, 16).config;
            let cfg = zskip_core::AccelConfig { fifo_depth: depth, bank_tiles: 4096, ..base };
            let tiled = TiledFeatureMap::from_tensor(&input);
            let in_layout = FmLayout::full(0, input.shape());
            let out_layout = FmLayout::full(in_layout.end(), Shape::new(8, 16, 16));
            let mut banks = BankSet::new(&cfg);
            in_layout.store(&mut banks, &tiled, 0..tiled.tiles_y());
            let mut scratchpad = Vec::new();
            let mut instrs = Vec::new();
            for g in 0..2 {
                let gw = GroupWeights::from_filters(&qw, g * 4, 4);
                let wgt_base = scratchpad.len() as u32;
                scratchpad.extend_from_slice(&gw.to_bytes());
                instrs.push(Instruction::Conv(ConvInstr {
                    ofm_first: (g * 4) as u16,
                    ifm_count: 8,
                    ifm_base: 0,
                    ifm_tiles_x: in_layout.tiles_x as u16,
                    ifm_tile_rows: in_layout.tile_rows as u16,
                    ifm_row_offset: 0,
                    ofm_base: out_layout.base as u32,
                    ofm_tiles_x: out_layout.tiles_x as u16,
                    ofm_tile_rows: out_layout.tile_rows as u16,
                    wgt_base,
                    bias: [0; 4],
                    requant_mult: qw.requant.mult as u16,
                    requant_shift: qw.requant.shift as u8,
                    relu: true,
                    active_lanes: 4,
                }));
            }
            let cycles = cycle::run_instructions(&cfg, banks, scratchpad, &instrs, 100_000_000)
                .expect("runs")
                .cycles;
            text.push_str(&format!("  {:>5} {:>8}\n", depth, cycles));
            out.fifo_depth.push((depth, cycles));
        }
    }

    print!("{text}");
    write_artifacts("ablations", &text, &out);
}
