//! Regenerates paper Fig. 6: ALM usage by each unit of the accelerator,
//! plus the in-text device-utilization numbers (44% ALM / 25% DSP /
//! 49% RAM for 256-opt).

use zskip_bench::write_artifacts;
use zskip_hls::Variant;
use zskip_perf::AreaBreakdown;

fn main() {
    let mut all = Vec::new();
    let mut text = String::new();
    for variant in Variant::all() {
        let synth = variant.synthesize();
        let breakdown = AreaBreakdown::from_synthesis(variant.label(), &synth);
        if variant == Variant::U256Opt {
            // The paper's Fig. 6 shows the 256-opt design point.
            text.push_str(&breakdown.render());
            text.push('\n');
            text.push_str(&format!(
                "paper reference: 44% ALM / 25% DSP / 49% RAM; operating clock 150 MHz (got {:.0} MHz)\n\n",
                synth.operating_mhz
            ));
        }
        all.push(breakdown);
    }
    text.push_str("All variants:\n");
    for b in &all {
        text.push_str(&format!(
            "  {:<10} {:>8.0} ALMs  ALM {:>4.0}%  DSP {:>4.0}%  M20K {:>4.0}%\n",
            b.variant,
            b.total_alms,
            b.alm_utilization * 100.0,
            b.dsp_utilization * 100.0,
            b.m20k_utilization * 100.0
        ));
    }
    print!("{text}");
    write_artifacts("fig6_area", &text, &all);
}
