//! Autotuner benchmark — emits `BENCH_tune.json`.
//!
//! Runs `zskip tune`'s library core once per objective at the default
//! budget and records what the search found against three baselines:
//!
//! 1. **Default config**: the stock 256-opt session every objective's
//!    search starts from (the tuner evaluates it first, so
//!    `best <= default` is structural; the *margin* is the datum).
//! 2. **Hand-picked variants**: the paper's four HLS design points,
//!    scored under the deterministic `cycles` objective. The tuner
//!    searches a space that embeds all four, so it must match or beat
//!    the best of them.
//! 3. **Itself**: the `cycles` search reruns with the same seed and must
//!    reproduce the artifact byte for byte.
//!
//! ```sh
//! cargo run --release --bin tune_bench            # full benchmark (VGG-16-32)
//! cargo run --release --bin tune_bench -- --check # regression guard
//! ```
//!
//! `--check` runs the same gates on a small network so every evaluation
//! is cheap: (a) each objective's tuned score <= its default score;
//! (b) the `cycles` search matches or beats the best hand-picked
//! variant; (c) at least one software objective improves on the default
//! by >= 10% (the backend/threads/batch knobs must buy something real);
//! (d) the same-seed rerun is byte-identical. This is the guard wired
//! into `scripts/verify.sh`.
//!
//! Writes `BENCH_tune.json` at the repository root plus the usual
//! `experiments/tune_bench.{txt,json}` artifacts.

use zskip_bench::write_artifacts;
use zskip_core::tune::{Evaluator, Objective, SearchSpace, SpaceKind, TunedConfig, Tuner, DEFAULT_BUDGET, DEFAULT_SEED};
use zskip_hls::Variant;
use zskip_json::{Json, ToJson};
use zskip_nn::eval::synthetic_inputs;
use zskip_nn::layer::{conv3x3, maxpool2x2, NetworkSpec};
use zskip_nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip_nn::vgg16::vgg16_scaled_spec;
use zskip_quant::DensityProfile;
use zskip_tensor::{Shape, Tensor};

/// One objective's search outcome vs. its default baseline.
struct ObjectiveResult {
    objective: &'static str,
    space: &'static str,
    budget: u64,
    default_score: f64,
    best_score: f64,
    /// `default_score / best_score` — lower-is-better scores, so > 1 is
    /// an improvement.
    speedup: f64,
    evals: u64,
    cache_hits: u64,
    cache_hit_rate: f64,
    best: TunedConfig,
}

impl ToJson for ObjectiveResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("objective", self.objective.to_json()),
            ("space", self.space.to_json()),
            ("budget", self.budget.to_json()),
            ("default_score", self.default_score.to_json()),
            ("best_score", self.best_score.to_json()),
            ("speedup", self.speedup.to_json()),
            ("evals", self.evals.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_hit_rate", self.cache_hit_rate.to_json()),
            ("best", self.best.to_json()),
        ])
    }
}

/// The paper's four hand-picked variants scored under `cycles`, and how
/// the tuned config compares. `tuned_vs_best_variant <= 1` is the gate.
struct VariantBaseline {
    scores: Vec<(String, f64)>,
    best_variant: String,
    best_variant_score: f64,
    tuned_score: f64,
    tuned_vs_best_variant: f64,
}

impl ToJson for VariantBaseline {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "scores",
                Json::Arr(
                    self.scores
                        .iter()
                        .map(|(v, s)| Json::obj([("variant", v.to_json()), ("score", s.to_json())]))
                        .collect(),
                ),
            ),
            ("best_variant", self.best_variant.to_json()),
            ("best_variant_score", self.best_variant_score.to_json()),
            ("tuned_score", self.tuned_score.to_json()),
            ("tuned_vs_best_variant", self.tuned_vs_best_variant.to_json()),
        ])
    }
}

struct Bench {
    workload: String,
    seed: u64,
    objectives: Vec<ObjectiveResult>,
    variants: VariantBaseline,
    /// Same seed + space + budget reran byte-identically.
    rerun_identical: bool,
    /// Best `speedup` across the software (wall-clock) objectives; the
    /// `--check` gate requires >= 1.1.
    best_software_speedup: f64,
}

impl ToJson for Bench {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("seed", self.seed.to_json()),
            ("objectives", self.objectives.to_json()),
            ("variants", self.variants.to_json()),
            ("rerun_identical", self.rerun_identical.to_json()),
            ("best_software_speedup", self.best_software_speedup.to_json()),
        ])
    }
}

/// The full-mode workload: the scaled VGG-16 the CLI subcommands run.
fn vgg_workload() -> (QuantizedNetwork, Vec<Tensor<f32>>) {
    let spec = vgg16_scaled_spec(32);
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 1, density: DensityProfile::deep_compression_vgg16() },
    );
    let qnet = net.quantize(&synthetic_inputs(2, 1, spec.input));
    let inputs = synthetic_inputs(3, 4, spec.input);
    (qnet, inputs)
}

/// The `--check` workload: small enough that one evaluation costs
/// milliseconds, so the full default-budget search stays fast.
fn small_workload() -> (QuantizedNetwork, Vec<Tensor<f32>>) {
    let spec = NetworkSpec {
        name: "tune-check".into(),
        input: Shape::new(3, 16, 16),
        layers: vec![conv3x3("c1", 3, 8), maxpool2x2("p1"), conv3x3("c2", 8, 8)],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 29, density: DensityProfile::uniform(2, 0.5) },
    );
    let qnet = net.quantize(&synthetic_inputs(30, 2, spec.input));
    let inputs = synthetic_inputs(31, 4, spec.input);
    (qnet, inputs)
}

/// Each objective searches the space where its knobs live: `cycles` is a
/// hardware property (variant/instances/placement), the wall-clock
/// objectives are software properties (backend/threads/kernel/batch).
fn space_for(objective: Objective) -> SpaceKind {
    match objective {
        Objective::Cycles => SpaceKind::Hls,
        _ => SpaceKind::Software,
    }
}

fn run_objective(
    objective: Objective,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    budget: u64,
) -> ObjectiveResult {
    let kind = space_for(objective);
    let outcome = Tuner::new(SearchSpace::named(kind), objective, qnet, inputs)
        .seed(DEFAULT_SEED)
        .budget(budget)
        .run();
    let total = outcome.evals + outcome.cache_hits;
    ObjectiveResult {
        objective: objective.name(),
        space: kind.name(),
        budget,
        default_score: outcome.default_score,
        best_score: outcome.best_score,
        speedup: outcome.speedup(),
        evals: outcome.evals,
        cache_hits: outcome.cache_hits,
        cache_hit_rate: if total > 0 { outcome.cache_hits as f64 / total as f64 } else { 0.0 },
        best: outcome.best,
    }
}

/// Scores the four hand-picked variants under `cycles` and compares the
/// tuned score against the best of them.
fn variant_baseline(
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    tuned_score: f64,
) -> VariantBaseline {
    let mut eval = Evaluator::new(Objective::Cycles, qnet, inputs);
    let scores: Vec<(String, f64)> = Variant::all()
        .into_iter()
        .map(|v| {
            let config = TunedConfig { variant: v, ..TunedConfig::default() };
            (v.label().to_string(), eval.score(&config))
        })
        .collect();
    let (best_variant, best_variant_score) = scores
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(v, s)| (v.clone(), *s))
        .expect("four variants scored");
    VariantBaseline {
        scores,
        best_variant,
        best_variant_score,
        tuned_score,
        tuned_vs_best_variant: tuned_score / best_variant_score,
    }
}

fn run_bench(qnet: &QuantizedNetwork, inputs: &[Tensor<f32>], workload: &str) -> Bench {
    let objectives: Vec<ObjectiveResult> = Objective::ALL
        .into_iter()
        .map(|o| run_objective(o, qnet, inputs, DEFAULT_BUDGET))
        .collect();
    let cycles = objectives
        .iter()
        .find(|r| r.objective == Objective::Cycles.name())
        .expect("cycles objective ran");
    let variants = variant_baseline(qnet, inputs, cycles.best_score);

    // Determinism: the same seed + space + budget must reproduce the
    // artifact byte for byte (cycles is the deterministic objective).
    let rerun = run_objective(Objective::Cycles, qnet, inputs, DEFAULT_BUDGET);
    let rerun_identical = rerun.best.to_json_string() == cycles.best.to_json_string();

    let best_software_speedup = objectives
        .iter()
        .filter(|r| r.objective != Objective::Cycles.name())
        .map(|r| r.speedup)
        .fold(0.0, f64::max);

    Bench {
        workload: workload.to_string(),
        seed: DEFAULT_SEED,
        objectives,
        variants,
        rerun_identical,
        best_software_speedup,
    }
}

/// The `--check` gates; returns the failures.
fn gate(bench: &Bench) -> Vec<String> {
    let mut fails = Vec::new();
    for r in &bench.objectives {
        if r.best_score > r.default_score {
            fails.push(format!(
                "{}: tuned score {:.3e} worse than default {:.3e}",
                r.objective, r.best_score, r.default_score
            ));
        }
    }
    if bench.variants.tuned_vs_best_variant > 1.0 {
        fails.push(format!(
            "cycles: tuned {:.3e} did not match/beat best hand-picked variant {} at {:.3e}",
            bench.variants.tuned_score,
            bench.variants.best_variant,
            bench.variants.best_variant_score
        ));
    }
    if bench.best_software_speedup < 1.1 {
        fails.push(format!(
            "no software objective improved >= 10% over default (best {:.2}x)",
            bench.best_software_speedup
        ));
    }
    if !bench.rerun_identical {
        fails.push("same-seed cycles rerun was not byte-identical".into());
    }
    fails
}

fn render(bench: &Bench) -> String {
    let mut text = String::new();
    text.push_str(&format!(
        "Design-space autotuner on {} (seed {:#x}, budget {} fresh evals/objective)\n\n",
        bench.workload, bench.seed, DEFAULT_BUDGET
    ));
    text.push_str(&format!(
        "{:<11} {:<9} {:>13} {:>13} {:>8} {:>6} {:>11}\n",
        "objective", "space", "default s", "best s", "speedup", "evals", "cache hits"
    ));
    for r in &bench.objectives {
        text.push_str(&format!(
            "{:<11} {:<9} {:>13.3e} {:>13.3e} {:>7.2}x {:>6} {:>4} ({:>3.0}%)\n",
            r.objective,
            r.space,
            r.default_score,
            r.best_score,
            r.speedup,
            r.evals,
            r.cache_hits,
            r.cache_hit_rate * 100.0
        ));
    }
    text.push_str("\nhand-picked variants under cycles:\n");
    for (v, s) in &bench.variants.scores {
        let marker = if *v == bench.variants.best_variant { "  <- best hand-picked" } else { "" };
        text.push_str(&format!("  {v:<11} {s:.3e} s{marker}\n"));
    }
    text.push_str(&format!(
        "  tuned       {:.3e} s ({:.3}x of best hand-picked)\n",
        bench.variants.tuned_score, bench.variants.tuned_vs_best_variant
    ));
    text.push_str(&format!(
        "\nsame-seed rerun byte-identical: {}\nbest software-objective speedup: {:.2}x\n",
        bench.rerun_identical, bench.best_software_speedup
    ));
    text
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (qnet, inputs, workload) = if check {
        let (q, i) = small_workload();
        (q, i, "tune-check (small)")
    } else {
        let (q, i) = vgg_workload();
        (q, i, "vgg16-32")
    };
    let bench = run_bench(&qnet, &inputs, workload);
    print!("{}", render(&bench));

    if check {
        let fails = gate(&bench);
        if !fails.is_empty() {
            for f in &fails {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("check: all tuner gates passed");
        return;
    }

    write_artifacts("tune_bench", &render(&bench), &bench);
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_tune.json"), zskip_json::to_string_pretty(&bench))
        .expect("write BENCH_tune.json");
}
