//! SIMD kernel-tier benchmark — emits `BENCH_kernels.json`.
//!
//! Measures the quantized datapath kernels at every CPU tier reachable on
//! this host (scalar / SSE2 / AVX2, see `docs/KERNELS.md`):
//!
//! * **GEMM**: `conv2d_gemm_quant_tier` per tier on three VGG-16-shaped
//!   layers at deep-compression densities. The scalar tier is the
//!   register-blocked seed kernel; SIMD tiers must be bit-identical
//!   (asserted here and property-tested in `crates/nn`).
//! * **Packed conv**: the packed-nonzero span kernel (`conv2d_quant_into`)
//!   per tier on the same layers — the path functional inference runs on.
//! * **Allocations per image**: heap allocations of one quantized forward
//!   pass through the allocating API vs. the [`Scratch`] arena after
//!   warm-up, counted by a counting global allocator. Steady state must
//!   be zero.
//! * **Driver backends**: end-to-end images/s through
//!   `Driver::run_network_scratch` on the scaled VGG-16 spec, per
//!   execution backend (model vs cpu). The cpu backend replaces the
//!   transaction model's per-tile functional sweep with the SIMD `_into`
//!   kernels, so it must not be slower.
//! * **Single image**: the cpu backend with the shared packed-weight
//!   cache and auto worker count against the re-pack-per-image,
//!   single-threaded baseline (the PR-5 path, selected with
//!   `weight_cache(false)`). The speedup is the acceptance number: must
//!   be >= 2x.
//! * **Intra-image threading**: cpu-backend latency at 1/2/4/8 workers
//!   plus the shared-cache hit/miss counters. Outputs are bit-identical
//!   at every width (asserted here; property-tested in
//!   `tests/kernel_tiers.rs`).
//! * **ResNet block**: the 1x1 projection-conv fast path (im2col skipped,
//!   the input borrowed as the patch matrix) against the generic im2col
//!   lowering on a bottleneck-reduce shape, plus the quantized
//!   residual-add cost relative to that conv.
//!
//! `--check` exits nonzero if any SIMD tier is slower than scalar on a
//! reference shape, the steady-state pass allocates, the cpu backend
//! falls behind the model backend, the single-image speedup is below 2x,
//! the auto-width multithreaded latency regresses past the
//! single-threaded one, or the 1x1 fast path is slower than the generic
//! lowering — wired into `scripts/verify.sh`.
//!
//! Writes `BENCH_kernels.json` at the repository root plus the usual
//! `experiments/kernel_bench.{txt,json}` artifacts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use zskip_bench::{make_conv_layer, write_artifacts};
use zskip_core::config::AccelConfig;
use zskip_core::driver::{BackendKind, Driver};
use zskip_core::weight_cache_stats;
use zskip_hls::Variant;
use zskip_json::{Json, ToJson};
use zskip_nn::conv::{conv2d_quant_into, tap_cache_stats};
use zskip_nn::eval::synthetic_inputs;
use zskip_nn::gemm::conv2d_gemm_quant_tier;
use zskip_nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip_nn::simd::KernelTier;
use zskip_nn::vgg16::vgg16_scaled_spec;
use zskip_nn::{ConvPool, Scratch};
use zskip_quant::cache::CacheStats;
use zskip_quant::DensityProfile;
use zskip_tensor::Tensor;

/// Counts heap allocations so the zero-allocation contract is measurable
/// from a release binary, not just the counting-allocator test.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One kernel × tier timing.
struct TierTiming {
    tier: &'static str,
    ms: f64,
    /// Scalar time over this tier's time (1.0 for scalar itself).
    speedup: f64,
}

impl ToJson for TierTiming {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tier", self.tier.to_json()),
            ("ms", self.ms.to_json()),
            ("speedup", self.speedup.to_json()),
        ])
    }
}

struct ShapeResult {
    layer: String,
    out_c: usize,
    in_c: usize,
    hw: usize,
    density: f64,
    gemm: Vec<TierTiming>,
    packed: Vec<TierTiming>,
    best_tier: &'static str,
    /// Scalar blocked GEMM over the best SIMD tier's GEMM.
    best_gemm_speedup: f64,
}

impl ToJson for ShapeResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("layer", self.layer.to_json()),
            ("out_c", self.out_c.to_json()),
            ("in_c", self.in_c.to_json()),
            ("hw", self.hw.to_json()),
            ("density", self.density.to_json()),
            ("gemm", self.gemm.to_json()),
            ("packed", self.packed.to_json()),
            ("best_tier", self.best_tier.to_json()),
            ("best_gemm_speedup", self.best_gemm_speedup.to_json()),
        ])
    }
}

struct AllocResult {
    /// Allocations for one image through the allocating `forward_quant`.
    allocating_per_image: u64,
    /// Allocations for one steady-state image through the scratch arena.
    scratch_steady_per_image: u64,
    /// Arena grow events after streaming several images (1 = warm-up only).
    grow_events: u64,
    /// Arena footprint after warm-up.
    arena_bytes: usize,
}

impl ToJson for AllocResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("allocating_per_image", self.allocating_per_image.to_json()),
            ("scratch_steady_per_image", self.scratch_steady_per_image.to_json()),
            ("grow_events", self.grow_events.to_json()),
            ("arena_bytes", self.arena_bytes.to_json()),
        ])
    }
}

/// One driver backend's end-to-end throughput on the scaled VGG spec.
struct BackendTiming {
    backend: &'static str,
    ms_per_image: f64,
    images_per_s: f64,
}

impl ToJson for BackendTiming {
    fn to_json(&self) -> Json {
        Json::obj([
            ("backend", self.backend.to_json()),
            ("ms_per_image", self.ms_per_image.to_json()),
            ("images_per_s", self.images_per_s.to_json()),
        ])
    }
}

struct CpuBackendResult {
    /// Input height/width of the scaled VGG-16 spec the backends ran.
    hw: usize,
    backends: Vec<BackendTiming>,
    /// Cpu images/s over model images/s (the `--check` acceptance
    /// number: must be >= 1).
    cpu_speedup_vs_model: f64,
}

impl ToJson for CpuBackendResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hw", self.hw.to_json()),
            ("backends", self.backends.to_json()),
            ("cpu_speedup_vs_model", self.cpu_speedup_vs_model.to_json()),
        ])
    }
}

fn cache_to_json(s: &CacheStats) -> Json {
    Json::obj([
        ("entries", s.entries.to_json()),
        ("hits", s.hits.to_json()),
        ("misses", s.misses.to_json()),
        ("bytes", s.bytes.to_json()),
    ])
}

/// The tentpole acceptance number: optimized single-image cpu-backend
/// latency (shared weight cache + auto workers) against the PR-5
/// baseline (re-pack per image, single-threaded).
struct SingleImageResult {
    baseline_ms: f64,
    optimized_ms: f64,
    /// `baseline_ms / optimized_ms`; `--check` requires >= 2.
    speedup: f64,
}

impl ToJson for SingleImageResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("baseline_ms", self.baseline_ms.to_json()),
            ("optimized_ms", self.optimized_ms.to_json()),
            ("speedup", self.speedup.to_json()),
        ])
    }
}

/// Cpu-backend latency at one intra-image worker count.
struct WorkerTiming {
    workers: usize,
    ms_per_image: f64,
}

impl ToJson for WorkerTiming {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workers", self.workers.to_json()),
            ("ms_per_image", self.ms_per_image.to_json()),
        ])
    }
}

struct IntraImageResult {
    /// The host's available parallelism (`--threads 0`).
    auto_workers: usize,
    timings: Vec<WorkerTiming>,
    /// Auto-width latency over single-threaded latency; `--check`
    /// requires it to stay within a small noise tolerance of 1.
    mt_vs_single: f64,
    group_cache: CacheStats,
    tap_cache: CacheStats,
}

impl ToJson for IntraImageResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("auto_workers", self.auto_workers.to_json()),
            ("timings", self.timings.to_json()),
            ("mt_vs_single", self.mt_vs_single.to_json()),
            ("group_cache", cache_to_json(&self.group_cache)),
            ("tap_cache", cache_to_json(&self.tap_cache)),
        ])
    }
}

/// The residual-block section: the 1x1 projection fast path against the
/// generic im2col lowering, plus the quantized residual-add overhead.
struct ResnetBlockResult {
    out_c: usize,
    in_c: usize,
    hw: usize,
    density: f64,
    tier: String,
    /// Forced im2col lowering of the same 1x1 conv.
    generic_ms: f64,
    /// The pointwise fast path (input borrowed as the patch matrix).
    pointwise_ms: f64,
    /// `generic_ms / pointwise_ms`; `--check` requires >= 1.
    pointwise_speedup: f64,
    /// Quantized residual add of the two branch outputs.
    add_ms: f64,
    /// `add_ms / pointwise_ms` — the join cost relative to the conv.
    add_overhead_vs_conv: f64,
}

impl ToJson for ResnetBlockResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("out_c", self.out_c.to_json()),
            ("in_c", self.in_c.to_json()),
            ("hw", self.hw.to_json()),
            ("density", self.density.to_json()),
            ("tier", self.tier.to_json()),
            ("generic_ms", self.generic_ms.to_json()),
            ("pointwise_ms", self.pointwise_ms.to_json()),
            ("pointwise_speedup", self.pointwise_speedup.to_json()),
            ("add_ms", self.add_ms.to_json()),
            ("add_overhead_vs_conv", self.add_overhead_vs_conv.to_json()),
        ])
    }
}

struct Bench {
    host_tiers: Vec<String>,
    dispatch_tier: String,
    shapes: Vec<ShapeResult>,
    allocs: AllocResult,
    cpu_backend: CpuBackendResult,
    single_image: SingleImageResult,
    intra_image: IntraImageResult,
    resnet_block: ResnetBlockResult,
    /// Best SIMD GEMM speedup on the conv3_2-like shape (the acceptance
    /// number: must be >= 2x).
    conv3_2_gemm_speedup: f64,
}

impl ToJson for Bench {
    fn to_json(&self) -> Json {
        Json::obj([
            ("host_tiers", self.host_tiers.to_json()),
            ("dispatch_tier", self.dispatch_tier.to_json()),
            ("shapes", self.shapes.to_json()),
            ("allocs", self.allocs.to_json()),
            ("cpu_backend", self.cpu_backend.to_json()),
            ("single_image", self.single_image.to_json()),
            ("intra_image", self.intra_image.to_json()),
            ("resnet_block", self.resnet_block.to_json()),
            ("conv3_2_gemm_speedup", self.conv3_2_gemm_speedup.to_json()),
        ])
    }
}

/// Best-of-3 wall time of `f`, in seconds.
fn time_best<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("ran at least once"))
}

fn bench_shapes() -> Vec<ShapeResult> {
    let layers: [(&str, usize, usize, usize, f64); 3] = [
        ("conv1_1-like", 64, 3, 32, 0.58),
        ("conv2_2-like", 128, 128, 16, 0.36),
        ("conv3_2-like", 256, 256, 8, 0.29),
    ];
    let tiers = KernelTier::supported();
    layers
        .into_iter()
        .map(|(name, out_c, in_c, hw, density)| {
            let (qw, tiled, _) = make_conv_layer(out_c, in_c, hw, density, 7);
            let input = tiled.to_tensor();

            let mut gemm = Vec::new();
            let mut scalar_gemm_ms = f64::NAN;
            let mut oracle = None;
            for &tier in &tiers {
                let (s, out) = time_best(|| conv2d_gemm_quant_tier(&input, &qw, 1, 0, tier));
                match &oracle {
                    None => oracle = Some(out),
                    Some(o) => assert_eq!(o, &out, "{name}: GEMM tier {tier} diverged from scalar"),
                }
                let ms = s * 1e3;
                if tier == KernelTier::Scalar {
                    scalar_gemm_ms = ms;
                }
                gemm.push(TierTiming { tier: tier.name(), ms, speedup: scalar_gemm_ms / ms });
            }

            let mut packed = Vec::new();
            let mut scalar_packed_ms = f64::NAN;
            let mut packed_oracle = None;
            for &tier in &tiers {
                let mut acc = Vec::new();
                let mut out = Tensor::zeros(1, 1, 1);
                let (s, ()) =
                    time_best(|| conv2d_quant_into(&input, &qw, 1, 0, tier, &mut acc, &mut out));
                match &packed_oracle {
                    None => packed_oracle = Some(out.clone()),
                    Some(o) => assert_eq!(o, &out, "{name}: packed tier {tier} diverged from scalar"),
                }
                let ms = s * 1e3;
                if tier == KernelTier::Scalar {
                    scalar_packed_ms = ms;
                }
                packed.push(TierTiming { tier: tier.name(), ms, speedup: scalar_packed_ms / ms });
            }

            let best = gemm.iter().skip(1).min_by(|a, b| a.ms.total_cmp(&b.ms));
            let (best_tier, best_gemm_speedup) = match best {
                Some(t) => (t.tier, t.speedup),
                None => ("scalar", 1.0),
            };
            ShapeResult { layer: name.to_string(), out_c, in_c, hw, density, gemm, packed, best_tier, best_gemm_speedup }
        })
        .collect()
}

fn bench_allocs() -> AllocResult {
    let spec = vgg16_scaled_spec(32);
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 1, density: DensityProfile::deep_compression_vgg16() },
    );
    let qnet = net.quantize(&synthetic_inputs(2, 1, spec.input));
    let inputs = synthetic_inputs(3, 4, spec.input);

    let mut scratch = Scratch::new();
    // Warm-up image: grows the arena and fills the lazy weight caches.
    let _ = qnet.forward_quant_scratch(&inputs[0], &mut scratch);
    let arena_bytes = scratch.capacity_bytes();

    // Allocating API (one already-warm image, so only per-layer tensors).
    let before = ALLOCS.load(Ordering::Relaxed);
    let _ = qnet.forward_quant(&inputs[1]);
    let allocating_per_image = ALLOCS.load(Ordering::Relaxed) - before;

    // Scratch arena steady state over the remaining images.
    let mut scratch_steady_per_image = 0;
    for input in &inputs[1..] {
        let before = ALLOCS.load(Ordering::Relaxed);
        let _ = qnet.forward_quant_scratch(input, &mut scratch);
        scratch_steady_per_image = (ALLOCS.load(Ordering::Relaxed) - before).max(scratch_steady_per_image);
    }

    AllocResult {
        allocating_per_image,
        scratch_steady_per_image,
        grow_events: scratch.grow_events(),
        arena_bytes,
    }
}

/// The scaled VGG-16 end-to-end workload shared by the driver benches.
fn vgg_workload(hw: usize) -> (QuantizedNetwork, Vec<Tensor<f32>>, AccelConfig) {
    let spec = vgg16_scaled_spec(hw);
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 1, density: DensityProfile::deep_compression_vgg16() },
    );
    let qnet = net.quantize(&synthetic_inputs(2, 1, spec.input));
    let inputs = synthetic_inputs(5, 2, spec.input);
    (qnet, inputs, AccelConfig::for_variant(Variant::U256Opt))
}

/// Best-of-3 ms/image of `driver` over `inputs` on a warmed scratch,
/// returning the warm-up image's output for bit-identity checks.
fn drive_ms_per_image(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
) -> (f64, Vec<zskip_quant::Sm8>) {
    let mut scratch = Scratch::new();
    // Warm-up image: grows the arena, the worker pool and the caches.
    let out = driver.run_network_scratch(qnet, &inputs[0], &mut scratch).expect("runs").output;
    let (s, ()) = time_best(|| {
        for input in inputs {
            driver.run_network_scratch(qnet, input, &mut scratch).expect("runs");
        }
    });
    (s * 1e3 / inputs.len() as f64, out)
}

fn bench_cpu_backend(
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    config: AccelConfig,
) -> CpuBackendResult {
    let mut backends = Vec::new();
    let mut golden: Option<Vec<zskip_quant::Sm8>> = None;
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        let driver = Driver::builder(config).backend(backend).build().unwrap();
        let (ms_per_image, out) = drive_ms_per_image(&driver, qnet, inputs);
        match &golden {
            None => golden = Some(out),
            Some(g) => assert_eq!(g, &out, "{backend}: backend diverged from model"),
        }
        backends.push(BackendTiming {
            backend: backend.name(),
            ms_per_image,
            images_per_s: 1e3 / ms_per_image,
        });
    }
    let per_s = |name: &str| {
        backends.iter().find(|b| b.backend == name).map(|b| b.images_per_s).unwrap_or(f64::NAN)
    };
    let cpu_speedup_vs_model = per_s("cpu") / per_s("model");
    CpuBackendResult { hw: 32, backends, cpu_speedup_vs_model }
}

fn bench_single_image(
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    config: AccelConfig,
) -> SingleImageResult {
    // PR-5 path: re-pack weights per image, parse the scratchpad per
    // instruction, single-threaded conv.
    let baseline = Driver::builder(config)
        .backend(BackendKind::Cpu)
        .weight_cache(false)
        .threads(1)
        .build()
        .expect("valid config");
    // This PR's path: shared packed-weight cache, auto worker count.
    let optimized =
        Driver::builder(config).backend(BackendKind::Cpu).threads(0).build().expect("valid config");

    let mut base_scratch = Scratch::new();
    let mut opt_scratch = Scratch::new();
    let base_out =
        baseline.run_network_scratch(qnet, &inputs[0], &mut base_scratch).expect("runs").output;
    let opt_out =
        optimized.run_network_scratch(qnet, &inputs[0], &mut opt_scratch).expect("runs").output;
    assert_eq!(base_out, opt_out, "optimized cpu path diverged from the baseline");

    // Interleave the two configurations round by round so slow clock
    // drift (thermal / frequency throttling over a long bench run) hits
    // both equally instead of skewing the ratio.
    let mut baseline_ms = f64::INFINITY;
    let mut optimized_ms = f64::INFINITY;
    for _ in 0..3 {
        for (driver, scratch, best) in [
            (&baseline, &mut base_scratch, &mut baseline_ms),
            (&optimized, &mut opt_scratch, &mut optimized_ms),
        ] {
            let t0 = Instant::now();
            for input in inputs {
                driver.run_network_scratch(qnet, input, scratch).expect("runs");
            }
            *best = best.min(t0.elapsed().as_secs_f64() * 1e3 / inputs.len() as f64);
        }
    }
    SingleImageResult { baseline_ms, optimized_ms, speedup: baseline_ms / optimized_ms }
}

fn bench_intra_image(
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    config: AccelConfig,
) -> IntraImageResult {
    let mut timings = Vec::new();
    let mut golden: Option<Vec<zskip_quant::Sm8>> = None;
    for workers in [1usize, 2, 4, 8] {
        let driver = Driver::builder(config)
            .backend(BackendKind::Cpu)
            .threads(workers)
            .build()
            .expect("valid config");
        let (ms_per_image, out) = drive_ms_per_image(&driver, qnet, inputs);
        match &golden {
            None => golden = Some(out),
            Some(g) => assert_eq!(g, &out, "{workers} workers: output diverged from 1 worker"),
        }
        timings.push(WorkerTiming { workers, ms_per_image });
    }
    let auto_workers = ConvPool::auto_threads();
    let ms_at = |w: usize| {
        timings
            .iter()
            .filter(|t| t.workers <= w)
            .min_by(|a, b| a.workers.cmp(&b.workers).reverse())
            .map(|t| t.ms_per_image)
            .unwrap_or(f64::NAN)
    };
    IntraImageResult {
        auto_workers,
        mt_vs_single: ms_at(auto_workers) / ms_at(1),
        timings,
        group_cache: weight_cache_stats(),
        tap_cache: tap_cache_stats(),
    }
}

fn bench_resnet_block() -> ResnetBlockResult {
    use zskip_core::rng::SplitMix64;
    use zskip_nn::eltwise::add_quant;
    use zskip_nn::gemm::conv2d_gemm_quant_tier_generic;
    use zskip_quant::{Requantizer, Sm8};

    // Bottleneck-reduce-like 1x1 projection: 256 channels down to 64,
    // the shape where the im2col copy is largest relative to the GEMM.
    let (out_c, in_c, hw, density) = (64usize, 256usize, 28usize, 0.45);
    let mut rng = SplitMix64::new(11);
    let w: Vec<Sm8> = (0..out_c * in_c)
        .map(|_| {
            let h = rng.next_u64();
            if (h >> 32) % 1000 < (density * 1000.0) as u64 {
                Sm8::from_i32_saturating(((h >> 17) % 253) as i32 - 126)
            } else {
                Sm8::ZERO
            }
        })
        .collect();
    let qw = zskip_nn::conv::QuantConvWeights::new(
        out_c,
        in_c,
        1,
        w,
        vec![0; out_c],
        Requantizer::from_ratio(1.0 / 64.0),
        false,
    );
    let input = Tensor::from_fn(in_c, hw, hw, |c, y, x| {
        Sm8::from_i32_saturating(((c * 31 + y * 7 + x) % 200) as i32 - 100)
    });
    let tier = zskip_nn::dispatch();

    let fast = conv2d_gemm_quant_tier(&input, &qw, 1, 0, tier);
    let generic = conv2d_gemm_quant_tier_generic(&input, &qw, 1, 0, tier);
    assert_eq!(fast, generic, "1x1 fast path diverged from the im2col lowering");

    // Interleave the two lowerings round by round so clock drift hits
    // both equally instead of skewing the ratio.
    const REPS: usize = 8;
    let mut generic_ms = f64::INFINITY;
    let mut pointwise_ms = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..REPS {
            let _ = conv2d_gemm_quant_tier_generic(&input, &qw, 1, 0, tier);
        }
        generic_ms = generic_ms.min(t0.elapsed().as_secs_f64() * 1e3 / REPS as f64);
        let t0 = Instant::now();
        for _ in 0..REPS {
            let _ = conv2d_gemm_quant_tier(&input, &qw, 1, 0, tier);
        }
        pointwise_ms = pointwise_ms.min(t0.elapsed().as_secs_f64() * 1e3 / REPS as f64);
    }

    // The residual join: quantized elementwise add of the branch outputs.
    let skip = Tensor::from_fn(out_c, hw, hw, |c, y, x| {
        Sm8::from_i32_saturating(((c * 13 + y * 5 + x * 3) % 200) as i32 - 100)
    });
    let (s, _) = time_best(|| {
        for _ in 0..REPS {
            let _ = add_quant(&fast, &skip, Requantizer::IDENTITY, Requantizer::IDENTITY, true);
        }
    });
    let add_ms = s * 1e3 / REPS as f64;

    ResnetBlockResult {
        out_c,
        in_c,
        hw,
        density,
        tier: tier.name().to_string(),
        generic_ms,
        pointwise_ms,
        pointwise_speedup: generic_ms / pointwise_ms,
        add_ms,
        add_overhead_vs_conv: add_ms / pointwise_ms,
    }
}

fn render(bench: &Bench) -> String {
    let mut text = String::new();
    text.push_str(&format!(
        "SIMD kernel tiers (host: {}; dispatch: {})\n\n",
        bench.host_tiers.join(", "),
        bench.dispatch_tier
    ));
    text.push_str(&format!(
        "{:<14} {:>8} {:<8} {:>11} {:>9} {:>11} {:>9}\n",
        "layer", "density", "tier", "gemm ms", "speedup", "packed ms", "speedup"
    ));
    for s in &bench.shapes {
        for (g, p) in s.gemm.iter().zip(&s.packed) {
            text.push_str(&format!(
                "{:<14} {:>8.2} {:<8} {:>11.2} {:>8.2}x {:>11.2} {:>8.2}x\n",
                s.layer, s.density, g.tier, g.ms, g.speedup, p.ms, p.speedup
            ));
        }
    }
    text.push('\n');
    for s in &bench.shapes {
        text.push_str(&format!(
            "{}: best SIMD GEMM tier {} at {:.2}x over blocked scalar\n",
            s.layer, s.best_tier, s.best_gemm_speedup
        ));
    }
    let a = &bench.allocs;
    text.push_str(&format!(
        "\nallocations/image: {} (allocating API) -> {} (scratch arena, steady state)\n",
        a.allocating_per_image, a.scratch_steady_per_image
    ));
    text.push_str(&format!(
        "arena: {} grow event(s), {} KiB footprint after warm-up\n",
        a.grow_events,
        a.arena_bytes / 1024
    ));
    let c = &bench.cpu_backend;
    text.push_str(&format!("\ndriver backends (vgg16-{}, bit-identical outputs):\n", c.hw));
    for b in &c.backends {
        text.push_str(&format!(
            "  {:<6} {:>8.2} ms/image  {:>7.2} images/s\n",
            b.backend, b.ms_per_image, b.images_per_s
        ));
    }
    text.push_str(&format!("  cpu backend at {:.2}x model throughput\n", c.cpu_speedup_vs_model));
    let si = &bench.single_image;
    text.push_str(&format!(
        "\nsingle image (cpu backend): {:.2} ms baseline (re-pack per image, 1 thread) -> {:.2} ms optimized (shared cache, auto threads): {:.2}x\n",
        si.baseline_ms, si.optimized_ms, si.speedup
    ));
    let ii = &bench.intra_image;
    text.push_str(&format!("\nintra-image workers (auto = {}):\n", ii.auto_workers));
    for t in &ii.timings {
        text.push_str(&format!("  {:>2} workers {:>8.2} ms/image\n", t.workers, t.ms_per_image));
    }
    text.push_str(&format!(
        "  group cache: {} entries, {} hits / {} misses, {} KiB; tap cache: {} entries, {} hits / {} misses, {} KiB\n",
        ii.group_cache.entries,
        ii.group_cache.hits,
        ii.group_cache.misses,
        ii.group_cache.bytes / 1024,
        ii.tap_cache.entries,
        ii.tap_cache.hits,
        ii.tap_cache.misses,
        ii.tap_cache.bytes / 1024,
    ));
    let rb = &bench.resnet_block;
    text.push_str(&format!(
        "\nresnet block (1x1 projection {}->{} @ {}x{}, tier {}):\n",
        rb.in_c, rb.out_c, rb.hw, rb.hw, rb.tier
    ));
    text.push_str(&format!(
        "  generic im2col {:.3} ms -> pointwise fast path {:.3} ms ({:.2}x)\n",
        rb.generic_ms, rb.pointwise_ms, rb.pointwise_speedup
    ));
    text.push_str(&format!(
        "  residual add {:.3} ms ({:.2}x of the 1x1 conv)\n",
        rb.add_ms, rb.add_overhead_vs_conv
    ));
    text
}

/// `--check` policy: every SIMD tier must beat scalar on every reference
/// shape for both kernels, and steady state must not allocate.
fn check(bench: &Bench) -> Result<(), String> {
    for s in &bench.shapes {
        for t in s.gemm.iter().chain(&s.packed).filter(|t| t.tier != "scalar") {
            if t.speedup < 1.0 {
                return Err(format!(
                    "{}: tier {} is {:.2}x vs scalar (slower)",
                    s.layer, t.tier, t.speedup
                ));
            }
        }
    }
    if bench.allocs.scratch_steady_per_image != 0 {
        return Err(format!(
            "steady-state forward pass performed {} allocations",
            bench.allocs.scratch_steady_per_image
        ));
    }
    if bench.cpu_backend.cpu_speedup_vs_model < 1.0 {
        return Err(format!(
            "cpu backend is slower than the model backend's functional sweep ({:.2}x)",
            bench.cpu_backend.cpu_speedup_vs_model
        ));
    }
    if bench.single_image.speedup < 2.0 {
        return Err(format!(
            "single-image cpu speedup is {:.2}x vs the re-pack-per-image baseline (need >= 2x)",
            bench.single_image.speedup
        ));
    }
    // Auto-width multithreading must not be worse than single-threaded
    // (10% tolerance for timer noise; on a single-core host auto == 1 and
    // this compares a config with itself).
    if bench.intra_image.mt_vs_single > 1.10 {
        return Err(format!(
            "multithreaded single-image latency regressed: {:.2}x the single-threaded latency",
            bench.intra_image.mt_vs_single
        ));
    }
    if bench.resnet_block.pointwise_speedup < 1.0 {
        return Err(format!(
            "1x1 pointwise fast path is {:.2}x vs the generic im2col lowering (must not be slower)",
            bench.resnet_block.pointwise_speedup
        ));
    }
    Ok(())
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let (qnet, inputs, config) = vgg_workload(32);
    let bench = Bench {
        host_tiers: KernelTier::supported().iter().map(|t| t.name().to_string()).collect(),
        dispatch_tier: zskip_nn::dispatch().name().to_string(),
        shapes: bench_shapes(),
        allocs: bench_allocs(),
        cpu_backend: bench_cpu_backend(&qnet, &inputs, config),
        single_image: bench_single_image(&qnet, &inputs, config),
        intra_image: bench_intra_image(&qnet, &inputs, config),
        resnet_block: bench_resnet_block(),
        conv3_2_gemm_speedup: 0.0,
    };
    let conv3_2 = bench
        .shapes
        .iter()
        .find(|s| s.layer == "conv3_2-like")
        .map(|s| s.best_gemm_speedup)
        .unwrap_or(0.0);
    let bench = Bench { conv3_2_gemm_speedup: conv3_2, ..bench };

    let text = render(&bench);
    print!("{text}");

    write_artifacts("kernel_bench", &text, &bench);
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_kernels.json"), zskip_json::to_string_pretty(&bench))
        .expect("write BENCH_kernels.json");

    if check_mode {
        if let Err(msg) = check(&bench) {
            eprintln!("kernel_bench --check FAILED: {msg}");
            std::process::exit(1);
        }
        println!("kernel_bench --check OK");
    }
}
