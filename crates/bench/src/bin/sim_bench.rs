//! Simulator scheduler benchmark: dense stepper vs. event-driven engine
//! on VGG-16 engine-level conv/pool blocks. Emits `BENCH_sim.json` at the
//! repository root plus the usual `experiments/sim_bench.{txt,json}`
//! artifacts.
//!
//! Both schedulers run the identical workload and the reports are asserted
//! bit-identical before any timing is reported — a speedup over a wrong
//! simulation would be worthless.
//!
//! ```sh
//! cargo run --release --bin sim_bench            # full benchmark
//! cargo run --release --bin sim_bench -- --check # fast regression guard
//! ```
//!
//! `--check` runs a reduced workload and exits nonzero if the event-driven
//! scheduler produces different results or a lower cycles/s than the dense
//! stepper — the cargo-bench-free timing regression guard wired into
//! `scripts/verify.sh`.

use std::time::Instant;
use zskip_bench::{build_engine_workload, make_conv_layer, write_artifacts, HARNESS_SEED};
use zskip_core::cycle::{
    run_hosted, run_hosted_dense, run_instructions, run_instructions_dense, CycleOutcome, HostLayer, HostModel,
};
use zskip_core::{AccelConfig, BankSet, Instruction};
use zskip_hls::AccelArch;
use zskip_json::{Json, ToJson};
use zskip_quant::Sm8;
use zskip_sim::Fifo;
use zskip_soc::{DdrModel, HostCpu};
use zskip_tensor::Tensor;

fn config() -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 8192 }, 100.0)
}

/// One workload measured under both schedulers.
struct WorkloadResult {
    name: &'static str,
    density: f64,
    cycles: u64,
    dense_wall_s: f64,
    dense_cycles_per_s: f64,
    event_wall_s: f64,
    event_cycles_per_s: f64,
    speedup: f64,
    parks: u64,
    wakes: u64,
    executed_cycles: u64,
    idle_jumped: u64,
    lean_cycles: u64,
}

impl ToJson for WorkloadResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("density", self.density.to_json()),
            ("cycles", self.cycles.to_json()),
            ("dense_wall_s", self.dense_wall_s.to_json()),
            ("dense_cycles_per_s", self.dense_cycles_per_s.to_json()),
            ("event_wall_s", self.event_wall_s.to_json()),
            ("event_cycles_per_s", self.event_cycles_per_s.to_json()),
            ("speedup", self.speedup.to_json()),
            ("parks", self.parks.to_json()),
            ("wakes", self.wakes.to_json()),
            ("executed_cycles", self.executed_cycles.to_json()),
            ("idle_jumped", self.idle_jumped.to_json()),
            ("lean_cycles", self.lean_cycles.to_json()),
        ])
    }
}

struct Bench {
    workloads: Vec<WorkloadResult>,
    fifo_ops_per_s: f64,
}

impl ToJson for Bench {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workloads", self.workloads.to_json()),
            ("fifo_ops_per_s", self.fifo_ops_per_s.to_json()),
        ])
    }
}

fn input(c: usize, hw: usize) -> Tensor<Sm8> {
    Tensor::from_fn(c, hw, hw, |ch, y, x| Sm8::from_i32_saturating(((ch * 31 + y * 7 + x) % 200) as i32 - 100))
}

/// Best-of-`n` wall time of `f`, in seconds, plus the last result.
fn time_best<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("ran at least once"))
}

/// Times both schedulers on the same workload, asserts bit-identity, and
/// folds the timings plus the event run's scheduler counters into one row.
fn measure(
    name: &'static str,
    density: f64,
    reps: usize,
    mut dense_run: impl FnMut() -> CycleOutcome,
    mut event_run: impl FnMut() -> CycleOutcome,
) -> WorkloadResult {
    let (dense_wall_s, dense) = time_best(reps, &mut dense_run);
    let (event_wall_s, event) = time_best(reps, &mut event_run);

    assert_eq!(dense.cycles, event.cycles, "{name}: cycle counts diverged");
    assert_eq!(dense.report, event.report, "{name}: kernel stats or counters diverged");
    assert_eq!(dense.banks.stats(), event.banks.stats(), "{name}: bank traffic diverged");

    let sched = event.report.sched;
    WorkloadResult {
        name,
        density,
        cycles: event.cycles,
        dense_wall_s,
        dense_cycles_per_s: dense.cycles as f64 / dense_wall_s,
        event_wall_s,
        event_cycles_per_s: event.cycles as f64 / event_wall_s,
        speedup: dense_wall_s / event_wall_s,
        parks: sched.parks,
        wakes: sched.wakes,
        executed_cycles: sched.executed_cycles,
        idle_jumped: sched.idle_jumped,
        lean_cycles: sched.lean_cycles,
    }
}

fn bench_workload(name: &'static str, density: f64, hw: usize, reps: usize) -> WorkloadResult {
    let cfg = config();
    let (qw, _, _) = make_conv_layer(64, 64, hw, density, HARNESS_SEED);
    let (banks, scratch, instrs): (BankSet, Vec<u8>, Vec<Instruction>) =
        build_engine_workload(&cfg, &qw, &input(64, hw));

    measure(
        name,
        density,
        reps,
        || run_instructions_dense(&cfg, banks.clone(), scratch.clone(), &instrs, u64::MAX).expect("dense runs"),
        || run_instructions(&cfg, banks.clone(), scratch.clone(), &instrs, u64::MAX).expect("event runs"),
    )
}

/// ARM-side pre-processing (tiling, padding, quantization, weight
/// packing) costs roughly 30 A9 cycles per staged byte; the HPS runs
/// ~6.7x the fabric clock, so ≈ 4.5 fabric cycles per byte.
fn preproc_fabric_cycles(bytes: u64) -> u64 {
    bytes * 9 / 2
}

/// The hosted system workload (paper §IV-C): the host kernel stages each
/// layer's weights and feature maps over DDR, pre-processes them on the
/// ARM, dispatches the layer's instructions, and polls for quiescence.
/// Staging latencies come from the SoC-level DDR burst model and host
/// driver constants applied to the actual staged byte counts, so the
/// engine-level schedule matches what the SoC backend would charge. The
/// design spends most of its cycles fully quiescent — the workload class
/// where the event scheduler's idle jump dominates.
fn bench_hosted_workload(name: &'static str, density: f64, hw: usize, n_layers: usize, reps: usize) -> WorkloadResult {
    let cfg = config();
    let (qw, _, _) = make_conv_layer(64, 64, hw, density, HARNESS_SEED);
    let (banks, scratch, instrs): (BankSet, Vec<u8>, Vec<Instruction>) =
        build_engine_workload(&cfg, &qw, &input(64, hw));

    let ddr = DdrModel::new(0);
    let host = HostCpu::new();
    // Each dispatch batch stages its own slice of the weight scratchpad
    // plus the layer's full feature-map traffic: the SoC flow DMAs the
    // IFM in and the OFM back around every layer launch.
    let ifm_bytes = 64 * (hw + 2) * (hw + 2);
    let ofm_bytes = 64 * hw * hw;
    let layer_bytes = (scratch.len() / n_layers + ifm_bytes + ofm_bytes) as u64;
    let staging_cycles = ddr.burst_cycles(layer_bytes as usize)
        + preproc_fabric_cycles(layer_bytes)
        + host.sw_overhead_cycles
        + host.bridge_cycles;

    let per_chunk = instrs.len().div_ceil(n_layers);
    let model = HostModel {
        poll_interval: host.poll_interval_cycles(),
        layers: instrs.chunks(per_chunk).map(|c| HostLayer { staging_cycles, instrs: c.to_vec() }).collect(),
    };

    measure(
        name,
        density,
        reps,
        || run_hosted_dense(&cfg, banks.clone(), scratch.clone(), model.clone(), u64::MAX).expect("dense runs"),
        || run_hosted(&cfg, banks.clone(), scratch.clone(), model.clone(), u64::MAX).expect("event runs"),
    )
}

/// Raw ring-buffer throughput: steady-state push+pop pairs per second
/// through one registered FIFO, including the per-cycle `end_cycle`
/// commit. Isolates the queue from the scheduler.
fn bench_fifo_ops() -> f64 {
    let mut f: Fifo<u64> = Fifo::new("bench", 8);
    // Prefill so steady state has both a push and a pop every cycle.
    for i in 0..4u64 {
        f.try_push(i).expect("room");
        f.end_cycle();
    }
    let iters = 4_000_000u64;
    let t0 = Instant::now();
    let mut sum = 0u64;
    for i in 0..iters {
        if let Some(v) = f.try_pop() {
            sum = sum.wrapping_add(v);
        }
        f.try_push(i).expect("pop freed a slot");
        f.end_cycle();
    }
    let wall = t0.elapsed().as_secs_f64();
    assert!(sum > 0, "pops must have observed data");
    iters as f64 * 2.0 / wall
}

fn render(bench: &Bench) -> String {
    let mut text = String::new();
    text.push_str("Simulator scheduler: dense stepper vs. event-driven engine\n\n");
    text.push_str(&format!(
        "{:<24} {:>8} {:>10} {:>11} {:>11} {:>8} {:>9} {:>9} {:>9}\n",
        "workload", "density", "cycles", "dense Mc/s", "event Mc/s", "speedup", "parks", "wakes", "jumped"
    ));
    for w in &bench.workloads {
        text.push_str(&format!(
            "{:<24} {:>8.2} {:>10} {:>11.2} {:>11.2} {:>7.2}x {:>9} {:>9} {:>9}\n",
            w.name,
            w.density,
            w.cycles,
            w.dense_cycles_per_s / 1e6,
            w.event_cycles_per_s / 1e6,
            w.speedup,
            w.parks,
            w.wakes,
            w.idle_jumped,
        ));
    }
    text.push_str(&format!(
        "\nring-buffer FIFO: {:.1}M ops/s (steady-state push+pop)\n",
        bench.fifo_ops_per_s / 1e6
    ));
    text
}

/// Fast regression guard for `scripts/verify.sh`: a reduced hosted
/// workload, exit nonzero if the event scheduler diverges, fails to park,
/// fails to jump the staging gaps, or falls below the dense stepper. The
/// hosted design is mostly quiescent, so the event win is structural
/// (idle cycles are jumped, not ground through) and the guard holds even
/// on a noisy box.
fn check() -> ! {
    let w = bench_hosted_workload("check_hosted_block", 0.35, 16, 2, 2);
    println!(
        "check: {} cycles ({} jumped), dense {:.2}M cycles/s, event {:.2}M cycles/s ({:.2}x), {} parks",
        w.cycles,
        w.idle_jumped,
        w.dense_cycles_per_s / 1e6,
        w.event_cycles_per_s / 1e6,
        w.speedup,
        w.parks
    );
    if w.parks == 0 {
        eprintln!("FAIL: event run parked nothing — scheduler not engaging");
        std::process::exit(1);
    }
    if w.idle_jumped < w.cycles / 2 {
        eprintln!("FAIL: event run ground through quiescent cycles instead of jumping them");
        std::process::exit(1);
    }
    if w.event_cycles_per_s < w.dense_cycles_per_s {
        eprintln!("FAIL: event-driven scheduler regressed below the dense stepper");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    }

    let workloads = vec![
        // The headline: the full system view with the host kernel staging
        // each layer over DDR and polling for quiescence. The design is
        // quiescent for most of its lifetime and the event scheduler
        // jumps those stretches wholesale.
        bench_hosted_workload("vgg16_hosted_system", 0.35, 32, 4, 3),
        // Dense weights: every lane streams full 9-entry filters, the
        // datapath is saturated — the scheduler's worst case.
        bench_workload("vgg_block_dense_weights", 1.0, 32, 3),
        // Deep-compression-grade pruning: the 4-cycle quad-load floor and
        // lockstep bubbles leave most kernels blocked most cycles — the
        // scheduler's home turf.
        bench_workload("vgg_block_pruned", 0.35, 32, 3),
        bench_workload("vgg_block_heavily_pruned", 0.15, 32, 3),
    ];
    let bench = Bench { workloads, fifo_ops_per_s: bench_fifo_ops() };

    let text = render(&bench);
    print!("{text}");
    write_artifacts("sim_bench", &text, &bench);
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_sim.json"), zskip_json::to_string_pretty(&bench))
        .expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}
