//! Regenerates paper Table I: power consumption — peak power (FPGA and
//! board, dynamic parenthesized) and GOPS/W for the optimized variants.

use zskip_bench::{build_vgg16, write_artifacts, ModelKind};
use zskip_hls::Variant;
use zskip_json::{Json, ToJson};
use zskip_perf::power::{gops_per_watt, PowerModel};

struct Row {
    variant: String,
    level: String,
    peak_power_mw: f64,
    dynamic_mw: f64,
    avg_power_mw: f64,
    gops_per_w_avg: f64,
    gops_per_w_peak: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("variant", self.variant.to_json()),
            ("level", self.level.to_json()),
            ("peak_power_mw", self.peak_power_mw.to_json()),
            ("dynamic_mw", self.dynamic_mw.to_json()),
            ("avg_power_mw", self.avg_power_mw.to_json()),
            ("gops_per_w_avg", self.gops_per_w_avg.to_json()),
            ("gops_per_w_peak", self.gops_per_w_peak.to_json()),
        ])
    }
}

fn main() {
    let model = PowerModel::default();
    let qnet = build_vgg16(ModelKind::Pruned);
    let mut rows = Vec::new();
    for variant in [Variant::U256Opt, Variant::U512Opt] {
        let synth = variant.synthesize();
        let config = zskip_core::AccelConfig::for_variant(variant);
        let driver = zskip_core::Driver::builder(config).functional(false).build().unwrap();
        let input = zskip_tensor::Tensor::<f32>::zeros(3, 224, 224);
        let report = driver.run_network(&qnet, &input).expect("VGG-16 fits");
        let sweep = zskip_bench::sweep_point_from_report(variant, ModelKind::Pruned, &config, &report);
        // Peak power: worst-case layer keeps every MAC slot switching.
        // Average power: the run's measured MAC-array activity.
        let p = model.estimate(synth.total.alms, variant.macs_per_cycle(), synth.operating_mhz, 1.0);
        let activity = report.mean_mac_activity(&config);
        let avg = model.estimate(synth.total.alms, variant.macs_per_cycle(), synth.operating_mhz, activity);
        for (level, mw, dynamic, avg_mw) in [
            ("FPGA", p.fpga_mw, p.dynamic_mw, avg.fpga_mw),
            ("Board", p.board_mw, p.dynamic_mw, avg.board_mw),
        ] {
            rows.push(Row {
                variant: variant.label().to_string(),
                level: level.to_string(),
                peak_power_mw: mw,
                dynamic_mw: dynamic,
                avg_power_mw: avg_mw,
                gops_per_w_avg: gops_per_watt(sweep.mean_gops(), mw),
                gops_per_w_peak: gops_per_watt(sweep.peak_gops(), mw),
            });
        }
    }

    let mut text = String::new();
    text.push_str("Table I — Power consumption (peak, worst-case VGG-16 layer)\n\n");
    text.push_str(&format!(
        "{:<18} {:>16} {:>9} {:>10} {:>14}\n",
        "Accelerator", "Peak Power (mW)", "Avg (mW)", "GOPS/W", "GOPS/W (peak)"
    ));
    for r in &rows {
        let power = if r.level == "FPGA" {
            format!("{:.0} ({:.0})", r.peak_power_mw, r.dynamic_mw)
        } else {
            format!("{:.0}", r.peak_power_mw)
        };
        text.push_str(&format!(
            "{:<18} {:>16} {:>9.0} {:>10.1} {:>14.1}\n",
            format!("{} ({})", r.variant, r.level),
            power,
            r.avg_power_mw,
            r.gops_per_w_avg,
            r.gops_per_w_peak
        ));
    }
    text.push_str("\n*dynamic power parenthesized (FPGA rows)\n");
    text.push_str("paper reference: 256-opt 2300 (500) / 9500 mW; 512-opt 3300 (800) / 10800 mW;\n");
    text.push_str("GOPS/W 13.4/37.4 and 13.9/41.8 (FPGA), 3.5/9.05 and 5.6/12.7 (board).\n");
    print!("{text}");
    write_artifacts("table1_power", &text, &rows);
}
