//! Per-layer detail behind Figs. 7-8: cycles, effective GOPS, efficiency
//! and striping factor for every VGG-16 conv layer on the optimized
//! variants (the figure binaries print the aggregates; this prints the
//! layer-resolved data they summarize).

use zskip_bench::{build_vgg16, sweep_point_from_report, ModelKind};
use zskip_core::{AccelConfig, Driver};
use zskip_hls::Variant;
use zskip_perf::RooflineMachine;
use zskip_tensor::Tensor;

fn main() {
    for kind in [ModelKind::ReducedPrecision, ModelKind::Pruned] {
        let qnet = build_vgg16(kind);
        for variant in [Variant::U256Opt, Variant::U512Opt] {
            let config = AccelConfig::for_variant(variant);
            let report = Driver::builder(config).functional(false).build().unwrap()
                .run_network(&qnet, &Tensor::<f32>::zeros(3, 224, 224))
                .expect("VGG-16 fits");
            let p = sweep_point_from_report(variant, kind, &config, &report);
            let machine = RooflineMachine::new(config.macs_per_cycle(), config.clock_mhz, 32);
            println!(
                "{}{}: mean {:.1} GOPS, peak {:.1} GOPS, eff mean {:.2} best {:.2} worst {:.2}, roofline knee {:.0} ops/B",
                p.variant,
                p.model,
                p.mean_gops(),
                p.peak_gops(),
                p.mean_efficiency(),
                p.best_efficiency(),
                p.worst_efficiency(),
                machine.knee_intensity(),
            );
            for (l, raw) in p.layers.iter().zip(report.conv_layers()) {
                // DDR traffic attributable to the layer: IFM + OFM DMA plus
                // weight preloads, at 32 B per System I cycle.
                let ddr_bytes = (raw.stats.io_dma_cycles + raw.stats.weight_dma_cycles) * 32;
                let r = machine.analyze(&l.name, 2 * l.dense_macs, ddr_bytes, l.effective_gops);
                println!(
                    "    {:8} cycles {:>10}  gops {:>6.1}  eff {:>5.2}  stripe {:.3}  {:>6.0} ops/B {:?}-bound",
                    l.name, l.cycles, l.effective_gops, l.efficiency, l.striping_factor, r.intensity, r.bound
                );
            }
        }
    }
}
