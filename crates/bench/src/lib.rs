//! Shared benchmark harness: builds the paper's workloads and regenerates
//! every table and figure of the evaluation (§V).
//!
//! Binaries:
//! * `fig6_area` — ALM usage per accelerator module (paper Fig. 6);
//! * `fig7_efficiency` — cycle efficiency of each variant vs. the ideal
//!   (paper Fig. 7);
//! * `fig8_gops` — absolute effective GOPS across variants (paper Fig. 8);
//! * `table1_power` — power consumption and GOPS/W (paper Table I);
//! * `all_experiments` — everything above plus the in-text numbers,
//!   written to `experiments/` as text and JSON.

use zskip_json::{Json, ToJson};
use zskip_core::{AccelConfig, Driver, InferenceReport};
use zskip_hls::Variant;
use zskip_nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip_nn::vgg16_spec;
use zskip_quant::DensityProfile;
use zskip_tensor::Tensor;

/// Which VGG-16 model variant (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Reduced precision only (variant #1).
    ReducedPrecision,
    /// Reduced precision + pruning (variant #2, deep-compression profile).
    Pruned,
}

impl ModelKind {
    /// Paper-style suffix: pruned results are labelled `-pr`.
    pub fn suffix(&self) -> &'static str {
        match self {
            ModelKind::ReducedPrecision => "",
            ModelKind::Pruned => "-pr",
        }
    }

    /// The density profile for synthesizing this model.
    pub fn density(&self) -> DensityProfile {
        match self {
            ModelKind::ReducedPrecision => DensityProfile::dense(13),
            ModelKind::Pruned => DensityProfile::deep_compression_vgg16(),
        }
    }
}

/// Deterministic seed shared by every harness so results reproduce.
pub const HARNESS_SEED: u64 = 0x5aca_de01;

/// Builds the quantized VGG-16 model of the given kind (synthetic seeded
/// weights; see DESIGN.md §2 for the substitution rationale).
///
/// Activation scales are calibrated on a spatially scaled-down surrogate
/// (same channel structure) because a full 224x224 float forward is
/// needlessly expensive for scale calibration.
pub fn build_vgg16(kind: ModelKind) -> QuantizedNetwork {
    build_vgg16_with_density(kind.density())
}

/// Quantizes `net` with the given per-boundary activation scales (the same
/// arithmetic as `Network::quantize`, with scales supplied instead of
/// calibrated).
pub fn requantize_with_scales(net: &Network, scales: &[f32]) -> QuantizedNetwork {
    use zskip_nn::conv::QuantConvWeights;
    use zskip_nn::fc::QuantFcWeights;
    use zskip_nn::layer::LayerSpec;
    use zskip_nn::model::QuantizedConvLayer;
    use zskip_nn::plan::ExecPlan;
    use zskip_quant::{QuantParams, Requantizer};

    assert_eq!(scales.len(), net.spec.layers.len() + 1, "one scale per layer boundary");
    let mut conv = Vec::new();
    let mut fc = Vec::new();
    let mut conv_i = 0;
    let mut fc_i = 0;
    for (li, layer) in net.spec.layers.iter().enumerate() {
        let s_in = scales[li];
        let s_out = scales[li + 1];
        match layer {
            LayerSpec::Conv { relu, .. } => {
                let w = &net.conv_weights[conv_i];
                let wq = QuantParams::from_max_abs(&w.w);
                conv.push(QuantizedConvLayer {
                    layer_index: li,
                    weights: QuantConvWeights::new(
                        w.out_c,
                        w.in_c,
                        w.k,
                        w.w.iter().map(|&v| wq.quantize(v)).collect(),
                        w.bias.iter().map(|&b| (b / (s_in * wq.scale)).round() as i64).collect(),
                        Requantizer::from_ratio((s_in * wq.scale / s_out) as f64),
                        *relu,
                    ),
                    in_scale: s_in,
                    w_scale: wq.scale,
                    out_scale: s_out,
                });
                conv_i += 1;
            }
            LayerSpec::Fc { relu, .. } => {
                let w = &net.fc_weights[fc_i];
                let wq = QuantParams::from_max_abs(&w.w);
                fc.push(QuantFcWeights {
                    out_features: w.out_features,
                    in_features: w.in_features,
                    w: w.w.iter().map(|&v| wq.quantize(v)).collect(),
                    bias_acc: w.bias.iter().map(|&b| (b / (s_in * wq.scale)).round() as i64).collect(),
                    requant: Requantizer::from_ratio((s_in * wq.scale / s_out) as f64),
                    relu: *relu,
                });
                fc_i += 1;
            }
            _ => {}
        }
    }
    QuantizedNetwork {
        spec: net.spec.clone(),
        plan: ExecPlan::build(&net.spec).expect("network must be shape-valid"),
        input_params: QuantParams { scale: scales[0] },
        activation_scales: scales.to_vec(),
        conv,
        fc,
    }
}

/// One (variant, model) sweep point of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Variant label (`"256-opt"` etc.).
    pub variant: String,
    /// Model label (`""` or `"-pr"`).
    pub model: String,
    /// Operating clock in MHz.
    pub clock_mhz: f64,
    /// Peak hardware MACs/cycle.
    pub macs_per_cycle: u64,
    /// Per-conv-layer results.
    pub layers: Vec<LayerPoint>,
}

/// Per-layer sweep data.
#[derive(Debug, Clone)]
pub struct LayerPoint {
    /// Layer name.
    pub name: String,
    /// Dense MACs.
    pub dense_macs: u64,
    /// Total cycles (compute + non-overlapped DMA).
    pub cycles: u64,
    /// Effective GOPS at the variant clock.
    pub effective_gops: f64,
    /// Efficiency vs. ideal (observed / ideal throughput, paper Fig. 7).
    pub efficiency: f64,
    /// Striping factor folded into the ideal (paper's "~15%").
    pub striping_factor: f64,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("variant", self.variant.to_json()),
            ("model", self.model.to_json()),
            ("clock_mhz", self.clock_mhz.to_json()),
            ("macs_per_cycle", self.macs_per_cycle.to_json()),
            ("layers", self.layers.to_json()),
        ])
    }
}

impl ToJson for LayerPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("dense_macs", self.dense_macs.to_json()),
            ("cycles", self.cycles.to_json()),
            ("effective_gops", self.effective_gops.to_json()),
            ("efficiency", self.efficiency.to_json()),
            ("striping_factor", self.striping_factor.to_json()),
        ])
    }
}

impl SweepPoint {
    /// Mean effective GOPS over conv layers (Fig. 8 bars).
    pub fn mean_gops(&self) -> f64 {
        self.layers.iter().map(|l| l.effective_gops).sum::<f64>() / self.layers.len().max(1) as f64
    }

    /// Peak (best single layer) effective GOPS.
    pub fn peak_gops(&self) -> f64 {
        self.layers.iter().map(|l| l.effective_gops).fold(0.0, f64::max)
    }

    /// Mean efficiency over conv layers.
    pub fn mean_efficiency(&self) -> f64 {
        self.layers.iter().map(|l| l.efficiency).sum::<f64>() / self.layers.len().max(1) as f64
    }

    /// Best single-layer efficiency.
    pub fn best_efficiency(&self) -> f64 {
        self.layers.iter().map(|l| l.efficiency).fold(0.0, f64::max)
    }

    /// Worst single-layer efficiency.
    pub fn worst_efficiency(&self) -> f64 {
        self.layers.iter().map(|l| l.efficiency).fold(f64::INFINITY, f64::min)
    }
}

/// Runs one (variant, model) sweep point: full VGG-16, stats-only model
/// backend (cycle counts are value-independent).
pub fn run_sweep_point(variant: Variant, kind: ModelKind, qnet: &QuantizedNetwork) -> SweepPoint {
    let config = AccelConfig::for_variant(variant);
    let driver =
        Driver::builder(config).functional(false).build().expect("sweep config is valid");
    let input = Tensor::<f32>::zeros(3, 224, 224);
    let report = driver.run_network(qnet, &input).expect("VGG-16 fits the planner");
    sweep_point_from_report(variant, kind, &config, &report)
}

/// Converts an inference report into sweep data.
pub fn sweep_point_from_report(
    variant: Variant,
    kind: ModelKind,
    config: &AccelConfig,
    report: &InferenceReport,
) -> SweepPoint {
    let layers = report
        .conv_layers()
        .map(|l| LayerPoint {
            name: l.name.clone(),
            dense_macs: l.dense_macs,
            cycles: l.stats.total_cycles,
            effective_gops: l.effective_gops(config),
            // Paper's ideal: dense computations inflated by the striping
            // overhead, at peak MACs/cycle (perf::efficiency).
            efficiency: zskip_perf::efficiency(
                l.dense_macs,
                l.stats.striping_factor,
                config.macs_per_cycle(),
                l.stats.total_cycles,
            ),
            striping_factor: l.stats.striping_factor,
        })
        .collect();
    SweepPoint {
        variant: variant.label().to_string(),
        model: kind.suffix().to_string(),
        clock_mhz: config.clock_mhz,
        macs_per_cycle: config.macs_per_cycle(),
        layers,
    }
}

/// Runs the full 4-variant x 2-model sweep of the paper's §V.
pub fn full_sweep() -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for kind in [ModelKind::ReducedPrecision, ModelKind::Pruned] {
        let qnet = build_vgg16(kind);
        for variant in Variant::all() {
            out.push(run_sweep_point(variant, kind, &qnet));
        }
    }
    out
}

/// Renders a horizontal ASCII bar.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    "#".repeat(n.min(width))
}

/// Creates the `experiments/` output directory and returns its path.
pub fn experiments_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../experiments");
    std::fs::create_dir_all(&dir).expect("can create experiments dir");
    dir
}

/// Writes both a text and a JSON artifact for an experiment.
pub fn write_artifacts<T: ToJson>(name: &str, text: &str, data: &T) {
    let dir = experiments_dir();
    std::fs::write(dir.join(format!("{name}.txt")), text).expect("write text artifact");
    let json = zskip_json::to_string_pretty(data);
    std::fs::write(dir.join(format!("{name}.json")), json).expect("write json artifact");
}

/// Builds a standalone quantized conv layer with uniform weight density —
/// the workload for single-layer ablations.
pub fn make_conv_layer(
    out_c: usize,
    in_c: usize,
    hw: usize,
    density: f64,
    seed: u64,
) -> (zskip_nn::conv::QuantConvWeights, zskip_tensor::TiledFeatureMap<zskip_quant::Sm8>, zskip_tensor::Shape) {
    use zskip_core::rng::SplitMix64;
    use zskip_quant::{Requantizer, Sm8};
    let n = out_c * in_c * 9;
    let mut rng = SplitMix64::new(seed);
    let w: Vec<Sm8> = (0..n)
        .map(|_| {
            let h = rng.next_u64();
            if (h >> 32) % 1000 < (density * 1000.0) as u64 {
                Sm8::from_i32_saturating(((h >> 17) % 253) as i32 - 126)
            } else {
                Sm8::ZERO
            }
        })
        .collect();
    let qw = zskip_nn::conv::QuantConvWeights::new(
        out_c,
        in_c,
        3,
        w,
        vec![0; out_c],
        Requantizer::from_ratio(1.0 / 64.0),
        true,
    );
    let input = zskip_tensor::Tensor::from_fn(in_c, hw, hw, |c, y, x| {
        Sm8::from_i32_saturating((((c * 31 + y * 7 + x) ^ seed as usize) % 200) as i32 - 100)
    })
    .padded(1);
    let tiled = zskip_tensor::TiledFeatureMap::from_tensor(&input);
    (qw, tiled, zskip_tensor::Shape::new(out_c, hw, hw))
}

/// Builds the bank image, scratchpad and instruction stream for one conv
/// layer followed by a 2x2 max-pool on the cycle-exact backend — a VGG-16
/// conv/pool block at engine level, shared by the scheduler benchmark
/// (`sim_bench`) and the `zskip analyze` scheduler section.
pub fn build_engine_workload(
    cfg: &AccelConfig,
    qw: &zskip_nn::conv::QuantConvWeights,
    input: &Tensor<zskip_quant::Sm8>,
) -> (zskip_core::BankSet, Vec<u8>, Vec<zskip_core::Instruction>) {
    use zskip_core::{BankSet, ConvInstr, FmLayout, GroupWeights, Instruction, PoolPadInstr, PoolPadOp};
    use zskip_tensor::{Shape, TiledFeatureMap};

    let (h, w) = (input.shape().h, input.shape().w);
    let padded = input.padded(1);
    let tiled_in = TiledFeatureMap::from_tensor(&padded);
    let in_layout = FmLayout::full(0, padded.shape());
    let out_shape = Shape::new(qw.out_c, h, w);
    let out_layout = FmLayout::full(in_layout.end(), out_shape);

    let mut banks = BankSet::new(cfg);
    in_layout.store(&mut banks, &tiled_in, 0..tiled_in.tiles_y());

    let mut scratchpad = Vec::new();
    let mut instrs = Vec::new();
    for g in 0..qw.out_c.div_ceil(cfg.lanes) {
        let ofm_first = g * cfg.lanes;
        let gw = GroupWeights::from_filters(qw, ofm_first, cfg.lanes);
        let wgt_base = scratchpad.len() as u32;
        scratchpad.extend_from_slice(&gw.to_bytes());
        let active = cfg.lanes.min(qw.out_c - ofm_first);
        let mut bias = [0i32; 4];
        for (lane, b) in bias.iter_mut().enumerate().take(active) {
            *b = qw.bias_acc[ofm_first + lane] as i32;
        }
        instrs.push(Instruction::Conv(ConvInstr {
            ofm_first: ofm_first as u16,
            ifm_count: qw.in_c as u16,
            ifm_base: in_layout.base as u32,
            ifm_tiles_x: in_layout.tiles_x as u16,
            ifm_tile_rows: in_layout.tile_rows as u16,
            ifm_row_offset: 0,
            ofm_base: out_layout.base as u32,
            ofm_tiles_x: out_layout.tiles_x as u16,
            ofm_tile_rows: out_layout.tile_rows as u16,
            wgt_base,
            bias,
            requant_mult: qw.requant.mult as u16,
            requant_shift: qw.requant.shift as u8,
            relu: qw.relu,
            active_lanes: active as u8,
        }));
    }
    // 2x2 max-pool of the conv output, VGG-style.
    let pool_out = FmLayout::full(out_layout.end(), Shape::new(qw.out_c, h / 2, w / 2));
    instrs.push(Instruction::PoolPad(PoolPadInstr {
        op: PoolPadOp::MaxPool { k: 2, stride: 2 },
        channels: qw.out_c as u16,
        in_base: out_layout.base as u32,
        in_tiles_x: out_layout.tiles_x as u16,
        in_tile_rows: out_layout.tile_rows as u16,
        in_row_start: 0,
        out_base: pool_out.base as u32,
        out_tiles_x: pool_out.tiles_x as u16,
        out_tile_rows: pool_out.tile_rows as u16,
        out_row_start: 0,
    }));
    (banks, scratchpad, instrs)
}

/// Builds a quantized full-size VGG-16 with an explicit density profile
/// (the `zskip analyze` CLI entry point).
pub fn build_vgg16_with_density(density: DensityProfile) -> QuantizedNetwork {
    let spec = vgg16_spec();
    let net = Network::synthetic(spec, &SyntheticModelConfig { seed: HARNESS_SEED, density: density.clone() });
    let surrogate = zskip_nn::vgg16::vgg16_scaled_spec(32);
    let snet = Network::synthetic(surrogate.clone(), &SyntheticModelConfig { seed: HARNESS_SEED, density });
    let calib = zskip_nn::eval::synthetic_inputs(HARNESS_SEED ^ 7, 1, surrogate.input);
    let qs = snet.quantize(&calib);
    requantize_with_scales(&net, &qs.activation_scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_nn::eval::synthetic_inputs;
    use zskip_nn::layer::{conv3x3, NetworkSpec};
    use zskip_tensor::Shape;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(0.0, 10.0, 20), "");
        assert_eq!(bar(5.0, 10.0, 20).len(), 10);
        assert_eq!(bar(10.0, 10.0, 20).len(), 20);
        assert_eq!(bar(50.0, 10.0, 20).len(), 20, "clamped at width");
        assert_eq!(bar(1.0, 0.0, 20), "", "zero max is safe");
    }

    #[test]
    fn model_kinds_have_distinct_profiles() {
        assert_eq!(ModelKind::ReducedPrecision.suffix(), "");
        assert_eq!(ModelKind::Pruned.suffix(), "-pr");
        assert!(ModelKind::Pruned.density().mean_density() < 0.5);
        assert_eq!(ModelKind::ReducedPrecision.density().mean_density(), 1.0);
    }

    #[test]
    fn requantize_with_scales_matches_calibrated_quantize() {
        // Quantizing with transferred scales must equal Network::quantize
        // when the scales come from the same calibration.
        let spec = NetworkSpec {
            name: "t".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![conv3x3("c", 3, 4)],
        };
        let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
        let calib = synthetic_inputs(1, 2, spec.input);
        let direct = net.quantize(&calib);
        let transferred = requantize_with_scales(&net, &direct.activation_scales);
        assert_eq!(direct.conv[0].weights, transferred.conv[0].weights);
        assert_eq!(direct.input_params, transferred.input_params);
    }

    #[test]
    fn make_conv_layer_hits_requested_density() {
        let (qw, input, out_shape) = make_conv_layer(16, 16, 16, 0.3, 5);
        let d = qw.density();
        assert!((d - 0.3).abs() < 0.05, "density {d}");
        assert_eq!(out_shape, Shape::new(16, 16, 16));
        // Input is padded by 1.
        assert_eq!(input.logical_shape(), Shape::new(16, 18, 18));
    }

    #[test]
    #[should_panic(expected = "one scale per layer boundary")]
    fn requantize_validates_scale_count() {
        let spec = NetworkSpec {
            name: "t".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![conv3x3("c", 3, 4)],
        };
        let net = Network::synthetic(spec, &SyntheticModelConfig::default());
        let _ = requantize_with_scales(&net, &[1.0]);
    }
}
