//! Criterion benchmarks of the cycle-level simulation engine itself:
//! kernel/FIFO overhead per simulated cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use zskip_sim::{Barrier, Ctx, Engine, Fifo, FifoId, Kernel, Progress};

struct Source {
    out: FifoId,
    left: u64,
}
impl Kernel<u64> for Source {
    fn name(&self) -> &str {
        "source"
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u64>) -> Progress {
        if self.left == 0 {
            return Progress::Done;
        }
        match ctx.fifos.try_push(self.out, self.left) {
            Ok(()) => {
                self.left -= 1;
                Progress::Busy
            }
            Err(_) => Progress::Blocked,
        }
    }
}

struct Sink {
    inp: FifoId,
    expect: u64,
}
impl Kernel<u64> for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u64>) -> Progress {
        if self.expect == 0 {
            return Progress::Done;
        }
        match ctx.fifos.try_pop(self.inp) {
            Some(_) => {
                self.expect -= 1;
                Progress::Busy
            }
            None => Progress::Blocked,
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("producer_consumer_{n}"), |b| {
            b.iter(|| {
                let mut e = Engine::new();
                let q = e.add_fifo(Fifo::new("q", 8));
                e.add_kernel(Box::new(Source { out: q, left: n }));
                e.add_kernel(Box::new(Sink { inp: q, expect: n }));
                black_box(e.run(n * 4).expect("completes").cycles)
            })
        });
    }
    g.finish();
}

fn barrier_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("four_party_100k_generations", |b| {
        b.iter(|| {
            let mut bar = Barrier::new(4);
            for _ in 0..100_000 {
                for p in 0..3 {
                    assert!(!bar.arrive_and_poll(p));
                }
                assert!(bar.arrive_and_poll(3));
                for p in 0..3 {
                    assert!(bar.arrive_and_poll(p));
                }
            }
            black_box(bar.generations())
        })
    });
    g.finish();
}

criterion_group!(benches, engine_throughput, barrier_throughput);
criterion_main!(benches);
