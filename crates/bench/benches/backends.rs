//! Criterion benchmarks comparing the two accelerator backends on the
//! same conv layer: cycle-exact kernels vs. the transaction-level model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zskip_core::{cycle, model, AccelConfig, BankSet, ConvInstr, GroupWeights, Instruction};
use zskip_hls::AccelArch;
use zskip_nn::conv::QuantConvWeights;
use zskip_quant::{Requantizer, Sm8};
use zskip_sim::Counters;
use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

fn setup() -> (AccelConfig, BankSet, Vec<u8>, Vec<Instruction>) {
    let cfg = AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 8192 }, 100.0);
    let (out_c, in_c, hw) = (8, 8, 16);
    let qw = QuantConvWeights::new(
        out_c,
        in_c,
        3,
        (0..out_c * in_c * 9)
            .map(|i| if i % 3 == 0 { Sm8::ZERO } else { Sm8::from_i32_saturating((i % 13) as i32 - 6) })
            .collect(),
        vec![0; out_c],
        Requantizer::from_ratio(1.0 / 64.0),
        true,
    );
    let input =
        Tensor::from_fn(in_c, hw, hw, |c, y, x| Sm8::from_i32_saturating(((c * 7 + y * 3 + x) % 200) as i32 - 100))
            .padded(1);
    let tiled = TiledFeatureMap::from_tensor(&input);
    let in_layout = zskip_core::FmLayout::full(0, input.shape());
    let out_layout = zskip_core::FmLayout::full(in_layout.end(), Shape::new(out_c, hw, hw));
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled, 0..tiled.tiles_y());
    let mut scratchpad = Vec::new();
    let mut instrs = Vec::new();
    for g in 0..out_c.div_ceil(cfg.lanes) {
        let gw = GroupWeights::from_filters(&qw, g * cfg.lanes, cfg.lanes);
        let wgt_base = scratchpad.len() as u32;
        scratchpad.extend_from_slice(&gw.to_bytes());
        instrs.push(Instruction::Conv(ConvInstr {
            ofm_first: (g * cfg.lanes) as u16,
            ifm_count: in_c as u16,
            ifm_base: 0,
            ifm_tiles_x: in_layout.tiles_x as u16,
            ifm_tile_rows: in_layout.tile_rows as u16,
            ifm_row_offset: 0,
            ofm_base: out_layout.base as u32,
            ofm_tiles_x: out_layout.tiles_x as u16,
            ofm_tile_rows: out_layout.tile_rows as u16,
            wgt_base,
            bias: [0; 4],
            requant_mult: qw.requant.mult as u16,
            requant_shift: qw.requant.shift as u8,
            relu: true,
            active_lanes: 4,
        }));
    }
    (cfg, banks, scratchpad, instrs)
}

fn backends(c: &mut Criterion) {
    let (cfg, banks, scratchpad, instrs) = setup();
    let mut g = c.benchmark_group("backends");
    g.bench_function("cycle_exact_conv_8x8x16", |b| {
        b.iter(|| {
            let out =
                cycle::run_instructions(&cfg, banks.clone(), scratchpad.clone(), &instrs, 100_000_000).expect("runs");
            black_box(out.cycles)
        })
    });
    g.bench_function("model_conv_8x8x16", |b| {
        b.iter(|| {
            let mut bk = banks.clone();
            let out = model::run_instructions(&cfg, &mut bk, &scratchpad, &instrs, &mut Counters::new());
            black_box(out.cycles)
        })
    });
    g.bench_function("model_conv_8x8x16_stats_only", |b| {
        b.iter(|| {
            let mut bk = banks.clone();
            let out = model::run_instructions_with_mode(&cfg, &mut bk, &scratchpad, &instrs, &mut Counters::new(), false);
            black_box(out.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, backends);
criterion_main!(benches);
