//! Criterion microbenchmarks: the arithmetic and packing primitives on the
//! accelerator's critical paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use zskip_quant::{LockstepGroup, PackedTile, QuantParams, Requantizer, Sm8};
use zskip_tensor::{Tensor, Tile, TiledFeatureMap};

fn sm8_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("sm8");
    let values: Vec<Sm8> = (-127..=127).map(Sm8::from_i32_saturating).collect();
    g.throughput(Throughput::Elements(values.len() as u64 * values.len() as u64));
    g.bench_function("mul_exact_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &x in &values {
                for &y in &values {
                    acc += x.mul_exact(y) as i64;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack");
    let tiles: Vec<Tile<Sm8>> = (0..256)
        .map(|t| Tile::from_fn(|y, x| Sm8::from_i32_saturating(if (y * 4 + x + t) % 3 == 0 { 0 } else { (t % 120) as i32 - 60 })))
        .collect();
    g.throughput(Throughput::Elements(tiles.len() as u64));
    g.bench_function("pack_tiles", |b| {
        b.iter(|| {
            let n: usize = tiles.iter().map(|t| PackedTile::pack(t).nnz()).sum();
            black_box(n)
        })
    });
    let packed: Vec<PackedTile> = tiles.iter().map(PackedTile::pack).collect();
    g.bench_function("serialize_roundtrip", |b| {
        b.iter(|| {
            let mut total = 0;
            for p in &packed {
                let bytes = p.to_bytes();
                let (q, used) = PackedTile::from_bytes(&bytes).expect("well-formed");
                total += used + q.nnz();
            }
            black_box(total)
        })
    });
    g.bench_function("lockstep_iterate", |b| {
        b.iter(|| {
            let mut steps = 0;
            for w in packed.chunks_exact(4) {
                let g = LockstepGroup::new([&w[0], &w[1], &w[2], &w[3]]);
                steps += g.iter().count();
            }
            black_box(steps)
        })
    });
    g.finish();
}

fn quantization(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize");
    let data: Vec<f32> = (0..65536).map(|i| ((i as f32) * 0.137).sin()).collect();
    g.throughput(Throughput::Elements(data.len() as u64));
    let q = QuantParams::from_max_abs(&data);
    g.bench_function("quantize_64k", |b| b.iter(|| black_box(q.quantize_all(&data))));
    let r = Requantizer::from_ratio(1.0 / 42.0);
    g.bench_function("requantize_64k", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for i in 0..65536i64 {
                acc ^= r.apply_relu(i * 37 - 1_000_000).to_i32();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn tiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiling");
    let t = Tensor::from_fn(64, 56, 56, |c, y, x| Sm8::from_i32_saturating(((c + y * 3 + x) % 200) as i32 - 100));
    g.bench_function("fm_tile_56x56x64", |b| b.iter(|| black_box(TiledFeatureMap::from_tensor(&t))));
    let tiled = TiledFeatureMap::from_tensor(&t);
    g.bench_function("fm_untile_56x56x64", |b| b.iter(|| black_box(tiled.to_tensor())));
    g.bench_function("quad_region_sweep", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for ty in 0..13 {
                for tx in 0..13 {
                    let r = tiled.quad_region(0, ty, tx);
                    acc += r[0].to_i32() + r[63].to_i32();
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, sm8_ops, packing, quantization, tiling);
criterion_main!(benches);
