//! Criterion benchmarks at network scale: full VGG-16 sweep points on the
//! stats-only model backend (what the figure harnesses run), plus HLS
//! synthesis of all four variants.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zskip_bench::{build_vgg16, run_sweep_point, ModelKind};
use zskip_hls::Variant;

fn vgg16_sweep_point(c: &mut Criterion) {
    let qnet = build_vgg16(ModelKind::Pruned);
    let mut g = c.benchmark_group("vgg16");
    g.sample_size(10);
    g.bench_function("sweep_point_256opt_pruned", |b| {
        b.iter(|| black_box(run_sweep_point(Variant::U256Opt, ModelKind::Pruned, &qnet).mean_gops()))
    });
    g.finish();
}

fn hls_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("hls");
    g.bench_function("synthesize_all_variants", |b| {
        b.iter(|| {
            let total: f64 = Variant::all().iter().map(|v| v.synthesize().total.alms).sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, vgg16_sweep_point, hls_synthesis);
criterion_main!(benches);
