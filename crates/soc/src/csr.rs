//! Control/status register maps for the accelerator and DMA unit
//! (System II endpoints).

use crate::avalon::MmSlave;
use zskip_fault::{FaultKind, SharedFaultPlan};

/// Base address of the accelerator CSR block on the HPS-to-FPGA bridge.
pub const ACCEL_CSR_BASE: u32 = 0xc000_0000;
/// Base address of the DMA CSR block.
pub const DMA_CSR_BASE: u32 = 0xc001_0000;
/// Size of each CSR block in bytes.
pub const CSR_BLOCK_LEN: u32 = 0x100;

/// Accelerator CSR offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum AccelCsr {
    /// Write 1 to bit 0 to start executing the queued instruction stream.
    Ctrl = 0x00,
    /// Bit 0 busy, bit 1 done, bit 2 illegal-instruction error.
    Status = 0x04,
    /// Bank-memory word address of the instruction stream.
    InstrAddr = 0x08,
    /// Number of instructions to execute.
    InstrCount = 0x0c,
    /// Cycle counter, low word (snapshot at completion).
    CyclesLo = 0x10,
    /// Cycle counter, high word.
    CyclesHi = 0x14,
}

/// Status register bits.
pub mod status {
    /// Accelerator is executing.
    pub const BUSY: u32 = 1 << 0;
    /// Last run completed.
    pub const DONE: u32 = 1 << 1;
    /// An instruction failed to decode.
    pub const ERROR: u32 = 1 << 2;
}

/// A CSR register file with doorbell semantics: the host writes `Ctrl`,
/// the device-side logic consumes the start pulse via
/// [`CsrFile::take_start`].
#[derive(Debug, Clone)]
pub struct CsrFile {
    regs: [u32; (CSR_BLOCK_LEN / 4) as usize],
    start_pending: bool,
    fault_plan: Option<SharedFaultPlan>,
    status_reads: u64,
}

impl Default for CsrFile {
    fn default() -> Self {
        CsrFile {
            regs: [0; (CSR_BLOCK_LEN / 4) as usize],
            start_pending: false,
            fault_plan: None,
            status_reads: 0,
        }
    }
}

impl CsrFile {
    /// Creates a cleared register file.
    pub fn new() -> CsrFile {
        CsrFile::default()
    }

    /// Attaches a fault plan: `csr:status` injections fire on the nth
    /// memory-mapped read of the status register, flipping one response
    /// bit (a single-event upset on the read path — the stored register
    /// is unaffected).
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Reads a register by typed offset.
    pub fn get(&self, reg: AccelCsr) -> u32 {
        self.regs[(reg as u32 / 4) as usize]
    }

    /// Writes a register by typed offset (device-side, no doorbell).
    pub fn set(&mut self, reg: AccelCsr, value: u32) {
        self.regs[(reg as u32 / 4) as usize] = value;
    }

    /// Consumes a pending start doorbell, if any.
    pub fn take_start(&mut self) -> bool {
        std::mem::take(&mut self.start_pending)
    }

    /// Device-side helper: marks the accelerator busy.
    pub fn set_busy(&mut self) {
        self.set(AccelCsr::Status, status::BUSY);
    }

    /// Device-side helper: marks completion and stores the cycle count.
    pub fn set_done(&mut self, cycles: u64) {
        self.set(AccelCsr::Status, status::DONE);
        self.set(AccelCsr::CyclesLo, cycles as u32);
        self.set(AccelCsr::CyclesHi, (cycles >> 32) as u32);
    }

    /// Device-side helper: flags an illegal instruction.
    pub fn set_error(&mut self) {
        self.set(AccelCsr::Status, status::ERROR);
    }

    /// The cycle counter as a 64-bit value.
    pub fn cycles(&self) -> u64 {
        (self.get(AccelCsr::CyclesHi) as u64) << 32 | self.get(AccelCsr::CyclesLo) as u64
    }
}

impl MmSlave for CsrFile {
    fn mm_read(&mut self, offset: u32) -> u32 {
        let mut value = self.regs.get((offset / 4) as usize).copied().unwrap_or(0);
        if offset == AccelCsr::Status as u32 {
            let ordinal = self.status_reads;
            self.status_reads += 1;
            let fired = self.fault_plan.as_ref().and_then(|p| {
                p.lock().unwrap_or_else(|e| e.into_inner()).fire("csr:status", ordinal)
            });
            if let Some(FaultKind::CsrBitFlip { bit }) = fired {
                value ^= 1 << (bit % 32);
            }
        }
        value
    }

    fn mm_write(&mut self, offset: u32, value: u32) {
        let idx = (offset / 4) as usize;
        if idx < self.regs.len() {
            self.regs[idx] = value;
            if offset == AccelCsr::Ctrl as u32 && value & 1 != 0 {
                self.start_pending = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doorbell_pulses_once() {
        let mut csr = CsrFile::new();
        csr.mm_write(AccelCsr::Ctrl as u32, 1);
        assert!(csr.take_start());
        assert!(!csr.take_start(), "doorbell must self-clear");
    }

    #[test]
    fn non_doorbell_writes_do_not_start() {
        let mut csr = CsrFile::new();
        csr.mm_write(AccelCsr::InstrAddr as u32, 0x40);
        csr.mm_write(AccelCsr::Ctrl as u32, 0); // bit 0 clear
        assert!(!csr.take_start());
        assert_eq!(csr.get(AccelCsr::InstrAddr), 0x40);
    }

    #[test]
    fn status_lifecycle() {
        let mut csr = CsrFile::new();
        csr.set_busy();
        assert_eq!(csr.mm_read(AccelCsr::Status as u32), status::BUSY);
        csr.set_done(0x1_2345_6789);
        assert_eq!(csr.get(AccelCsr::Status), status::DONE);
        assert_eq!(csr.cycles(), 0x1_2345_6789);
    }

    #[test]
    fn error_flag() {
        let mut csr = CsrFile::new();
        csr.set_error();
        assert_eq!(csr.get(AccelCsr::Status) & status::ERROR, status::ERROR);
    }

    #[test]
    fn injected_bit_flip_perturbs_one_status_read() {
        use zskip_fault::{FaultKind, FaultPlan};
        let mut csr = CsrFile::new();
        csr.set_fault_plan(
            FaultPlan::new().inject("csr:status", 1, FaultKind::CsrBitFlip { bit: 1 }).shared(),
        );
        csr.set_busy();
        assert_eq!(csr.mm_read(AccelCsr::Status as u32), status::BUSY, "read 0 healthy");
        // Read 1: bit 1 (DONE) flips on — a spurious completion.
        assert_eq!(csr.mm_read(AccelCsr::Status as u32), status::BUSY | status::DONE);
        // The stored register is untouched; later reads are healthy.
        assert_eq!(csr.mm_read(AccelCsr::Status as u32), status::BUSY);
        assert_eq!(csr.get(AccelCsr::Status), status::BUSY);
    }

    #[test]
    fn out_of_range_access_is_benign() {
        let mut csr = CsrFile::new();
        csr.mm_write(0x1000, 7);
        assert_eq!(csr.mm_read(0x1000), 0);
    }
}
