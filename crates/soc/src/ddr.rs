//! Off-chip DDR4 model: byte storage plus bandwidth/latency accounting.

/// A DDR4 memory region with transaction-level timing.
///
/// Timing model: each burst pays a fixed latency, then streams at the
/// configured bytes/cycle (the 256-bit System I bus moves 32 bytes per
/// fabric cycle when the DDR can feed it).
#[derive(Debug, Clone)]
pub struct DdrModel {
    data: Vec<u8>,
    bytes_per_cycle: u64,
    burst_latency_cycles: u64,
    bytes_read: u64,
    bytes_written: u64,
    busy_cycles: u64,
}

impl DdrModel {
    /// Default burst latency (row activate + CAS, in fabric cycles).
    pub const DEFAULT_BURST_LATENCY: u64 = 30;
    /// Default stream bandwidth: the 256-bit System I bus width.
    pub const DEFAULT_BYTES_PER_CYCLE: u64 = 32;

    /// Creates a DDR region of `size` bytes with default timing.
    pub fn new(size: usize) -> DdrModel {
        DdrModel {
            data: vec![0; size],
            bytes_per_cycle: Self::DEFAULT_BYTES_PER_CYCLE,
            burst_latency_cycles: Self::DEFAULT_BURST_LATENCY,
            bytes_read: 0,
            bytes_written: 0,
            busy_cycles: 0,
        }
    }

    /// Overrides the timing parameters.
    pub fn with_timing(mut self, bytes_per_cycle: u64, burst_latency_cycles: u64) -> DdrModel {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive");
        self.bytes_per_cycle = bytes_per_cycle;
        self.burst_latency_cycles = burst_latency_cycles;
        self
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Cycles to transfer `len` bytes as one burst.
    pub fn burst_cycles(&self, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.burst_latency_cycles + (len as u64).div_ceil(self.bytes_per_cycle)
    }

    /// Reads a block, returning `(bytes, cycles)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the region.
    pub fn read_block(&mut self, addr: usize, len: usize) -> (&[u8], u64) {
        assert!(addr + len <= self.data.len(), "DDR read out of range");
        let cycles = self.burst_cycles(len);
        self.bytes_read += len as u64;
        self.busy_cycles += cycles;
        (&self.data[addr..addr + len], cycles)
    }

    /// Writes a block, returning the cycle cost.
    ///
    /// # Panics
    /// Panics if the range exceeds the region.
    pub fn write_block(&mut self, addr: usize, bytes: &[u8]) -> u64 {
        assert!(addr + bytes.len() <= self.data.len(), "DDR write out of range");
        self.data[addr..addr + bytes.len()].copy_from_slice(bytes);
        let cycles = self.burst_cycles(bytes.len());
        self.bytes_written += bytes.len() as u64;
        self.busy_cycles += cycles;
        cycles
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total busy cycles across all transactions.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_data() {
        let mut ddr = DdrModel::new(1024);
        let payload: Vec<u8> = (0..100).collect();
        ddr.write_block(17, &payload);
        let (read, _) = ddr.read_block(17, 100);
        assert_eq!(read, &payload[..]);
    }

    #[test]
    fn burst_timing_has_latency_plus_stream() {
        let ddr = DdrModel::new(0).with_timing(32, 30);
        assert_eq!(ddr.burst_cycles(0), 0);
        assert_eq!(ddr.burst_cycles(1), 31);
        assert_eq!(ddr.burst_cycles(32), 31);
        assert_eq!(ddr.burst_cycles(33), 32);
        assert_eq!(ddr.burst_cycles(3200), 130);
    }

    #[test]
    fn large_bursts_amortize_latency() {
        let ddr = DdrModel::new(0);
        let per_byte_small = ddr.burst_cycles(64) as f64 / 64.0;
        let per_byte_big = ddr.burst_cycles(65536) as f64 / 65536.0;
        assert!(per_byte_big < per_byte_small / 5.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut ddr = DdrModel::new(256);
        ddr.write_block(0, &[1; 64]);
        ddr.read_block(0, 64);
        ddr.read_block(64, 32);
        assert_eq!(ddr.bytes_written(), 64);
        assert_eq!(ddr.bytes_read(), 96);
        assert!(ddr.busy_cycles() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_read_panics() {
        let mut ddr = DdrModel::new(16);
        let _ = ddr.read_block(10, 10);
    }
}
