//! The DMA engine: descriptor-driven transfers between DDR4 and the
//! accelerator's SRAM banks over the 256-bit System I bus.
//!
//! In the paper this is the single hand-written RTL module; everything
//! else is HLS-generated. Its job here is the same: move tile-formatted
//! data in bulk, with cycle accounting, between the [`crate::DdrModel`]
//! and whatever implements [`TileStore`] (the accelerator's banks).

use crate::ddr::DdrModel;
use zskip_fault::{FaultKind, SharedFaultPlan};

/// Bytes per tile word (16 values x 8-bit).
pub const TILE_BYTES: usize = 16;

/// A bank-side target for DMA transfers: indexed tile-word storage.
///
/// Implemented by the accelerator's SRAM banks in `zskip-core`.
pub trait TileStore {
    /// Number of banks.
    fn banks(&self) -> usize;

    /// Capacity of each bank in tile words.
    fn bank_capacity(&self) -> usize;

    /// Writes one tile word.
    ///
    /// # Panics
    /// Implementations panic on out-of-range bank/index.
    fn write_tile_bytes(&mut self, bank: usize, index: usize, bytes: &[u8; TILE_BYTES]);

    /// Reads one tile word.
    fn read_tile_bytes(&self, bank: usize, index: usize) -> [u8; TILE_BYTES];
}

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// DDR to SRAM bank.
    DdrToBank,
    /// SRAM bank to DDR.
    BankToDdr,
}

/// One DMA descriptor: a contiguous run of tile words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// Transfer direction.
    pub direction: DmaDirection,
    /// DDR byte address (must be tile-aligned).
    pub ddr_addr: usize,
    /// Target bank.
    pub bank: usize,
    /// First tile index within the bank.
    pub bank_tile_index: usize,
    /// Number of tile words to move.
    pub tiles: usize,
}

/// Error queuing or executing a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// DDR address not tile-aligned.
    Unaligned(usize),
    /// Bank index out of range.
    BadBank(usize),
    /// Transfer exceeds the bank capacity.
    BankOverflow {
        /// First out-of-range tile index.
        index: usize,
        /// Bank capacity in tiles.
        capacity: usize,
    },
    /// The transfer stopped early: the completion count disagrees with the
    /// descriptor (surfaced by an injected fault or a misbehaving device).
    Truncated {
        /// Tile words actually moved.
        moved: usize,
        /// Tile words the descriptor requested.
        expected: usize,
    },
    /// The bus parity check rejected a beat (data corruption in flight).
    Parity {
        /// Tile word whose parity failed.
        tile: usize,
    },
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::Unaligned(a) => write!(f, "DDR address {a:#x} not tile-aligned"),
            DmaError::BadBank(b) => write!(f, "bank {b} out of range"),
            DmaError::BankOverflow { index, capacity } => {
                write!(f, "tile index {index} exceeds bank capacity {capacity}")
            }
            DmaError::Truncated { moved, expected } => {
                write!(f, "DMA transfer truncated: {moved} of {expected} tiles moved")
            }
            DmaError::Parity { tile } => {
                write!(f, "bus parity error on tile {tile}")
            }
        }
    }
}

impl std::error::Error for DmaError {}

/// The DMA controller: executes descriptors, accounting System I cycles.
#[derive(Debug, Clone, Default)]
pub struct DmaController {
    descriptors_run: u64,
    tiles_moved: u64,
    cycles: u64,
    fault_plan: Option<SharedFaultPlan>,
}

impl DmaController {
    /// Creates an idle controller.
    pub fn new() -> DmaController {
        DmaController::default()
    }

    /// Attaches a fault plan: `dma:xfer` injections fire on the nth
    /// descriptor executed (the plan's trigger ordinal counts
    /// descriptors, including faulted ones).
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Executes one descriptor synchronously, returning its cycle cost.
    ///
    /// # Errors
    /// Returns [`DmaError`] for unaligned or out-of-range descriptors
    /// before touching any data; [`DmaError::Truncated`] or
    /// [`DmaError::Parity`] when an injected transfer fault fires (the
    /// partially moved or corrupted data has already landed, as it would
    /// in hardware).
    pub fn run(
        &mut self,
        desc: &DmaDescriptor,
        ddr: &mut DdrModel,
        banks: &mut dyn TileStore,
    ) -> Result<u64, DmaError> {
        if !desc.ddr_addr.is_multiple_of(TILE_BYTES) {
            return Err(DmaError::Unaligned(desc.ddr_addr));
        }
        if desc.bank >= banks.banks() {
            return Err(DmaError::BadBank(desc.bank));
        }
        let end = desc.bank_tile_index + desc.tiles;
        if end > banks.bank_capacity() {
            return Err(DmaError::BankOverflow { index: end - 1, capacity: banks.bank_capacity() });
        }

        let fault = self.fault_plan.as_ref().and_then(|p| {
            p.lock().unwrap_or_else(|e| e.into_inner()).fire("dma:xfer", self.descriptors_run)
        });
        let (moved, corrupt_xor) = match fault {
            Some(FaultKind::DmaTruncate { tiles }) => (tiles.min(desc.tiles), None),
            Some(FaultKind::DmaCorrupt { xor }) => (desc.tiles, Some(xor)),
            _ => (desc.tiles, None),
        };

        let bytes = moved * TILE_BYTES;
        let cycles = match desc.direction {
            DmaDirection::DdrToBank => {
                let (block, cycles) = ddr.read_block(desc.ddr_addr, bytes);
                let mut block = block.to_vec();
                if let (Some(xor), Some(first)) = (corrupt_xor, block.first_mut()) {
                    *first ^= xor;
                }
                for t in 0..moved {
                    let mut word = [0u8; TILE_BYTES];
                    word.copy_from_slice(&block[t * TILE_BYTES..(t + 1) * TILE_BYTES]);
                    banks.write_tile_bytes(desc.bank, desc.bank_tile_index + t, &word);
                }
                cycles
            }
            DmaDirection::BankToDdr => {
                let mut block = Vec::with_capacity(bytes);
                for t in 0..moved {
                    block.extend_from_slice(&banks.read_tile_bytes(desc.bank, desc.bank_tile_index + t));
                }
                if let (Some(xor), Some(first)) = (corrupt_xor, block.first_mut()) {
                    *first ^= xor;
                }
                ddr.write_block(desc.ddr_addr, &block)
            }
        };
        self.descriptors_run += 1;
        self.tiles_moved += moved as u64;
        self.cycles += cycles;
        if moved < desc.tiles {
            return Err(DmaError::Truncated { moved, expected: desc.tiles });
        }
        if corrupt_xor.is_some() {
            // The modeled System I bus carries per-beat parity; the
            // flipped bit trips it on the first tile.
            return Err(DmaError::Parity { tile: 0 });
        }
        Ok(cycles)
    }

    /// Descriptors executed.
    pub fn descriptors_run(&self) -> u64 {
        self.descriptors_run
    }

    /// Tile words moved.
    pub fn tiles_moved(&self) -> u64 {
        self.tiles_moved
    }

    /// Total System I cycles consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple in-memory TileStore for testing.
    struct TestBanks {
        data: Vec<Vec<[u8; TILE_BYTES]>>,
    }

    impl TestBanks {
        fn new(banks: usize, capacity: usize) -> Self {
            TestBanks { data: vec![vec![[0; TILE_BYTES]; capacity]; banks] }
        }
    }

    impl TileStore for TestBanks {
        fn banks(&self) -> usize {
            self.data.len()
        }
        fn bank_capacity(&self) -> usize {
            self.data[0].len()
        }
        fn write_tile_bytes(&mut self, bank: usize, index: usize, bytes: &[u8; TILE_BYTES]) {
            self.data[bank][index] = *bytes;
        }
        fn read_tile_bytes(&self, bank: usize, index: usize) -> [u8; TILE_BYTES] {
            self.data[bank][index]
        }
    }

    #[test]
    fn ddr_to_bank_and_back_round_trips() {
        let mut ddr = DdrModel::new(4096);
        let mut banks = TestBanks::new(4, 64);
        let mut dma = DmaController::new();
        let payload: Vec<u8> = (0..160).map(|i| i as u8).collect();
        ddr.write_block(0, &payload);

        let c1 = dma
            .run(
                &DmaDescriptor {
                    direction: DmaDirection::DdrToBank,
                    ddr_addr: 0,
                    bank: 2,
                    bank_tile_index: 5,
                    tiles: 10,
                },
                &mut ddr,
                &mut banks,
            )
            .unwrap();
        assert!(c1 > 0);
        assert_eq!(banks.read_tile_bytes(2, 5)[0], 0);
        assert_eq!(banks.read_tile_bytes(2, 6)[0], 16);

        dma.run(
            &DmaDescriptor {
                direction: DmaDirection::BankToDdr,
                ddr_addr: 1024,
                bank: 2,
                bank_tile_index: 5,
                tiles: 10,
            },
            &mut ddr,
            &mut banks,
        )
        .unwrap();
        let (copy, _) = ddr.read_block(1024, 160);
        assert_eq!(copy, &payload[..]);
        assert_eq!(dma.descriptors_run(), 2);
        assert_eq!(dma.tiles_moved(), 20);
    }

    #[test]
    fn validation_happens_before_side_effects() {
        let mut ddr = DdrModel::new(4096);
        let mut banks = TestBanks::new(2, 8);
        let mut dma = DmaController::new();
        let err = dma
            .run(
                &DmaDescriptor {
                    direction: DmaDirection::DdrToBank,
                    ddr_addr: 3, // unaligned
                    bank: 0,
                    bank_tile_index: 0,
                    tiles: 1,
                },
                &mut ddr,
                &mut banks,
            )
            .unwrap_err();
        assert_eq!(err, DmaError::Unaligned(3));
        assert_eq!(ddr.bytes_read(), 0, "no partial transfer");

        let err = dma
            .run(
                &DmaDescriptor {
                    direction: DmaDirection::DdrToBank,
                    ddr_addr: 0,
                    bank: 5,
                    bank_tile_index: 0,
                    tiles: 1,
                },
                &mut ddr,
                &mut banks,
            )
            .unwrap_err();
        assert_eq!(err, DmaError::BadBank(5));

        let err = dma
            .run(
                &DmaDescriptor {
                    direction: DmaDirection::DdrToBank,
                    ddr_addr: 0,
                    bank: 0,
                    bank_tile_index: 6,
                    tiles: 4,
                },
                &mut ddr,
                &mut banks,
            )
            .unwrap_err();
        assert_eq!(err, DmaError::BankOverflow { index: 9, capacity: 8 });
        assert_eq!(dma.descriptors_run(), 0);
    }

    #[test]
    fn injected_truncation_moves_partial_data_and_errors() {
        use zskip_fault::{FaultKind, FaultPlan};
        let mut ddr = DdrModel::new(4096);
        let mut banks = TestBanks::new(1, 64);
        let mut dma = DmaController::new();
        let plan = FaultPlan::new()
            .inject("dma:xfer", 1, FaultKind::DmaTruncate { tiles: 3 })
            .shared();
        dma.set_fault_plan(plan.clone());
        let payload: Vec<u8> = (0..160).map(|i| i as u8).collect();
        ddr.write_block(0, &payload);
        let desc = DmaDescriptor {
            direction: DmaDirection::DdrToBank,
            ddr_addr: 0,
            bank: 0,
            bank_tile_index: 0,
            tiles: 10,
        };
        // Descriptor 0 is healthy (trigger ordinal is 1).
        dma.run(&desc, &mut ddr, &mut banks).unwrap();
        let err = dma.run(&desc, &mut ddr, &mut banks).unwrap_err();
        assert_eq!(err, DmaError::Truncated { moved: 3, expected: 10 });
        // The three moved tiles landed; the device reports the shortfall.
        assert_eq!(banks.read_tile_bytes(0, 2)[0], 32);
        assert_eq!(dma.descriptors_run(), 2);
        assert_eq!(plan.lock().unwrap().fired().len(), 1);
        // One-shot: the next descriptor is healthy again.
        dma.run(&desc, &mut ddr, &mut banks).unwrap();
    }

    #[test]
    fn injected_corruption_trips_parity() {
        use zskip_fault::{FaultKind, FaultPlan};
        let mut ddr = DdrModel::new(4096);
        let mut banks = TestBanks::new(1, 64);
        let mut dma = DmaController::new();
        dma.set_fault_plan(
            FaultPlan::new().inject("dma:xfer", 0, FaultKind::DmaCorrupt { xor: 0x80 }).shared(),
        );
        ddr.write_block(0, &[0x01; 32]);
        let desc = DmaDescriptor {
            direction: DmaDirection::DdrToBank,
            ddr_addr: 0,
            bank: 0,
            bank_tile_index: 0,
            tiles: 2,
        };
        let err = dma.run(&desc, &mut ddr, &mut banks).unwrap_err();
        assert_eq!(err, DmaError::Parity { tile: 0 });
        // The corrupted byte landed before the parity check rejected it.
        assert_eq!(banks.read_tile_bytes(0, 0)[0], 0x81);
        assert_eq!(banks.read_tile_bytes(0, 1)[0], 0x01);
    }

    #[test]
    fn bulk_transfers_amortize() {
        let mut ddr = DdrModel::new(1 << 20);
        let mut banks = TestBanks::new(1, 4096);
        let mut dma = DmaController::new();
        let one = dma
            .run(
                &DmaDescriptor { direction: DmaDirection::DdrToBank, ddr_addr: 0, bank: 0, bank_tile_index: 0, tiles: 1 },
                &mut ddr,
                &mut banks,
            )
            .unwrap();
        let many = dma
            .run(
                &DmaDescriptor { direction: DmaDirection::DdrToBank, ddr_addr: 0, bank: 0, bank_tile_index: 0, tiles: 1000 },
                &mut ddr,
                &mut banks,
            )
            .unwrap();
        assert!((many as f64) < (one as f64) * 1000.0 / 10.0, "one={one} many={many}");
    }
}
