//! System-on-chip integration: the fabric around the accelerator.
//!
//! The paper's system (Fig. 1, §III, §IV-D) couples the accelerator to a
//! Cortex-A9 hard processor system through two Qsys-generated networks:
//!
//! * **System I** — a high-bandwidth 256-bit bus performing DMA between
//!   system DRAM (DDR4) and the accelerator's on-FPGA SRAM banks;
//! * **System II** — Avalon memory-mapped interfaces from the ARM to
//!   control/status registers on the accelerator core and DMA unit.
//!
//! This crate models those pieces at transaction level with cycle
//! accounting:
//!
//! * [`avalon`] — the memory-mapped bus: address-ranged slaves, routing,
//!   transaction/wait-state statistics;
//! * [`csr`] — the accelerator's and DMA's control/status register maps;
//! * [`ddr`] — a DDR4 bandwidth/latency model backing the FPGA banks;
//! * [`dma`] — the descriptor-driven DMA engine (the one hand-written RTL
//!   module in the paper);
//! * [`host`] — the embedded-ARM host: issues CSR writes, polls status,
//!   and accounts time for the software side of an inference.

pub mod avalon;
pub mod csr;
pub mod ddr;
pub mod dma;
pub mod host;
pub mod irq;

pub use avalon::{AvalonBus, BusError, MmSlave, SlaveHandle, BUS_TIMEOUT_CYCLES};
pub use csr::{AccelCsr, CsrFile, DMA_CSR_BASE, ACCEL_CSR_BASE};
pub use ddr::DdrModel;
pub use dma::{DmaController, DmaDescriptor, DmaDirection, DmaError, TileStore};
pub use host::{DeviceFault, HostCpu, HostError};
pub use irq::InterruptController;
