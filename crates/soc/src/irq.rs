//! Interrupt controller: the alternative to status polling.
//!
//! The Cyclone/Arria HPS receives FPGA-to-HPS interrupt lines; a driver
//! can sleep on completion instead of spinning on the status register.
//! Polling costs a bridge crossing per poll (see [`crate::host`]); an
//! interrupt costs one fixed controller latency — the classic trade-off,
//! measurable here.

/// A level-sensitive interrupt controller with 32 lines.
#[derive(Debug, Clone, Default)]
pub struct InterruptController {
    pending: u32,
    enabled: u32,
    raises: u64,
    spurious_acks: u64,
}

/// Interrupt delivery latency in fabric cycles (synchronizers + GIC).
pub const IRQ_LATENCY_CYCLES: u64 = 12;

impl InterruptController {
    /// Creates a controller with all lines enabled.
    pub fn new() -> InterruptController {
        InterruptController { pending: 0, enabled: u32::MAX, raises: 0, spurious_acks: 0 }
    }

    /// Masks or unmasks a line.
    ///
    /// # Panics
    /// Panics if `line >= 32`.
    pub fn set_enabled(&mut self, line: u8, enabled: bool) {
        assert!(line < 32, "line {line} out of range");
        if enabled {
            self.enabled |= 1 << line;
        } else {
            self.enabled &= !(1 << line);
        }
    }

    /// Device side: raises a line (level-sensitive; idempotent).
    ///
    /// # Panics
    /// Panics if `line >= 32`.
    pub fn raise(&mut self, line: u8) {
        assert!(line < 32, "line {line} out of range");
        self.pending |= 1 << line;
        self.raises += 1;
    }

    /// Whether a line is pending *and* enabled.
    pub fn is_asserted(&self, line: u8) -> bool {
        let bit = 1u32 << line;
        self.pending & self.enabled & bit != 0
    }

    /// Host side: acknowledges (clears) a line. Returns whether it was
    /// pending; spurious acks are counted.
    pub fn ack(&mut self, line: u8) -> bool {
        let bit = 1u32 << line;
        let was = self.pending & bit != 0;
        self.pending &= !bit;
        if !was {
            self.spurious_acks += 1;
        }
        was
    }

    /// Total raises observed.
    pub fn raises(&self) -> u64 {
        self.raises
    }

    /// Acks that found no pending interrupt.
    pub fn spurious_acks(&self) -> u64 {
        self.spurious_acks
    }

    /// Host-side cost (fabric cycles) of taking one interrupt, vs. the
    /// polling cost `polls x (bridge + wait states)`.
    pub fn delivery_cycles(&self) -> u64 {
        IRQ_LATENCY_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_assert_ack_lifecycle() {
        let mut irq = InterruptController::new();
        assert!(!irq.is_asserted(3));
        irq.raise(3);
        assert!(irq.is_asserted(3));
        assert!(irq.ack(3));
        assert!(!irq.is_asserted(3));
        assert_eq!(irq.raises(), 1);
        assert_eq!(irq.spurious_acks(), 0);
    }

    #[test]
    fn masked_lines_do_not_assert() {
        let mut irq = InterruptController::new();
        irq.set_enabled(5, false);
        irq.raise(5);
        assert!(!irq.is_asserted(5), "masked line must not assert");
        irq.set_enabled(5, true);
        assert!(irq.is_asserted(5), "pending level shows once unmasked");
    }

    #[test]
    fn raising_is_idempotent_and_lines_independent() {
        let mut irq = InterruptController::new();
        irq.raise(0);
        irq.raise(0);
        irq.raise(1);
        assert!(irq.is_asserted(0) && irq.is_asserted(1) && !irq.is_asserted(2));
        assert!(irq.ack(0));
        assert!(irq.is_asserted(1), "ack of one line leaves others");
    }

    #[test]
    fn spurious_acks_are_counted() {
        let mut irq = InterruptController::new();
        assert!(!irq.ack(7));
        assert_eq!(irq.spurious_acks(), 1);
    }

    #[test]
    fn interrupt_beats_long_polling() {
        // A 1000-cycle job polled every 100 cycles costs ~10 bridge
        // crossings (>= 100 fabric cycles at 10 cycles each); the
        // interrupt costs IRQ_LATENCY_CYCLES.
        let irq = InterruptController::new();
        let poll_cost = 10 * crate::host::HostCpu::default().bridge_cycles;
        assert!(irq.delivery_cycles() < poll_cost);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_bounds_checked() {
        let mut irq = InterruptController::new();
        irq.raise(32);
    }
}
