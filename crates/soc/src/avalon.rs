//! Avalon memory-mapped bus model (System II in the paper).

use std::fmt;
use zskip_fault::{FaultKind, SharedFaultPlan};

/// A memory-mapped slave: decodes word-aligned offsets within its range.
pub trait MmSlave {
    /// Reads the 32-bit register at byte offset `offset`.
    fn mm_read(&mut self, offset: u32) -> u32;

    /// Writes the 32-bit register at byte offset `offset`.
    fn mm_write(&mut self, offset: u32, value: u32);

    /// Wait states per access (bus cycles beyond the base transaction).
    fn wait_states(&self) -> u32 {
        1
    }
}

/// Handle to a slave registered on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveHandle(usize);

/// Bus access error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// No slave decodes the address.
    Unmapped(u32),
    /// Address is not 4-byte aligned.
    Misaligned(u32),
    /// The slave never responded within the bus timeout (injected fault
    /// or a wedged endpoint).
    Timeout(u32),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Unmapped(a) => write!(f, "no slave mapped at {a:#010x}"),
            BusError::Misaligned(a) => write!(f, "misaligned bus access at {a:#010x}"),
            BusError::Timeout(a) => write!(f, "bus timeout at {a:#010x}"),
        }
    }
}

impl std::error::Error for BusError {}

struct Mapping {
    base: u32,
    len: u32,
    slave: Box<dyn MmSlave>,
    name: String,
}

/// The Avalon-MM interconnect: routes master accesses to address-ranged
/// slaves and accounts bus cycles.
#[derive(Default)]
pub struct AvalonBus {
    mappings: Vec<Mapping>,
    reads: u64,
    writes: u64,
    cycles: u64,
    fault_plan: Option<SharedFaultPlan>,
}

/// Cycles the interconnect waits before declaring a response lost.
pub const BUS_TIMEOUT_CYCLES: u64 = 64;

impl AvalonBus {
    /// Creates an empty bus.
    pub fn new() -> AvalonBus {
        AvalonBus::default()
    }

    /// Attaches a fault plan: `avalon:read` / `avalon:write` injections
    /// fire on the nth successful access of that direction.
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    fn fire(&mut self, site: &str, ordinal: u64) -> Option<FaultKind> {
        let plan = self.fault_plan.as_ref()?;
        plan.lock().unwrap_or_else(|e| e.into_inner()).fire(site, ordinal)
    }

    /// Maps a slave at `[base, base + len)`.
    ///
    /// # Panics
    /// Panics if the range is empty, unaligned, or overlaps an existing
    /// mapping (Qsys rejects overlapping address maps at generation time).
    pub fn map(&mut self, name: impl Into<String>, base: u32, len: u32, slave: Box<dyn MmSlave>) -> SlaveHandle {
        assert!(
            len > 0 && base.is_multiple_of(4) && len.is_multiple_of(4),
            "mapping must be word-aligned and non-empty"
        );
        for m in &self.mappings {
            let overlap = base < m.base + m.len && m.base < base + len;
            assert!(!overlap, "mapping overlaps existing slave {}", m.name);
        }
        self.mappings.push(Mapping { base, len, slave, name: name.into() });
        SlaveHandle(self.mappings.len() - 1)
    }

    fn decode(&mut self, addr: u32) -> Result<(usize, u32), BusError> {
        if !addr.is_multiple_of(4) {
            return Err(BusError::Misaligned(addr));
        }
        for (i, m) in self.mappings.iter().enumerate() {
            if addr >= m.base && addr < m.base + m.len {
                return Ok((i, addr - m.base));
            }
        }
        Err(BusError::Unmapped(addr))
    }

    /// Master read.
    ///
    /// # Errors
    /// [`BusError`] on unmapped or misaligned addresses.
    pub fn read(&mut self, addr: u32) -> Result<u32, BusError> {
        let (i, off) = self.decode(addr)?;
        if self.fire("avalon:read", self.reads) == Some(FaultKind::BusTimeout) {
            self.cycles += BUS_TIMEOUT_CYCLES;
            return Err(BusError::Timeout(addr));
        }
        self.reads += 1;
        self.cycles += 1 + self.mappings[i].slave.wait_states() as u64;
        Ok(self.mappings[i].slave.mm_read(off))
    }

    /// Master write.
    ///
    /// # Errors
    /// [`BusError`] on unmapped or misaligned addresses.
    pub fn write(&mut self, addr: u32, value: u32) -> Result<(), BusError> {
        let (i, off) = self.decode(addr)?;
        if self.fire("avalon:write", self.writes) == Some(FaultKind::BusTimeout) {
            self.cycles += BUS_TIMEOUT_CYCLES;
            return Err(BusError::Timeout(addr));
        }
        self.writes += 1;
        self.cycles += 1 + self.mappings[i].slave.wait_states() as u64;
        self.mappings[i].slave.mm_write(off, value);
        Ok(())
    }

    /// Direct access to a mapped slave (for the test bench and driver).
    pub fn slave_mut(&mut self, handle: SlaveHandle) -> &mut dyn MmSlave {
        &mut *self.mappings[handle.0].slave
    }

    /// Total successful reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total successful writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bus cycles consumed (transactions plus wait states).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

impl fmt::Debug for AvalonBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AvalonBus({} slaves, {} reads, {} writes, {} cycles)",
            self.mappings.len(),
            self.reads,
            self.writes,
            self.cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch register file slave.
    struct Scratch {
        regs: Vec<u32>,
    }

    impl MmSlave for Scratch {
        fn mm_read(&mut self, offset: u32) -> u32 {
            self.regs[(offset / 4) as usize]
        }
        fn mm_write(&mut self, offset: u32, value: u32) {
            self.regs[(offset / 4) as usize] = value;
        }
    }

    fn bus_with_scratch() -> AvalonBus {
        let mut bus = AvalonBus::new();
        bus.map("scratch", 0x1000, 0x40, Box::new(Scratch { regs: vec![0; 16] }));
        bus
    }

    #[test]
    fn routes_to_mapped_slave() {
        let mut bus = bus_with_scratch();
        bus.write(0x1008, 0xdead_beef).unwrap();
        assert_eq!(bus.read(0x1008).unwrap(), 0xdead_beef);
        assert_eq!(bus.read(0x100c).unwrap(), 0);
        assert_eq!(bus.reads(), 2);
        assert_eq!(bus.writes(), 1);
        assert!(bus.cycles() >= 3);
    }

    #[test]
    fn unmapped_and_misaligned_fail() {
        let mut bus = bus_with_scratch();
        assert_eq!(bus.read(0x2000).unwrap_err(), BusError::Unmapped(0x2000));
        assert_eq!(bus.write(0x1002, 1).unwrap_err(), BusError::Misaligned(0x1002));
        assert!(bus.read(0x2000).unwrap_err().to_string().contains("no slave"));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_mappings_rejected() {
        let mut bus = bus_with_scratch();
        bus.map("other", 0x1020, 0x40, Box::new(Scratch { regs: vec![0; 16] }));
    }

    #[test]
    fn adjacent_mappings_allowed() {
        let mut bus = bus_with_scratch();
        bus.map("next", 0x1040, 0x40, Box::new(Scratch { regs: vec![0; 16] }));
        bus.write(0x1040, 7).unwrap();
        assert_eq!(bus.read(0x1040).unwrap(), 7);
        // Distinct register files.
        assert_eq!(bus.read(0x1000).unwrap(), 0);
    }

    #[test]
    fn injected_timeout_fails_one_access_then_recovers() {
        use zskip_fault::{FaultKind, FaultPlan};
        let mut bus = bus_with_scratch();
        bus.set_fault_plan(
            FaultPlan::new().inject("avalon:read", 1, FaultKind::BusTimeout).shared(),
        );
        bus.write(0x1008, 42).unwrap();
        assert_eq!(bus.read(0x1008).unwrap(), 42, "read 0 is healthy");
        let before = bus.cycles();
        assert_eq!(bus.read(0x1008).unwrap_err(), BusError::Timeout(0x1008));
        assert_eq!(bus.cycles() - before, BUS_TIMEOUT_CYCLES, "timeout is charged");
        assert_eq!(bus.read(0x1008).unwrap(), 42, "one-shot: retry succeeds");
        assert_eq!(bus.reads(), 2, "the timed-out access does not count as successful");
    }

    #[test]
    fn injected_write_timeout_leaves_register_unchanged() {
        use zskip_fault::{FaultKind, FaultPlan};
        let mut bus = bus_with_scratch();
        bus.set_fault_plan(
            FaultPlan::new().inject("avalon:write", 0, FaultKind::BusTimeout).shared(),
        );
        assert_eq!(bus.write(0x1008, 7).unwrap_err(), BusError::Timeout(0x1008));
        assert_eq!(bus.read(0x1008).unwrap(), 0, "dropped write must not land");
        bus.write(0x1008, 7).unwrap();
        assert_eq!(bus.read(0x1008).unwrap(), 7);
    }

    #[test]
    fn offsets_are_slave_relative() {
        let mut bus = AvalonBus::new();
        bus.map("hi", 0xff00_0000, 0x10, Box::new(Scratch { regs: vec![0; 4] }));
        bus.write(0xff00_000c, 42).unwrap();
        assert_eq!(bus.read(0xff00_000c).unwrap(), 42);
    }
}
