//! The embedded ARM host: CSR programming, polling, and time accounting.
//!
//! "Software executing on the on-chip ARM processor handles the loading
//! and pre-processing of network weights, biases and test images ... The
//! framework sends the instruction and calls the hardware driver for
//! inference." (paper §IV-C)

use crate::avalon::{AvalonBus, BusError};
use crate::csr::{status, AccelCsr, ACCEL_CSR_BASE};
use zskip_fault::{FaultKind, SharedFaultPlan};

/// Failure of a host-side driver operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostError {
    /// A bus transaction failed.
    Bus(BusError),
    /// The device misbehaved: never quiesced, or an injected fault fired.
    Device(DeviceFault),
}

/// A device-side misbehavior observed by the host (mirrors
/// [`zskip_fault::FaultError`] but is `Copy` for ergonomic matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// Neither DONE nor ERROR within the poll budget.
    Unresponsive {
        /// Polls issued before giving up.
        polls: u64,
    },
    /// The accelerator raised its ERROR status bit.
    ErrorBit,
}

impl From<BusError> for HostError {
    fn from(e: BusError) -> HostError {
        HostError::Bus(e)
    }
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Bus(e) => write!(f, "bus error: {e}"),
            HostError::Device(DeviceFault::Unresponsive { polls }) => {
                write!(f, "accelerator did not quiesce within {polls} polls")
            }
            HostError::Device(DeviceFault::ErrorBit) => {
                write!(f, "accelerator raised its ERROR status bit")
            }
        }
    }
}

impl std::error::Error for HostError {}

/// The host CPU model: a Cortex-A9 issuing Avalon transactions.
///
/// Time accounting is in fabric-clock cycles: each bus access costs the
/// bus's wait states plus a bridge-crossing constant; software overhead
/// between accesses is charged per operation.
#[derive(Debug)]
pub struct HostCpu {
    /// Fabric cycles per HPS-to-FPGA bridge crossing.
    pub bridge_cycles: u64,
    /// Fabric cycles of software overhead per driver call.
    pub sw_overhead_cycles: u64,
    cycles: u64,
    polls: u64,
    fault_plan: Option<SharedFaultPlan>,
}

impl Default for HostCpu {
    fn default() -> Self {
        HostCpu { bridge_cycles: 10, sw_overhead_cycles: 50, cycles: 0, polls: 0, fault_plan: None }
    }
}

impl HostCpu {
    /// Creates a host with default timing.
    pub fn new() -> HostCpu {
        HostCpu::default()
    }

    /// Total fabric cycles the host has spent in the driver.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of status polls issued.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Fabric cycles between consecutive status polls: one software loop
    /// iteration (driver overhead) plus the bridge crossing for the
    /// status read. Engine-level hosted designs use this as the poll
    /// cadence of their host kernel so both system views charge
    /// quiescence polling identically.
    pub fn poll_interval_cycles(&self) -> u64 {
        self.sw_overhead_cycles + self.bridge_cycles
    }

    /// Writes an accelerator CSR.
    ///
    /// # Errors
    /// Propagates bus decode errors.
    pub fn write_csr(&mut self, bus: &mut AvalonBus, reg: AccelCsr, value: u32) -> Result<(), BusError> {
        self.cycles += self.bridge_cycles;
        bus.write(ACCEL_CSR_BASE + reg as u32, value)
    }

    /// Reads an accelerator CSR.
    ///
    /// # Errors
    /// Propagates bus decode errors.
    pub fn read_csr(&mut self, bus: &mut AvalonBus, reg: AccelCsr) -> Result<u32, BusError> {
        self.cycles += self.bridge_cycles;
        bus.read(ACCEL_CSR_BASE + reg as u32)
    }

    /// Programs an instruction stream and rings the doorbell.
    ///
    /// # Errors
    /// Propagates bus decode errors.
    pub fn launch(&mut self, bus: &mut AvalonBus, instr_addr: u32, instr_count: u32) -> Result<(), BusError> {
        self.cycles += self.sw_overhead_cycles;
        self.write_csr(bus, AccelCsr::InstrAddr, instr_addr)?;
        self.write_csr(bus, AccelCsr::InstrCount, instr_count)?;
        self.write_csr(bus, AccelCsr::Ctrl, 1)
    }

    /// Polls status until DONE or ERROR, with a poll budget.
    ///
    /// Returns the final status word. Each poll charges a bridge crossing.
    /// Prefer [`wait_quiescent`](HostCpu::wait_quiescent), which turns an
    /// exhausted budget or ERROR bit into a structured error instead of
    /// leaving the status word for the caller to decode; kept as a
    /// compatibility shim.
    ///
    /// # Errors
    /// Propagates bus errors; returns `Ok` with the last status if the
    /// budget is exhausted (caller distinguishes via the status bits).
    pub fn wait_done(&mut self, bus: &mut AvalonBus, max_polls: u64) -> Result<u32, BusError> {
        let mut last = 0;
        for _ in 0..max_polls {
            self.polls += 1;
            last = self.read_csr(bus, AccelCsr::Status)?;
            if last & (status::DONE | status::ERROR) != 0 {
                break;
            }
        }
        Ok(last)
    }

    /// Attaches a fault plan: an `accel:quiesce` [`FaultKind::Hang`]
    /// injection makes the device unresponsive (the host burns its whole
    /// poll budget, then reports the failure).
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Polls status until the accelerator quiesces (DONE), with a poll
    /// budget, converting every failure mode into a structured error.
    ///
    /// # Errors
    /// [`HostError::Bus`] on a failed transaction;
    /// [`DeviceFault::ErrorBit`] when the accelerator flags an illegal
    /// instruction; [`DeviceFault::Unresponsive`] when the budget runs out
    /// — including under an injected `accel:quiesce` hang, which swallows
    /// DONE transitions as a wedged device would.
    pub fn wait_quiescent(&mut self, bus: &mut AvalonBus, max_polls: u64) -> Result<u32, HostError> {
        let hung = self
            .fault_plan
            .as_ref()
            .map(|p| p.lock().unwrap_or_else(|e| e.into_inner()).fire("accel:quiesce", 0))
            .unwrap_or(None)
            == Some(FaultKind::Hang);
        for _ in 0..max_polls {
            self.polls += 1;
            let word = self.read_csr(bus, AccelCsr::Status)?;
            if hung {
                // The wedged device never presents DONE to the host.
                continue;
            }
            if word & status::ERROR != 0 {
                return Err(HostError::Device(DeviceFault::ErrorBit));
            }
            if word & status::DONE != 0 {
                return Ok(word);
            }
        }
        Err(HostError::Device(DeviceFault::Unresponsive { polls: max_polls }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CsrFile, CSR_BLOCK_LEN};

    fn system() -> AvalonBus {
        let mut bus = AvalonBus::new();
        bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(CsrFile::new()));
        bus
    }

    #[test]
    fn launch_programs_registers_and_doorbell() {
        let mut bus = system();
        let mut host = HostCpu::new();
        host.launch(&mut bus, 0x40, 7).unwrap();
        assert_eq!(bus.read(ACCEL_CSR_BASE + AccelCsr::InstrAddr as u32).unwrap(), 0x40);
        assert_eq!(bus.read(ACCEL_CSR_BASE + AccelCsr::InstrCount as u32).unwrap(), 7);
        assert!(host.cycles() >= host.sw_overhead_cycles + 3 * host.bridge_cycles);
    }

    #[test]
    fn wait_done_returns_on_done_bit() {
        let mut bus = system();
        let mut host = HostCpu::new();
        // Device side sets DONE directly.
        bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::DONE).unwrap();
        let st = host.wait_done(&mut bus, 100).unwrap();
        assert_eq!(st, status::DONE);
        assert_eq!(host.polls(), 1);
    }

    #[test]
    fn wait_done_exhausts_budget_when_never_done() {
        let mut bus = system();
        let mut host = HostCpu::new();
        let st = host.wait_done(&mut bus, 5).unwrap();
        assert_eq!(st, 0);
        assert_eq!(host.polls(), 5);
    }

    #[test]
    fn wait_quiescent_returns_done_status() {
        let mut bus = system();
        let mut host = HostCpu::new();
        bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::DONE).unwrap();
        assert_eq!(host.wait_quiescent(&mut bus, 100), Ok(status::DONE));
    }

    #[test]
    fn wait_quiescent_reports_unresponsive_device() {
        let mut bus = system();
        let mut host = HostCpu::new();
        let err = host.wait_quiescent(&mut bus, 8).unwrap_err();
        assert_eq!(err, HostError::Device(DeviceFault::Unresponsive { polls: 8 }));
        assert_eq!(host.polls(), 8, "the whole budget is burned before giving up");
    }

    #[test]
    fn wait_quiescent_surfaces_error_bit() {
        let mut bus = system();
        let mut host = HostCpu::new();
        bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::ERROR).unwrap();
        let err = host.wait_quiescent(&mut bus, 100).unwrap_err();
        assert_eq!(err, HostError::Device(DeviceFault::ErrorBit));
    }

    #[test]
    fn injected_hang_swallows_done() {
        use zskip_fault::{FaultKind, FaultPlan};
        let mut bus = system();
        let mut host = HostCpu::new();
        host.set_fault_plan(
            FaultPlan::new().inject("accel:quiesce", 0, FaultKind::Hang).shared(),
        );
        // DONE is set, but the wedged device never presents it.
        bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::DONE).unwrap();
        let err = host.wait_quiescent(&mut bus, 16).unwrap_err();
        assert_eq!(err, HostError::Device(DeviceFault::Unresponsive { polls: 16 }));
    }
}

impl HostCpu {
    /// Interrupt-driven completion wait: charges one interrupt delivery
    /// plus the acknowledging CSR read, instead of a poll loop. Returns
    /// the status word read after the interrupt, or `None` if the line
    /// was not asserted (spurious wakeup).
    ///
    /// # Errors
    /// Propagates bus decode errors.
    pub fn wait_irq(
        &mut self,
        bus: &mut crate::avalon::AvalonBus,
        irq: &mut crate::irq::InterruptController,
        line: u8,
    ) -> Result<Option<u32>, crate::avalon::BusError> {
        if !irq.is_asserted(line) {
            return Ok(None);
        }
        self.cycles += irq.delivery_cycles();
        irq.ack(line);
        let status = self.read_csr(bus, AccelCsr::Status)?;
        Ok(Some(status))
    }
}

#[cfg(test)]
mod irq_tests {
    use super::*;
    use crate::csr::{CsrFile, CSR_BLOCK_LEN};
    use crate::irq::InterruptController;

    #[test]
    fn irq_wait_is_cheaper_than_polling() {
        let mut bus = AvalonBus::new();
        bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(CsrFile::new()));
        bus.write(ACCEL_CSR_BASE + AccelCsr::Status as u32, status::DONE).unwrap();

        // Polling host: 50 polls before done would cost 50 bridge trips.
        let mut poller = HostCpu::new();
        for _ in 0..50 {
            let _ = poller.read_csr(&mut bus, AccelCsr::Status).unwrap();
        }
        let poll_cost = poller.cycles();

        // IRQ host: one delivery + one ack read.
        let mut irq = InterruptController::new();
        irq.raise(0);
        let mut sleeper = HostCpu::new();
        let st = sleeper.wait_irq(&mut bus, &mut irq, 0).unwrap();
        assert_eq!(st, Some(status::DONE));
        assert!(sleeper.cycles() < poll_cost / 10, "{} vs {}", sleeper.cycles(), poll_cost);
        assert!(!irq.is_asserted(0), "acknowledged");
    }

    #[test]
    fn irq_wait_without_assertion_is_spurious() {
        let mut bus = AvalonBus::new();
        bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(CsrFile::new()));
        let mut irq = InterruptController::new();
        let mut host = HostCpu::new();
        assert_eq!(host.wait_irq(&mut bus, &mut irq, 0).unwrap(), None);
        assert_eq!(host.cycles(), 0, "no charge without an interrupt");
    }
}
