//! Dependency-free JSON serialization for zskip's machine-readable
//! artifacts (`target/artifacts/*.json`, `BENCH_batch.json`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace cannot pull `serde`/`serde_json`. Artifact structs implement
//! [`ToJson`] by hand (a few lines each); the printer emits the same
//! pretty-printed shape `serde_json::to_string_pretty` produced, so
//! downstream tooling that parsed the old artifacts keeps working
//! (structs → objects, tuples/vecs → arrays).

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are f64, as in JavaScript. Integers up to 2^53
    /// round-trip exactly; zskip's counters stay far below that.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (matches serde's struct-field order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for arrays of serializable items.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Compact rendering (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indent, matching
    /// `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

/// Shortest round-trip formatting: integers print without a trailing `.0`
/// (matching serde_json's u64/i64 output for our integer-valued fields),
/// non-finite values become `null` (JSON has no NaN/Infinity).
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        // Rust's f64 Display is shortest-round-trip.
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Hand-implemented replacement for `serde::Serialize` on artifact structs.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// `serde_json::to_string_pretty` replacement.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_tojson_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_tojson_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

macro_rules! impl_tojson_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}

impl_tojson_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_shape() {
        let v = Json::obj([
            ("name", "conv1_1".to_json()),
            ("cycles", 12345u64.to_json()),
            ("ratio", 0.5f64.to_json()),
            ("tags", Json::arr(["a", "b"])),
            ("empty", Json::Arr(vec![])),
        ]);
        let expected = "{\n  \"name\": \"conv1_1\",\n  \"cycles\": 12345,\n  \"ratio\": 0.5,\n  \"tags\": [\n    \"a\",\n    \"b\"\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_string_pretty(), expected);
    }

    #[test]
    fn compact_rendering() {
        let v = Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]);
        assert_eq!(v.to_string_compact(), "[1,true,null]");
    }

    #[test]
    fn numbers_format_like_serde() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(-0.25).to_string_compact(), "-0.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(1e20).to_string_compact(), "100000000000000000000");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".to_string()).to_string_compact(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn tuples_become_arrays() {
        let v = (1.5f64, 2u64, "x".to_string()).to_json();
        assert_eq!(v.to_string_compact(), "[1.5,2,\"x\"]");
    }
}
