//! Dependency-free JSON serialization and parsing for zskip's
//! machine-readable artifacts (`target/artifacts/*.json`,
//! `BENCH_batch.json`) and the `zskip serve` wire protocol.
//!
//! The build environment has no network access to crates.io, so the
//! workspace cannot pull `serde`/`serde_json`. Artifact structs implement
//! [`ToJson`] by hand (a few lines each); the printer emits the same
//! pretty-printed shape `serde_json::to_string_pretty` produced, so
//! downstream tooling that parsed the old artifacts keeps working
//! (structs → objects, tuples/vecs → arrays). [`Json::parse`] is the
//! inverse: a strict recursive-descent parser for the serving daemon's
//! newline-delimited request lines.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are f64, as in JavaScript. Integers up to 2^53
    /// round-trip exactly; zskip's counters stay far below that.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (matches serde's struct-field order).
    Obj(Vec<(String, Json)>),
}

/// Where and why [`Json::parse`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses one JSON value from `s`. Strict: the whole string must be
    /// consumed (modulo surrounding whitespace), duplicate object keys
    /// keep the last occurrence, and numbers follow the JSON grammar
    /// (parsed as `f64`, like everything this crate serializes).
    ///
    /// # Errors
    /// [`ParseError`] with the byte offset of the first offending
    /// character.
    pub fn parse(s: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is a whole number that
    /// fits `u64` (JSON numbers are `f64`, so 2^53 bounds exactness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n == n.trunc() && *n < 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for arrays of serializable items.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Compact rendering (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indent, matching
    /// `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    /// Consumes `word` if it is next (used for `true`/`false`/`null`).
    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // Duplicate keys keep the last occurrence, like serde_json.
            fields.retain(|(k, _)| *k != key);
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        c => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one whole UTF-8 character (input is &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..len]).expect("char boundary"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        let int_start = self.pos;
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.bytes[int_start] == b'0' && self.pos > int_start + 1 {
            self.pos = int_start + 1;
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("number out of range"))
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

/// Shortest round-trip formatting: integers print without a trailing `.0`
/// (matching serde_json's u64/i64 output for our integer-valued fields),
/// non-finite values become `null` (JSON has no NaN/Infinity).
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        // Rust's f64 Display is shortest-round-trip.
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Hand-implemented replacement for `serde::Serialize` on artifact structs.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// `serde_json::to_string_pretty` replacement.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_tojson_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_tojson_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

macro_rules! impl_tojson_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}

impl_tojson_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_shape() {
        let v = Json::obj([
            ("name", "conv1_1".to_json()),
            ("cycles", 12345u64.to_json()),
            ("ratio", 0.5f64.to_json()),
            ("tags", Json::arr(["a", "b"])),
            ("empty", Json::Arr(vec![])),
        ]);
        let expected = "{\n  \"name\": \"conv1_1\",\n  \"cycles\": 12345,\n  \"ratio\": 0.5,\n  \"tags\": [\n    \"a\",\n    \"b\"\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_string_pretty(), expected);
    }

    #[test]
    fn compact_rendering() {
        let v = Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]);
        assert_eq!(v.to_string_compact(), "[1,true,null]");
    }

    #[test]
    fn numbers_format_like_serde() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(-0.25).to_string_compact(), "-0.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(1e20).to_string_compact(), "100000000000000000000");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".to_string()).to_string_compact(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn tuples_become_arrays() {
        let v = (1.5f64, 2u64, "x".to_string()).to_json();
        assert_eq!(v.to_string_compact(), "[1.5,2,\"x\"]");
    }

    #[test]
    fn parse_round_trips_serialized_values() {
        let v = Json::obj([
            ("name", "conv1_1".to_json()),
            ("cycles", 12345u64.to_json()),
            ("ratio", (-0.25f64).to_json()),
            ("big", 1.5e10f64.to_json()),
            ("ok", true.to_json()),
            ("none", Json::Null),
            ("tags", Json::arr(["a", "b\n\"c\""])),
            ("nested", Json::obj([("x", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn parse_accessors() {
        let v = Json::parse(r#"{"op":"infer","id":7,"pixels":[1,2.5,-3],"logits":true}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("infer"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("logits").and_then(Json::as_bool), Some(true));
        let px: Vec<f64> = v.get("pixels").and_then(Json::as_arr).unwrap()
            .iter().map(|p| p.as_f64().unwrap()).collect();
        assert_eq!(px, vec![1.0, 2.5, -3.0]);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\t\\ 😀 é""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\ \u{1f600} é"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for (input, at_or_after) in [
            ("", 0),
            ("{", 1),
            ("{\"a\":}", 5),
            ("[1,]", 3),
            ("tru", 0),
            ("1.2.3", 3),
            ("\"unterminated", 13),
            ("{\"a\":1} extra", 8),
            ("01", 1), // leading zero then trailing digit
            ("\"bad \\x escape\"", 6),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.offset >= at_or_after.min(err.offset), "{input}: {err}");
            assert!(err.to_string().contains("invalid JSON at byte"), "{input}");
        }
    }

    #[test]
    fn parse_keeps_last_duplicate_key() {
        let v = Json::parse(r#"{"a":1,"b":2,"a":3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        match &v {
            Json::Obj(fields) => assert_eq!(fields.len(), 2),
            _ => unreachable!(),
        }
    }
}
