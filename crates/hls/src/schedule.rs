//! Clock-constrained operation chaining: the opt/unopt axis.
//!
//! "To produce higher-performance variants, we tightened the clock-period
//! constraint supplied to the LegUp HLS tool" (paper §V). This module
//! reproduces that lever: ops from a kernel's loop body are packed greedily
//! into pipeline stages whose combinational delay stays within the target
//! period. A loose constraint yields one fat stage (cheap, slow clock); a
//! tight one yields a deep pipeline (register cost, fast clock).

use crate::ir::Op;

/// HLS constraints for one synthesis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HlsConstraints {
    /// Target clock period in nanoseconds.
    pub target_period_ns: f64,
    /// Whether RTL-level performance optimizations (retiming, physical
    /// synthesis, high place/route effort) are enabled. Models the paper's
    /// `-opt` variants; grants a timing bonus but costs area and power.
    pub performance_optimized: bool,
}

impl HlsConstraints {
    /// The paper's non-optimized flow at a 55 MHz functional-test clock.
    pub fn unoptimized_55mhz() -> HlsConstraints {
        HlsConstraints { target_period_ns: 1000.0 / 55.0, performance_optimized: false }
    }

    /// The paper's performance-optimized flow targeting 150 MHz.
    pub fn optimized_150mhz() -> HlsConstraints {
        HlsConstraints { target_period_ns: 1000.0 / 150.0, performance_optimized: true }
    }
}

/// A scheduled pipeline for one kernel loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSchedule {
    /// Ops per stage, in chain order.
    pub stages: Vec<Vec<Op>>,
    /// Worst stage delay in nanoseconds (the achievable period before
    /// congestion derating).
    pub critical_path_ns: f64,
    /// Initiation interval in cycles: 1 unless a single op exceeds the
    /// target period *and* carries a loop dependency. All the paper's
    /// compute kernels achieve II=1.
    pub ii: u32,
}

impl PipelineSchedule {
    /// Pipeline depth in stages (register stages added = depth - 1).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Achievable clock in MHz for this schedule alone.
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / self.critical_path_ns
    }

    /// Number of pipeline registers implied (stage boundaries).
    pub fn register_stages(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }
}

/// Chains `ops` (a kernel's loop body, in dependence order) into pipeline
/// stages under the clock constraint. Greedy ASAP chaining: each op joins
/// the current stage unless it would exceed the target period.
///
/// Ops slower than the target period occupy a stage alone; the schedule's
/// `critical_path_ns` then exceeds the target, modeling a timing-constraint
/// miss (the synthesis result reports the achieved, not requested, clock).
///
/// # Panics
/// Panics if `ops` is empty or the target period is not positive.
pub fn schedule_ops(ops: &[Op], constraints: &HlsConstraints) -> PipelineSchedule {
    assert!(!ops.is_empty(), "cannot schedule an empty op chain");
    assert!(constraints.target_period_ns > 0.0, "target period must be positive");
    // The optimized flow (retiming + physical synthesis) buys ~15% delay
    // reduction on every path, at area/power cost accounted in resource.rs.
    let opt_factor = if constraints.performance_optimized { 0.85 } else { 1.0 };

    let mut stages: Vec<Vec<Op>> = vec![Vec::new()];
    let mut stage_delay = 0.0f64;
    let mut critical = 0.0f64;
    for &op in ops {
        let d = op.delay_ns() * opt_factor;
        let current = stages.last_mut().expect("at least one stage");
        if !current.is_empty() && stage_delay + d > constraints.target_period_ns {
            critical = critical.max(stage_delay);
            stages.push(vec![op]);
            stage_delay = d;
        } else {
            current.push(op);
            stage_delay += d;
        }
    }
    critical = critical.max(stage_delay);
    PipelineSchedule { stages, critical_path_ns: critical, ii: 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv_body() -> Vec<Op> {
        vec![
            Op::FifoRead,
            Op::Mux { inputs: 16, bits: 8 },
            Op::Mult { bits: 8 },
            Op::SignXor,
            Op::FifoWrite,
        ]
    }

    #[test]
    fn loose_constraint_gives_single_stage() {
        let s = schedule_ops(&conv_body(), &HlsConstraints::unoptimized_55mhz());
        assert_eq!(s.depth(), 1);
        assert!(s.critical_path_ns <= 1000.0 / 55.0);
        assert_eq!(s.ii, 1);
    }

    #[test]
    fn tight_constraint_deepens_pipeline() {
        // A staging-like body with FSM decode and memory access cannot fit
        // one 150 MHz stage.
        let body = vec![
            Op::FifoRead,
            Op::Decode { states: 160 },
            Op::Add { bits: 24 },
            Op::MemRead,
            Op::Mux { inputs: 8, bits: 16 },
            Op::FifoWrite,
        ];
        let loose = schedule_ops(&body, &HlsConstraints::unoptimized_55mhz());
        let tight = schedule_ops(&body, &HlsConstraints::optimized_150mhz());
        assert!(tight.depth() > loose.depth());
        assert!(tight.fmax_mhz() > loose.fmax_mhz());
    }

    #[test]
    fn optimized_flow_meets_150mhz_on_conv_body() {
        let s = schedule_ops(&conv_body(), &HlsConstraints::optimized_150mhz());
        assert!(s.fmax_mhz() >= 150.0, "fmax {:.1}", s.fmax_mhz());
    }

    #[test]
    fn oversized_op_occupies_stage_alone_and_misses_timing() {
        let ops = vec![Op::Decode { states: 100_000 }, Op::FifoWrite];
        let c = HlsConstraints { target_period_ns: 2.0, performance_optimized: false };
        let s = schedule_ops(&ops, &c);
        assert_eq!(s.stages[0].len(), 1);
        assert!(s.critical_path_ns > 2.0, "constraint must be reported as missed");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_chain_rejected() {
        let _ = schedule_ops(&[], &HlsConstraints::unoptimized_55mhz());
    }

    proptest! {
        #[test]
        fn all_ops_scheduled_exactly_once(
            n in 1usize..30,
            period in 1.0f64..20.0,
        ) {
            let ops: Vec<Op> = (0..n).map(|i| match i % 4 {
                0 => Op::Add { bits: 8 + (i % 3) * 8 },
                1 => Op::Mux { inputs: 4 << (i % 3), bits: 8 },
                2 => Op::Mult { bits: 8 },
                _ => Op::FifoRead,
            }).collect();
            let s = schedule_ops(&ops, &HlsConstraints { target_period_ns: period, performance_optimized: false });
            let flat: Vec<Op> = s.stages.iter().flatten().copied().collect();
            prop_assert_eq!(flat, ops);
            prop_assert!(s.critical_path_ns > 0.0);
        }

        #[test]
        fn tighter_period_never_shallower(n in 2usize..20) {
            let ops: Vec<Op> = (0..n).map(|_| Op::Add { bits: 32 }).collect();
            let shallow = schedule_ops(&ops, &HlsConstraints { target_period_ns: 18.0, performance_optimized: false });
            let deep = schedule_ops(&ops, &HlsConstraints { target_period_ns: 3.0, performance_optimized: false });
            prop_assert!(deep.depth() >= shallow.depth());
        }
    }
}
