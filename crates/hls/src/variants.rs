//! The paper's four architecture variants (§V).

use crate::design::{synthesize, AccelArch, SynthesisResult};
use crate::resource::Device;
use crate::schedule::HlsConstraints;

/// The four design points evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Simplified single conv sub-module, 16 MACs/cycle, 55 MHz.
    U16Unopt,
    /// One full accelerator (Fig. 3), 256 MACs/cycle, not performance
    /// optimized, 55 MHz.
    U256Unopt,
    /// One full accelerator, performance optimized, 150 MHz.
    U256Opt,
    /// Two full accelerator instances on separate stripes, 512 MACs/cycle,
    /// 120 MHz (congestion-limited).
    U512Opt,
}

impl Variant {
    /// All four variants in the paper's order.
    pub fn all() -> [Variant; 4] {
        [Variant::U16Unopt, Variant::U256Unopt, Variant::U256Opt, Variant::U512Opt]
    }

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::U16Unopt => "16-unopt",
            Variant::U256Unopt => "256-unopt",
            Variant::U256Opt => "256-opt",
            Variant::U512Opt => "512-opt",
        }
    }

    /// The architecture parameters.
    pub fn arch(&self) -> AccelArch {
        match self {
            Variant::U16Unopt => AccelArch::single_submodule(),
            Variant::U256Unopt | Variant::U256Opt => AccelArch::full(1),
            Variant::U512Opt => AccelArch::full(2),
        }
    }

    /// The HLS/RTL constraints applied.
    pub fn constraints(&self) -> HlsConstraints {
        match self {
            Variant::U16Unopt | Variant::U256Unopt => HlsConstraints::unoptimized_55mhz(),
            Variant::U256Opt | Variant::U512Opt => HlsConstraints::optimized_150mhz(),
        }
    }

    /// Synthesizes this variant for the paper's device.
    pub fn synthesize(&self) -> SynthesisResult {
        synthesize(&self.arch(), &self.constraints(), &Device::arria10_sx660())
    }

    /// Peak MACs per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        self.arch().macs_per_cycle()
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_macs_match_paper() {
        let macs: Vec<u64> = Variant::all().iter().map(Variant::macs_per_cycle).collect();
        assert_eq!(macs, vec![16, 256, 256, 512]);
        let labels: Vec<&str> = Variant::all().iter().map(Variant::label).collect();
        assert_eq!(labels, vec!["16-unopt", "256-unopt", "256-opt", "512-opt"]);
    }

    #[test]
    fn synthesized_clock_ordering() {
        let clocks: Vec<f64> = Variant::all().iter().map(|v| v.synthesize().operating_mhz).collect();
        // 55, 55, 150, ~120.
        assert!((clocks[0] - 55.0).abs() < 1.0);
        assert!((clocks[1] - 55.0).abs() < 1.0);
        assert!(clocks[2] > clocks[3] && clocks[3] > clocks[1]);
    }

    #[test]
    fn every_variant_fits_the_device() {
        for v in Variant::all() {
            let r = v.synthesize();
            assert!(r.utilization.fits(), "{v} does not fit: {}", r.utilization);
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = Variant::U512Opt.synthesize();
        let b = Variant::U512Opt.synthesize();
        assert_eq!(a.total, b.total);
        assert_eq!(a.operating_mhz, b.operating_mhz);
    }

    #[test]
    fn gt1150_carries_two_instances_at_full_clock() {
        // The paper: "on a larger Arria 10 FPGA family member (e.g.
        // GT1150), with nearly double the capacity, software changes alone
        // would allow us to scale out the design further."
        use crate::design::synthesize;
        use crate::resource::Device;
        use crate::schedule::HlsConstraints;
        let r = synthesize(
            &crate::design::AccelArch::full(2),
            &HlsConstraints::optimized_150mhz(),
            &Device::arria10_gt1150(),
        );
        assert!(r.utilization.fits());
        assert!((r.operating_mhz - 150.0).abs() < 1.0, "no congestion derate at {:.0}%", r.utilization.alm * 100.0);
        assert_eq!(r.arch.macs_per_cycle(), 512);
    }

    #[test]
    fn sixteen_unopt_is_tiny() {
        // Compare compute-module area only; DMA and interconnect are fixed
        // infrastructure shared by every variant.
        use crate::ir::ModuleKind;
        let compute = |r: &SynthesisResult| {
            r.modules
                .iter()
                .filter(|m| !matches!(m.kind, ModuleKind::Dma | ModuleKind::Interconnect))
                .map(|m| m.resources.alms)
                .sum::<f64>()
        };
        let small = Variant::U16Unopt.synthesize();
        let big = Variant::U256Unopt.synthesize();
        assert!(compute(&small) < compute(&big) / 3.0, "{} vs {}", compute(&small), compute(&big));
    }
}
