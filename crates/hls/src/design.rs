//! The accelerator's module inventory and the synthesis entry point.
//!
//! Module inventories are *structural*: mux fan-ins, multiplier counts,
//! FSM state counts and register banks follow directly from the paper's
//! architecture (Figs. 3-5) as a function of the architecture parameters.
//! Synthesis schedules each module's loop body under the clock constraint,
//! sums resources, and derates fmax for routing congestion at high
//! utilization.

use crate::bitwidth::{minimize_widths, DatapathWidths, VGG16_MAX_ACCUM_TERMS};
use crate::ir::{ModuleKind, Op};
use crate::resource::{congestion_derate, Device, Resources, Utilization};
use crate::schedule::{schedule_ops, HlsConstraints, PipelineSchedule};

/// Architecture parameters of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelArch {
    /// Convolution units (and staging units) per accelerator instance:
    /// 4 in the full design, 1 in the `16-unopt` strawman.
    pub conv_units: usize,
    /// Filter lanes per convolution unit (weights applied per cycle from
    /// distinct filters): 4 in the full design, 1 in `16-unopt`.
    pub lanes: usize,
    /// Accelerator instances (1, or 2 for `512-opt`).
    pub instances: usize,
    /// Capacity of each on-FPGA SRAM bank, in 16-byte tile words.
    pub bank_tiles: usize,
}

impl AccelArch {
    /// The full accelerator of paper Fig. 3 (4 staging + 4 conv + 4 accum +
    /// 4 pool/pad + 4 write units), replicated `instances` times. Bank
    /// capacity divides the fixed RAM budget across instances.
    pub fn full(instances: usize) -> AccelArch {
        assert!(instances >= 1, "need at least one instance");
        AccelArch { conv_units: 4, lanes: 4, instances, bank_tiles: 32_768 / instances }
    }

    /// The `16-unopt` single-sub-module architecture: one staging/conv
    /// pair, one filter lane, no multi-unit synchronization.
    pub fn single_submodule() -> AccelArch {
        AccelArch { conv_units: 1, lanes: 1, instances: 1, bank_tiles: 32_768 }
    }

    /// Peak multiply-accumulates per clock cycle
    /// (`instances x conv_units x lanes x 16`).
    pub fn macs_per_cycle(&self) -> u64 {
        (self.instances * self.conv_units * self.lanes * 16) as u64
    }

    /// SRAM banks per instance (fixed at 4 by the tile/quad geometry).
    pub const BANKS_PER_INSTANCE: usize = 4;

    /// Total bank capacity in tiles across all banks of one instance.
    pub fn instance_bank_tiles(&self) -> usize {
        Self::BANKS_PER_INSTANCE * self.bank_tiles
    }
}

/// Synthesized area and timing of one module class.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleArea {
    /// Which module.
    pub kind: ModuleKind,
    /// Instances of this module across the whole design.
    pub count: usize,
    /// Total resources over all instances.
    pub resources: Resources,
    /// Pipeline schedule of the module's loop body (None for storage-only
    /// or hand-written modules).
    pub schedule: Option<PipelineSchedule>,
}

/// Result of synthesizing an architecture under constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// The architecture synthesized.
    pub arch: AccelArch,
    /// The constraints applied.
    pub constraints: HlsConstraints,
    /// Target device.
    pub device: Device,
    /// Per-module areas.
    pub modules: Vec<ModuleArea>,
    /// Total resources.
    pub total: Resources,
    /// Device utilization.
    pub utilization: Utilization,
    /// Post-congestion achievable clock (MHz).
    pub achieved_fmax_mhz: f64,
    /// Operating clock: `min(requested, achieved)` (MHz).
    pub operating_mhz: f64,
}

impl SynthesisResult {
    /// Area entry for a module kind.
    pub fn module(&self, kind: ModuleKind) -> Option<&ModuleArea> {
        self.modules.iter().find(|m| m.kind == kind)
    }

    /// Peak arithmetic throughput in GOPS (2 ops per MAC) at the operating
    /// clock.
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.arch.macs_per_cycle() as f64 * self.operating_mhz * 1e6 / 1e9
    }
}

/// FSM states of the (split) data-staging controllers. The paper's
/// monolithic controller synthesized to hundreds of states and was split
/// into a convolution FSM and a pad/pool FSM (§IV-A).
const CONV_FSM_STATES: usize = 160;
const POOL_FSM_STATES: usize = 120;

/// ALMs of fan-out buffering per FSM state (the "high-fanout stall logic").
const FSM_FANOUT_ALMS_PER_STATE: f64 = 14.0;

/// ALMs per flip-flop (each ALM provides two registers, but placement
/// rarely packs both).
const ALMS_PER_FF: f64 = 0.7;

/// Pipeline registers: extra ALMs per register stage, as a fraction of the
/// module's combinational ALMs (the area cost of the `-opt` variants).
const PIPELINE_REG_FRACTION: f64 = 0.22;

/// LUT-RAM FIFO cost: control plus MLAB storage (the paper forced FIFOs
/// into LUT RAM to save M20K blocks).
const FIFO_ALMS: f64 = 56.0;

/// Builds every module's op inventory and loop body for the architecture.
/// Returns `(kind, count, loop_body, area_ops, extra_alms)` tuples.
#[allow(clippy::type_complexity)]
fn module_inventories(
    arch: &AccelArch,
    widths: &DatapathWidths,
) -> Vec<(ModuleKind, usize, Vec<Op>, Vec<(Op, usize)>, f64)> {
    let inst = arch.instances;
    let units = arch.conv_units;
    let lanes = arch.lanes;
    let mults_per_conv = lanes * 16;
    let (pw, aw) = (widths.partial_bits, widths.accum_bits);

    let mut out = Vec::new();

    // Data-staging/control: split FSMs, address generation, weight
    // unpacking muxes, IFM tile double-buffers.
    out.push((
        ModuleKind::Staging,
        inst * units,
        vec![
            Op::FifoRead,
            Op::Decode { states: CONV_FSM_STATES },
            Op::Add { bits: 24 },
            Op::MemRead,
            Op::Mux { inputs: 8, bits: 16 },
            Op::FifoWrite,
        ],
        vec![
            (Op::Decode { states: CONV_FSM_STATES }, 1),
            (Op::Decode { states: POOL_FSM_STATES }, 1),
            (Op::Add { bits: 24 }, 6),                    // address generators
            (Op::Mux { inputs: 8, bits: 16 }, 2 * lanes), // packed-weight unpack
            (Op::Mux { inputs: 16, bits: 16 }, 2),        // bank word steering
            (Op::MemRead, 2),
            (Op::FifoWrite, 3),
            (Op::Cmp { bits: 16 }, 6),
        ],
        // IFM quad double-buffer: 2 x 4 tiles x 128 b of registers, plus
        // FSM fan-out buffering.
        2.0 * 4.0 * 128.0 * ALMS_PER_FF
            + (CONV_FSM_STATES + POOL_FSM_STATES) as f64 * FSM_FANOUT_ALMS_PER_STATE,
    ));

    // Convolution unit: per lane, 16 steering muxes (16:1 over the quad
    // region, Fig. 4b), 16 sign+magnitude multipliers.
    out.push((
        ModuleKind::Conv,
        inst * units,
        vec![
            Op::FifoRead,
            Op::Mux { inputs: 16, bits: 8 },
            Op::Mult { bits: 8 },
            Op::SignXor,
            Op::FifoWrite,
        ],
        vec![
            (Op::Mux { inputs: 16, bits: 8 }, mults_per_conv),
            (Op::Mult { bits: 8 }, mults_per_conv),
            (Op::SignXor, mults_per_conv),
            (Op::FifoRead, 2),
            (Op::FifoWrite, lanes),
        ],
        // Quad-region operand registers (8x8 bytes, double-buffered) and
        // weight/offset registers per lane.
        2.0 * 64.0 * 8.0 * ALMS_PER_FF + lanes as f64 * 16.0 * ALMS_PER_FF,
    ));

    // Accumulator unit: one OFM tile (16 values); products arrive from all
    // conv units. Partial-sum alignment muxes dominate ("heavy MUX'ing").
    let accum_count = inst * lanes;
    out.push((
        ModuleKind::Accum,
        accum_count,
        vec![
            Op::FifoRead,
            Op::Add { bits: pw },
            Op::Add { bits: pw },
            Op::Add { bits: aw },
            Op::FifoWrite,
        ],
        vec![
            (Op::Mux { inputs: 16, bits: aw }, 16),              // alignment muxes
            (Op::Add { bits: pw }, 16 * (units.saturating_sub(1)).max(1)), // product tree
            (Op::Add { bits: aw }, 16),                          // accumulate
            (Op::Mult { bits: 16 }, 16),                         // requant multiply
            (Op::Cmp { bits: 16 }, 4),                           // completion detect
            (Op::FifoRead, units),
            (Op::FifoWrite, 1),
        ],
        // Accumulator registers (range-analysis width) + tile output buffer.
        (16.0 * aw as f64 + 16.0 * 8.0) * ALMS_PER_FF,
    ));

    // Pool/pad unit: 4 MAX units (each selecting any of the 16 IFM values
    // via muxes and a compare tree), 16 output update muxes (Fig. 5). The
    // 16-unopt strawman instantiates a single unit alongside its single
    // conv sub-module.
    out.push((
        ModuleKind::PoolPad,
        inst * units,
        vec![
            Op::FifoRead,
            Op::Mux { inputs: 16, bits: 8 },
            Op::Max { bits: 8 },
            Op::Max { bits: 8 },
            Op::Mux { inputs: 5, bits: 8 },
            Op::FifoWrite,
        ],
        vec![
            (Op::Mux { inputs: 16, bits: 8 }, 4 * 4), // 4 MAX units x 4 input selects
            (Op::Max { bits: 8 }, 4 * 3),             // compare trees
            (Op::Mux { inputs: 5, bits: 8 }, 16),     // output update muxes
            (Op::Decode { states: 24 }, 1),           // micro-instruction decode
            (Op::FifoRead, 2),
            (Op::FifoWrite, 1),
        ],
        16.0 * 8.0 * 2.0 * ALMS_PER_FF, // OFM tile register + input stage
    ));

    // Write-to-memory unit.
    out.push((
        ModuleKind::Write,
        inst * units,
        vec![Op::FifoRead, Op::MemWrite],
        vec![(Op::FifoRead, 2), (Op::MemWrite, 1), (Op::Add { bits: 24 }, 2)],
        16.0,
    ));

    // Inter-kernel FIFOs: instruction + data queues per edge of Fig. 3.
    let fifo_count = inst
        * (units            // staging -> conv
            + units * lanes // conv -> accum (per-lane links)
            + lanes         // accum -> write
            + units         // staging -> pool/pad
            + units         // pool/pad -> write
            + units + 4); // instruction queues
    out.push((ModuleKind::Fifos, fifo_count, vec![Op::FifoRead, Op::FifoWrite], Vec::new(), FIFO_ALMS));

    // DMA engine: hand-written RTL, fixed cost, 256-bit datapath.
    out.push((ModuleKind::Dma, 1, vec![Op::MemRead, Op::MemWrite], Vec::new(), 3_200.0));

    // Qsys interconnect, CSRs, HPS bridges: fixed plus per-instance cost.
    out.push((
        ModuleKind::Interconnect,
        1,
        vec![Op::FifoRead, Op::FifoWrite],
        Vec::new(),
        11_500.0 + 4_500.0 * inst as f64,
    ));

    out
}

/// M20K blocks for the SRAM banks and weight scratchpads.
fn ram_blocks(arch: &AccelArch) -> f64 {
    // A bank reads one 128-bit tile word per cycle: four M20Ks in parallel
    // (40-bit max native width), each 512 words deep at that width.
    let blocks_per_bank = 4.0 * (arch.bank_tiles as f64 / 512.0).ceil();
    let banks = (arch.instances * AccelArch::BANKS_PER_INSTANCE) as f64;
    // Packed-weight scratchpads: 16 M20Ks per instance.
    banks * blocks_per_bank + 16.0 * arch.instances as f64
}

/// Synthesizes the architecture under the given constraints for a device,
/// with automated bitwidth minimization (the paper's §IV-A default) sized
/// for the deepest VGG-16 accumulation.
pub fn synthesize(arch: &AccelArch, constraints: &HlsConstraints, device: &Device) -> SynthesisResult {
    synthesize_with_widths(arch, constraints, device, &minimize_widths(VGG16_MAX_ACCUM_TERMS))
}

/// Synthesis with explicit datapath widths — pass
/// [`crate::bitwidth::conservative_widths`] to ablate the bitwidth-
/// minimization pass.
pub fn synthesize_with_widths(
    arch: &AccelArch,
    constraints: &HlsConstraints,
    device: &Device,
    widths: &DatapathWidths,
) -> SynthesisResult {
    let mut modules = Vec::new();
    let mut total = Resources::ZERO;
    let mut critical_ns = 0.0f64;

    for (kind, count, body, area_ops, extra_alms) in module_inventories(arch, widths) {
        let schedule = schedule_ops(&body, constraints);
        critical_ns = critical_ns.max(schedule.critical_path_ns);

        let mut alms = extra_alms;
        let mut dsps = 0.0;
        for (op, n) in &area_ops {
            alms += op.alms() * *n as f64;
            dsps += op.dsps() * *n as f64;
        }
        // Pipeline registers scale with depth (the -opt area cost).
        alms *= 1.0 + PIPELINE_REG_FRACTION * schedule.register_stages() as f64;

        let per_unit = Resources::new(alms, dsps, 0.0);
        let res = per_unit.scaled(count as f64);
        total += res;
        modules.push(ModuleArea { kind, count, resources: res, schedule: Some(schedule) });
    }

    // Bank + scratchpad RAM.
    let m20k = ram_blocks(arch);
    total += Resources::new(0.0, 0.0, m20k);
    if let Some(fifos) = modules.iter_mut().find(|m| m.kind == ModuleKind::Fifos) {
        // RAM is accounted at top level; FIFOs stay in LUT RAM by design.
        let _ = fifos;
    }

    let utilization = device.utilization(total);
    let raw_fmax = 1000.0 / critical_ns;
    let achieved = congestion_derate(raw_fmax, utilization.alm);
    let requested = 1000.0 / constraints.target_period_ns;

    SynthesisResult {
        arch: *arch,
        constraints: *constraints,
        device: *device,
        modules,
        total,
        utilization,
        achieved_fmax_mhz: achieved,
        operating_mhz: achieved.min(requested),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_per_cycle_matches_paper() {
        assert_eq!(AccelArch::single_submodule().macs_per_cycle(), 16);
        assert_eq!(AccelArch::full(1).macs_per_cycle(), 256);
        assert_eq!(AccelArch::full(2).macs_per_cycle(), 512);
    }

    #[test]
    fn full_arch_halves_banks_when_doubled() {
        assert_eq!(AccelArch::full(1).instance_bank_tiles(), 4 * 32_768);
        assert_eq!(AccelArch::full(2).instance_bank_tiles(), 4 * 16_384);
    }

    #[test]
    fn synthesis_produces_all_modules() {
        let r = synthesize(&AccelArch::full(1), &HlsConstraints::optimized_150mhz(), &Device::arria10_sx660());
        for kind in ModuleKind::all() {
            assert!(r.module(kind).is_some(), "missing {kind:?}");
        }
        assert!(r.total.alms > 0.0 && r.total.dsps > 0.0 && r.total.m20k > 0.0);
    }

    #[test]
    fn opt_variant_is_faster_but_larger_than_unopt() {
        let device = Device::arria10_sx660();
        let arch = AccelArch::full(1);
        let unopt = synthesize(&arch, &HlsConstraints::unoptimized_55mhz(), &device);
        let opt = synthesize(&arch, &HlsConstraints::optimized_150mhz(), &device);
        assert!(opt.operating_mhz > unopt.operating_mhz);
        assert!(opt.total.alms > unopt.total.alms, "pipelining costs registers");
    }

    #[test]
    fn doubling_instances_derates_clock() {
        let device = Device::arria10_sx660();
        let one = synthesize(&AccelArch::full(1), &HlsConstraints::optimized_150mhz(), &device);
        let two = synthesize(&AccelArch::full(2), &HlsConstraints::optimized_150mhz(), &device);
        assert!(two.operating_mhz < one.operating_mhz, "congestion must bite: {} vs {}", two.operating_mhz, one.operating_mhz);
        assert!(two.utilization.alm > one.utilization.alm * 1.6);
        assert!(two.utilization.fits(), "512-opt must still fit: {}", two.utilization);
    }

    #[test]
    fn conv_accum_staging_dominate_area() {
        // The paper's Fig. 6: convolution, accumulator and
        // data-staging/control take most of the ALMs due to heavy muxing.
        let r = synthesize(&AccelArch::full(1), &HlsConstraints::optimized_150mhz(), &Device::arria10_sx660());
        let alms = |k: ModuleKind| r.module(k).unwrap().resources.alms;
        let big = alms(ModuleKind::Conv) + alms(ModuleKind::Accum) + alms(ModuleKind::Staging);
        assert!(big / r.total.alms > 0.55, "big 3 fraction {}", big / r.total.alms);
        assert!(alms(ModuleKind::Write) < alms(ModuleKind::Conv) / 5.0);
    }

    #[test]
    fn utilization_bands_match_paper_256_opt() {
        // In-text: 256-opt uses 44% ALM / 25% DSP / 49% RAM. The model
        // should land in the same bands.
        let r = synthesize(&AccelArch::full(1), &HlsConstraints::optimized_150mhz(), &Device::arria10_sx660());
        let u = r.utilization;
        assert!((0.36..=0.52).contains(&u.alm), "ALM {:.2}", u.alm);
        assert!((0.17..=0.33).contains(&u.dsp), "DSP {:.2}", u.dsp);
        assert!((0.41..=0.57).contains(&u.m20k), "M20K {:.2}", u.m20k);
    }

    #[test]
    fn operating_clocks_match_paper_bands() {
        let device = Device::arria10_sx660();
        let opt1 = synthesize(&AccelArch::full(1), &HlsConstraints::optimized_150mhz(), &device);
        assert!((opt1.operating_mhz - 150.0).abs() < 1.0, "256-opt {:.0} MHz", opt1.operating_mhz);
        let opt2 = synthesize(&AccelArch::full(2), &HlsConstraints::optimized_150mhz(), &device);
        assert!((105.0..=135.0).contains(&opt2.operating_mhz), "512-opt {:.0} MHz", opt2.operating_mhz);
        let unopt = synthesize(&AccelArch::full(1), &HlsConstraints::unoptimized_55mhz(), &device);
        assert!((unopt.operating_mhz - 55.0).abs() < 1.0, "256-unopt {:.0} MHz", unopt.operating_mhz);
    }

    #[test]
    fn bitwidth_minimization_saves_area() {
        use crate::bitwidth::conservative_widths;
        let device = Device::arria10_sx660();
        let arch = AccelArch::full(1);
        let c = HlsConstraints::optimized_150mhz();
        let minimized = synthesize(&arch, &c, &device);
        let conservative = synthesize_with_widths(&arch, &c, &device, &conservative_widths());
        assert!(
            minimized.total.alms < conservative.total.alms * 0.97,
            "range analysis must save ALMs: {:.0} vs {:.0}",
            minimized.total.alms,
            conservative.total.alms
        );
        // Savings concentrate in the accumulators (narrower adders/muxes).
        let acc_min = minimized.module(ModuleKind::Accum).unwrap().resources.alms;
        let acc_con = conservative.module(ModuleKind::Accum).unwrap().resources.alms;
        assert!(acc_min < acc_con);
    }

    #[test]
    fn peak_gops_scales_with_units_and_clock() {
        let device = Device::arria10_sx660();
        let r512 = synthesize(&AccelArch::full(2), &HlsConstraints::optimized_150mhz(), &device);
        let r256 = synthesize(&AccelArch::full(1), &HlsConstraints::optimized_150mhz(), &device);
        assert!(r512.peak_gops() > r256.peak_gops() * 1.4);
        // 512 MACs x 2 ops x ~120 MHz ~ 123 GOPS peak arithmetic.
        assert!((100.0..=160.0).contains(&r512.peak_gops()), "peak {}", r512.peak_gops());
    }
}
