//! Operation-level IR of a streaming kernel's pipelined loop body.
//!
//! Each LegUp streaming kernel is an infinite `while` loop pipelined to
//! II=1; its body is a chain of operations. The HLS model works from that
//! chain: delays drive pipeline scheduling ([`crate::schedule`]), and op
//! inventories drive area estimation ([`crate::resource`]).
//!
//! Delay numbers are documented first-order estimates for a 20 nm FPGA
//! fabric (Arria 10 class): one LUT level ≈ 0.4 ns logic + 0.5 ns local
//! routing. They are *model constants*, not measurements; what matters for
//! the reproduction is their relative magnitudes, which set pipeline depths
//! and the fmax ordering of variants.

/// One hardware operation in a kernel's loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Pop from a FIFO (registered output read).
    FifoRead,
    /// Push to a FIFO.
    FifoWrite,
    /// N:1 multiplexer, `bits` wide — the workhorse of the steering logic
    /// (paper Fig. 4b) and the pool/pad output selects (Fig. 5).
    Mux {
        /// Fan-in of the multiplexer.
        inputs: usize,
        /// Data width in bits.
        bits: usize,
    },
    /// Integer multiplier (maps to a DSP block).
    Mult {
        /// Operand width in bits.
        bits: usize,
    },
    /// Integer adder.
    Add {
        /// Operand width in bits.
        bits: usize,
    },
    /// Two-input max (compare + select), as in the pool/pad MAX units.
    Max {
        /// Operand width in bits.
        bits: usize,
    },
    /// Comparator (e.g. done-detection).
    Cmp {
        /// Operand width in bits.
        bits: usize,
    },
    /// FSM next-state/output decode for a controller with `states` states.
    /// Large monolithic controllers decode slowly and fan out widely — the
    /// paper split its controller into two C functions for exactly this
    /// reason (§IV-A).
    Decode {
        /// Number of FSM states.
        states: usize,
    },
    /// On-chip SRAM read (one tile word).
    MemRead,
    /// On-chip SRAM write.
    MemWrite,
    /// Sign XOR of a sign+magnitude multiply.
    SignXor,
}

impl Op {
    /// Combinational delay in nanoseconds (20 nm fabric estimate).
    pub fn delay_ns(&self) -> f64 {
        const LUT_LEVEL: f64 = 0.9; // 0.4 ns logic + 0.5 ns routing
        match self {
            Op::FifoRead | Op::FifoWrite => 1.0,
            // A 4:1 mux fits one LUT level; wider muxes cascade.
            Op::Mux { inputs, .. } => LUT_LEVEL * ((*inputs).max(2) as f64).log2() / 2.0,
            Op::Mult { bits } => 1.8 + 0.05 * *bits as f64, // DSP block + routing
            Op::Add { bits } => 0.9 + 0.04 * *bits as f64,  // carry chain
            Op::Max { bits } => 0.9 + 0.04 * *bits as f64 + LUT_LEVEL, // cmp + select
            Op::Cmp { bits } => 0.9 + 0.04 * *bits as f64,
            // log-depth decode of the state register plus output fanout.
            Op::Decode { states } => LUT_LEVEL * ((*states).max(2) as f64).log2() / 2.0 + 0.8,
            Op::MemRead | Op::MemWrite => 2.0, // M20K access
            Op::SignXor => 0.5,
        }
    }

    /// ALM cost of one instance of this op.
    pub fn alms(&self) -> f64 {
        match self {
            // FIFO control logic (pointers, full/empty flags); the storage
            // itself is LUT RAM, counted by the resource module.
            Op::FifoRead | Op::FifoWrite => 8.0,
            // Roughly 0.68 ALMs per bit per input leg of an N:1 mux: each
            // ALM packs two 2:1 mux bits in the ideal case, but select
            // fanout and routing duplication push the realized cost up.
            Op::Mux { inputs, bits } => (*inputs as f64 - 1.0) * 0.68 * *bits as f64,
            Op::Mult { .. } => 4.0, // interface registers; multiply is in DSP
            Op::Add { bits } => *bits as f64 / 2.0,
            Op::Max { bits } => *bits as f64 * 1.0, // cmp + mux
            Op::Cmp { bits } => *bits as f64 / 2.0,
            // State register + one-hot decode + next-state logic; grows
            // linearly in states (the "high-fanout FSM stall logic" cost).
            Op::Decode { states } => 10.0 + 1.8 * *states as f64,
            Op::MemRead | Op::MemWrite => 12.0, // address/byte-enable logic
            Op::SignXor => 1.0,
        }
    }

    /// DSP-block cost of one instance (fractional: two 8-bit multiplies
    /// can share one variable-precision DSP block, but following the
    /// paper's synthesis results we model no packing across units).
    pub fn dsps(&self) -> f64 {
        match self {
            Op::Mult { bits } if *bits <= 19 => 1.0,
            Op::Mult { .. } => 2.0,
            _ => 0.0,
        }
    }
}

/// The accelerator's module classes (paper Fig. 3 plus infrastructure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModuleKind {
    /// Data-staging / control unit.
    Staging,
    /// Convolution unit.
    Conv,
    /// Accumulator unit.
    Accum,
    /// Padding / max-pooling unit.
    PoolPad,
    /// Write-to-memory unit.
    Write,
    /// Inter-kernel FIFO queues (LUT-RAM storage + control).
    Fifos,
    /// DMA engine (the one hand-written RTL block in the paper).
    Dma,
    /// Qsys interconnect, CSRs, clock crossing.
    Interconnect,
}

impl ModuleKind {
    /// Display name matching the paper's Fig. 6 labels.
    pub fn label(&self) -> &'static str {
        match self {
            ModuleKind::Staging => "data-staging/control",
            ModuleKind::Conv => "convolution",
            ModuleKind::Accum => "accumulator",
            ModuleKind::PoolPad => "pool/pad",
            ModuleKind::Write => "write-to-memory",
            ModuleKind::Fifos => "FIFOs",
            ModuleKind::Dma => "DMA",
            ModuleKind::Interconnect => "interconnect",
        }
    }

    /// All module kinds, accelerator compute units first.
    pub fn all() -> [ModuleKind; 8] {
        [
            ModuleKind::Staging,
            ModuleKind::Conv,
            ModuleKind::Accum,
            ModuleKind::PoolPad,
            ModuleKind::Write,
            ModuleKind::Fifos,
            ModuleKind::Dma,
            ModuleKind::Interconnect,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_positive_and_ordered() {
        assert!(Op::SignXor.delay_ns() > 0.0);
        // A multiplier is slower than an 8-bit add.
        assert!(Op::Mult { bits: 8 }.delay_ns() > Op::Add { bits: 8 }.delay_ns());
        // Wider muxes are slower.
        assert!(Op::Mux { inputs: 16, bits: 8 }.delay_ns() > Op::Mux { inputs: 4, bits: 8 }.delay_ns());
        // Bigger FSMs decode slower.
        assert!(Op::Decode { states: 400 }.delay_ns() > Op::Decode { states: 40 }.delay_ns());
    }

    #[test]
    fn mux_area_scales_with_fanin_and_width() {
        let small = Op::Mux { inputs: 4, bits: 8 }.alms();
        let wide = Op::Mux { inputs: 16, bits: 8 }.alms();
        let wider = Op::Mux { inputs: 16, bits: 16 }.alms();
        assert!(wide > small * 3.0);
        assert!((wider / wide - 2.0).abs() < 1e-9);
    }

    #[test]
    fn only_mults_use_dsps() {
        assert_eq!(Op::Mult { bits: 8 }.dsps(), 1.0);
        assert_eq!(Op::Mult { bits: 27 }.dsps(), 2.0);
        assert_eq!(Op::Add { bits: 32 }.dsps(), 0.0);
        assert_eq!(Op::Mux { inputs: 16, bits: 8 }.dsps(), 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = ModuleKind::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
