//! FPGA resource accounting: ALMs, DSP blocks, M20K memory blocks.

use std::ops::{Add, AddAssign};

/// A resource bundle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// Adaptive Logic Modules.
    pub alms: f64,
    /// Variable-precision DSP blocks.
    pub dsps: f64,
    /// M20K block-RAM blocks (20 Kb each).
    pub m20k: f64,
}

impl Resources {
    /// The zero bundle.
    pub const ZERO: Resources = Resources { alms: 0.0, dsps: 0.0, m20k: 0.0 };

    /// Creates a bundle.
    pub fn new(alms: f64, dsps: f64, m20k: f64) -> Resources {
        Resources { alms, dsps, m20k }
    }

    /// Scales every component (e.g. per-unit cost times unit count).
    pub fn scaled(&self, by: f64) -> Resources {
        Resources { alms: self.alms * by, dsps: self.dsps * by, m20k: self.m20k * by }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources { alms: self.alms + rhs.alms, dsps: self.dsps + rhs.dsps, m20k: self.m20k + rhs.m20k }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

/// An FPGA device's capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// ALM count.
    pub alms: u64,
    /// DSP block count.
    pub dsps: u64,
    /// M20K block count.
    pub m20k: u64,
}

impl Device {
    /// The paper's target: mid-sized Intel Arria 10 SX660 SoC FPGA
    /// (nominal datasheet capacities).
    pub fn arria10_sx660() -> Device {
        Device { name: "Arria 10 SX660", alms: 251_680, dsps: 1_687, m20k: 2_131 }
    }

    /// A larger family member the paper mentions for further scale-out
    /// ("on a larger Arria 10 FPGA family member (e.g. GT1150), with nearly
    /// double the capacity, software changes alone would allow us to scale
    /// out the design further").
    pub fn arria10_gt1150() -> Device {
        Device { name: "Arria 10 GT1150", alms: 427_200, dsps: 1_518, m20k: 2_713 }
    }

    /// Utilization of this device by a resource bundle.
    pub fn utilization(&self, used: Resources) -> Utilization {
        Utilization {
            alm: used.alms / self.alms as f64,
            dsp: used.dsps / self.dsps as f64,
            m20k: used.m20k / self.m20k as f64,
        }
    }
}

/// Fractional device utilization per resource class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// ALM fraction used.
    pub alm: f64,
    /// DSP fraction used.
    pub dsp: f64,
    /// M20K fraction used.
    pub m20k: f64,
}

impl Utilization {
    /// The binding (maximum) utilization across resource classes.
    pub fn max(&self) -> f64 {
        self.alm.max(self.dsp).max(self.m20k)
    }

    /// Whether the design fits the device.
    pub fn fits(&self) -> bool {
        self.max() <= 1.0
    }
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ALM {:.0}%, DSP {:.0}%, M20K {:.0}%",
            self.alm * 100.0,
            self.dsp * 100.0,
            self.m20k * 100.0
        )
    }
}

/// Congestion-derated fmax: routing pressure grows with ALM utilization.
///
/// The paper observed this directly: "Routing of the 512-opt architecture
/// failed at higher performance targets due to high congestion", capping
/// it at 120 MHz where the single-instance 256-opt closed at 150 MHz. The
/// model derates linearly above a congestion knee; the slope is calibrated
/// so that doubling the accelerator (≈88% ALM) costs ≈20% of fmax.
pub fn congestion_derate(fmax_mhz: f64, alm_utilization: f64) -> f64 {
    const KNEE: f64 = 0.50;
    const SLOPE: f64 = 0.90;
    if alm_utilization <= KNEE {
        fmax_mhz
    } else {
        fmax_mhz * (1.0 - SLOPE * (alm_utilization - KNEE)).max(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_add_and_scale() {
        let a = Resources::new(100.0, 2.0, 1.0);
        let b = Resources::new(50.0, 1.0, 0.0);
        let sum = a + b;
        assert_eq!(sum, Resources::new(150.0, 3.0, 1.0));
        assert_eq!(a.scaled(2.0), Resources::new(200.0, 4.0, 2.0));
        let mut c = Resources::ZERO;
        c += a;
        assert_eq!(c, a);
    }

    #[test]
    fn utilization_against_sx660() {
        let d = Device::arria10_sx660();
        let u = d.utilization(Resources::new(125_840.0, 421.75, 1_065.5));
        assert!((u.alm - 0.5).abs() < 1e-12);
        assert!((u.dsp - 0.25).abs() < 1e-12);
        assert!((u.m20k - 0.5).abs() < 1e-12);
        assert!(u.fits());
        assert_eq!(u.max(), 0.5);
    }

    #[test]
    fn overfull_design_does_not_fit() {
        let d = Device::arria10_sx660();
        let u = d.utilization(Resources::new(300_000.0, 0.0, 0.0));
        assert!(!u.fits());
    }

    #[test]
    fn congestion_kicks_in_above_knee() {
        assert_eq!(congestion_derate(150.0, 0.44), 150.0);
        // Calibration point: a ~167 MHz path at ~81% ALM utilization lands
        // near the paper's congestion-limited 120 MHz.
        let derated = congestion_derate(167.0, 0.81);
        assert!(derated < 128.0 && derated > 112.0, "derated {derated}");
    }

    #[test]
    fn derate_never_goes_negative() {
        assert!(congestion_derate(150.0, 5.0) > 0.0);
    }

    #[test]
    fn gt1150_is_bigger_in_logic() {
        assert!(Device::arria10_gt1150().alms > Device::arria10_sx660().alms);
    }

    #[test]
    fn display_formats_percentages() {
        let u = Utilization { alm: 0.44, dsp: 0.25, m20k: 0.49 };
        assert_eq!(u.to_string(), "ALM 44%, DSP 25%, M20K 49%");
    }
}
