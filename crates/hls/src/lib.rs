//! A model of the LegUp HLS flow: from kernel op inventories to clocked,
//! pipelined, resource-estimated FPGA designs.
//!
//! The paper's central methodological claim is that a *single* Pthreads C
//! source plus HLS/RTL **constraint changes alone** yields a family of
//! accelerator variants with different performance/area trade-offs (§IV-A,
//! §V). A real HLS flow is out of reach from Rust (see DESIGN.md), but the
//! properties the evaluation measures are reproducible from a model of
//! what HLS does:
//!
//! * [`ir`] — the operation-level IR of each streaming kernel's pipelined
//!   loop body (muxes, multipliers, adders, FIFO/memory ports, FSM decode);
//! * [`schedule`] — operation chaining under a clock-period constraint:
//!   tighter constraints produce deeper pipelines (more registers, higher
//!   fmax), looser ones produce shallow cheap pipelines — the opt/unopt
//!   axis;
//! * [`resource`] — ALM/DSP/M20K estimation from the op inventory, the
//!   structural driver behind Fig. 6's area breakdown;
//! * [`design`] — the accelerator's module inventory as a function of its
//!   architecture (conv units, lanes, instances, bank size) and
//!   [`design::synthesize`], producing fmax, per-module area and device
//!   utilization, including the congestion-derated fmax that capped the
//!   paper's 512-opt variant at 120 MHz;
//! * [`variants`] — the paper's four named design points.

pub mod bitwidth;
pub mod design;
pub mod ir;
pub mod resource;
pub mod schedule;
pub mod variants;

pub use bitwidth::{minimize_widths, DatapathWidths, ValueRange};
pub use design::{synthesize, AccelArch, ModuleArea, SynthesisResult};
pub use ir::{ModuleKind, Op};
pub use resource::{Device, Resources, Utilization};
pub use schedule::{schedule_ops, HlsConstraints, PipelineSchedule};
pub use variants::Variant;
