//! Automated bitwidth minimization — range analysis on datapath values.
//!
//! "The primary HLS constraints applied were loop pipelining,
//! if-conversion, **automated bitwidth minimization** \[Gort & Anderson,
//! ASP-DAC'13\], and clock-period constraints." (paper §IV-A)
//!
//! The pass propagates value ranges through the accelerator's datapath
//! and narrows every operator to the width its range actually needs:
//! an 8-bit sign+magnitude product fits 15 bits, and accumulating
//! `512 x 9` such products (the deepest VGG-16 layer) plus a bias fits
//! 28 bits — not the conservative 32. Narrower adders and alignment
//! muxes are the area dividend.

/// An inclusive signed value range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRange {
    /// Smallest value.
    pub min: i64,
    /// Largest value.
    pub max: i64,
}

impl ValueRange {
    /// Creates a range.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(min: i64, max: i64) -> ValueRange {
        assert!(min <= max, "empty range {min}..{max}");
        ValueRange { min, max }
    }

    /// The symmetric range of an 8-bit sign+magnitude value.
    pub const SM8: ValueRange = ValueRange { min: -127, max: 127 };

    /// Range of a sum of `n` values drawn from this range (an
    /// accumulation), optionally plus a bias from `bias`.
    pub fn accumulate(self, n: u64, bias: Option<ValueRange>) -> ValueRange {
        let mut r = ValueRange { min: self.min * n as i64, max: self.max * n as i64 };
        if let Some(b) = bias {
            r = r + b;
        }
        r
    }

    /// Bits of a two's-complement register holding every value in the
    /// range (at least 1).
    pub fn required_bits(self) -> usize {
        let mut bits = 1;
        // Find the smallest b with -2^(b-1) <= min and max <= 2^(b-1)-1.
        while bits < 63 {
            let lo = -(1i64 << (bits - 1));
            let hi = (1i64 << (bits - 1)) - 1;
            if self.min >= lo && self.max <= hi {
                return bits;
            }
            bits += 1;
        }
        64
    }
}

/// Range of the sum of two values: interval addition.
impl std::ops::Add for ValueRange {
    type Output = ValueRange;

    fn add(self, rhs: ValueRange) -> ValueRange {
        ValueRange { min: self.min + rhs.min, max: self.max + rhs.max }
    }
}

/// Range of the product of two values: interval multiplication.
impl std::ops::Mul for ValueRange {
    type Output = ValueRange;

    fn mul(self, rhs: ValueRange) -> ValueRange {
        let candidates = [
            self.min * rhs.min,
            self.min * rhs.max,
            self.max * rhs.min,
            self.max * rhs.max,
        ];
        ValueRange {
            min: *candidates.iter().min().expect("non-empty"),
            max: *candidates.iter().max().expect("non-empty"),
        }
    }
}

/// Datapath widths of the accelerator derived by range analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathWidths {
    /// Product of a weight and an activation.
    pub product_bits: usize,
    /// Accumulator register and accumulate adder.
    pub accum_bits: usize,
    /// Partial-sum adder tree stage (sums of up to `units` products).
    pub partial_bits: usize,
}

/// Bias budget in product-equivalents: the driver clamps accumulator-
/// domain biases to the range of this many worst-case products (a larger
/// bias would saturate the 8-bit output anyway).
pub const BIAS_PRODUCT_EQUIVALENTS: u64 = 16;

/// Largest accumulator-domain bias the driver will emit.
pub const MAX_BIAS_MAGNITUDE: i64 = BIAS_PRODUCT_EQUIVALENTS as i64 * 127 * 127;

/// Derives minimized widths for a workload bound: the largest number of
/// accumulated terms any OFM value sees (`in_c x k^2` of the deepest
/// layer), with an 8-bit sign+magnitude datapath.
pub fn minimize_widths(max_accum_terms: u64) -> DatapathWidths {
    let product = ValueRange::SM8 * ValueRange::SM8;
    let bias = ValueRange::new(-MAX_BIAS_MAGNITUDE, MAX_BIAS_MAGNITUDE);
    let accum = product.accumulate(max_accum_terms.max(1), Some(bias));
    // Tree stage: one conv unit contributes up to 4 lanes' products per
    // cycle but each accumulator input sums `units` unit outputs.
    let partial = product.accumulate(4, None);
    DatapathWidths {
        product_bits: product.required_bits(),
        accum_bits: accum.required_bits(),
        partial_bits: partial.required_bits(),
    }
}

/// Conservative (no range analysis) widths: everything 32-bit past the
/// multipliers — the ablation baseline.
pub fn conservative_widths() -> DatapathWidths {
    DatapathWidths { product_bits: 16, accum_bits: 32, partial_bits: 32 }
}

/// The deepest VGG-16 accumulation: 512 input channels x 3x3 kernel.
pub const VGG16_MAX_ACCUM_TERMS: u64 = 512 * 9;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sm8_product_fits_15_bits() {
        let p = ValueRange::SM8 * ValueRange::SM8;
        assert_eq!(p.max, 16129);
        assert_eq!(p.min, -16129);
        assert_eq!(p.required_bits(), 15);
    }

    #[test]
    fn required_bits_boundaries() {
        assert_eq!(ValueRange::new(0, 0).required_bits(), 1);
        assert_eq!(ValueRange::new(-1, 0).required_bits(), 1);
        assert_eq!(ValueRange::new(0, 1).required_bits(), 2);
        assert_eq!(ValueRange::new(-128, 127).required_bits(), 8);
        assert_eq!(ValueRange::new(-129, 127).required_bits(), 9);
        assert_eq!(ValueRange::new(0, 65535).required_bits(), 17);
    }

    #[test]
    fn vgg_accumulator_fits_28_bits() {
        let w = minimize_widths(VGG16_MAX_ACCUM_TERMS);
        assert_eq!(w.product_bits, 15);
        // (4608 + 16) * 16129 ~ 74.6M: 28 bits, four fewer than the
        // conservative 32-bit datapath.
        assert_eq!(w.accum_bits, 28);
        assert!(w.partial_bits < w.accum_bits);
        // Smaller workloads need fewer bits.
        let small = minimize_widths(9);
        assert!(small.accum_bits < w.accum_bits);
    }

    #[test]
    fn conservative_is_never_narrower() {
        let min = minimize_widths(VGG16_MAX_ACCUM_TERMS);
        let cons = conservative_widths();
        assert!(cons.product_bits >= min.product_bits);
        // (conservative accum may be narrower than a pathological bound;
        // for the VGG bound it is wider or equal on the tree stage.)
        assert!(cons.partial_bits >= min.partial_bits);
    }

    proptest! {
        #[test]
        fn add_and_mul_ranges_contain_samples(
            a in -1000i64..1000, b in -1000i64..1000,
            c in -1000i64..1000, d in -1000i64..1000,
        ) {
            let r1 = ValueRange::new(a.min(b), a.max(b));
            let r2 = ValueRange::new(c.min(d), c.max(d));
            let sum = r1 + r2;
            prop_assert!(sum.min <= a.min(b) + c.min(d) && a.max(b) + c.max(d) <= sum.max);
            let prod = r1 * r2;
            for x in [r1.min, r1.max] {
                for y in [r2.min, r2.max] {
                    prop_assert!(prod.min <= x * y && x * y <= prod.max);
                }
            }
        }

        #[test]
        fn required_bits_is_sufficient(min in -100000i64..0, max in 0i64..100000) {
            let r = ValueRange::new(min, max);
            let b = r.required_bits();
            let lo = -(1i64 << (b - 1));
            let hi = (1i64 << (b - 1)) - 1;
            prop_assert!(lo <= min && max <= hi);
            // And one bit fewer would not suffice (when b > 1).
            if b > 1 {
                let lo2 = -(1i64 << (b - 2));
                let hi2 = (1i64 << (b - 2)) - 1;
                prop_assert!(min < lo2 || max > hi2);
            }
        }
    }
}
