//! Synthesis calibration dump: per-module area/timing of all four paper
//! variants. Used when tuning the resource-model constants against the
//! paper's in-text utilization numbers (44% ALM / 49% RAM for 256-opt).
//!
//! ```sh
//! cargo run -p zskip-hls --example calib
//! ```

use zskip_hls::*;
fn main() {
    for v in Variant::all() {
        let r = v.synthesize();
        println!("== {} ==", v.label());
        println!("  util: {}  achieved {:.1} MHz  operating {:.1} MHz", r.utilization, r.achieved_fmax_mhz, r.operating_mhz);
        println!("  total: alms {:.0} dsps {:.0} m20k {:.0}", r.total.alms, r.total.dsps, r.total.m20k);
        for m in &r.modules {
            println!("    {:24} x{:3} alms {:8.0} dsps {:5.0} depth {:?} crit {:?}",
                m.kind.label(), m.count, m.resources.alms, m.resources.dsps,
                m.schedule.as_ref().map(|s| s.depth()),
                m.schedule.as_ref().map(|s| (s.critical_path_ns*100.0).round()/100.0));
        }
    }
}
