//! Magnitude pruning to per-layer density targets (paper §IV-B).
//!
//! The paper's pruned VGG-16 model was produced "using Caffe, in a manner
//! similar to \[Han et al., Deep Compression\]". ImageNet and the trained
//! model are not available here, so we reproduce the *sparsity structure*:
//! synthetic weights are magnitude-pruned to the per-layer density profile
//! published for VGG-16 by Deep Compression. Throughput and zero-skipping
//! behaviour depend only on which weights are zero, not on their trained
//! values, so this preserves the evaluation.

/// Prunes `weights` in place so that approximately `density` of them remain
/// non-zero, zeroing the smallest-magnitude entries first. Returns the
/// magnitude threshold used.
///
/// `density` is clamped to `[0, 1]`. Ties at the threshold are kept, so the
/// achieved density can slightly exceed the target when values repeat.
pub fn prune_to_density(weights: &mut [f32], density: f64) -> f32 {
    let density = density.clamp(0.0, 1.0);
    if weights.is_empty() {
        return 0.0;
    }
    let keep = ((weights.len() as f64) * density).round() as usize;
    if keep >= weights.len() {
        return 0.0;
    }
    if keep == 0 {
        weights.iter_mut().for_each(|w| *w = 0.0);
        return f32::INFINITY;
    }
    let mut mags: Vec<f32> = weights.iter().map(|w| w.abs()).collect();
    // Threshold = magnitude of the keep-th largest element.
    let cut = mags.len() - keep;
    mags.select_nth_unstable_by(cut, |a, b| a.partial_cmp(b).expect("weights must not be NaN"));
    let threshold = mags[cut];
    for w in weights.iter_mut() {
        if w.abs() < threshold {
            *w = 0.0;
        }
    }
    threshold
}

/// Fraction of zero entries in a slice.
pub fn sparsity(weights: &[f32]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    weights.iter().filter(|&&w| w == 0.0).count() as f64 / weights.len() as f64
}

/// Per-convolution-layer density profile (fraction of weights kept).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityProfile {
    densities: Vec<f64>,
    name: &'static str,
}

impl DensityProfile {
    /// A dense (unpruned) profile for `layers` conv layers. This models the
    /// paper's "reduced precision" (variant #1) network, in which weights
    /// are non-zero except for those that quantize to zero.
    pub fn dense(layers: usize) -> DensityProfile {
        DensityProfile { densities: vec![1.0; layers], name: "dense" }
    }

    /// A uniform profile keeping `density` of the weights in every layer.
    pub fn uniform(layers: usize, density: f64) -> DensityProfile {
        DensityProfile { densities: vec![density.clamp(0.0, 1.0); layers], name: "uniform" }
    }

    /// The per-layer density profile of the Deep Compression pruned VGG-16
    /// (Han et al. 2015, Table 4), which the paper's pruned model follows
    /// ("in a manner similar to \[9\]"). Thirteen conv layers.
    pub fn deep_compression_vgg16() -> DensityProfile {
        DensityProfile {
            densities: vec![
                0.58, // conv1_1
                0.22, // conv1_2
                0.34, // conv2_1
                0.36, // conv2_2
                0.53, // conv3_1
                0.24, // conv3_2
                0.42, // conv3_3
                0.32, // conv4_1
                0.27, // conv4_2
                0.34, // conv4_3
                0.35, // conv5_1
                0.29, // conv5_2
                0.36, // conv5_3
            ],
            name: "deep-compression-vgg16",
        }
    }

    /// Creates a profile from explicit per-layer densities.
    pub fn from_densities(densities: Vec<f64>) -> DensityProfile {
        DensityProfile { densities, name: "custom" }
    }

    /// Density for conv layer `i`; defaults to 1.0 past the profile's end.
    pub fn density(&self, layer: usize) -> f64 {
        self.densities.get(layer).copied().unwrap_or(1.0)
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.densities.len()
    }

    /// Whether the profile covers no layers.
    pub fn is_empty(&self) -> bool {
        self.densities.is_empty()
    }

    /// Profile name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Mean density across layers (1.0 for an empty profile).
    pub fn mean_density(&self) -> f64 {
        if self.densities.is_empty() {
            1.0
        } else {
            self.densities.iter().sum::<f64>() / self.densities.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn prunes_smallest_magnitudes_first() {
        let mut w = ramp(10);
        prune_to_density(&mut w, 0.3);
        // Keeps the 3 largest magnitudes: 8, -9 (wait: ramp alternates), check by magnitude.
        let kept: Vec<f32> = w.iter().copied().filter(|&v| v != 0.0).collect();
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|v| v.abs() >= 8.0));
    }

    #[test]
    fn density_one_keeps_everything() {
        let mut w = ramp(16);
        let orig = w.clone();
        assert_eq!(prune_to_density(&mut w, 1.0), 0.0);
        assert_eq!(w, orig);
    }

    #[test]
    fn density_zero_zeroes_everything() {
        let mut w = ramp(16);
        prune_to_density(&mut w, 0.0);
        assert!(w.iter().all(|&v| v == 0.0));
        assert_eq!(sparsity(&w), 1.0);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut w: Vec<f32> = vec![];
        assert_eq!(prune_to_density(&mut w, 0.5), 0.0);
        assert_eq!(sparsity(&w), 0.0);
    }

    #[test]
    fn deep_compression_profile_matches_published_mean() {
        let p = DensityProfile::deep_compression_vgg16();
        assert_eq!(p.len(), 13);
        // Deep Compression keeps roughly a third of VGG conv weights.
        let mean = p.mean_density();
        assert!((0.3..0.4).contains(&mean), "mean {mean}");
        assert_eq!(p.name(), "deep-compression-vgg16");
        // Past-the-end layers are dense.
        assert_eq!(p.density(99), 1.0);
    }

    #[test]
    fn uniform_profile_clamps() {
        let p = DensityProfile::uniform(3, 1.5);
        assert_eq!(p.density(0), 1.0);
        let p = DensityProfile::uniform(3, -0.5);
        assert_eq!(p.density(2), 0.0);
    }

    proptest! {
        #[test]
        fn achieved_density_close_to_target(
            n in 1usize..500,
            density in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            // Distinct magnitudes (no ties) derived from a permutation.
            let mut w: Vec<f32> = (0..n)
                .map(|i| ((i as u64 * 2654435761 + seed) % 100000) as f32 / 100.0 + 0.001 + i as f32 * 1e-7)
                .collect();
            prune_to_density(&mut w, density);
            let achieved = 1.0 - sparsity(&w);
            let expect = ((n as f64) * density).round() / n as f64;
            prop_assert!((achieved - expect).abs() <= 1.0 / n as f64 + 1e-9,
                "n={} target={} achieved={}", n, density, achieved);
        }

        #[test]
        fn pruning_never_changes_surviving_values(n in 1usize..200, density in 0.0f64..1.0) {
            let orig = ramp(n);
            let mut w = orig.clone();
            prune_to_density(&mut w, density);
            for (a, b) in w.iter().zip(&orig) {
                prop_assert!(*a == 0.0 || a == b);
            }
        }
    }
}
