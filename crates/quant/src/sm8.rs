//! The 8-bit magnitude-plus-sign number format (paper §IV-B).

use std::cmp::Ordering;
use std::fmt;

/// An 8-bit sign+magnitude value: bit 7 is the sign, bits 6..0 the
/// magnitude. Representable range is `-127..=127`; note that, unlike
/// two's complement, the format has both `+0` and `-0` encodings — the two
/// encodings compare equal and hash identically.
///
/// Sign+magnitude was chosen by the paper because the multiplier then
/// reduces to an unsigned 7x7 multiply plus an XOR of the signs, which maps
/// compactly onto FPGA DSP blocks.
///
/// # Example
/// ```
/// use zskip_quant::Sm8;
/// let a = Sm8::from_i32_saturating(-5);
/// let b = Sm8::from_i32_saturating(7);
/// assert_eq!(a.to_i32() * b.to_i32(), -35);
/// assert_eq!(Sm8::from_i32_saturating(1000).to_i32(), 127);
/// assert!(Sm8::NEG_ZERO == Sm8::ZERO);
/// ```
#[derive(Clone, Copy)]
#[repr(transparent)]
pub struct Sm8(u8);

impl Sm8 {
    /// Positive zero (all bits clear).
    pub const ZERO: Sm8 = Sm8(0);
    /// Negative zero (sign bit set, zero magnitude). Equal to [`Sm8::ZERO`].
    pub const NEG_ZERO: Sm8 = Sm8(0x80);
    /// Largest representable value, +127.
    pub const MAX: Sm8 = Sm8(0x7f);
    /// Smallest representable value, -127.
    pub const MIN: Sm8 = Sm8(0xff);

    /// Builds from raw sign+magnitude bits.
    pub const fn from_bits(bits: u8) -> Sm8 {
        Sm8(bits)
    }

    /// The raw sign+magnitude bit pattern.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Builds from sign and magnitude parts.
    ///
    /// # Panics
    /// Panics if `magnitude > 127`.
    pub fn new(negative: bool, magnitude: u8) -> Sm8 {
        assert!(magnitude <= 127, "magnitude {magnitude} exceeds 7 bits");
        Sm8(if negative { 0x80 | magnitude } else { magnitude })
    }

    /// Converts to a full-width integer (the value injected into the
    /// accelerator's 32-bit accumulators).
    #[inline]
    pub const fn to_i32(self) -> i32 {
        let mag = (self.0 & 0x7f) as i32;
        if self.0 & 0x80 != 0 {
            -mag
        } else {
            mag
        }
    }

    /// Saturating conversion from a full-width integer; values outside
    /// `-127..=127` clamp to the range limits.
    #[inline]
    pub const fn from_i32_saturating(v: i32) -> Sm8 {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        let mag = if mag > 127 { 127 } else { mag as u8 };
        Sm8(if neg { 0x80 | mag } else { mag })
    }

    /// The magnitude part (0..=127).
    #[inline]
    pub const fn magnitude(self) -> u8 {
        self.0 & 0x7f
    }

    /// Whether the sign bit is set. Note `-0` reports `true` here while
    /// still comparing equal to `+0`.
    #[inline]
    pub const fn sign_bit(self) -> bool {
        self.0 & 0x80 != 0
    }

    /// Whether the value is zero (either encoding).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & 0x7f == 0
    }

    /// The product with another value, exact in `i32`. Models the
    /// accelerator's multiplier: unsigned 7x7 multiply, XOR sign.
    #[inline]
    pub const fn mul_exact(self, rhs: Sm8) -> i32 {
        let mag = (self.magnitude() as i32) * (rhs.magnitude() as i32);
        if self.sign_bit() != rhs.sign_bit() {
            -mag
        } else {
            mag
        }
    }

    /// Branch-free decode to `i16`: `(mag ^ neg) - neg` where `neg` is the
    /// sign bit arithmetically smeared to `0` or `-1`. Identical to
    /// [`Sm8::to_i32`] for every bit pattern (including `-0`), but maps
    /// 1:1 onto the lane-parallel form SIMD kernels use, so the scalar and
    /// vector datapaths share one decode definition.
    #[inline]
    pub const fn decode_i16(self) -> i16 {
        let mag = (self.0 & 0x7f) as i16;
        // Shift the sign bit (bit 7) to bit 15, then arithmetic-shift it
        // across the lane: 0x00.. for positive, 0xff.. for negative.
        let neg = ((self.0 as i16) << 8) >> 15;
        (mag ^ neg) - neg
    }

    /// Bulk branch-free decode of a slice into `i16` lanes.
    ///
    /// # Panics
    /// Panics if `dst` is shorter than `src`.
    #[inline]
    pub fn decode_slice_i16(src: &[Sm8], dst: &mut [i16]) {
        assert!(dst.len() >= src.len(), "decode destination too short");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.decode_i16();
        }
    }

    /// Bulk branch-free decode of a slice, widened to `i32` lanes.
    ///
    /// # Panics
    /// Panics if `dst` is shorter than `src`.
    #[inline]
    pub fn decode_slice_i32(src: &[Sm8], dst: &mut [i32]) {
        assert!(dst.len() >= src.len(), "decode destination too short");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.decode_i16() as i32;
        }
    }
}

impl Default for Sm8 {
    fn default() -> Self {
        Sm8::ZERO
    }
}

impl PartialEq for Sm8 {
    fn eq(&self, other: &Self) -> bool {
        self.to_i32() == other.to_i32()
    }
}

impl Eq for Sm8 {}

impl PartialOrd for Sm8 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sm8 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.to_i32().cmp(&other.to_i32())
    }
}

impl std::hash::Hash for Sm8 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.to_i32().hash(state);
    }
}

impl std::ops::Neg for Sm8 {
    type Output = Sm8;
    fn neg(self) -> Sm8 {
        Sm8(self.0 ^ 0x80)
    }
}

impl From<Sm8> for i32 {
    fn from(v: Sm8) -> i32 {
        v.to_i32()
    }
}

impl TryFrom<i32> for Sm8 {
    type Error = OutOfRangeError;

    fn try_from(v: i32) -> Result<Sm8, OutOfRangeError> {
        if (-127..=127).contains(&v) {
            Ok(Sm8::from_i32_saturating(v))
        } else {
            Err(OutOfRangeError(v))
        }
    }
}

/// Error: an integer does not fit the sign+magnitude 8-bit range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRangeError(pub i32);

impl fmt::Display for OutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} outside sign+magnitude 8-bit range -127..=127", self.0)
    }
}

impl std::error::Error for OutOfRangeError {}

impl fmt::Debug for Sm8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sm8({})", self.to_i32())
    }
}

impl fmt::Display for Sm8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_i32())
    }
}

impl fmt::Binary for Sm8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Sm8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Sm8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_all_in_range_values() {
        for v in -127..=127 {
            assert_eq!(Sm8::from_i32_saturating(v).to_i32(), v);
            assert_eq!(Sm8::try_from(v).unwrap().to_i32(), v);
        }
    }

    #[test]
    fn saturates_out_of_range() {
        assert_eq!(Sm8::from_i32_saturating(128).to_i32(), 127);
        assert_eq!(Sm8::from_i32_saturating(-128).to_i32(), -127);
        assert_eq!(Sm8::from_i32_saturating(i32::MIN).to_i32(), -127);
        assert!(Sm8::try_from(128).is_err());
        assert_eq!(Sm8::try_from(200).unwrap_err(), OutOfRangeError(200));
    }

    #[test]
    fn both_zeros_equal_and_hash_alike() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        assert_eq!(Sm8::ZERO, Sm8::NEG_ZERO);
        assert!(Sm8::NEG_ZERO.is_zero());
        let h = |v: Sm8| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(Sm8::ZERO), h(Sm8::NEG_ZERO));
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        let v = Sm8::from_i32_saturating(42);
        assert_eq!((-v).to_i32(), -42);
        assert_eq!((-(-v)).to_i32(), 42);
        assert_eq!((-Sm8::ZERO), Sm8::ZERO);
    }

    #[test]
    fn ordering_is_by_value() {
        let mut vals: Vec<Sm8> = [3, -7, 0, 127, -127].iter().map(|&v| Sm8::from_i32_saturating(v)).collect();
        vals.sort();
        let ints: Vec<i32> = vals.iter().map(|v| v.to_i32()).collect();
        assert_eq!(ints, vec![-127, -7, 0, 3, 127]);
    }

    #[test]
    fn formatting_exposes_bits() {
        let v = Sm8::new(true, 5);
        assert_eq!(format!("{v:x}"), "85");
        assert_eq!(format!("{v:X}"), "85");
        assert_eq!(format!("{v:b}"), "10000101");
        assert_eq!(format!("{v}"), "-5");
        assert_eq!(format!("{v:?}"), "Sm8(-5)");
    }

    #[test]
    #[should_panic(expected = "magnitude")]
    fn new_rejects_wide_magnitude() {
        let _ = Sm8::new(false, 200);
    }

    proptest! {
        #[test]
        fn mul_exact_matches_i32_multiply(a in -127i32..=127, b in -127i32..=127) {
            let sa = Sm8::from_i32_saturating(a);
            let sb = Sm8::from_i32_saturating(b);
            prop_assert_eq!(sa.mul_exact(sb), a * b);
        }

        #[test]
        fn bits_round_trip(bits in 0u8..=255) {
            let v = Sm8::from_bits(bits);
            prop_assert_eq!(v.to_bits(), bits);
            // Value always in range.
            prop_assert!((-127..=127).contains(&v.to_i32()));
        }

        #[test]
        fn neg_is_involution(v in -127i32..=127) {
            let s = Sm8::from_i32_saturating(v);
            prop_assert_eq!(-(-s), s);
        }

        #[test]
        fn branchfree_decode_matches_to_i32_for_all_bit_patterns(bits in 0u8..=255) {
            let v = Sm8::from_bits(bits);
            prop_assert_eq!(v.decode_i16() as i32, v.to_i32());
        }

        #[test]
        fn bulk_decode_matches_elementwise(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            let src: Vec<Sm8> = bytes.iter().map(|&b| Sm8::from_bits(b)).collect();
            let mut d16 = vec![0i16; src.len()];
            let mut d32 = vec![0i32; src.len()];
            Sm8::decode_slice_i16(&src, &mut d16);
            Sm8::decode_slice_i32(&src, &mut d32);
            for (i, s) in src.iter().enumerate() {
                prop_assert_eq!(d16[i] as i32, s.to_i32());
                prop_assert_eq!(d32[i], s.to_i32());
            }
        }
    }
}
