//! The packed non-zero weight format behind zero-weight skipping
//! (paper §III-B).
//!
//! For a given CNN model "the non-zero weights and their intra-tile offsets
//! are packed offline in advance in software. ... During inference, the
//! accelerator receives the weight values and their intra-tile offsets in a
//! packed format that is read directly into scratchpad memory. One non-zero
//! weight is applied per clock cycle; no cycles are spent on weights having
//! a value of 0."
//!
//! [`PackedTile`] is the offline-packed form of one 4x4 weight tile.
//! [`LockstepGroup`] iterates four filters' packed tiles in lockstep — the
//! hardware applies one weight from each of four filters per cycle, so a
//! filter with fewer non-zeros idles (a pipeline bubble) until the slowest
//! lane finishes, exactly the imbalance the paper reports and its
//! future-work filter grouping (see [`crate::grouping`]) mitigates.

use crate::Sm8;
use zskip_tensor::{Tile, TILE_ELEMS};

/// One packed weight: a non-zero value plus its intra-tile offset (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedEntry {
    /// Intra-tile offset, row-major (0..16). Decoded by the convolution
    /// unit's steering muxes into an (dy, dx) window select.
    pub offset: u8,
    /// The weight value (non-zero by construction).
    pub value: Sm8,
}

/// A weight tile packed to its non-zero entries, in ascending offset order.
///
/// # Example
/// ```
/// use zskip_quant::{PackedTile, Sm8};
/// use zskip_tensor::Tile;
/// let mut tile = Tile::<Sm8>::zero();
/// tile[(1, 1)] = Sm8::from_i32_saturating(5);
/// tile[(2, 3)] = Sm8::from_i32_saturating(-3);
/// let packed = PackedTile::pack(&tile);
/// assert_eq!(packed.nnz(), 2);
/// assert_eq!(packed.unpack(), tile);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedTile {
    entries: Vec<PackedEntry>,
}

impl PackedTile {
    /// Packs a weight tile, skipping zeros (either sign encoding).
    pub fn pack(tile: &Tile<Sm8>) -> PackedTile {
        let entries = tile
            .iter_offsets()
            .filter(|(_, v)| !v.is_zero())
            .map(|(offset, value)| PackedEntry { offset, value })
            .collect();
        PackedTile { entries }
    }

    /// Packs a weight tile *without* zero-skipping: all 16 slots become
    /// entries, zeros included. This is the ablation baseline — the
    /// architecture with the paper's novel packing disabled, spending a
    /// cycle on every weight slot.
    pub fn pack_dense(tile: &Tile<Sm8>) -> PackedTile {
        let entries = tile.iter_offsets().map(|(offset, value)| PackedEntry { offset, value }).collect();
        PackedTile { entries }
    }

    /// Reconstructs the dense 4x4 tile.
    pub fn unpack(&self) -> Tile<Sm8> {
        let mut tile = Tile::zero();
        for e in &self.entries {
            tile.as_mut_array()[e.offset as usize] = e.value;
        }
        tile
    }

    /// Number of non-zero weights (cycles the convolution unit spends on
    /// this tile, before the 4-cycle IFM-load floor).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tile is entirely zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The packed entries in ascending offset order.
    pub fn entries(&self) -> &[PackedEntry] {
        &self.entries
    }

    /// Serializes to the scratchpad byte format: a count byte followed by
    /// `[offset, value-bits]` pairs. This is the stream the DMA writes and
    /// the data-staging unit unpacks at some entries/cycle bandwidth.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 2 * self.entries.len());
        out.push(self.entries.len() as u8);
        for e in &self.entries {
            out.push(e.offset);
            out.push(e.value.to_bits());
        }
        out
    }

    /// Deserializes from the scratchpad byte format, returning the tile and
    /// the number of bytes consumed.
    ///
    /// # Errors
    /// Returns [`PackDecodeError`] on truncated input or invalid offsets.
    pub fn from_bytes(bytes: &[u8]) -> Result<(PackedTile, usize), PackDecodeError> {
        let &count = bytes.first().ok_or(PackDecodeError::Truncated)?;
        let count = count as usize;
        if count > TILE_ELEMS {
            return Err(PackDecodeError::BadCount(count));
        }
        let need = 1 + 2 * count;
        if bytes.len() < need {
            return Err(PackDecodeError::Truncated);
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let offset = bytes[1 + 2 * i];
            if offset as usize >= TILE_ELEMS {
                return Err(PackDecodeError::BadOffset(offset));
            }
            entries.push(PackedEntry { offset, value: Sm8::from_bits(bytes[2 + 2 * i]) });
        }
        Ok((PackedTile { entries }, need))
    }

    /// Size in bytes of the serialized form.
    pub fn byte_len(&self) -> usize {
        1 + 2 * self.entries.len()
    }

    /// Approximate heap bytes held by this packed tile — the entry vector's
    /// capacity. Used by the shared weight cache ([`crate::cache`]) to
    /// account resident artifact size.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<PackedEntry>()
    }

    /// Reconstructs the dense tile as 16 branch-free-decoded `i16` lanes —
    /// the exact form a 16-wide SIMD register consumes after the paper's
    /// 1-tile/cycle bank read. Zero slots decode to 0.
    pub fn decode_dense_i16(&self) -> [i16; TILE_ELEMS] {
        let mut out = [0i16; TILE_ELEMS];
        for e in &self.entries {
            out[e.offset as usize] = e.value.decode_i16();
        }
        out
    }
}

/// Error decoding a packed weight stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackDecodeError {
    /// The byte stream ended mid-tile.
    Truncated,
    /// The count byte exceeds 16.
    BadCount(usize),
    /// An offset byte exceeds 15.
    BadOffset(u8),
}

impl std::fmt::Display for PackDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackDecodeError::Truncated => write!(f, "packed weight stream truncated"),
            PackDecodeError::BadCount(c) => write!(f, "packed tile count {c} exceeds 16"),
            PackDecodeError::BadOffset(o) => write!(f, "packed weight offset {o} exceeds 15"),
        }
    }
}

impl std::error::Error for PackDecodeError {}

/// Four filters' packed tiles iterated in lockstep, one weight per filter
/// per cycle. Lanes whose filter has fewer non-zeros yield `None` (pipeline
/// bubbles).
#[derive(Debug, Clone)]
pub struct LockstepGroup<'a> {
    lanes: [&'a PackedTile; 4],
}

impl<'a> LockstepGroup<'a> {
    /// Creates a lockstep group over four filters' packed tiles.
    pub fn new(lanes: [&'a PackedTile; 4]) -> Self {
        LockstepGroup { lanes }
    }

    /// Number of weight-application steps: the slowest lane's non-zero
    /// count. (The data-staging unit additionally enforces the 4-cycle
    /// IFM-tile-load floor; see `zskip-core`.)
    pub fn steps(&self) -> usize {
        self.lanes.iter().map(|t| t.nnz()).max().unwrap_or(0)
    }

    /// Number of bubble slots: idle lane-cycles caused by imbalance.
    pub fn bubbles(&self) -> usize {
        let steps = self.steps();
        self.lanes.iter().map(|t| steps - t.nnz()).sum()
    }

    /// Iterates lockstep steps; each yields one optional entry per lane.
    pub fn iter(&self) -> impl Iterator<Item = [Option<PackedEntry>; 4]> + '_ {
        let steps = self.steps();
        (0..steps).map(move |i| {
            let mut row = [None; 4];
            for (lane, tile) in self.lanes.iter().enumerate() {
                row[lane] = tile.entries().get(i).copied();
            }
            row
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tile_from_i32(vals: [i32; 16]) -> Tile<Sm8> {
        let mut t = Tile::zero();
        for (i, v) in vals.iter().enumerate() {
            t.as_mut_array()[i] = Sm8::from_i32_saturating(*v);
        }
        t
    }

    #[test]
    fn packs_only_nonzeros_in_offset_order() {
        let t = tile_from_i32([0, 5, 0, 0, -3, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 1]);
        let p = PackedTile::pack(&t);
        assert_eq!(p.nnz(), 4);
        let offsets: Vec<u8> = p.entries().iter().map(|e| e.offset).collect();
        assert_eq!(offsets, vec![1, 4, 10, 15]);
        assert_eq!(p.unpack(), t);
    }

    #[test]
    fn negative_zero_is_skipped() {
        let mut t = Tile::<Sm8>::zero();
        t.as_mut_array()[3] = Sm8::NEG_ZERO;
        let p = PackedTile::pack(&t);
        assert!(p.is_empty());
    }

    #[test]
    fn bytes_round_trip() {
        let t = tile_from_i32([1, 0, -2, 0, 3, 0, -4, 0, 5, 0, -6, 0, 7, 0, -8, 0]);
        let p = PackedTile::pack(&t);
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.byte_len());
        let (q, used) = PackedTile::from_bytes(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(q, p);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(PackedTile::from_bytes(&[]).unwrap_err(), PackDecodeError::Truncated);
        assert_eq!(PackedTile::from_bytes(&[17]).unwrap_err(), PackDecodeError::BadCount(17));
        assert_eq!(PackedTile::from_bytes(&[1, 16, 0]).unwrap_err(), PackDecodeError::BadOffset(16));
        assert_eq!(PackedTile::from_bytes(&[2, 0, 1]).unwrap_err(), PackDecodeError::Truncated);
    }

    #[test]
    fn lockstep_steps_is_max_lane() {
        let a = PackedTile::pack(&tile_from_i32([1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]));
        let b = PackedTile::pack(&tile_from_i32([1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]));
        let c = PackedTile::pack(&Tile::zero());
        let d = PackedTile::pack(&tile_from_i32([1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]));
        let g = LockstepGroup::new([&a, &b, &c, &d]);
        assert_eq!(g.steps(), 6);
        assert_eq!(g.bubbles(), (6 - 3) + (6 - 1) + 6);
        let rows: Vec<_> = g.iter().collect();
        assert_eq!(rows.len(), 6);
        assert!(rows[0][0].is_some() && rows[0][2].is_none());
        assert!(rows[5][3].is_some() && rows[5][0].is_none());
    }

    #[test]
    fn lockstep_all_empty_has_zero_steps() {
        let z = PackedTile::default();
        let g = LockstepGroup::new([&z, &z, &z, &z]);
        assert_eq!(g.steps(), 0);
        assert_eq!(g.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn pack_unpack_round_trip(vals in proptest::array::uniform16(-127i32..=127)) {
            let t = tile_from_i32(vals);
            let p = PackedTile::pack(&t);
            prop_assert_eq!(p.unpack(), t);
            prop_assert_eq!(p.nnz(), vals.iter().filter(|&&v| v != 0).count());
        }

        #[test]
        fn decode_dense_i16_matches_unpack(vals in proptest::array::uniform16(-127i32..=127)) {
            let t = tile_from_i32(vals);
            let lanes = PackedTile::pack(&t).decode_dense_i16();
            for (i, v) in t.as_array().iter().enumerate() {
                prop_assert_eq!(lanes[i] as i32, v.to_i32());
            }
        }

        #[test]
        fn bytes_round_trip_any_tile(vals in proptest::array::uniform16(-127i32..=127)) {
            let p = PackedTile::pack(&tile_from_i32(vals));
            let (q, used) = PackedTile::from_bytes(&p.to_bytes()).unwrap();
            prop_assert_eq!(used, p.byte_len());
            prop_assert_eq!(q, p);
        }
    }
}
