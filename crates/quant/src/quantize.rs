//! Scaling quantization (float → sign+magnitude) and the fixed-point
//! requantizer applied when a completed OFM tile leaves the accumulators.
//!
//! The paper reduces a trained VGG-16 to 8-bit by *scaling* (§IV-B). We use
//! symmetric per-tensor scales: `q = round(x / scale)` clamped to ±127.
//! Inside the accelerator, products of 8-bit activations and weights
//! accumulate in wide integers with a *fixed* datapath width ("keep a fixed
//! datapath width and not compromise accuracy by rounding partial sums",
//! §III-B); only when an OFM tile completes is it rescaled back to 8 bits
//! by an integer multiply-shift ([`Requantizer`]) — the hardware-friendly
//! equivalent of dividing by `scale_out / (scale_in * scale_w)`.

use crate::Sm8;

/// Symmetric per-tensor quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// The real value represented by one quantized step.
    pub scale: f32,
}

impl QuantParams {
    /// Chooses a scale that maps the largest-magnitude element of `data`
    /// to ±127. Falls back to scale 1.0 for empty/all-zero data.
    pub fn from_max_abs(data: &[f32]) -> QuantParams {
        let max_abs = data.iter().fold(0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        QuantParams { scale }
    }

    /// Quantizes one value (round-to-nearest, saturating).
    #[inline]
    pub fn quantize(&self, v: f32) -> Sm8 {
        Sm8::from_i32_saturating((v / self.scale).round() as i32)
    }

    /// Dequantizes one value.
    #[inline]
    pub fn dequantize(&self, q: Sm8) -> f32 {
        q.to_i32() as f32 * self.scale
    }

    /// Quantizes a slice.
    pub fn quantize_all(&self, data: &[f32]) -> Vec<Sm8> {
        data.iter().map(|&v| self.quantize(v)).collect()
    }
}

/// Integer multiply-shift requantizer: `out = sat_sm8((acc * mult) >> shift)`
/// with round-to-nearest. `mult` fits in 16 bits, mirroring a hardware
/// constant multiplier.
///
/// # Example
/// ```
/// use zskip_quant::Requantizer;
/// // Halve the accumulator value.
/// let r = Requantizer::from_ratio(0.5);
/// assert_eq!(r.apply(100).to_i32(), 50);
/// assert_eq!(r.apply(-100).to_i32(), -50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Requantizer {
    /// Fixed-point multiplier (0..=65535).
    pub mult: u32,
    /// Right-shift amount.
    pub shift: u32,
}

impl Requantizer {
    /// Identity requantizer (`mult = 1, shift = 0`).
    pub const IDENTITY: Requantizer = Requantizer { mult: 1, shift: 0 };

    /// Approximates a positive real ratio as `mult / 2^shift` with a 16-bit
    /// `mult`, maximizing precision.
    ///
    /// # Panics
    /// Panics if `ratio` is not finite and positive.
    pub fn from_ratio(ratio: f64) -> Requantizer {
        assert!(ratio.is_finite() && ratio > 0.0, "requantizer ratio must be positive, got {ratio}");
        // Scale the ratio into [2^15, 2^16) then record the shift.
        let mut shift = 0u32;
        let mut r = ratio;
        while r < 32768.0 && shift < 63 {
            r *= 2.0;
            shift += 1;
        }
        while r >= 65536.0 && shift > 0 {
            r /= 2.0;
            shift -= 1;
        }
        let mult = (r.round() as u32).min(65535);
        Requantizer { mult, shift }
    }

    /// The real ratio this requantizer implements.
    pub fn ratio(&self) -> f64 {
        self.mult as f64 / (1u64 << self.shift) as f64
    }

    /// Applies the requantizer to a wide accumulator value, with
    /// round-to-nearest and saturation to the Sm8 range. This is the exact
    /// integer operation the accelerator and the software reference share,
    /// so both produce bit-identical OFM tiles.
    #[inline]
    pub fn apply(&self, acc: i64) -> Sm8 {
        Sm8::from_i32_saturating(self.apply_raw(acc))
    }

    /// [`Requantizer::apply`] without the final Sm8 saturation: the
    /// multiply-shift-round result clamped to `i32`. Elementwise add uses
    /// this to rescale both operands to the output scale *before* the
    /// single saturation at the join.
    #[inline]
    pub fn apply_raw(&self, acc: i64) -> i32 {
        let prod = acc * self.mult as i64;
        let rounded = if self.shift == 0 {
            prod
        } else {
            let half = 1i64 << (self.shift - 1);
            // Round-half-away-from-zero, symmetric for the sign+magnitude format.
            if prod >= 0 {
                (prod + half) >> self.shift
            } else {
                -((-prod + half) >> self.shift)
            }
        };
        rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }

    /// Applies ReLU then requantization — the fused epilogue the
    /// accumulator unit performs when an OFM tile completes.
    #[inline]
    pub fn apply_relu(&self, acc: i64) -> Sm8 {
        if acc < 0 {
            Sm8::ZERO
        } else {
            self.apply(acc)
        }
    }
}

/// Signal-to-quantization-noise ratio in dB between a reference signal and
/// its quantized reconstruction. Used to report quantization fidelity in
/// place of the paper's (data-gated) ImageNet accuracy.
pub fn sqnr_db(reference: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(reference.len(), reconstructed.len());
    let signal: f64 = reference.iter().map(|&v| (v as f64).powi(2)).sum();
    let noise: f64 = reference
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_max_abs_uses_full_range() {
        let data = [0.5f32, -2.0, 1.0];
        let q = QuantParams::from_max_abs(&data);
        assert_eq!(q.quantize(-2.0).to_i32(), -127);
        assert_eq!(q.quantize(2.0).to_i32(), 127);
        assert_eq!(q.quantize(0.0).to_i32(), 0);
    }

    #[test]
    fn from_max_abs_handles_all_zero() {
        let q = QuantParams::from_max_abs(&[0.0, 0.0]);
        assert_eq!(q.scale, 1.0);
        assert_eq!(q.quantize(0.0), Sm8::ZERO);
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_half_step() {
        let q = QuantParams { scale: 0.1 };
        for v in [-12.0f32, -0.04, 0.0, 0.06, 3.21, 12.69] {
            let d = q.dequantize(q.quantize(v));
            assert!((d - v).abs() <= 0.05 + 1e-6, "v={v} d={d}");
        }
    }

    #[test]
    fn requantizer_identity_like_ratios() {
        let r = Requantizer::from_ratio(1.0);
        for acc in [-1000i64, -1, 0, 1, 77, 126] {
            assert_eq!(r.apply(acc).to_i32() as i64, acc.clamp(-127, 127));
        }
    }

    #[test]
    fn requantizer_ratio_precision() {
        for ratio in [0.001, 0.017, 0.3, 0.5, 1.7, 42.0] {
            let r = Requantizer::from_ratio(ratio);
            let rel = (r.ratio() - ratio).abs() / ratio;
            assert!(rel < 1e-4, "ratio {ratio} approximated as {} (rel {rel})", r.ratio());
        }
    }

    #[test]
    fn requantizer_rounding_is_symmetric() {
        let r = Requantizer::from_ratio(0.5);
        // 3 * 0.5 = 1.5 rounds away from zero in both directions.
        assert_eq!(r.apply(3).to_i32(), 2);
        assert_eq!(r.apply(-3).to_i32(), -2);
    }

    #[test]
    fn relu_epilogue_clamps_negative() {
        let r = Requantizer::from_ratio(1.0);
        assert_eq!(r.apply_relu(-500), Sm8::ZERO);
        assert_eq!(r.apply_relu(50).to_i32(), 50);
    }

    #[test]
    fn sqnr_infinite_for_exact_match() {
        let v = [1.0f32, 2.0, 3.0];
        assert!(sqnr_db(&v, &v).is_infinite());
    }

    #[test]
    fn sqnr_reasonable_for_8bit() {
        // Quantize a ramp; 8-bit SQNR should be roughly 40-50 dB.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 / 500.0) - 1.0).collect();
        let q = QuantParams::from_max_abs(&data);
        let rec: Vec<f32> = data.iter().map(|&v| q.dequantize(q.quantize(v))).collect();
        let s = sqnr_db(&data, &rec);
        assert!(s > 35.0 && s < 60.0, "sqnr {s}");
    }

    proptest! {
        #[test]
        fn requantizer_monotone(a in -100000i64..100000, b in -100000i64..100000, ratio in 0.01f64..10.0) {
            let r = Requantizer::from_ratio(ratio);
            if a <= b {
                prop_assert!(r.apply(a) <= r.apply(b));
            }
        }

        #[test]
        fn quantize_within_one_step(v in -100.0f32..100.0, scale in 0.01f32..2.0) {
            let q = QuantParams { scale };
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            // Error is half a step unless saturated.
            let saturated = (v / scale).abs() > 127.0;
            if !saturated {
                prop_assert!(err <= scale * 0.5 + 1e-5);
            }
        }
    }
}
