//! Reduced-precision arithmetic and zero-weight packing for the SOCC'17
//! accelerator.
//!
//! The paper's accelerator computes in **8-bit magnitude-plus-sign** format
//! (§IV-B), obtained from a trained float model by scaling, and exploits
//! weight sparsity (from pruning, after Han et al. deep compression) with a
//! **packed non-zero weight format**: each non-zero weight is stored with
//! its intra-tile offset so that the convolution unit spends no cycles on
//! zero weights (§III-B).
//!
//! This crate provides:
//!
//! * [`Sm8`] — the sign+magnitude 8-bit number,
//! * [`quantize`] — float→Sm8 scaling and the fixed-point requantizer used
//!   when an accumulated OFM tile is written back,
//! * [`prune`] — magnitude pruning to per-layer density profiles,
//! * [`pack`] — the packed (offset, value) weight-tile format and the
//!   lockstep 4-filter iteration that produces the paper's pipeline bubbles,
//! * [`grouping`] — the paper's *future work*: grouping filters by non-zero
//!   count so concurrently-applied filters have balanced work,
//! * [`cache`] — a process-wide lock-lite cache so workers and sessions
//!   share one copy of each derived packing instead of re-deriving it.

pub mod cache;
pub mod grouping;
pub mod pack;
pub mod prune;
pub mod quantize;
pub mod sm8;
pub mod ternary;

pub use cache::{CacheStats, Fingerprint, WeightCache};
pub use pack::{LockstepGroup, PackedEntry, PackedTile};
pub use prune::{prune_to_density, sparsity, DensityProfile};
pub use quantize::{QuantParams, Requantizer};
pub use sm8::Sm8;
pub use ternary::TernaryParams;
