//! Shared lock-lite cache for derived weight artifacts.
//!
//! Packing a layer's weights into the paper's non-zero format (§III-B) is
//! value-independent: the same `QuantConvWeights` always yields the same
//! packed taps, nnz table, and scratchpad byte stream. PR 5's per-instance
//! `OnceLock` caches already amortized that within one weight object, but
//! every batch worker, driver session, and per-image pipeline pass that
//! rebuilt or cloned weights re-derived identical packing from scratch.
//!
//! [`WeightCache`] is a process-wide concurrent map from a 64-bit content
//! **fingerprint** to an `Arc`'d derived artifact. It is *lock-lite* in the
//! transposition-table sense: a fixed power-of-two array of shards, each a
//! small `RwLock`ed vec, so concurrent readers on different shards never
//! contend and readers on the same shard share the lock. There is no
//! eviction — CNN weight sets are few and long-lived, so the cache is
//! bounded by the working set of distinct networks in the process (see
//! [`WeightCache::clear`] for tests and long-running hosts that swap
//! models).
//!
//! Keys come from [`Fingerprint`], an FNV-1a style streaming hasher over the
//! weight *content* (geometry, raw bits, requant parameters) rather than
//! addresses, so two identical weight objects — e.g. one per batch worker —
//! share one cache entry. A 64-bit digest over at most a handful of weight
//! sets makes accidental collision probability negligible (birthday bound
//! ~n²/2⁶⁵), and any collision is caught by the bit-exactness property
//! suite, which compares every cached path against the scalar oracle.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of shards. Power of two; indexed by the fingerprint's low bits.
/// 16 shards keep worst-case contention (N workers warming the same
/// network) to at most a handful of threads per lock.
const SHARDS: usize = 16;

/// Counters exported by [`WeightCache::stats`] and surfaced by
/// `zskip analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an existing entry.
    pub hits: u64,
    /// Lookups that had to build and insert the artifact.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate heap bytes held by resident artifacts, as reported by
    /// the `bytes` closure at insert time.
    pub bytes: usize,
}

/// A sharded, process-wide map from content fingerprint to a shared
/// derived-weight artifact.
///
/// Values are handed out as `Arc<V>` so callers (worker threads, cached
/// `OnceLock`s inside weight objects) can hold the artifact without pinning
/// the cache lock. `get_or_insert_with` is the only mutating entry point;
/// on a racy double-build the first inserted value wins and the loser's
/// build is discarded, so all holders observe one canonical artifact.
/// One shard: a small linear-probed association list under its own lock.
type Shard<V> = RwLock<Vec<(u64, Arc<V>)>>;

pub struct WeightCache<V> {
    shards: [Shard<V>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicUsize,
}

impl<V> Default for WeightCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> WeightCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        WeightCache {
            shards: std::array::from_fn(|_| RwLock::new(Vec::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<Vec<(u64, Arc<V>)>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks up `key`, building and inserting the artifact on a miss.
    ///
    /// `build` runs *outside* any lock (packing a VGG layer takes
    /// milliseconds; holding a shard lock that long would serialize every
    /// warming worker). `bytes` reports the artifact's approximate heap
    /// footprint for the stats counter. If two threads race on the same
    /// missing key both may build, but only the first insert is kept.
    pub fn get_or_insert_with(
        &self,
        key: u64,
        build: impl FnOnce() -> V,
        bytes: impl Fn(&V) -> usize,
    ) -> Arc<V> {
        let shard = self.shard(key);
        {
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            if let Some((_, v)) = guard.iter().find(|(k, _)| *k == key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(v);
            }
        }
        // Miss: build without holding the lock, then re-check under the
        // write lock (another thread may have won the race).
        let built = Arc::new(build());
        let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
        if let Some((_, v)) = guard.iter().find(|(k, _)| *k == key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes(&built), Ordering::Relaxed);
        guard.push((key, Arc::clone(&built)));
        built
    }

    /// Returns the entry for `key` if resident, without counting a miss.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let guard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        guard.iter().find(|(k, _)| *k == key).map(|(_, v)| Arc::clone(v))
    }

    /// Snapshot of hit/miss/residency counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry and the byte counter (hit/miss counters are
    /// cumulative and survive). Outstanding `Arc`s keep their artifacts
    /// alive; the cache just forgets them.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.bytes.store(0, Ordering::Relaxed);
    }
}

// `Debug` prints only the counters — artifacts may be megabytes.
impl<V> std::fmt::Debug for WeightCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("WeightCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("bytes", &s.bytes)
            .finish()
    }
}

/// Streaming FNV-1a content hasher for weight identity.
///
/// Deliberately not `std::hash::Hasher`: the default `SipHash` keys differ
/// per process in some configurations, and weight fingerprints must be
/// stable enough to reason about in logs and tests. FNV-1a over the full
/// content is fast (one multiply per byte, word-batched below) and its
/// distribution is more than adequate for the handful of weight sets a
/// process ever sees.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Starts a fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes, 8 at a time where possible.
    pub fn bytes(mut self, data: &[u8]) -> Self {
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
            self.state = (self.state ^ w).wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs one u64 (lengths, shapes, flags — anything structural).
    pub fn u64(mut self, v: u64) -> Self {
        self.state = (self.state ^ v).wrapping_mul(FNV_PRIME);
        self
    }

    /// Absorbs a slice of i64 values (bias vectors).
    pub fn i64s(mut self, vs: &[i64]) -> Self {
        for &v in vs {
            self = self.u64(v as u64);
        }
        self
    }

    /// Finishes the digest.
    pub fn finish(self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fingerprint_is_content_sensitive_and_stable() {
        let a = Fingerprint::new().bytes(&[1, 2, 3]).u64(7).finish();
        let b = Fingerprint::new().bytes(&[1, 2, 3]).u64(7).finish();
        let c = Fingerprint::new().bytes(&[1, 2, 4]).u64(7).finish();
        let d = Fingerprint::new().bytes(&[1, 2, 3]).u64(8).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn fingerprint_word_batching_matches_byte_order() {
        // 8-byte batching must produce the same digest for the same bytes
        // regardless of how the caller splits the stream at word edges.
        let data: Vec<u8> = (0u8..32).collect();
        let whole = Fingerprint::new().bytes(&data).finish();
        let split = Fingerprint::new().bytes(&data[..16]).bytes(&data[16..]).finish();
        assert_eq!(whole, split);
    }

    #[test]
    fn cache_hits_after_first_build() {
        let cache: WeightCache<Vec<u8>> = WeightCache::new();
        let builds = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_insert_with(
                42,
                || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    vec![9u8; 100]
                },
                |v| v.len(),
            );
            assert_eq!(v.len(), 100);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (2, 1, 1, 100));
        assert!(cache.get(42).is_some());
        assert!(cache.get(43).is_none());
    }

    #[test]
    fn clear_drops_entries_but_not_counters() {
        let cache: WeightCache<u32> = WeightCache::new();
        cache.get_or_insert_with(1, || 10, |_| 4);
        cache.get_or_insert_with(1, || 10, |_| 4);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!((s.hits, s.misses), (1, 1));
        // Re-inserting after clear is a fresh miss.
        cache.get_or_insert_with(1, || 11, |_| 4);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(*cache.get(1).unwrap(), 11);
    }

    #[test]
    fn distinct_keys_land_in_distinct_entries_across_shards() {
        let cache: WeightCache<u64> = WeightCache::new();
        for k in 0..64u64 {
            cache.get_or_insert_with(k, || k * 2, |_| 8);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 64);
        assert_eq!(s.bytes, 64 * 8);
        for k in 0..64u64 {
            assert_eq!(*cache.get(k).unwrap(), k * 2);
        }
    }

    #[test]
    fn concurrent_warming_converges_to_one_entry() {
        let cache: std::sync::Arc<WeightCache<Vec<u8>>> = std::sync::Arc::new(WeightCache::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = std::sync::Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let v = c.get_or_insert_with(7, || vec![1u8; 16], |v| v.len());
                assert_eq!(v.len(), 16);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        // Racing builders may both construct, but exactly one insert is
        // recorded as the miss; every other lookup is a hit.
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }
}
