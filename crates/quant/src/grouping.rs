//! Filter grouping by non-zero count — the paper's future work, implemented.
//!
//! "Future work could include grouping filters in advance according to
//! similarity in non-zero-entry counts to maximize available zero skipping
//! and balance the work." (paper §V)
//!
//! Because the accelerator computes four OFMs concurrently in lockstep, a
//! group's cycle cost is set by its *densest* filter; pairing dense filters
//! with sparse ones wastes the sparse lanes' skipped cycles. Sorting filters
//! by non-zero count and grouping neighbours minimizes the per-group
//! maximum-minus-mean imbalance.

/// A reordering of output feature maps into lockstep groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterGrouping {
    /// `order[i]` is the original filter index placed at position `i`.
    /// Consecutive chunks of `group_size` form the lockstep groups.
    pub order: Vec<usize>,
    /// Number of filters per lockstep group (4 in the paper).
    pub group_size: usize,
}

impl FilterGrouping {
    /// The identity grouping (paper's baseline behaviour: filters processed
    /// in model order).
    pub fn identity(filters: usize, group_size: usize) -> FilterGrouping {
        FilterGrouping { order: (0..filters).collect(), group_size }
    }

    /// Groups filters by sorting on their non-zero weight counts so each
    /// lockstep group contains filters of similar density.
    ///
    /// `nnz_per_filter[i]` is the total non-zero weight count of filter `i`
    /// (summed over all its weight tiles).
    pub fn by_nnz(nnz_per_filter: &[usize], group_size: usize) -> FilterGrouping {
        let mut order: Vec<usize> = (0..nnz_per_filter.len()).collect();
        // Descending order is provably optimal for sum-of-group-maxima: the
        // i-th group's maximum in *any* partition is at least the
        // (i * group_size)-th largest count, which is exactly what
        // descending consecutive chunking achieves. (Ascending chunking can
        // lose when a ragged final group isolates a dense filter.) The sort
        // is stable so equal-density filters keep model order.
        order.sort_by_key(|&i| std::cmp::Reverse(nnz_per_filter[i]));
        FilterGrouping { order, group_size }
    }

    /// The lockstep groups, each a slice of original filter indices. The
    /// final group may be shorter when the filter count is not a multiple of
    /// the group size (the hardware pads it with idle lanes).
    pub fn groups(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.order.chunks(self.group_size)
    }

    /// Total lockstep cost in weight-application steps: for each group the
    /// cost is its maximum member's non-zero count (lanes run in lockstep).
    pub fn lockstep_cost(&self, nnz_per_filter: &[usize]) -> usize {
        self.groups()
            .map(|g| g.iter().map(|&i| nnz_per_filter[i]).max().unwrap_or(0))
            .sum()
    }

    /// Total bubbles (idle lane-steps) under this grouping.
    pub fn bubbles(&self, nnz_per_filter: &[usize]) -> usize {
        self.groups()
            .map(|g| {
                let max = g.iter().map(|&i| nnz_per_filter[i]).max().unwrap_or(0);
                g.iter().map(|&i| max - nnz_per_filter[i]).sum::<usize>()
            })
            .sum()
    }

    /// The inverse permutation: `inverse()[orig] = position`.
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0; self.order.len()];
        for (pos, &orig) in self.order.iter().enumerate() {
            inv[orig] = pos;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_preserves_order() {
        let g = FilterGrouping::identity(8, 4);
        assert_eq!(g.order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(g.groups().count(), 2);
    }

    #[test]
    fn by_nnz_sorts_descending() {
        let nnz = vec![9, 1, 5, 3];
        let g = FilterGrouping::by_nnz(&nnz, 2);
        assert_eq!(g.order, vec![0, 2, 3, 1]);
    }

    #[test]
    fn ragged_tail_gets_sparsest_filters() {
        // Regression for the case proptest found: a ragged final group must
        // not isolate a dense filter.
        let nnz = vec![51, 0, 0, 0, 0, 0, 102, 102, 0];
        let id = FilterGrouping::identity(nnz.len(), 4);
        let by = FilterGrouping::by_nnz(&nnz, 4);
        assert!(by.lockstep_cost(&nnz) <= id.lockstep_cost(&nnz));
        assert_eq!(by.lockstep_cost(&nnz), 102);
    }

    #[test]
    fn grouping_reduces_cost_on_skewed_profile() {
        // Two dense filters split across identity groups; grouping pairs them.
        let nnz = vec![16, 1, 1, 1, 16, 1, 1, 1];
        let id = FilterGrouping::identity(8, 4);
        let grouped = FilterGrouping::by_nnz(&nnz, 4);
        assert!(grouped.lockstep_cost(&nnz) < id.lockstep_cost(&nnz));
        assert!(grouped.bubbles(&nnz) < id.bubbles(&nnz));
        // Sorted grouping: sparse group costs 1, dense group costs 16.
        assert_eq!(grouped.lockstep_cost(&nnz), 1 + 16);
    }

    #[test]
    fn ragged_final_group_is_allowed() {
        let nnz = vec![4, 2, 7];
        let g = FilterGrouping::by_nnz(&nnz, 2);
        let groups: Vec<Vec<usize>> = g.groups().map(|s| s.to_vec()).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn inverse_round_trips() {
        let g = FilterGrouping::by_nnz(&[5, 2, 9, 1], 2);
        let inv = g.inverse();
        for (pos, &orig) in g.order.iter().enumerate() {
            assert_eq!(inv[orig], pos);
        }
    }

    proptest! {
        #[test]
        fn sorted_grouping_never_worse_than_identity(
            nnz in proptest::collection::vec(0usize..=144, 1..64),
        ) {
            let id = FilterGrouping::identity(nnz.len(), 4);
            let by = FilterGrouping::by_nnz(&nnz, 4);
            prop_assert!(by.lockstep_cost(&nnz) <= id.lockstep_cost(&nnz));
        }

        #[test]
        fn order_is_a_permutation(nnz in proptest::collection::vec(0usize..=100, 0..50)) {
            let g = FilterGrouping::by_nnz(&nnz, 4);
            let mut sorted = g.order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..nnz.len()).collect::<Vec<_>>());
        }
    }
}
