//! Ternary weight quantization — the paper's future work, implemented.
//!
//! "Future work involves the use of HLS to synthesize accelerators for
//! other neural network styles, including binarized, ternary and
//! recurrent networks." (paper §VII)
//!
//! Ternary networks constrain weights to `{-w, 0, +w}` per layer. They
//! are a natural fit for this accelerator: the `0` weights vanish into
//! the zero-skipping path (typically 30-60% of weights threshold to
//! zero), and the surviving `±w` values are exact in sign+magnitude with
//! a single shared magnitude. The same datapath runs them unmodified —
//! only the offline packing step changes.

use crate::{Sm8, Requantizer};

/// Per-layer ternary quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TernaryParams {
    /// Magnitude threshold below which a weight becomes zero.
    pub threshold: f32,
    /// The real value represented by a ±1 quantized weight.
    pub scale: f32,
}

impl TernaryParams {
    /// Chooses parameters per Li & Liu's TWN heuristic: threshold at
    /// `0.7 x mean(|w|)`, scale as the mean magnitude of the surviving
    /// weights.
    pub fn from_weights(weights: &[f32]) -> TernaryParams {
        if weights.is_empty() {
            return TernaryParams { threshold: 0.0, scale: 1.0 };
        }
        let mean_abs = weights.iter().map(|w| w.abs()).sum::<f32>() / weights.len() as f32;
        let threshold = 0.7 * mean_abs;
        let surviving: Vec<f32> =
            weights.iter().map(|w| w.abs()).filter(|&m| m > threshold).collect();
        let scale = if surviving.is_empty() {
            1.0
        } else {
            surviving.iter().sum::<f32>() / surviving.len() as f32
        };
        TernaryParams { threshold, scale: scale.max(f32::MIN_POSITIVE) }
    }

    /// Quantizes one weight to `{-1, 0, +1}` in [`Sm8`].
    #[inline]
    pub fn quantize(&self, w: f32) -> Sm8 {
        if w.abs() <= self.threshold {
            Sm8::ZERO
        } else if w > 0.0 {
            Sm8::from_i32_saturating(1)
        } else {
            Sm8::from_i32_saturating(-1)
        }
    }

    /// Quantizes a slice.
    pub fn quantize_all(&self, weights: &[f32]) -> Vec<Sm8> {
        weights.iter().map(|&w| self.quantize(w)).collect()
    }

    /// The requantizer ratio contribution of the weight scale: a ternary
    /// layer's output requantizer is built from
    /// `s_in * scale / s_out` exactly like an 8-bit layer with
    /// `w_scale = scale`.
    pub fn requantizer(&self, s_in: f32, s_out: f32) -> Requantizer {
        Requantizer::from_ratio((s_in * self.scale / s_out) as f64)
    }

    /// Fraction of `weights` that quantize to zero (the sparsity handed
    /// to the zero-skipping hardware).
    pub fn induced_sparsity(&self, weights: &[f32]) -> f64 {
        if weights.is_empty() {
            return 0.0;
        }
        weights.iter().filter(|w| w.abs() <= self.threshold).count() as f64 / weights.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gaussian_ish(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32 * 0.73).sin() + (i as f32 * 0.31).cos()) * 0.1).collect()
    }

    #[test]
    fn quantizes_to_three_levels_only() {
        let w = gaussian_ish(1000);
        let p = TernaryParams::from_weights(&w);
        for q in p.quantize_all(&w) {
            assert!(q.to_i32().abs() <= 1, "got {q}");
        }
    }

    #[test]
    fn threshold_induces_substantial_sparsity() {
        let w = gaussian_ish(1000);
        let p = TernaryParams::from_weights(&w);
        let s = p.induced_sparsity(&w);
        // The 0.7*mean(|w|) rule zeroes roughly a third to two thirds of a
        // smooth distribution.
        assert!((0.2..0.8).contains(&s), "sparsity {s}");
        // And the quantized zeros agree with the predicted sparsity.
        let zeros = p.quantize_all(&w).iter().filter(|q| q.is_zero()).count();
        assert_eq!(zeros as f64 / w.len() as f64, s);
    }

    #[test]
    fn scale_is_mean_surviving_magnitude() {
        let w = vec![0.01, -0.5, 0.5, 0.02, -0.5];
        let p = TernaryParams::from_weights(&w);
        assert!((p.scale - 0.5).abs() < 1e-6, "scale {}", p.scale);
        assert_eq!(p.quantize(0.01), Sm8::ZERO);
        assert_eq!(p.quantize(-0.5).to_i32(), -1);
    }

    #[test]
    fn empty_and_all_zero_inputs_are_safe() {
        let p = TernaryParams::from_weights(&[]);
        assert_eq!(p.scale, 1.0);
        let p = TernaryParams::from_weights(&[0.0; 8]);
        assert!(p.scale > 0.0);
        assert_eq!(p.induced_sparsity(&[0.0; 8]), 1.0);
    }

    #[test]
    fn requantizer_matches_eight_bit_formula() {
        let p = TernaryParams { threshold: 0.1, scale: 0.25 };
        let r = p.requantizer(0.02, 0.04);
        assert!((r.ratio() - 0.02 * 0.25 / 0.04).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn sign_is_preserved_above_threshold(w in -10.0f32..10.0) {
            let p = TernaryParams { threshold: 1.0, scale: 1.0 };
            let q = p.quantize(w).to_i32();
            if w > 1.0 { prop_assert_eq!(q, 1); }
            else if w < -1.0 { prop_assert_eq!(q, -1); }
            else { prop_assert_eq!(q, 0); }
        }
    }
}
