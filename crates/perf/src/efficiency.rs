//! The paper's efficiency metric (Fig. 7).
//!
//! "We consider the efficiency of the HLS-generated hardware by comparing
//! the experimentally observed throughput (ops/elapsed time) with the
//! theoretically minimum ideal throughput numbers. Ideal throughput is
//! defined as peak throughput * total number of computations. We add an
//! overhead (~15% but varies by layer) for the increased number of MAC
//! operation due to limited on-FPGA SRAM bank size — 'striping'." (§V)
//!
//! With zero-skipping and a pruned model, observed throughput can exceed
//! the ideal (efficiency > 100%) because skipped multiply-accumulates are
//! still counted as work performed.

/// Ideal cycle count for a layer: dense MACs, inflated by the per-layer
/// striping factor, at peak MACs/cycle.
pub fn ideal_cycles(dense_macs: u64, striping_factor: f64, macs_per_cycle: u64) -> f64 {
    assert!(macs_per_cycle > 0, "peak MACs/cycle must be positive");
    dense_macs as f64 * striping_factor.max(1.0) / macs_per_cycle as f64
}

/// Observed/ideal efficiency (1.0 = ideal; > 1.0 possible when
/// zero-skipping removes counted work).
pub fn efficiency(dense_macs: u64, striping_factor: f64, macs_per_cycle: u64, observed_cycles: u64) -> f64 {
    if observed_cycles == 0 {
        return 0.0;
    }
    ideal_cycles(dense_macs, striping_factor, macs_per_cycle) / observed_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_counts_dense_work_with_striping() {
        // 256 MACs over a 256-wide datapath: one cycle; +15% striping.
        assert!((ideal_cycles(256, 1.15, 256) - 1.15).abs() < 1e-12);
        // Striping factor below 1 is clamped.
        assert_eq!(ideal_cycles(256, 0.5, 256), 1.0);
    }

    #[test]
    fn efficiency_one_at_ideal() {
        assert!((efficiency(2560, 1.0, 256, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_skipping_exceeds_one() {
        // Half the work skipped: 5 cycles for 10 ideal.
        assert!(efficiency(2560, 1.0, 256, 5) > 1.9);
    }

    #[test]
    fn zero_cycles_is_zero_efficiency() {
        assert_eq!(efficiency(100, 1.0, 256, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_peak_rejected() {
        let _ = ideal_cycles(100, 1.0, 0);
    }
}
