//! Per-module area breakdown (paper Fig. 6) and utilization summary.

use zskip_hls::{ModuleKind, SynthesisResult};
use zskip_json::{Json, ToJson};

/// One row of the Fig. 6 breakdown.
#[derive(Debug, Clone)]
pub struct AreaRow {
    /// Module label (paper Fig. 6 naming).
    pub module: String,
    /// Instances across the design.
    pub count: usize,
    /// Total ALMs.
    pub alms: f64,
    /// Total DSP blocks.
    pub dsps: f64,
    /// Share of the design's ALMs.
    pub alm_share: f64,
}

impl ToJson for AreaRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("module", self.module.to_json()),
            ("count", self.count.to_json()),
            ("alms", self.alms.to_json()),
            ("dsps", self.dsps.to_json()),
            ("alm_share", self.alm_share.to_json()),
        ])
    }
}

/// The full Fig. 6 data set for one synthesized design.
#[derive(Debug, Clone)]
pub struct AreaBreakdown {
    /// Variant label.
    pub variant: String,
    /// Rows, ordered as in the paper (compute units first).
    pub rows: Vec<AreaRow>,
    /// Totals.
    pub total_alms: f64,
    /// Device utilization percentages (in-text: "44% of the ALM logic,
    /// 25% of the DSP and 49% of the RAM blocks").
    pub alm_utilization: f64,
    /// DSP utilization fraction.
    pub dsp_utilization: f64,
    /// M20K utilization fraction.
    pub m20k_utilization: f64,
}

impl ToJson for AreaBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("variant", self.variant.to_json()),
            ("rows", self.rows.to_json()),
            ("total_alms", self.total_alms.to_json()),
            ("alm_utilization", self.alm_utilization.to_json()),
            ("dsp_utilization", self.dsp_utilization.to_json()),
            ("m20k_utilization", self.m20k_utilization.to_json()),
        ])
    }
}

impl AreaBreakdown {
    /// Builds the breakdown from a synthesis result.
    pub fn from_synthesis(label: &str, synth: &SynthesisResult) -> AreaBreakdown {
        let rows: Vec<AreaRow> = ModuleKind::all()
            .iter()
            .filter_map(|&kind| synth.module(kind))
            .map(|m| AreaRow {
                module: m.kind.label().to_string(),
                count: m.count,
                alms: m.resources.alms,
                dsps: m.resources.dsps,
                alm_share: m.resources.alms / synth.total.alms,
            })
            .collect();
        AreaBreakdown {
            variant: label.to_string(),
            total_alms: synth.total.alms,
            alm_utilization: synth.utilization.alm,
            dsp_utilization: synth.utilization.dsp,
            m20k_utilization: synth.utilization.m20k,
            rows,
        }
    }

    /// Renders the paper-style text figure: one bar per module.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 6 — ALM usage by each unit in the accelerator ({})\n\n",
            self.variant
        ));
        let max = self.rows.iter().map(|r| r.alms).fold(0.0, f64::max);
        for r in &self.rows {
            let width = 40;
            let n = if max > 0.0 { ((r.alms / max) * width as f64).round() as usize } else { 0 };
            out.push_str(&format!(
                "{:<22} x{:<3} {:>8.0} ALMs  {:>5.1}%  |{}\n",
                r.module,
                r.count,
                r.alms,
                r.alm_share * 100.0,
                "#".repeat(n.min(width)),
            ));
        }
        out.push_str(&format!(
            "\ntotal {:.0} ALMs — device utilization: ALM {:.0}%, DSP {:.0}%, M20K {:.0}%\n",
            self.total_alms,
            self.alm_utilization * 100.0,
            self.dsp_utilization * 100.0,
            self.m20k_utilization * 100.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_hls::Variant;

    #[test]
    fn breakdown_covers_all_modules_and_sums_to_one() {
        let synth = Variant::U256Opt.synthesize();
        let b = AreaBreakdown::from_synthesis("256-opt", &synth);
        assert_eq!(b.rows.len(), 8);
        let share: f64 = b.rows.iter().map(|r| r.alm_share).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
    }

    #[test]
    fn render_mentions_dominant_modules() {
        let synth = Variant::U256Opt.synthesize();
        let text = AreaBreakdown::from_synthesis("256-opt", &synth).render();
        assert!(text.contains("convolution"));
        assert!(text.contains("accumulator"));
        assert!(text.contains("data-staging/control"));
        assert!(text.contains("ALM 44%"), "{text}");
    }

    #[test]
    fn utilization_matches_synthesis() {
        let synth = Variant::U512Opt.synthesize();
        let b = AreaBreakdown::from_synthesis("512-opt", &synth);
        assert!((b.alm_utilization - synth.utilization.alm).abs() < 1e-12);
        assert!(b.alm_utilization > 0.6);
    }
}
