//! Roofline analysis: is a layer compute-bound or DDR-bandwidth-bound?
//!
//! The paper's System I moves 32 bytes per fabric cycle between DDR4 and
//! the banks; the datapath retires `2 x MACs/cycle` operations. A layer's
//! **arithmetic intensity** (ops per DDR byte) decides which of the two
//! ceilings binds:
//!
//! ```text
//! attainable = min(peak_compute, intensity x memory_bandwidth)
//! ```
//!
//! VGG-16's conv layers are strongly compute-bound on this machine (the
//! driver's double-buffering keeps the DMA off the critical path), which
//! is why the paper's evaluation centers on cycle efficiency rather than
//! bandwidth — the roofline makes that quantitative.

use zskip_json::{Json, ToJson};

/// Which ceiling binds a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The MAC array is the limit.
    Compute,
    /// DDR bandwidth is the limit.
    Memory,
}

impl ToJson for Bound {
    fn to_json(&self) -> Json {
        // Matches serde's unit-variant encoding: the variant name as a string.
        Json::Str(
            match self {
                Bound::Compute => "Compute",
                Bound::Memory => "Memory",
            }
            .to_string(),
        )
    }
}

/// Roofline data for one layer.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// Layer name.
    pub name: String,
    /// Operations (2 x dense MACs).
    pub ops: u64,
    /// DDR bytes moved for the layer (activations in/out + weights).
    pub ddr_bytes: u64,
    /// Arithmetic intensity in ops/byte.
    pub intensity: f64,
    /// Roofline ceiling at this intensity, in GOPS.
    pub attainable_gops: f64,
    /// Measured effective GOPS.
    pub achieved_gops: f64,
    /// Binding ceiling.
    pub bound: Bound,
}

impl ToJson for RooflinePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("ops", self.ops.to_json()),
            ("ddr_bytes", self.ddr_bytes.to_json()),
            ("intensity", self.intensity.to_json()),
            ("attainable_gops", self.attainable_gops.to_json()),
            ("achieved_gops", self.achieved_gops.to_json()),
            ("bound", self.bound.to_json()),
        ])
    }
}

/// The machine's two ceilings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineMachine {
    /// Peak arithmetic throughput in GOPS.
    pub peak_gops: f64,
    /// Sustained DDR bandwidth in GB/s.
    pub memory_gbps: f64,
}

impl RooflineMachine {
    /// Builds the machine model from datapath width, clock, and the
    /// System I bus width in bytes/cycle.
    pub fn new(macs_per_cycle: u64, clock_mhz: f64, bus_bytes_per_cycle: u64) -> RooflineMachine {
        RooflineMachine {
            peak_gops: 2.0 * macs_per_cycle as f64 * clock_mhz * 1e6 / 1e9,
            memory_gbps: bus_bytes_per_cycle as f64 * clock_mhz * 1e6 / 1e9,
        }
    }

    /// The intensity at which the two ceilings meet (the roofline knee).
    pub fn knee_intensity(&self) -> f64 {
        self.peak_gops / self.memory_gbps
    }

    /// Analyzes one layer.
    pub fn analyze(&self, name: &str, ops: u64, ddr_bytes: u64, achieved_gops: f64) -> RooflinePoint {
        let intensity = if ddr_bytes == 0 { f64::INFINITY } else { ops as f64 / ddr_bytes as f64 };
        let memory_ceiling = intensity * self.memory_gbps;
        let attainable = self.peak_gops.min(memory_ceiling);
        RooflinePoint {
            name: name.to_string(),
            ops,
            ddr_bytes,
            intensity,
            attainable_gops: attainable,
            achieved_gops,
            bound: if memory_ceiling < self.peak_gops { Bound::Memory } else { Bound::Compute },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> RooflineMachine {
        // 256 MACs @ 150 MHz, 32 B/cycle: 76.8 GOPS peak, 4.8 GB/s.
        RooflineMachine::new(256, 150.0, 32)
    }

    #[test]
    fn ceilings_and_knee() {
        let m = machine();
        assert!((m.peak_gops - 76.8).abs() < 1e-9);
        assert!((m.memory_gbps - 4.8).abs() < 1e-9);
        assert!((m.knee_intensity() - 16.0).abs() < 1e-9, "knee at 16 ops/byte");
    }

    #[test]
    fn high_intensity_layer_is_compute_bound() {
        let m = machine();
        // 1 Gop over 10 MB: 100 ops/byte, far right of the knee.
        let p = m.analyze("conv", 1_000_000_000, 10_000_000, 70.0);
        assert_eq!(p.bound, Bound::Compute);
        assert!((p.attainable_gops - m.peak_gops).abs() < 1e-9);
        assert!(p.achieved_gops <= p.attainable_gops);
    }

    #[test]
    fn low_intensity_layer_is_memory_bound() {
        let m = machine();
        // 1 op/byte: ceiling is the 4.8 GB/s line.
        let p = m.analyze("fc-ish", 10_000_000, 10_000_000, 3.0);
        assert_eq!(p.bound, Bound::Memory);
        assert!((p.attainable_gops - 4.8).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_is_infinitely_intense() {
        let m = machine();
        let p = m.analyze("resident", 1_000, 0, 1.0);
        assert_eq!(p.bound, Bound::Compute);
        assert!(p.intensity.is_infinite());
    }

    #[test]
    fn vgg_conv_layers_sit_right_of_the_knee() {
        // conv3_2: 1.85 GMACs = 3.7 Gops; roughly 3 MB activations + 0.6 MB
        // packed weights per stripe pass -> ~1000 ops/byte >> 16.
        let m = machine();
        let p = m.analyze("conv3_2", 3_699_376_128, 3_600_000, 70.0);
        assert_eq!(p.bound, Bound::Compute);
        assert!(p.intensity > m.knee_intensity() * 10.0);
    }
}
