//! Area, power and efficiency models (paper §V: Fig. 6, Fig. 7's ideal
//! line, Table I).
//!
//! * [`area`] — formats the per-module ALM breakdown (Fig. 6) and the
//!   device-utilization summary from `zskip-hls` synthesis results;
//! * [`power`] — the analytic power model behind Table I: static power
//!   scaling with occupied logic, dynamic power scaling with switched
//!   MACs x frequency, and board-level overhead (regulators, DDR4, HPS);
//! * [`efficiency`](mod@efficiency) — the paper's ideal-throughput definition (dense
//!   computations inflated by the striping overhead at peak MACs/cycle)
//!   and the observed/ideal ratio plotted in Fig. 7.

pub mod area;
pub mod efficiency;
pub mod power;
pub mod roofline;

pub use area::AreaBreakdown;
pub use efficiency::{efficiency, ideal_cycles};
pub use power::{PowerEstimate, PowerModel};
pub use roofline::{Bound, RooflineMachine, RooflinePoint};
