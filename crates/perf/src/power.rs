//! The analytic power model behind paper Table I.
//!
//! Table I reports, for the two optimized variants, peak power while
//! running the worst-case VGG-16 layer — FPGA-only and board-level, with
//! dynamic power parenthesized. The model:
//!
//! * **static** power grows affinely with occupied ALMs (leakage scales
//!   with active logic area and its thermal consequences);
//! * **dynamic** power is `c_mac x switched MACs/cycle x f_MHz` — a single
//!   switched-capacitance coefficient calibrated on the paper's two
//!   design points fits both within 1%;
//! * **board** overhead (regulator losses, DDR4, HPS) is a constant plus a
//!   regulator-efficiency term proportional to dynamic power.
//!
//! Coefficient calibration (documented in DESIGN.md): 256-opt = 2300 mW
//! (500 dynamic) at 150 MHz / 110 kALM, 512-opt = 3300 mW (800 dynamic)
//! at ~120 MHz / 209 kALM, boards 9500 / 10800 mW.

use zskip_json::{Json, ToJson};

/// Calibrated power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static baseline in mW.
    pub static_base_mw: f64,
    /// Static mW per occupied ALM.
    pub static_per_alm_mw: f64,
    /// Dynamic mW per (MAC/cycle x MHz).
    pub dynamic_per_mac_mhz_mw: f64,
    /// Constant board overhead in mW (HPS, DDR4, fans).
    pub board_base_mw: f64,
    /// Board regulator loss per mW of FPGA dynamic power.
    pub board_per_dynamic: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_base_mw: 1013.0,
            static_per_alm_mw: 0.00713,
            dynamic_per_mac_mhz_mw: 0.01302,
            board_base_mw: 6900.0,
            board_per_dynamic: 0.6,
        }
    }
}

/// A power estimate for one operating point.
#[derive(Debug, Clone, Copy)]
pub struct PowerEstimate {
    /// FPGA static power (mW).
    pub static_mw: f64,
    /// FPGA dynamic power (mW).
    pub dynamic_mw: f64,
    /// FPGA total (mW).
    pub fpga_mw: f64,
    /// Board-level total (mW).
    pub board_mw: f64,
}

impl ToJson for PowerEstimate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("static_mw", self.static_mw.to_json()),
            ("dynamic_mw", self.dynamic_mw.to_json()),
            ("fpga_mw", self.fpga_mw.to_json()),
            ("board_mw", self.board_mw.to_json()),
        ])
    }
}

impl PowerModel {
    /// Estimates power at an operating point.
    ///
    /// * `alms` — occupied ALMs (from synthesis);
    /// * `macs_per_cycle` — peak datapath MACs/cycle;
    /// * `clock_mhz` — operating clock;
    /// * `activity` — fraction of MAC slots switching (1.0 for the paper's
    ///   peak-power measurement on the worst-case layer; a run's mean
    ///   activity comes from the simulator's `macs` counter over
    ///   `cycles x peak`).
    pub fn estimate(&self, alms: f64, macs_per_cycle: u64, clock_mhz: f64, activity: f64) -> PowerEstimate {
        let activity = activity.clamp(0.0, 1.0);
        let static_mw = self.static_base_mw + self.static_per_alm_mw * alms;
        let dynamic_mw = self.dynamic_per_mac_mhz_mw * macs_per_cycle as f64 * clock_mhz * activity;
        let fpga_mw = static_mw + dynamic_mw;
        let board_mw = fpga_mw + self.board_base_mw + self.board_per_dynamic * dynamic_mw;
        PowerEstimate { static_mw, dynamic_mw, fpga_mw, board_mw }
    }
}

/// GOPS per watt.
pub fn gops_per_watt(gops: f64, milliwatts: f64) -> f64 {
    if milliwatts <= 0.0 {
        0.0
    } else {
        gops / (milliwatts / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_table1_256_opt() {
        let m = PowerModel::default();
        let p = m.estimate(110_411.0, 256, 150.0, 1.0);
        assert!((p.fpga_mw - 2300.0).abs() < 100.0, "fpga {:.0}", p.fpga_mw);
        assert!((p.dynamic_mw - 500.0).abs() < 30.0, "dyn {:.0}", p.dynamic_mw);
        assert!((p.board_mw - 9500.0).abs() < 300.0, "board {:.0}", p.board_mw);
    }

    #[test]
    fn calibration_reproduces_table1_512_opt() {
        let m = PowerModel::default();
        let p = m.estimate(208_621.0, 512, 117.6, 1.0);
        assert!((p.fpga_mw - 3300.0).abs() < 150.0, "fpga {:.0}", p.fpga_mw);
        assert!((p.dynamic_mw - 800.0).abs() < 40.0, "dyn {:.0}", p.dynamic_mw);
        assert!((p.board_mw - 10800.0).abs() < 400.0, "board {:.0}", p.board_mw);
    }

    #[test]
    fn idle_design_draws_static_only() {
        let m = PowerModel::default();
        let p = m.estimate(100_000.0, 256, 150.0, 0.0);
        assert_eq!(p.dynamic_mw, 0.0);
        assert!(p.fpga_mw > 1000.0);
    }

    #[test]
    fn activity_scales_dynamic_linearly() {
        let m = PowerModel::default();
        let half = m.estimate(100_000.0, 256, 150.0, 0.5);
        let full = m.estimate(100_000.0, 256, 150.0, 1.0);
        assert!((half.dynamic_mw * 2.0 - full.dynamic_mw).abs() < 1e-9);
        // Out-of-range activity clamps.
        let over = m.estimate(100_000.0, 256, 150.0, 3.0);
        assert_eq!(over.dynamic_mw, full.dynamic_mw);
    }

    #[test]
    fn gops_per_watt_math() {
        assert!((gops_per_watt(61.0, 2300.0) - 26.5).abs() < 0.1);
        assert_eq!(gops_per_watt(10.0, 0.0), 0.0);
    }
}
