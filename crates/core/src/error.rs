//! The unified fallible surface of the zskip stack.
//!
//! Every layer has its own narrow error enum — [`SimError`] from the
//! cycle engine, [`DriverError`] from stripe planning and execution,
//! [`DmaError`]/[`BusError`]/[`HostError`] from the SoC models,
//! [`PushError`] from FIFO ports, [`FaultError`] from the injection
//! layer. [`Error`] wraps them all so applications (the CLI, the batch
//! engine, campaign runners) can hold one type, and gives each failure a
//! stable machine-readable [`code`](Error::code) for JSON artifacts.

use std::fmt;

pub use zskip_fault::FaultError;
use zskip_sim::{ConfigError, PushError, SimError};
use zskip_soc::dma::DmaError;
use zskip_soc::host::{DeviceFault, HostError};
use zskip_soc::BusError;

use crate::driver::DriverError;
use crate::serve::ServeError;
use zskip_nn::SpecError;

/// Any failure in the zskip stack. Re-exported as `zskip::Error`.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Cycle-engine failure (deadlock, cycle limit).
    Sim(SimError),
    /// Driver failure (striping, unsupported geometry, backend).
    Driver(DriverError),
    /// FIFO push refused (port busy or full).
    Push(PushError),
    /// DMA descriptor or transfer failure.
    Dma(DmaError),
    /// Avalon bus access failure.
    Bus(BusError),
    /// Host-side driver-protocol failure.
    Host(HostError),
    /// Fault-injection layer failure.
    Fault(FaultError),
    /// Serving-daemon failure (backpressure, protocol, shutdown).
    Serve(ServeError),
    /// Network-spec document failure (`--network FILE` loading or
    /// validation — see [`zskip_nn::spec_io`]).
    Spec(SpecError),
    /// Invalid engine or driver configuration.
    InvalidConfig(String),
}

impl Error {
    /// A stable, machine-readable code for JSON reports. Codes are
    /// `<layer>.<kind>` and are part of the public contract: tests and
    /// downstream tooling may match on them.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Sim(SimError::Deadlock { .. }) => "sim.deadlock",
            Error::Sim(SimError::CycleLimit { .. }) => "sim.cycle-limit",
            Error::Driver(DriverError::LayerTooLarge { .. }) => "driver.layer-too-large",
            Error::Driver(DriverError::Sim(SimError::Deadlock { .. })) => "sim.deadlock",
            Error::Driver(DriverError::Sim(SimError::CycleLimit { .. })) => "sim.cycle-limit",
            Error::Driver(DriverError::Dma(_)) | Error::Dma(_) => match self.dma() {
                Some(DmaError::Unaligned(_)) => "dma.unaligned",
                Some(DmaError::BadBank(_)) => "dma.bad-bank",
                Some(DmaError::BankOverflow { .. }) => "dma.bank-overflow",
                Some(DmaError::Truncated { .. }) => "dma.truncated",
                Some(DmaError::Parity { .. }) => "dma.parity",
                None => unreachable!("both arms carry a DmaError"),
            },
            Error::Driver(DriverError::Unsupported { .. }) => "driver.unsupported",
            Error::Driver(DriverError::InvalidNetwork(_)) => "driver.invalid-network",
            Error::Driver(DriverError::InvalidConfig(_)) | Error::InvalidConfig(_) => {
                "config.invalid"
            }
            Error::Push(_) => "sim.fifo-push",
            Error::Bus(BusError::Unmapped(_)) => "bus.unmapped",
            Error::Bus(BusError::Misaligned(_)) => "bus.misaligned",
            Error::Bus(BusError::Timeout(_)) => "bus.timeout",
            Error::Host(HostError::Bus(_)) => "host.bus",
            Error::Host(HostError::Device(DeviceFault::Unresponsive { .. })) => {
                "host.unresponsive"
            }
            Error::Host(HostError::Device(DeviceFault::ErrorBit)) => "host.error-bit",
            Error::Fault(FaultError::Unresponsive { .. }) => "fault.unresponsive",
            Error::Fault(FaultError::Injected { .. }) => "fault.injected",
            Error::Serve(ServeError::Overloaded { .. }) => "serve.overloaded",
            Error::Serve(ServeError::Shutdown) => "serve.shutdown",
            Error::Serve(ServeError::Protocol { .. }) => "serve.protocol",
            Error::Serve(ServeError::BadRequest { .. }) => "serve.bad-request",
            Error::Spec(_) => "spec.invalid",
        }
    }

    /// The underlying [`DmaError`], however deeply it is wrapped.
    pub fn dma(&self) -> Option<DmaError> {
        match self {
            Error::Dma(e) | Error::Driver(DriverError::Dma(e)) => Some(*e),
            _ => None,
        }
    }

    /// The underlying [`SimError`], however deeply it is wrapped.
    pub fn sim(&self) -> Option<&SimError> {
        match self {
            Error::Sim(e) | Error::Driver(DriverError::Sim(e)) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "{e}"),
            Error::Driver(e) => write!(f, "{e}"),
            Error::Push(e) => write!(f, "{e}"),
            Error::Dma(e) => write!(f, "{e}"),
            Error::Bus(e) => write!(f, "{e}"),
            Error::Host(e) => write!(f, "{e}"),
            Error::Fault(e) => write!(f, "{e}"),
            Error::Serve(e) => write!(f, "{e}"),
            Error::Spec(e) => write!(f, "invalid network spec: {e}"),
            Error::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Driver(e) => Some(e),
            Error::Push(e) => Some(e),
            Error::Dma(e) => Some(e),
            Error::Bus(e) => Some(e),
            Error::Host(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Spec(e) => Some(e),
            Error::InvalidConfig(_) => None,
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        Error::Sim(e)
    }
}

impl From<DriverError> for Error {
    fn from(e: DriverError) -> Error {
        Error::Driver(e)
    }
}

impl From<PushError> for Error {
    fn from(e: PushError) -> Error {
        Error::Push(e)
    }
}

impl From<DmaError> for Error {
    fn from(e: DmaError) -> Error {
        Error::Dma(e)
    }
}

impl From<BusError> for Error {
    fn from(e: BusError) -> Error {
        Error::Bus(e)
    }
}

impl From<HostError> for Error {
    fn from(e: HostError) -> Error {
        Error::Host(e)
    }
}

impl From<FaultError> for Error {
    fn from(e: FaultError) -> Error {
        Error::Fault(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Error {
        Error::Serve(e)
    }
}

impl From<SpecError> for Error {
    fn from(e: SpecError) -> Error {
        Error::Spec(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::InvalidConfig(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_layered() {
        let e: Error = SimError::CycleLimit { limit: 5, unfinished: vec![] }.into();
        assert_eq!(e.code(), "sim.cycle-limit");
        let e: Error = DmaError::Truncated { moved: 1, expected: 4 }.into();
        assert_eq!(e.code(), "dma.truncated");
        // A DMA error wrapped in a driver error keeps the DMA code: the
        // wrapping layer is incidental, the failure class is not.
        let e: Error = DriverError::Dma(DmaError::Parity { tile: 0 }).into();
        assert_eq!(e.code(), "dma.parity");
        assert_eq!(e.dma(), Some(DmaError::Parity { tile: 0 }));
        let e: Error = BusError::Timeout(0xc000_0000).into();
        assert_eq!(e.code(), "bus.timeout");
        let e: Error = FaultError::Unresponsive { waited: 9 }.into();
        assert_eq!(e.code(), "fault.unresponsive");
        let e: Error = zskip_nn::NetworkSpec::from_json("{").unwrap_err().into();
        assert_eq!(e.code(), "spec.invalid");
        assert!(e.to_string().starts_with("invalid network spec:"), "{e}");
    }

    #[test]
    fn display_and_source_delegate() {
        let e: Error = BusError::Unmapped(0x10).into();
        assert!(e.to_string().contains("no slave mapped"));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::InvalidConfig("units must equal lanes".into());
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("units must equal lanes"));
    }
}
