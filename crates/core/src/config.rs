//! Runtime accelerator configuration derived from an HLS variant.

use zskip_hls::{AccelArch, Variant};

/// Configuration of one simulated accelerator (one instance of paper
/// Fig. 3, or its 16-MAC strawman).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Staging/conv unit pairs (4 in the full design, 1 in `16-unopt`).
    pub units: usize,
    /// Filter lanes per conv unit (4 full, 1 in `16-unopt`).
    pub lanes: usize,
    /// Accelerator instances scheduled over by the placement layer
    /// (any N >= 1; the paper ships 1 and 2, larger counts model the
    /// scale-out devices of [`crate::exec::sched::CostModel`]).
    pub instances: usize,
    /// Capacity of each SRAM bank in tile words.
    pub bank_tiles: usize,
    /// Operating clock in MHz (from HLS synthesis).
    pub clock_mhz: f64,
    /// Depth of the inter-kernel data FIFOs.
    pub fifo_depth: usize,
    /// Scratchpad weight-fetch bandwidth in bytes per cycle (how fast the
    /// data-staging unit unpacks weights and offsets).
    pub weight_bytes_per_cycle: usize,
    /// Scratchpad capacity in bytes for one group's packed weights.
    pub scratchpad_bytes: usize,
}

impl AccelConfig {
    /// Builds the runtime configuration for a named paper variant,
    /// synthesizing it to obtain the operating clock.
    pub fn for_variant(variant: Variant) -> AccelConfig {
        let synth = variant.synthesize();
        Self::from_arch(&variant.arch(), synth.operating_mhz)
    }

    /// Builds the runtime configuration for `instances` copies of a
    /// variant's datapath, with bank capacity dividing the fixed RAM
    /// budget and the operating clock taken from the scale-out cost
    /// model ([`crate::exec::sched::CostModel`]): the smallest device of
    /// the ladder that fits, congestion-derated. One and two instances
    /// reproduce [`AccelConfig::for_variant`] of the matching paper
    /// variants.
    ///
    /// # Panics
    /// When `instances` is zero (callers validate first; the driver
    /// builder rejects zero instances with `config.invalid`).
    pub fn for_variant_instances(variant: Variant, instances: usize) -> AccelConfig {
        let cm = crate::exec::sched::CostModel::for_instances(variant, instances);
        Self::from_arch(&cm.arch, cm.clock_mhz)
    }

    /// Builds a configuration from raw architecture parameters (used for
    /// ablations and what-if sweeps).
    pub fn from_arch(arch: &AccelArch, clock_mhz: f64) -> AccelConfig {
        AccelConfig {
            units: arch.conv_units,
            lanes: arch.lanes,
            instances: arch.instances,
            bank_tiles: arch.bank_tiles,
            clock_mhz,
            fifo_depth: 4,
            weight_bytes_per_cycle: 16,
            scratchpad_bytes: 64 * 1024,
        }
    }

    /// Peak MACs per cycle per instance.
    pub fn macs_per_cycle_per_instance(&self) -> u64 {
        (self.units * self.lanes * 16) as u64
    }

    /// Peak MACs per cycle across all instances.
    pub fn macs_per_cycle(&self) -> u64 {
        self.macs_per_cycle_per_instance() * self.instances as u64
    }

    /// Peak arithmetic throughput in GOPS (2 ops per MAC).
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.macs_per_cycle() as f64 * self.clock_mhz * 1e6 / 1e9
    }

    /// Seconds per cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }

    /// Banks per instance (fixed by the quad-fetch geometry).
    pub const BANKS: usize = 4;

    /// Fixed per-instruction dispatch overhead in cycles (CSR doorbell,
    /// instruction decode, FSM entry).
    pub const INSTR_OVERHEAD_CYCLES: u64 = 24;

    /// Pipeline fill/drain cycles charged per OFM tile position (depth of
    /// the staging->conv->accumulator->write chain).
    pub const POSITION_DRAIN_CYCLES: u64 = 6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_configs_match_paper_macs() {
        assert_eq!(AccelConfig::for_variant(Variant::U16Unopt).macs_per_cycle(), 16);
        assert_eq!(AccelConfig::for_variant(Variant::U256Opt).macs_per_cycle(), 256);
        assert_eq!(AccelConfig::for_variant(Variant::U512Opt).macs_per_cycle(), 512);
    }

    #[test]
    fn peak_gops_of_512_opt_near_paper_ideal() {
        let c = AccelConfig::for_variant(Variant::U512Opt);
        // 512 MACs x 2 x ~118 MHz ~ 120 GOPS.
        assert!((100.0..=140.0).contains(&c.peak_gops()), "peak {}", c.peak_gops());
    }

    #[test]
    fn bank_capacity_divides_across_instances() {
        // The paper's pair first: 512-opt is two instances on half banks.
        let one = AccelConfig::for_variant(Variant::U256Opt);
        let two = AccelConfig::for_variant(Variant::U512Opt);
        assert_eq!(one.bank_tiles, 2 * two.bank_tiles);
        // And the generalized geometry: any N divides the same budget.
        for n in [1, 2, 4, 8] {
            let c = AccelConfig::for_variant_instances(Variant::U256Opt, n);
            assert_eq!(c.instances, n);
            assert_eq!(c.bank_tiles, one.bank_tiles / n);
            assert_eq!(c.macs_per_cycle(), 256 * n as u64);
        }
    }

    #[test]
    fn for_variant_instances_reproduces_paper_clocks() {
        let one = AccelConfig::for_variant_instances(Variant::U256Opt, 1);
        assert_eq!(one.clock_mhz, AccelConfig::for_variant(Variant::U256Opt).clock_mhz);
        let two = AccelConfig::for_variant_instances(Variant::U256Opt, 2);
        assert_eq!(two.clock_mhz, AccelConfig::for_variant(Variant::U512Opt).clock_mhz);
    }

    #[test]
    fn cycle_seconds_inverse_of_clock() {
        let c = AccelConfig::from_arch(&AccelArch::full(1), 100.0);
        assert!((c.cycle_seconds() - 1e-8).abs() < 1e-15);
    }
}
