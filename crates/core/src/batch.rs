//! Parallel batch execution engine.
//!
//! Runs many independent inference requests across a pool of worker
//! threads, mirroring the structure of the simulated accelerator itself:
//! each worker owns a private work deque (like a kernel's private input
//! FIFO), idle workers steal from the *back* of a victim's deque (oldest
//! work first, so the owner's cache-warm front is undisturbed), and
//! finished jobs drain through a single completion channel the way the
//! write-to-memory kernels funnel results onto the shared System I bus.
//!
//! Determinism: every job is tagged with its input index and results are
//! reassembled in submission order, so the batch output is bit-identical
//! to running [`Driver::run_network`] sequentially over the same inputs —
//! regardless of worker count or steal interleaving. A property test in
//! this module pins that equivalence.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

use crate::driver::{Driver, DriverError, InferenceReport};
use zskip_nn::model::QuantizedNetwork;
use zskip_tensor::Tensor;

/// How one batch run went: the per-input reports (in submission order)
/// plus pool telemetry.
#[derive(Debug)]
pub struct BatchReport {
    /// One [`InferenceReport`] per input, in submission order.
    pub reports: Vec<InferenceReport>,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs completed by each worker (sums to the input count).
    pub per_worker_jobs: Vec<usize>,
    /// Jobs obtained by stealing from another worker's deque.
    pub steals: u64,
}

impl BatchReport {
    /// Total simulated accelerator cycles across all inputs.
    pub fn total_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.total_cycles).sum()
    }
}

/// Retry policy for [`run_batch_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per input (minimum 1; 1 disables retries).
    pub max_attempts: u32,
    /// Simulated backoff charged before retry `k` (1-based):
    /// `base_backoff_cycles << (k - 1)` accelerator cycles — exponential,
    /// like a driver re-arming a wedged device with increasing patience.
    pub base_backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff_cycles: 1024 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every error is final).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff_cycles: 0 }
    }
}

/// How one input of a resilient batch fared.
#[derive(Debug)]
pub struct BatchItemReport {
    /// Submission index of the input.
    pub index: usize,
    /// Attempts spent (1 = first try succeeded or error was final).
    pub attempts: u32,
    /// Simulated backoff cycles charged across retries.
    pub backoff_cycles: u64,
    /// The final outcome: a report, or the last error after retries.
    pub result: Result<InferenceReport, DriverError>,
}

/// Report of a [`run_batch_resilient`] run: per-item outcomes in
/// submission order plus the same pool telemetry as [`BatchReport`].
/// A failing input never aborts the batch — the other inputs complete.
#[derive(Debug)]
pub struct ResilientBatchReport {
    /// One [`BatchItemReport`] per input, in submission order.
    pub items: Vec<BatchItemReport>,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs completed by each worker (sums to the input count).
    pub per_worker_jobs: Vec<usize>,
    /// Jobs obtained by stealing from another worker's deque.
    pub steals: u64,
}

impl ResilientBatchReport {
    /// Inputs that ultimately succeeded.
    pub fn succeeded(&self) -> usize {
        self.items.iter().filter(|i| i.result.is_ok()).count()
    }

    /// `(index, error)` of every input that failed after retries.
    pub fn failures(&self) -> Vec<(usize, &DriverError)> {
        self.items.iter().filter_map(|i| i.result.as_ref().err().map(|e| (i.index, e))).collect()
    }

    /// Retries spent across the batch (attempts beyond the first).
    pub fn retries(&self) -> u64 {
        self.items.iter().map(|i| (i.attempts - 1) as u64).sum()
    }

    /// Simulated backoff cycles charged across the batch.
    pub fn backoff_cycles(&self) -> u64 {
        self.items.iter().map(|i| i.backoff_cycles).sum()
    }
}

/// Picks a worker count: `requested` if non-zero, else the machine's
/// available parallelism (at least 1), capped by the job count.
pub fn effective_workers(requested: usize, jobs: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    n.clamp(1, jobs.max(1))
}

/// The per-worker work-stealing deque set. Jobs are input indices,
/// dealt round-robin so every worker starts with a fair share.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl StealQueues {
    fn new(jobs: usize, workers: usize) -> StealQueues {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for j in 0..jobs {
            deques[j % workers].push_back(j);
        }
        StealQueues { deques: deques.into_iter().map(Mutex::new).collect(), steals: AtomicU64::new(0) }
    }

    /// Next job for worker `w`: own deque front, else steal a victim's
    /// back. `None` means every deque is empty — since all jobs are
    /// enqueued before the pool starts, that is global completion.
    fn next(&self, w: usize) -> Option<usize> {
        if let Some(j) = self.deques[w].lock().expect("deque poisoned").pop_front() {
            return Some(j);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(j) = self.deques[victim].lock().expect("deque poisoned").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(j);
            }
        }
        None
    }
}

/// Runs `inputs` through `qnet` on `workers` threads (0 = auto) and
/// returns per-input reports in submission order.
///
/// # Errors
/// Propagates the first failing input's [`DriverError`] (first by input
/// index, so the error is deterministic too).
pub fn run_batch(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    workers: usize,
) -> Result<BatchReport, DriverError> {
    let workers = effective_workers(workers, inputs.len());
    if inputs.is_empty() {
        return Ok(BatchReport { reports: Vec::new(), workers, per_worker_jobs: vec![0; workers], steals: 0 });
    }

    let queues = StealQueues::new(inputs.len(), workers);
    let (tx, rx) = mpsc::channel::<(usize, usize, Result<InferenceReport, DriverError>)>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            scope.spawn(move || {
                // One scratch arena per worker: host-side buffers warm up on
                // the first job and are reused for the rest of the batch.
                let mut scratch = zskip_nn::Scratch::new();
                while let Some(job) = queues.next(w) {
                    let result = driver.run_network_scratch(qnet, &inputs[job], &mut scratch);
                    if tx.send((job, w, result)).is_err() {
                        break; // collector gone: nothing left to report to
                    }
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<InferenceReport>> = (0..inputs.len()).map(|_| None).collect();
    let mut per_worker_jobs = vec![0usize; workers];
    let mut first_err: Option<(usize, DriverError)> = None;
    for (job, w, result) in rx {
        per_worker_jobs[w] += 1;
        match result {
            Ok(report) => slots[job] = Some(report),
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| job < *j) {
                    first_err = Some((job, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }

    let reports = slots.into_iter().map(|s| s.expect("every job reported")).collect();
    Ok(BatchReport { reports, workers, per_worker_jobs, steals: queues.steals.load(Ordering::Relaxed) })
}

/// Like [`run_batch`], but a failing input poisons only itself: every
/// input gets up to [`RetryPolicy::max_attempts`] tries (transient errors
/// only — see [`DriverError::is_transient`]) with exponential backoff,
/// and the report carries a per-item `Result` instead of aborting on the
/// first failure. Successful items are bit-identical to a sequential
/// [`Driver::run_network`] run, regardless of worker count or failures
/// elsewhere in the batch.
pub fn run_batch_resilient(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    workers: usize,
    policy: RetryPolicy,
) -> ResilientBatchReport {
    let workers = effective_workers(workers, inputs.len());
    let max_attempts = policy.max_attempts.max(1);
    if inputs.is_empty() {
        return ResilientBatchReport {
            items: Vec::new(),
            workers,
            per_worker_jobs: vec![0; workers],
            steals: 0,
        };
    }

    let queues = StealQueues::new(inputs.len(), workers);
    let (tx, rx) = mpsc::channel::<(usize, BatchItemReport)>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            scope.spawn(move || {
                let mut scratch = zskip_nn::Scratch::new();
                while let Some(job) = queues.next(w) {
                    let mut attempts = 0u32;
                    let mut backoff_cycles = 0u64;
                    let result = loop {
                        attempts += 1;
                        match driver.run_network_scratch(qnet, &inputs[job], &mut scratch) {
                            Ok(report) => break Ok(report),
                            Err(e) => {
                                if attempts >= max_attempts || !e.is_transient() {
                                    break Err(e);
                                }
                                backoff_cycles = backoff_cycles
                                    .saturating_add(policy.base_backoff_cycles << (attempts - 1));
                            }
                        }
                    };
                    let item = BatchItemReport { index: job, attempts, backoff_cycles, result };
                    if tx.send((w, item)).is_err() {
                        break; // collector gone: nothing left to report to
                    }
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<BatchItemReport>> = (0..inputs.len()).map(|_| None).collect();
    let mut per_worker_jobs = vec![0usize; workers];
    for (w, item) in rx {
        per_worker_jobs[w] += 1;
        let index = item.index;
        slots[index] = Some(item);
    }
    let items = slots.into_iter().map(|s| s.expect("every job reported")).collect();
    ResilientBatchReport { items, workers, per_worker_jobs, steals: queues.steals.load(Ordering::Relaxed) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use crate::driver::BackendKind;
    use proptest::prelude::*;
    use zskip_hls::Variant;
    use zskip_nn::eval::synthetic_inputs;
    use zskip_nn::model::{Network, SyntheticModelConfig};
    use zskip_quant::DensityProfile;

    fn driver(cfg: AccelConfig, backend: BackendKind) -> Driver {
        Driver::builder(cfg).backend(backend).build().expect("test config is valid")
    }

    fn small_qnet(hw: usize) -> QuantizedNetwork {
        use zskip_nn::layer::{LayerSpec, NetworkSpec};
        use zskip_tensor::Shape;
        let layers = vec![
            LayerSpec::Conv { name: "c0".into(), in_c: 2, out_c: 6, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::MaxPool { name: "p".into(), k: 2, stride: 2 },
            LayerSpec::Conv { name: "c1".into(), in_c: 6, out_c: 4, k: 3, stride: 1, pad: 1, relu: false },
        ];
        let spec = NetworkSpec { name: "batch-test".into(), input: Shape::new(2, hw, hw), layers };
        let net = Network::synthetic(
            spec.clone(),
            &SyntheticModelConfig { seed: 5, density: DensityProfile::uniform(2, 0.5) },
        );
        let calib = synthetic_inputs(2, 1, spec.input);
        net.quantize(&calib)
    }

    #[test]
    fn empty_batch_is_fine() {
        let qnet = small_qnet(8);
        let driver = driver(AccelConfig::for_variant(Variant::U256Opt), BackendKind::Model);
        let r = run_batch(&driver, &qnet, &[], 4).expect("empty batch");
        assert!(r.reports.is_empty());
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn worker_autodetect_caps_at_job_count() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(0, 0), 1);
    }

    #[test]
    fn all_jobs_are_accounted_for() {
        let qnet = small_qnet(8);
        let spec_input = qnet.spec.input;
        let driver = driver(AccelConfig::for_variant(Variant::U256Opt), BackendKind::Model);
        let inputs = synthetic_inputs(11, 7, spec_input);
        let r = run_batch(&driver, &qnet, &inputs, 3).expect("runs");
        assert_eq!(r.reports.len(), 7);
        assert_eq!(r.per_worker_jobs.iter().sum::<usize>(), 7);
        assert_eq!(r.workers, 3);
    }

    #[test]
    fn resilient_matches_plain_batch_when_fault_free() {
        let qnet = small_qnet(8);
        let spec_input = qnet.spec.input;
        let driver = driver(AccelConfig::for_variant(Variant::U256Opt), BackendKind::Model);
        let inputs = synthetic_inputs(21, 5, spec_input);
        let plain = run_batch(&driver, &qnet, &inputs, 2).expect("plain batch");
        let resilient = run_batch_resilient(&driver, &qnet, &inputs, 2, RetryPolicy::default());
        assert_eq!(resilient.succeeded(), 5);
        assert_eq!(resilient.retries(), 0);
        for (item, want) in resilient.items.iter().zip(&plain.reports) {
            let got = item.result.as_ref().expect("fault-free item succeeds");
            assert_eq!(got.output, want.output);
            assert_eq!(item.attempts, 1);
            assert_eq!(item.backoff_cycles, 0);
        }
    }

    #[test]
    fn poisoned_item_retries_and_batch_stays_bit_exact() {
        use zskip_fault::{FaultKind, FaultPlan};
        let qnet = small_qnet(8);
        let spec_input = qnet.spec.input;
        let inputs = synthetic_inputs(31, 4, spec_input);
        let cfg = AccelConfig::for_variant(Variant::U256Opt);

        let clean = run_batch(&driver(cfg, BackendKind::Model), &qnet, &inputs, 2)
            .expect("fault-free reference");

        // One single-shot DMA parity fault: exactly one item of the batch
        // absorbs it (whichever reaches descriptor 3 first) and recovers
        // on retry because the fault is consumed.
        let plan = FaultPlan::new().inject("dma:xfer", 3, FaultKind::DmaCorrupt { xor: 0x40 }).shared();
        let driver = Driver::builder(cfg).fault_plan(plan).build().expect("valid config");
        let report = run_batch_resilient(&driver, &qnet, &inputs, 2, RetryPolicy::default());

        assert_eq!(report.succeeded(), 4, "all items complete: {:?}", report.failures());
        assert_eq!(report.retries(), 1, "exactly one item absorbed the fault");
        assert!(report.backoff_cycles() > 0);
        for (item, want) in report.items.iter().zip(&clean.reports) {
            let got = item.result.as_ref().expect("item succeeds");
            assert_eq!(got.output, want.output, "bit-identical to the fault-free run");
        }
    }

    #[test]
    fn poisoned_item_without_retries_fails_alone() {
        use zskip_fault::{FaultKind, FaultPlan};
        let qnet = small_qnet(8);
        let spec_input = qnet.spec.input;
        let inputs = synthetic_inputs(31, 4, spec_input);
        let cfg = AccelConfig::for_variant(Variant::U256Opt);
        let clean = run_batch(&driver(cfg, BackendKind::Model), &qnet, &inputs, 2)
            .expect("fault-free reference");

        let plan = FaultPlan::new().inject("dma:xfer", 3, FaultKind::DmaTruncate { tiles: 0 }).shared();
        let driver = Driver::builder(cfg).fault_plan(plan).build().expect("valid config");
        let report = run_batch_resilient(&driver, &qnet, &inputs, 2, RetryPolicy::none());

        assert_eq!(report.succeeded(), 3, "one poisoned item of 4");
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0].1, DriverError::Dma(_)), "structured error: {:?}", failures[0].1);
        // The surviving N-1 items are bit-identical to the fault-free run.
        for (item, want) in report.items.iter().zip(&clean.reports) {
            if let Ok(got) = &item.result {
                assert_eq!(got.output, want.output);
            }
        }
    }

    #[test]
    fn retry_exhaustion_surfaces_the_last_transient_error() {
        use zskip_fault::{FaultKind, FaultPlan};
        let qnet = small_qnet(8);
        let inputs = synthetic_inputs(41, 1, qnet.spec.input);
        let cfg = AccelConfig::for_variant(Variant::U256Opt);

        // Site counters are cumulative across runs sharing a plan, and a
        // fired fault aborts the run right after descriptor 0, 1, 2, ...
        // So injecting at the first `max_attempts` indices keeps the site
        // hot: every retry trips the next injection and the item runs out
        // of attempts.
        let policy = RetryPolicy { max_attempts: 3, base_backoff_cycles: 16 };
        let mut plan = FaultPlan::new();
        for at in 0..policy.max_attempts as u64 {
            plan = plan.inject("dma:xfer", at, FaultKind::DmaCorrupt { xor: 0x40 });
        }
        let plan = plan.shared();
        let driver = Driver::builder(cfg).fault_plan(plan.clone()).build().expect("valid config");
        let report = run_batch_resilient(&driver, &qnet, &inputs, 1, policy);

        assert_eq!(report.succeeded(), 0, "the hot site must exhaust every retry");
        let item = &report.items[0];
        assert_eq!(item.attempts, policy.max_attempts, "all attempts spent");
        assert!(
            matches!(item.result, Err(DriverError::Dma(_))),
            "the last transient error surfaces per-item: {:?}",
            item.result
        );
        assert!(item.result.as_ref().unwrap_err().is_transient());
        // Exponential backoff: 16 before attempt 2, 32 before attempt 3.
        assert_eq!(item.backoff_cycles, 16 + 32);
        assert_eq!(
            plan.lock().unwrap().fired().len(),
            policy.max_attempts as usize,
            "one injection per attempt"
        );
    }

    #[test]
    fn cpu_backend_batch_matches_model_batch_bit_exact() {
        let qnet = small_qnet(8);
        let inputs = synthetic_inputs(51, 5, qnet.spec.input);
        let cfg = AccelConfig::for_variant(Variant::U256Opt);
        let model = run_batch(&driver(cfg, BackendKind::Model), &qnet, &inputs, 2)
            .expect("model batch runs");
        let cpu = run_batch(&driver(cfg, BackendKind::Cpu), &qnet, &inputs, 2)
            .expect("cpu batch runs");
        for (m, c) in model.reports.iter().zip(&cpu.reports) {
            assert_eq!(m.output, c.output, "bit-identical outputs");
            assert_eq!(m.total_cycles, c.total_cycles, "same closed-form cycle model");
        }
        // And through the resilient engine.
        let resilient = run_batch_resilient(
            &driver(cfg, BackendKind::Cpu),
            &qnet,
            &inputs,
            2,
            RetryPolicy::default(),
        );
        assert_eq!(resilient.succeeded(), inputs.len());
        for (item, want) in resilient.items.iter().zip(&model.reports) {
            assert_eq!(item.result.as_ref().expect("succeeds").output, want.output);
        }
    }

    #[test]
    fn multithreaded_cpu_batch_stays_bit_exact_with_nested_pools() {
        // Batch workers and intra-image conv workers compose: each batch
        // worker's private scratch arena spins up its own ConvPool, so a
        // 2-worker batch at --threads 3 runs 2x(1+2) threads total. The
        // result must still be bit-identical to the sequential model run.
        let qnet = small_qnet(8);
        let inputs = synthetic_inputs(61, 6, qnet.spec.input);
        let cfg = AccelConfig::for_variant(Variant::U256Opt);
        let model = run_batch(&driver(cfg, BackendKind::Model), &qnet, &inputs, 1)
            .expect("model batch runs");
        let mt_driver =
            Driver::builder(cfg).backend(BackendKind::Cpu).threads(3).build().expect("valid config");
        let mt = run_batch(&mt_driver, &qnet, &inputs, 2).expect("mt cpu batch runs");
        assert_eq!(mt.reports.len(), model.reports.len());
        for (m, c) in model.reports.iter().zip(&mt.reports) {
            assert_eq!(m.output, c.output, "bit-identical outputs at any worker split");
            assert_eq!(m.total_cycles, c.total_cycles, "same closed-form cycle model");
        }
    }

    #[test]
    fn structural_errors_are_not_retried() {
        use zskip_hls::AccelArch;
        let qnet = small_qnet(64);
        let inputs = synthetic_inputs(7, 2, qnet.spec.input);
        // Banks far too small for the layer: deterministic LayerTooLarge.
        let cfg = AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4 },
            100.0,
        );
        let driver = driver(cfg, BackendKind::Model);
        let report = run_batch_resilient(&driver, &qnet, &inputs, 2, RetryPolicy::default());
        assert_eq!(report.succeeded(), 0);
        for item in &report.items {
            assert_eq!(item.attempts, 1, "no retry for a structural error");
            assert!(matches!(item.result, Err(DriverError::LayerTooLarge { .. })));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn batch_matches_sequential_bit_exact(
            batch in 1usize..7,
            workers in 1usize..5,
            seed in 0u64..1000,
        ) {
            let qnet = small_qnet(8);
            let driver = driver(AccelConfig::for_variant(Variant::U256Opt), BackendKind::Model);
            let inputs = synthetic_inputs(seed, batch, qnet.spec.input);
            let parallel = run_batch(&driver, &qnet, &inputs, workers).expect("batch runs");
            for (input, got) in inputs.iter().zip(&parallel.reports) {
                let want = driver.run_network(&qnet, input).expect("sequential runs");
                prop_assert_eq!(&got.output, &want.output);
                prop_assert_eq!(got.total_cycles, want.total_cycles);
                prop_assert_eq!(got.ddr_bytes, want.ddr_bytes);
            }
        }
    }
}
