//! The `zskip serve` wire protocol: newline-delimited JSON over any
//! byte stream (stdin/stdout or a TCP connection).
//!
//! One request per line, one response object per line; responses stream
//! back in **completion order**, not submission order — clients match on
//! the echoed `id`. The full schema (with examples and the backpressure
//! and shutdown semantics) is specified in `docs/SERVING.md`; the shapes
//! in one glance:
//!
//! ```text
//! → {"op":"infer","id":"r1","seed":7}
//! → {"op":"infer","id":"r2","image":[0.5,-0.25,...]}
//! ← {"id":"r1","ok":true,"argmax":3,"output":[...],"queue_us":412,...}
//! ← {"id":"r2","ok":false,"code":"dma.parity","error":"..."}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","served":2,...,"p50_us":913,"p99_us":2100}
//! → {"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown","draining":true}
//! ```
//!
//! Framing failures (a line that is not JSON) get an `id: null` error
//! response with code `serve.protocol`; well-formed JSON that is not a
//! valid request gets `serve.bad-request`, echoing the `id` when one was
//! present. A full queue answers `serve.overloaded` — the request was
//! **not** enqueued and may be retried.

use std::io::{BufRead, Write};
use std::sync::mpsc;

use super::{ServeError, ServeHandle, ServeReply, ServeStats};
use crate::error::Error;
use zskip_json::Json;
use zskip_nn::eval::synthetic_inputs;
use zskip_tensor::{Shape, Tensor};

/// The input payload of an `infer` request.
#[derive(Debug, Clone, PartialEq)]
pub enum WireInput {
    /// Deterministic synthetic image: `synthetic_inputs(seed, 1, shape)`.
    /// The same seed fed to `zskip infer --seed` produces a bit-identical
    /// input, which is how the integration tests cross-check the daemon.
    Seed(u64),
    /// A raw image, flattened C-major to exactly `shape.len()` floats.
    Image(Vec<f32>),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Run one inference and stream the result back.
    Infer {
        /// Client-chosen correlation id, echoed verbatim in the response.
        id: String,
        /// The image payload.
        input: WireInput,
    },
    /// Report aggregate server counters.
    Stats,
    /// Stop admission, drain queued requests, close the server.
    Shutdown,
}

/// A rejected request line: the failure plus the `id` to echo, when the
/// line was well-formed enough to carry one.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The request id, if one could be extracted.
    pub id: Option<String>,
    /// Why the line was rejected.
    pub error: ServeError,
}

fn id_string(v: &Json) -> Option<String> {
    match v {
        Json::Str(s) => Some(s.clone()),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(format!("{}", *n as i64)),
        Json::Num(n) => Some(format!("{n}")),
        _ => None,
    }
}

/// Parses one request line.
///
/// # Errors
/// [`ServeError::Protocol`] when the line is not JSON;
/// [`ServeError::BadRequest`] when it is JSON but not a valid request
/// (unknown `op`, missing/ill-typed field, both or neither of
/// `seed`/`image`).
pub fn parse_request(line: &str) -> Result<WireRequest, WireError> {
    let json = Json::parse(line)
        .map_err(|e| WireError { id: None, error: ServeError::Protocol { message: e.to_string() } })?;
    let id = json.get("id").and_then(id_string);
    let bad = |message: &str| WireError {
        id: id.clone(),
        error: ServeError::BadRequest { message: message.into() },
    };
    if !matches!(json, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    let op = json.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing string field 'op'"))?;
    match op {
        "infer" => {
            let id =
                id.clone().ok_or_else(|| bad("infer requires an 'id' (string or integer)"))?;
            let seed = json.get("seed");
            let image = json.get("image");
            let input = match (seed, image) {
                (Some(s), None) => WireInput::Seed(
                    s.as_u64().ok_or_else(|| bad("'seed' must be a non-negative integer"))?,
                ),
                (None, Some(img)) => {
                    let arr =
                        img.as_arr().ok_or_else(|| bad("'image' must be an array of numbers"))?;
                    let mut data = Vec::with_capacity(arr.len());
                    for v in arr {
                        data.push(
                            v.as_f64().ok_or_else(|| bad("'image' must be an array of numbers"))?
                                as f32,
                        );
                    }
                    WireInput::Image(data)
                }
                (Some(_), Some(_)) => return Err(bad("give either 'seed' or 'image', not both")),
                (None, None) => return Err(bad("infer requires 'seed' or 'image'")),
            };
            Ok(WireRequest::Infer { id, input })
        }
        "stats" => Ok(WireRequest::Stats),
        "shutdown" => Ok(WireRequest::Shutdown),
        other => Err(bad(&format!("unknown op '{other}'"))),
    }
}

/// Materializes a request payload into the network's input tensor.
///
/// # Errors
/// [`ServeError::BadRequest`] when a raw image's length does not match
/// the network input shape.
pub fn request_tensor(input: &WireInput, shape: Shape) -> Result<Tensor<f32>, ServeError> {
    match input {
        WireInput::Seed(seed) => Ok(synthetic_inputs(*seed, 1, shape).remove(0)),
        WireInput::Image(data) => {
            if data.len() != shape.len() {
                return Err(ServeError::BadRequest {
                    message: format!(
                        "image has {} values, network input {} needs {}",
                        data.len(),
                        shape,
                        shape.len()
                    ),
                });
            }
            Ok(Tensor::from_vec(shape.c, shape.h, shape.w, data.clone()))
        }
    }
}

/// Renders a completed request as one response line (no trailing newline).
pub fn render_reply(reply: &ServeReply) -> String {
    match &reply.result {
        Ok(report) => {
            let argmax = report
                .output
                .iter()
                .enumerate()
                .max_by_key(|(i, v)| (v.to_i32(), std::cmp::Reverse(*i)))
                .map_or(0, |(i, _)| i);
            Json::obj([
                ("id", Json::Str(reply.id.clone())),
                ("ok", Json::Bool(true)),
                ("argmax", Json::Num(argmax as f64)),
                (
                    "output",
                    Json::Arr(report.output.iter().map(|v| Json::Num(v.to_i32() as f64)).collect()),
                ),
                ("total_cycles", Json::Num(report.total_cycles as f64)),
                ("queue_us", Json::Num(reply.stats.queue_us as f64)),
                ("batch_us", Json::Num(reply.stats.batch_us as f64)),
                ("batch_size", Json::Num(reply.stats.batch_size as f64)),
            ])
            .to_string_compact()
        }
        Err(e) => render_error(Some(&reply.id), e),
    }
}

/// Renders a failure (rejection, fault, protocol error) as one response
/// line. `id` is `null` when the line never yielded one.
pub fn render_error(id: Option<&str>, err: &Error) -> String {
    Json::obj([
        ("id", id.map_or(Json::Null, |s| Json::Str(s.to_string()))),
        ("ok", Json::Bool(false)),
        ("code", Json::Str(err.code().to_string())),
        ("error", Json::Str(err.to_string())),
    ])
    .to_string_compact()
}

/// Renders the `stats` response line.
pub fn render_stats(stats: &ServeStats) -> String {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("op", Json::Str("stats".into())),
        ("served", Json::Num(stats.served as f64)),
        ("failed", Json::Num(stats.failed as f64)),
        ("rejected", Json::Num(stats.rejected as f64)),
        ("batches", Json::Num(stats.batches as f64)),
        ("max_batch_seen", Json::Num(stats.max_batch_seen as f64)),
        ("mean_batch", Json::Num(stats.mean_batch())),
        ("p50_us", Json::Num(stats.p50_us() as f64)),
        ("p99_us", Json::Num(stats.p99_us() as f64)),
    ])
    .to_string_compact()
}

/// Renders the immediate `shutdown` acknowledgement (sent before the
/// drain; the drain summary is the final [`render_stats`] line).
pub fn render_shutdown_ack() -> String {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("op", Json::Str("shutdown".into())),
        ("draining", Json::Bool(true)),
    ])
    .to_string_compact()
}

/// What one connection did, for the caller's exit-code policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionSummary {
    /// Inference requests admitted to the engine.
    pub requests: u64,
    /// Lines rejected with `serve.protocol` or `serve.bad-request` —
    /// the CLI exits non-zero when this is non-zero.
    pub protocol_errors: u64,
    /// Requests bounced with `serve.overloaded` or `serve.shutdown`.
    pub rejected: u64,
    /// Whether this connection issued `{"op":"shutdown"}`.
    pub shutdown_requested: bool,
}

/// Runs one connection against the engine: reads request lines from
/// `reader` until EOF or a `shutdown` op, streams response lines to
/// `writer` in completion order, and returns what happened.
///
/// The reader runs on its own (scoped) thread so queued requests keep
/// completing — and their responses keep flushing — while the client
/// composes its next line. The call returns once every admitted
/// request's response has been written.
///
/// # Errors
/// The first `writer` I/O failure, after in-flight completions drain.
pub fn serve_connection<R: BufRead + Send, W: Write>(
    handle: &ServeHandle,
    input_shape: Shape,
    reader: R,
    writer: &mut W,
) -> std::io::Result<ConnectionSummary> {
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::scope(|scope| {
        let reader_thread = scope.spawn(move || {
            let mut summary = ConnectionSummary::default();
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Ok(WireRequest::Infer { id, input }) => {
                        let tensor = match request_tensor(&input, input_shape) {
                            Ok(t) => t,
                            Err(e) => {
                                summary.protocol_errors += 1;
                                let _ = tx.send(render_error(Some(&id), &Error::Serve(e)));
                                continue;
                            }
                        };
                        let reply_tx = tx.clone();
                        let submitted = handle.submit_with(
                            id.clone(),
                            tensor,
                            Box::new(move |reply| drop(reply_tx.send(render_reply(&reply)))),
                        );
                        match submitted {
                            Ok(()) => summary.requests += 1,
                            Err(e) => {
                                summary.rejected += 1;
                                let _ = tx.send(render_error(Some(&id), &e));
                            }
                        }
                    }
                    Ok(WireRequest::Stats) => {
                        let _ = tx.send(render_stats(&handle.stats()));
                    }
                    Ok(WireRequest::Shutdown) => {
                        summary.shutdown_requested = true;
                        let _ = tx.send(render_shutdown_ack());
                        handle.shutdown();
                        break;
                    }
                    Err(WireError { id, error }) => {
                        summary.protocol_errors += 1;
                        let _ = tx
                            .send(render_error(id.as_deref(), &Error::Serve(error)));
                    }
                }
            }
            summary
        });
        // Completion-order writer: drains until the reader and every
        // in-flight completion have dropped their senders. On a write
        // failure keep draining (sends never block) so the engine's
        // callbacks stay cheap, then surface the first error.
        let mut io_failure = None;
        for line in rx {
            if io_failure.is_none() {
                io_failure = writeln!(writer, "{line}").and_then(|()| writer.flush()).err();
            }
        }
        let summary = reader_thread.join().expect("connection reader panicked");
        match io_failure {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BackendKind;
    use crate::serve::{RequestStats, ServeEngine};
    use crate::session::Session;
    use std::sync::Arc;
    use std::time::Duration;
    use zskip_hls::AccelArch;

    #[test]
    fn parses_the_request_grammar() {
        let r = parse_request(r#"{"op":"infer","id":"r1","seed":7}"#).unwrap();
        assert_eq!(r, WireRequest::Infer { id: "r1".into(), input: WireInput::Seed(7) });
        // Integer ids are accepted and echoed as their decimal string.
        let r = parse_request(r#"{"op":"infer","id":12,"image":[0.5,-1]}"#).unwrap();
        assert_eq!(
            r,
            WireRequest::Infer { id: "12".into(), input: WireInput::Image(vec![0.5, -1.0]) }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), WireRequest::Stats);
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap(), WireRequest::Shutdown);
    }

    #[test]
    fn rejects_bad_lines_with_the_right_code() {
        // Not JSON at all: framing-level protocol error, no id.
        let e = parse_request("not json").unwrap_err();
        assert!(matches!(e.error, ServeError::Protocol { .. }));
        assert_eq!(e.id, None);
        assert_eq!(Error::Serve(e.error).code(), "serve.protocol");
        // Valid JSON, bad request: echoes the id it could extract.
        let e = parse_request(r#"{"op":"infer","id":"x"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x"));
        assert_eq!(Error::Serve(e.error.clone()).code(), "serve.bad-request");
        let e = parse_request(r#"{"op":"infer","id":"x","seed":1,"image":[1]}"#).unwrap_err();
        assert!(matches!(e.error, ServeError::BadRequest { .. }));
        let e = parse_request(r#"{"op":"warp"}"#).unwrap_err();
        assert!(matches!(e.error, ServeError::BadRequest { .. }));
        let e = parse_request(r#"[1,2]"#).unwrap_err();
        assert!(matches!(e.error, ServeError::BadRequest { .. }));
    }

    #[test]
    fn request_tensor_checks_the_image_length() {
        let shape = Shape::new(2, 3, 3);
        let t = request_tensor(&WireInput::Seed(5), shape).unwrap();
        assert_eq!(t.shape(), shape);
        assert_eq!(t, synthetic_inputs(5, 1, shape).remove(0), "seed inputs are deterministic");
        let e = request_tensor(&WireInput::Image(vec![0.0; 4]), shape).unwrap_err();
        assert!(matches!(e, ServeError::BadRequest { .. }));
        let ok = request_tensor(&WireInput::Image(vec![0.25; 18]), shape).unwrap();
        assert_eq!(ok.as_slice().len(), 18);
    }

    #[test]
    fn responses_are_single_line_parseable_json() {
        let err = render_error(None, &Error::Serve(ServeError::Overloaded { depth: 4 }));
        let json = Json::parse(&err).expect("valid JSON");
        assert_eq!(json.get("code").and_then(Json::as_str), Some("serve.overloaded"));
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("id"), Some(&Json::Null));
        assert!(!err.contains('\n'));

        let stats = render_stats(&ServeStats::default());
        let json = Json::parse(&stats).expect("valid JSON");
        assert_eq!(json.get("served").and_then(Json::as_u64), Some(0));

        let ack = Json::parse(&render_shutdown_ack()).expect("valid JSON");
        assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn serve_connection_round_trips_over_byte_streams() {
        let qnet = Arc::new(crate::session::tests::tiny_qnet(8));
        let config = crate::config::AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
            100.0,
        );
        let session = Session::builder(config)
            .backend(BackendKind::Model)
            .batch_window(Duration::from_millis(1))
            .build()
            .unwrap();
        let want = session
            .driver()
            .run_network(&qnet, &synthetic_inputs(3, 1, qnet.spec.input)[0])
            .expect("runs");
        let engine = ServeEngine::start(session, Arc::clone(&qnet));
        let input = r#"{"op":"infer","id":"a","seed":3}
garbage line
{"op":"stats"}
{"op":"shutdown"}
"#;
        let mut out = Vec::new();
        let summary = serve_connection(
            &engine.handle(),
            qnet.spec.input,
            input.as_bytes(),
            &mut out,
        )
        .expect("io ok");
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.protocol_errors, 1);
        assert!(summary.shutdown_requested);
        let stats = engine.join();
        assert_eq!(stats.served, 1);
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is JSON"))
            .collect();
        assert_eq!(lines.len(), 4, "reply + protocol error + stats + shutdown ack");
        let reply = lines
            .iter()
            .find(|j| j.get("id").and_then(Json::as_str) == Some("a"))
            .expect("the inference reply");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let output: Vec<i32> = reply
            .get("output")
            .and_then(Json::as_arr)
            .expect("output array")
            .iter()
            .map(|v| v.as_f64().unwrap() as i32)
            .collect();
        let direct: Vec<i32> = want.output.iter().map(|v| v.to_i32()).collect();
        assert_eq!(output, direct, "served output is bit-identical to direct inference");
        assert!(lines.iter().any(|j| j.get("code").and_then(Json::as_str) == Some("serve.protocol")));
    }

    #[test]
    fn render_reply_reports_argmax_and_stats() {
        use crate::driver::InferenceReport;
        use zskip_quant::Sm8;
        let report = InferenceReport {
            layers: vec![],
            output: vec![
                Sm8::from_i32_saturating(-3),
                Sm8::from_i32_saturating(9),
                Sm8::from_i32_saturating(9),
            ],
            total_cycles: 1234,
            ddr_bytes: 0,
        };
        let reply = ServeReply {
            id: "z".into(),
            result: Ok(report),
            stats: RequestStats { queue_us: 10, batch_us: 20, batch_size: 2 },
        };
        let json = Json::parse(&render_reply(&reply)).expect("valid JSON");
        // Ties break to the first index, like a host-side argmax loop.
        assert_eq!(json.get("argmax").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("queue_us").and_then(Json::as_u64), Some(10));
        assert_eq!(json.get("batch_us").and_then(Json::as_u64), Some(20));
        assert_eq!(json.get("batch_size").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("total_cycles").and_then(Json::as_u64), Some(1234));
    }
}
