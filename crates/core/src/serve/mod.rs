//! The inference serving daemon: a submission queue with adaptive
//! batching in front of the work-stealing batch engine.
//!
//! A [`ServeEngine`] owns one batcher thread and a bounded request queue.
//! Producers (stdin reader, TCP connection threads, tests) submit
//! requests through a cloneable [`ServeHandle`]; the batcher coalesces
//! whatever is queued into adaptive batches — dispatching as soon as
//! [`BatchConfig::max_batch`](crate::session::BatchConfig::max_batch)
//! requests are waiting, or when
//! [`BatchConfig::batch_window`](crate::session::BatchConfig::batch_window)
//! expires after the first request of a batch arrives — and runs each
//! batch through [`Session::run_batch_resilient`]. Every request carries
//! a completion callback, invoked exactly once with a [`ServeReply`]:
//! the inference report (or error) plus per-request latency stats (queue
//! wait, batch wall time, batch size).
//!
//! Three properties the tests pin down:
//!
//! * **Backpressure, not collapse** — a submit against a full queue is
//!   rejected immediately with [`ServeError::Overloaded`]; queued and
//!   in-flight requests are unaffected.
//! * **Fault isolation** — a request that fails (e.g. an injected DMA
//!   parity fault) errors with its stable [`Error::code`]; unrelated
//!   requests in the same batch complete bit-identical to `zskip infer`.
//! * **Graceful shutdown** — [`ServeHandle::shutdown`] stops admission
//!   ([`ServeError::Shutdown`]) but the batcher drains everything
//!   already queued before [`ServeEngine::join`] returns.
//!
//! The wire protocol (newline-delimited JSON over stdio or TCP) is a
//! thin layer over this engine; see [`wire`] and `docs/SERVING.md`.

pub mod wire;

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::driver::InferenceReport;
use crate::error::Error;
use crate::session::{BatchConfig, Session};
use zskip_nn::model::QuantizedNetwork;
use zskip_tensor::Tensor;

/// A serving-layer failure. Wrapped as [`Error::Serve`]; the stable
/// [`Error::code`] strings are `serve.overloaded`, `serve.shutdown`,
/// `serve.protocol` and `serve.bad-request`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded submission queue is full: explicit backpressure. The
    /// client should retry later; nothing was enqueued.
    Overloaded {
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// The engine is shutting down and no longer admits requests.
    Shutdown,
    /// The request line was not valid JSON (framing-level failure).
    Protocol {
        /// Parser diagnostic.
        message: String,
    },
    /// Valid JSON, but not a valid request (unknown op, missing or
    /// ill-typed field, wrong image length).
    BadRequest {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "server overloaded: submission queue full ({depth} deep)")
            }
            ServeError::Shutdown => write!(f, "server is shutting down"),
            ServeError::Protocol { message } => write!(f, "protocol error: {message}"),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-request latency accounting, attached to every [`ServeReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// Microseconds the request waited queued before its batch dispatched.
    pub queue_us: u64,
    /// Wall microseconds of the batch the request ran in.
    pub batch_us: u64,
    /// How many requests were coalesced into that batch.
    pub batch_size: usize,
}

impl RequestStats {
    /// Total request latency: queue wait plus batch wall time.
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.batch_us
    }
}

/// The completion delivered to a request's callback: outcome plus stats.
#[derive(Debug)]
pub struct ServeReply {
    /// The client-chosen request id, echoed back verbatim.
    pub id: String,
    /// The inference report, or the error after retries were exhausted.
    pub result: Result<InferenceReport, Error>,
    /// Latency accounting for this request.
    pub stats: RequestStats,
}

/// Aggregate server-side counters, snapshot via [`ServeHandle::stats`]
/// and returned by [`ServeEngine::join`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests completed successfully.
    pub served: u64,
    /// Requests that completed with an error (after retries).
    pub failed: u64,
    /// Requests rejected at admission ([`ServeError::Overloaded`] or
    /// [`ServeError::Shutdown`]).
    pub rejected: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_batch_seen: usize,
    /// Total request latencies (queue + batch wall), one per completion.
    latencies_us: Vec<u64>,
}

impl ServeStats {
    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median total request latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 99th-percentile total request latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// Completions recorded (successes plus failures).
    pub fn completed(&self) -> u64 {
        self.served + self.failed
    }

    /// Mean coalesced batch size (0.0 before the first dispatch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed() as f64 / self.batches as f64
        }
    }
}

/// What a request runs when its batch completes. Invoked exactly once,
/// on the batcher thread — keep it cheap (a channel send, a line write).
pub type Completion = Box<dyn FnOnce(ServeReply) + Send + 'static>;

struct Pending {
    id: String,
    input: Tensor<f32>,
    enqueued: Instant,
    complete: Completion,
}

struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Wakes the batcher on submit and shutdown.
    bell: Condvar,
    stats: Mutex<ServeStats>,
    config: BatchConfig,
    shutdown_flag: AtomicBool,
}

/// Cloneable submission side of a [`ServeEngine`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeHandle").field("config", &self.shared.config).finish()
    }
}

impl ServeHandle {
    /// Enqueues one request; `complete` fires exactly once when its batch
    /// finishes. Admission control happens here, synchronously.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the queue is at
    /// [`BatchConfig::queue_depth`](crate::session::BatchConfig::queue_depth);
    /// [`ServeError::Shutdown`] after [`ServeHandle::shutdown`]. In both
    /// cases nothing was enqueued and `complete` will never run.
    pub fn submit_with(
        &self,
        id: impl Into<String>,
        input: Tensor<f32>,
        complete: Completion,
    ) -> Result<(), Error> {
        let mut q = self.shared.queue.lock().unwrap();
        if q.shutdown {
            drop(q);
            self.shared.stats.lock().unwrap().rejected += 1;
            return Err(ServeError::Shutdown.into());
        }
        if q.pending.len() >= self.shared.config.queue_depth {
            drop(q);
            self.shared.stats.lock().unwrap().rejected += 1;
            return Err(ServeError::Overloaded { depth: self.shared.config.queue_depth }.into());
        }
        q.pending.push_back(Pending {
            id: id.into(),
            input,
            enqueued: Instant::now(),
            complete,
        });
        drop(q);
        self.shared.bell.notify_all();
        Ok(())
    }

    /// [`ServeHandle::submit_with`] delivering the reply on a channel.
    ///
    /// # Errors
    /// See [`ServeHandle::submit_with`].
    pub fn submit(
        &self,
        id: impl Into<String>,
        input: Tensor<f32>,
        reply: mpsc::Sender<ServeReply>,
    ) -> Result<(), Error> {
        self.submit_with(id, input, Box::new(move |r| drop(reply.send(r))))
    }

    /// Stops admission and tells the batcher to drain what is queued and
    /// exit. Idempotent; already-queued requests still complete.
    pub fn shutdown(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        q.shutdown = true;
        self.shared.shutdown_flag.store(true, Ordering::Release);
        drop(q);
        self.shared.bell.notify_all();
    }

    /// Whether [`ServeHandle::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown_flag.load(Ordering::Acquire)
    }

    /// Snapshot of the aggregate server counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().unwrap().clone()
    }

    /// Requests currently queued (not yet dispatched).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().unwrap().pending.len()
    }

    /// The batch configuration the engine was started with.
    pub fn config(&self) -> &BatchConfig {
        &self.shared.config
    }
}

/// The serving daemon's core: one batcher thread over a bounded queue.
/// Construct with [`ServeEngine::start`], stop with [`ServeEngine::join`].
pub struct ServeEngine {
    handle: ServeHandle,
    batcher: Option<JoinHandle<()>>,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine").field("handle", &self.handle).finish()
    }
}

impl ServeEngine {
    /// Spawns the batcher thread for `session` over `qnet`. The batch
    /// knobs come from [`Session::batch_config`].
    pub fn start(session: Session, qnet: Arc<QuantizedNetwork>) -> ServeEngine {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            bell: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            config: *session.batch_config(),
            shutdown_flag: AtomicBool::new(false),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared, &session, &qnet))
        };
        ServeEngine { handle: ServeHandle { shared }, batcher: Some(batcher) }
    }

    /// The submission side; clone freely across producer threads.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Initiates shutdown (if not already requested), waits for the
    /// batcher to drain every queued request, and returns the final
    /// counters. Every accepted request's completion has run by the time
    /// this returns.
    pub fn join(mut self) -> ServeStats {
        self.handle.shutdown();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        self.handle.stats()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

fn batcher_loop(shared: &Shared, session: &Session, qnet: &QuantizedNetwork) {
    let config = shared.config;
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock().unwrap();
            // Sleep until there is work or a drain-and-exit request.
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared.bell.wait(q).unwrap();
            }
            // Adaptive coalescing: hold the batch open until the window
            // after the first request expires or the cutoff fills it.
            // During shutdown the window is skipped — drain fast.
            if !q.shutdown && q.pending.len() < config.max_batch && !config.batch_window.is_zero()
            {
                let deadline = Instant::now() + config.batch_window;
                loop {
                    let now = Instant::now();
                    if now >= deadline || q.pending.len() >= config.max_batch || q.shutdown {
                        break;
                    }
                    let (guard, wait) = shared.bell.wait_timeout(q, deadline - now).unwrap();
                    q = guard;
                    if wait.timed_out() {
                        break;
                    }
                }
            }
            let n = q.pending.len().min(config.max_batch);
            q.pending.drain(..n).collect()
        };
        let dispatched = Instant::now();
        let inputs: Vec<Tensor<f32>> = batch.iter().map(|p| p.input.clone()).collect();
        let report = session.run_batch_resilient(qnet, &inputs);
        let batch_us = dispatched.elapsed().as_micros() as u64;
        let batch_size = batch.len();
        let mut replies = Vec::with_capacity(batch_size);
        {
            let mut stats = shared.stats.lock().unwrap();
            stats.batches += 1;
            stats.max_batch_seen = stats.max_batch_seen.max(batch_size);
            for (pending, item) in batch.into_iter().zip(report.items) {
                let queue_us =
                    dispatched.saturating_duration_since(pending.enqueued).as_micros() as u64;
                match &item.result {
                    Ok(_) => stats.served += 1,
                    Err(_) => stats.failed += 1,
                }
                let req = RequestStats { queue_us, batch_us, batch_size };
                stats.latencies_us.push(req.total_us());
                replies.push((pending.complete, ServeReply {
                    id: pending.id,
                    result: item.result.map_err(Error::from),
                    stats: req,
                }));
            }
        }
        // Completions run outside the stats lock so a callback may query
        // handle.stats() without deadlocking.
        for (complete, reply) in replies {
            complete(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use crate::driver::BackendKind;
    use crate::session::Session;
    use std::time::Duration;
    use zskip_hls::AccelArch;
    use zskip_nn::eval::synthetic_inputs;

    fn config() -> AccelConfig {
        AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
            100.0,
        )
    }

    fn session() -> Session {
        Session::builder(config())
            .backend(BackendKind::Model)
            .batch_window(Duration::from_millis(1))
            .build()
            .unwrap()
    }

    #[test]
    fn serves_requests_bit_identical_to_direct_inference() {
        let qnet = Arc::new(crate::session::tests::tiny_qnet(8));
        let session = session();
        let inputs = synthetic_inputs(6, 5, qnet.spec.input);
        let direct: Vec<_> = inputs
            .iter()
            .map(|i| session.driver().run_network(&qnet, i).expect("runs").output)
            .collect();
        let engine = ServeEngine::start(session, Arc::clone(&qnet));
        let handle = engine.handle();
        let (tx, rx) = mpsc::channel();
        for (i, input) in inputs.iter().enumerate() {
            handle.submit(format!("r{i}"), input.clone(), tx.clone()).expect("admitted");
        }
        drop(tx);
        let mut replies: Vec<ServeReply> = rx.iter().take(inputs.len()).collect();
        replies.sort_by(|a, b| a.id.cmp(&b.id));
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply.id, format!("r{i}"));
            let report = reply.result.as_ref().expect("succeeds");
            assert_eq!(report.output, direct[i], "request {i} must match direct inference");
            assert!(reply.stats.batch_size >= 1);
        }
        let stats = engine.join();
        assert_eq!(stats.served, inputs.len() as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.p99_us() >= stats.p50_us());
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let qnet = Arc::new(crate::session::tests::tiny_qnet(8));
        let session = Session::builder(config())
            .backend(BackendKind::Model)
            .max_batch(2)
            .batch_window(Duration::from_millis(50))
            .build()
            .unwrap();
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let engine = ServeEngine::start(session, Arc::clone(&qnet));
        let handle = engine.handle();
        let (tx, rx) = mpsc::channel();
        for (i, input) in inputs.iter().enumerate() {
            handle.submit(format!("{i}"), input.clone(), tx.clone()).expect("admitted");
        }
        drop(tx);
        let replies: Vec<ServeReply> = rx.iter().collect();
        assert_eq!(replies.len(), 5);
        assert!(replies.iter().all(|r| r.stats.batch_size <= 2));
        let stats = engine.join();
        assert!(stats.batches >= 3, "5 requests at max_batch=2 need >= 3 batches");
        assert!(stats.max_batch_seen <= 2);
    }

    #[test]
    fn full_queue_rejects_with_overloaded_and_recovers() {
        let qnet = Arc::new(crate::session::tests::tiny_qnet(8));
        // A long window and depth 2 let us fill the queue deterministically
        // before the batcher drains it.
        let session = Session::builder(config())
            .backend(BackendKind::Model)
            .queue_depth(2)
            .batch_window(Duration::from_secs(5))
            .max_batch(64)
            .build()
            .unwrap();
        let input = synthetic_inputs(1, 2, qnet.spec.input).remove(0);
        let engine = ServeEngine::start(session, Arc::clone(&qnet));
        let handle = engine.handle();
        let (tx, rx) = mpsc::channel();
        // The batcher may dequeue the first submit before the next lands,
        // so keep stuffing until a submit bounces; depth 2 guarantees it
        // happens within a few tries.
        let mut accepted = 0;
        let overloaded = loop {
            match handle.submit(format!("q{accepted}"), input.clone(), tx.clone()) {
                Ok(()) => accepted += 1,
                Err(e) => break e,
            }
            assert!(accepted < 16, "queue_depth=2 must bounce well before 16 submits");
        };
        assert_eq!(overloaded.code(), "serve.overloaded");
        assert_eq!(
            overloaded,
            Error::Serve(ServeError::Overloaded { depth: 2 }),
            "the error names the exhausted depth"
        );
        drop(tx);
        // Shutdown drains the accepted requests; none are dropped.
        let stats = engine.join();
        assert_eq!(stats.served, accepted as u64);
        assert_eq!(stats.rejected, 1);
        let replies: Vec<ServeReply> = rx.iter().collect();
        assert_eq!(replies.len(), accepted);
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_queued() {
        let qnet = Arc::new(crate::session::tests::tiny_qnet(8));
        let session = Session::builder(config())
            .backend(BackendKind::Model)
            .batch_window(Duration::from_secs(5))
            .build()
            .unwrap();
        let input = synthetic_inputs(1, 3, qnet.spec.input).remove(0);
        let engine = ServeEngine::start(session, Arc::clone(&qnet));
        let handle = engine.handle();
        let (tx, rx) = mpsc::channel();
        handle.submit("a", input.clone(), tx.clone()).expect("admitted");
        handle.shutdown();
        assert!(handle.is_shutdown());
        let err = handle.submit("b", input, tx.clone()).unwrap_err();
        assert_eq!(err.code(), "serve.shutdown");
        drop(tx);
        let stats = engine.join();
        assert_eq!(stats.served, 1, "queued request drains through shutdown");
        let replies: Vec<ServeReply> = rx.iter().collect();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].id, "a");
    }
}
