//! Packed zero-skip weight streams for an OFM group.
//!
//! Offline, the host packs each filter's weights into (offset, value)
//! pairs per weight tile (paper §III-B); a group bundles `lanes` filters
//! (4 in the full design) whose packed tiles are streamed in lockstep by
//! the data-staging unit. This module owns the group-level format: lane
//! tiles per IFM, scratchpad serialization, and the per-IFM step counts
//! that determine cycle cost.

use zskip_nn::conv::QuantConvWeights;
use zskip_quant::{PackedTile, Sm8};
use zskip_tensor::{dydx_to_offset, Tile, TILE_DIM};

/// Packed weights of one OFM group (up to `lanes` filters) over all IFMs.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupWeights {
    lanes: usize,
    ifm_count: usize,
    /// `tiles[ifm * lanes + lane]`.
    tiles: Vec<PackedTile>,
}

impl GroupWeights {
    /// Packs the filters `[ofm_first, ofm_first + lanes)` of a quantized
    /// conv layer. Lanes past `out_c` pack as empty (all-zero) tiles.
    ///
    /// # Panics
    /// Panics if the kernel does not fit a 4x4 weight tile (`k > 4`); the
    /// paper's tiling targets the ubiquitous 3x3 (and smaller) filters.
    pub fn from_filters(qw: &QuantConvWeights, ofm_first: usize, lanes: usize) -> GroupWeights {
        Self::from_filters_with_skipping(qw, ofm_first, lanes, true)
    }

    /// Like [`GroupWeights::from_filters`], with zero-skipping optionally
    /// disabled (every weight slot packed, zeros included) — the ablation
    /// baseline quantifying the paper's novel contribution.
    pub fn from_filters_with_skipping(
        qw: &QuantConvWeights,
        ofm_first: usize,
        lanes: usize,
        skip_zeros: bool,
    ) -> GroupWeights {
        assert!(qw.k <= TILE_DIM, "kernel {}x{} does not fit a 4x4 weight tile", qw.k, qw.k);
        let mut tiles = Vec::with_capacity(qw.in_c * lanes);
        for ifm in 0..qw.in_c {
            for lane in 0..lanes {
                let o = ofm_first + lane;
                let tile = if o < qw.out_c {
                    let mut t = Tile::<Sm8>::zero();
                    for ky in 0..qw.k {
                        for kx in 0..qw.k {
                            t.as_mut_array()[dydx_to_offset(ky, kx) as usize] = qw.at(o, ifm, ky, kx);
                        }
                    }
                    if skip_zeros {
                        PackedTile::pack(&t)
                    } else {
                        PackedTile::pack_dense(&t)
                    }
                } else {
                    PackedTile::default()
                };
                tiles.push(tile);
            }
        }
        GroupWeights { lanes, ifm_count: qw.in_c, tiles }
    }

    /// Number of filter lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of IFM channels covered.
    pub fn ifm_count(&self) -> usize {
        self.ifm_count
    }

    /// The packed tile for `(ifm, lane)`.
    pub fn lane_tile(&self, ifm: usize, lane: usize) -> &PackedTile {
        &self.tiles[ifm * self.lanes + lane]
    }

    /// Lockstep steps for one IFM: the maximum lane non-zero count. Zero
    /// means every lane is empty and the IFM is skipped outright.
    pub fn steps(&self, ifm: usize) -> usize {
        (0..self.lanes).map(|l| self.lane_tile(ifm, l).nnz()).max().unwrap_or(0)
    }

    /// Idle lane-slots (pipeline bubbles) for one IFM.
    pub fn bubbles(&self, ifm: usize) -> usize {
        let steps = self.steps(ifm);
        (0..self.lanes).map(|l| steps - self.lane_tile(ifm, l).nnz()).sum()
    }

    /// Total non-zero weights across the group.
    pub fn total_nnz(&self) -> usize {
        self.tiles.iter().map(PackedTile::nnz).sum()
    }

    /// Scratchpad bytes for one IFM's lane tiles.
    pub fn ifm_bytes(&self, ifm: usize) -> usize {
        (0..self.lanes).map(|l| self.lane_tile(ifm, l).byte_len()).sum()
    }

    /// Total scratchpad bytes for the group.
    pub fn total_bytes(&self) -> usize {
        (0..self.ifm_count).map(|i| self.ifm_bytes(i)).sum()
    }

    /// Heap bytes held by this group (cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.tiles.iter().map(PackedTile::heap_bytes).sum::<usize>()
            + self.tiles.capacity() * std::mem::size_of::<PackedTile>()
    }

    /// Serializes to the scratchpad stream: per IFM, the `lanes` packed
    /// tiles concatenated.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes());
        for t in &self.tiles {
            out.extend_from_slice(&t.to_bytes());
        }
        out
    }

    /// Deserializes a scratchpad stream. Trailing bytes are permitted —
    /// the stream may be a window into a larger scratchpad image holding
    /// several groups.
    ///
    /// # Errors
    /// Propagates packed-tile decode errors.
    pub fn from_bytes(
        bytes: &[u8],
        ifm_count: usize,
        lanes: usize,
    ) -> Result<GroupWeights, zskip_quant::pack::PackDecodeError> {
        let mut tiles = Vec::with_capacity(ifm_count * lanes);
        let mut pos = 0;
        for _ in 0..ifm_count * lanes {
            let (t, used) = PackedTile::from_bytes(&bytes[pos..])?;
            pos += used;
            tiles.push(t);
        }
        Ok(GroupWeights { lanes, ifm_count, tiles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_quant::Requantizer;

    /// A quantized layer with deterministic per-filter sparsity.
    fn layer(out_c: usize, in_c: usize, k: usize) -> QuantConvWeights {
        let w: Vec<Sm8> = (0..out_c * in_c * k * k)
            .map(|i| {
                // Filter o keeps weights where (i + o) % 3 != 0, giving
                // different densities per filter.
                let o = i / (in_c * k * k);
                if (i + o).is_multiple_of(3) {
                    Sm8::ZERO
                } else {
                    Sm8::from_i32_saturating((i % 13) as i32 - 6)
                }
            })
            .collect();
        QuantConvWeights::new(out_c, in_c, k, w, vec![0; out_c], Requantizer::IDENTITY, false)
    }

    #[test]
    fn packs_filters_at_kernel_offsets() {
        let qw = layer(4, 2, 3);
        let g = GroupWeights::from_filters(&qw, 0, 4);
        assert_eq!(g.ifm_count(), 2);
        // Every packed entry's offset decodes within the 3x3 area.
        for ifm in 0..2 {
            for lane in 0..4 {
                for e in g.lane_tile(ifm, lane).entries() {
                    let (dy, dx) = zskip_tensor::offset_to_dydx(e.offset);
                    assert!(dy < 3 && dx < 3, "offset ({dy},{dx}) outside 3x3");
                }
            }
        }
    }

    #[test]
    fn unpacked_tiles_match_source_weights() {
        let qw = layer(4, 3, 3);
        let g = GroupWeights::from_filters(&qw, 0, 4);
        for ifm in 0..3 {
            for lane in 0..4 {
                let t = g.lane_tile(ifm, lane).unpack();
                for ky in 0..3 {
                    for kx in 0..3 {
                        assert_eq!(t[(ky, kx)], qw.at(lane, ifm, ky, kx));
                    }
                }
            }
        }
    }

    #[test]
    fn steps_is_max_lane_nnz() {
        let qw = layer(4, 2, 3);
        let g = GroupWeights::from_filters(&qw, 0, 4);
        for ifm in 0..2 {
            let max = (0..4).map(|l| g.lane_tile(ifm, l).nnz()).max().unwrap();
            assert_eq!(g.steps(ifm), max);
            assert_eq!(g.bubbles(ifm), (0..4).map(|l| max - g.lane_tile(ifm, l).nnz()).sum::<usize>());
        }
    }

    #[test]
    fn ragged_group_pads_with_empty_lanes() {
        // 6 filters, group starting at 4: lanes 2,3 are past out_c.
        let qw = layer(6, 2, 3);
        let g = GroupWeights::from_filters(&qw, 4, 4);
        assert_eq!(g.lane_tile(0, 2).nnz(), 0);
        assert_eq!(g.lane_tile(0, 3).nnz(), 0);
        assert!(g.lane_tile(0, 0).nnz() > 0);
    }

    #[test]
    fn bytes_round_trip() {
        let qw = layer(4, 5, 3);
        let g = GroupWeights::from_filters(&qw, 0, 4);
        let bytes = g.to_bytes();
        assert_eq!(bytes.len(), g.total_bytes());
        let h = GroupWeights::from_bytes(&bytes, 5, 4).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn all_zero_ifm_reports_zero_steps() {
        let qw = QuantConvWeights::new(4, 1, 3, vec![Sm8::ZERO; 36], vec![0; 4], Requantizer::IDENTITY, false);
        let g = GroupWeights::from_filters(&qw, 0, 4);
        assert_eq!(g.steps(0), 0);
        assert_eq!(g.total_nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_wide_kernels() {
        let qw = layer(4, 1, 5);
        let _ = GroupWeights::from_filters(&qw, 0, 4);
    }

    mod packer_properties {
        use super::*;
        use proptest::prelude::*;

        /// A random quantized layer over the kernel sizes residual blocks
        /// use — including the 1x1 projection convs of skip branches,
        /// whose weight tiles occupy a single offset.
        fn layer_strategy() -> impl Strategy<Value = QuantConvWeights> {
            (1usize..=9, 1usize..=6, prop_oneof![Just(1usize), Just(2), Just(3)], 0u64..10_000)
                .prop_map(|(out_c, in_c, k, seed)| {
                    let w: Vec<Sm8> = (0..out_c * in_c * k * k)
                        .map(|i| {
                            let h = (i as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 3);
                            if h.is_multiple_of(3) {
                                Sm8::ZERO
                            } else {
                                Sm8::from_i32_saturating((h % 255) as i32 - 127)
                            }
                        })
                        .collect();
                    QuantConvWeights::new(out_c, in_c, k, w, vec![0; out_c], Requantizer::IDENTITY, false)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The packer against the scalar weights as oracle: for any
            /// group over any kernel size (1x1 projections included),
            /// every lane tile unpacks to exactly the source filter, the
            /// scratchpad byte stream round-trips, and the lockstep step
            /// count is the slowest lane's non-zero count.
            #[test]
            fn packed_groups_agree_with_scalar_weights(
                qw in layer_strategy(),
                group in 0usize..3,
            ) {
                let lanes = 4;
                let ofm_first = group * lanes;
                prop_assume!(ofm_first < qw.out_c);
                let g = GroupWeights::from_filters(&qw, ofm_first, lanes);
                prop_assert_eq!(g.ifm_count(), qw.in_c);
                for ifm in 0..qw.in_c {
                    let mut max_nnz = 0;
                    for lane in 0..lanes {
                        let tile = g.lane_tile(ifm, lane);
                        let dense = tile.unpack();
                        let o = ofm_first + lane;
                        let mut nnz = 0;
                        for ky in 0..TILE_DIM {
                            for kx in 0..TILE_DIM {
                                let want = if o < qw.out_c && ky < qw.k && kx < qw.k {
                                    qw.at(o, ifm, ky, kx)
                                } else {
                                    Sm8::ZERO
                                };
                                prop_assert_eq!(dense[(ky, kx)], want, "lane {} ifm {} ({},{})", lane, ifm, ky, kx);
                                if !want.is_zero() {
                                    nnz += 1;
                                }
                            }
                        }
                        prop_assert_eq!(tile.nnz(), nnz);
                        max_nnz = max_nnz.max(nnz);
                    }
                    prop_assert_eq!(g.steps(ifm), max_nnz);
                }
                let back = GroupWeights::from_bytes(&g.to_bytes(), qw.in_c, lanes).expect("round-trip");
                prop_assert_eq!(back, g);
            }

            /// Zero-skipping never changes what the tiles decode to — the
            /// dense (ablation) packing and the skipped packing unpack
            /// identically, and skipping only removes work.
            #[test]
            fn skipping_is_a_pure_compression(qw in layer_strategy()) {
                let skip = GroupWeights::from_filters_with_skipping(&qw, 0, 4, true);
                let dense = GroupWeights::from_filters_with_skipping(&qw, 0, 4, false);
                for ifm in 0..qw.in_c {
                    for lane in 0..4 {
                        prop_assert_eq!(
                            skip.lane_tile(ifm, lane).unpack(),
                            dense.lane_tile(ifm, lane).unpack()
                        );
                    }
                    prop_assert!(skip.steps(ifm) <= dense.steps(ifm));
                }
                prop_assert!(skip.total_bytes() <= dense.total_bytes());
            }
        }
    }
}
