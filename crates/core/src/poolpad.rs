//! Micro-op programs for the padding/max-pooling unit (paper Fig. 5).
//!
//! The unit holds one OFM tile of output registers, four MAX units that
//! each select the maximum over any subset of the 16 values of the
//! incoming IFM tile, and 16 output muxes that either update a value from
//! a MAX unit or retain it. "With just a few instructions, the
//! padding/max-pooling unit is capable of realizing any padding/max-pooling
//! layer (e.g. a variety of max-pooling region sizes or strides)."
//!
//! A [`MicroOp`] is one such instruction: an input tile address plus up to
//! four (mask, destination, merge) selections. [`compile_tile_program`]
//! compiles the geometry of a pooling or padding layer into the micro-op
//! sequence for one output tile; the same program drives the cycle-exact
//! kernel and the transaction-level model, and its length is the cycle
//! cost.

use crate::isa::PoolPadOp;
use zskip_quant::Sm8;
use zskip_tensor::{Tile, TILE_DIM, TILE_ELEMS};

/// One MAX-unit selection within a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxSel {
    /// Bitmask over the 16 input-tile values (bit `i` = row-major index
    /// `i`). Zero means this MAX unit idles this cycle.
    pub mask: u16,
    /// Output register (0..16) to update.
    pub out_idx: u8,
    /// `true`: output takes `max(old, new)`; `false`: overwrite.
    pub merge: bool,
}

impl MaxSel {
    /// An idle MAX-unit slot.
    pub const IDLE: MaxSel = MaxSel { mask: 0, out_idx: 0, merge: false };
}

/// One cycle of the pool/pad unit: read one input tile, fire up to four
/// MAX units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Input tile row (in the input tile grid; may be out of range, which
    /// reads as a zero tile).
    pub in_ty: isize,
    /// Input tile column.
    pub in_tx: isize,
    /// The four MAX-unit selections.
    pub sels: [MaxSel; 4],
}

/// Applies one micro-op to an output tile given the fetched input tile.
pub fn apply_micro_op(out: &mut Tile<Sm8>, input: &Tile<Sm8>, op: &MicroOp) {
    for sel in &op.sels {
        if sel.mask == 0 {
            continue;
        }
        let mut m: Option<Sm8> = None;
        for i in 0..TILE_ELEMS {
            if sel.mask & (1 << i) != 0 {
                let v = input.as_array()[i];
                m = Some(match m {
                    None => v,
                    Some(cur) => cur.max(v),
                });
            }
        }
        let v = m.expect("non-zero mask has at least one value");
        let slot = &mut out.as_mut_array()[sel.out_idx as usize];
        *slot = if sel.merge { (*slot).max(v) } else { v };
    }
}

/// Compiles the micro-op program computing output tile `(oty, otx)` of a
/// pooling or padding layer. Input tile coordinates in the returned ops
/// are global to the input tile grid; out-of-range tiles read as zero.
///
/// The program length is the unit's cycle cost for this output tile.
///
/// # Panics
/// Panics on degenerate geometry (`k == 0` or `stride == 0`).
pub fn compile_tile_program(op: PoolPadOp, oty: usize, otx: usize) -> Vec<MicroOp> {
    // For each output value j (0..16), the list of (input tile, cell mask)
    // contributions.
    let mut contributions: Vec<Vec<((isize, isize), u16)>> = vec![Vec::new(); TILE_ELEMS];

    for (j, contribution) in contributions.iter_mut().enumerate() {
        let jy = j / TILE_DIM;
        let jx = j % TILE_DIM;
        let oy = (oty * TILE_DIM + jy) as isize;
        let ox = (otx * TILE_DIM + jx) as isize;
        let cells: Vec<(isize, isize)> = match op {
            PoolPadOp::MaxPool { k, stride } => {
                assert!(k > 0 && stride > 0, "degenerate pooling geometry");
                let (k, s) = (k as isize, stride as isize);
                (0..k).flat_map(|dy| (0..k).map(move |dx| (oy * s + dy, ox * s + dx))).collect()
            }
            PoolPadOp::Pad { amount } => {
                let a = amount as isize;
                let iy = oy - a;
                let ix = ox - a;
                if iy < 0 || ix < 0 {
                    Vec::new() // border: output register stays zero
                } else {
                    vec![(iy, ix)]
                }
            }
        };
        for (iy, ix) in cells {
            if iy < 0 || ix < 0 {
                continue; // out-of-range input reads as zero; max with 0 is
                          // wrong for negatives, so simply skip the cell —
                          // pooling windows in valid layers never hang off
                          // the top/left edge.
            }
            let t = (iy / TILE_DIM as isize, ix / TILE_DIM as isize);
            let cell = (iy % TILE_DIM as isize) * TILE_DIM as isize + ix % TILE_DIM as isize;
            match contribution.iter_mut().find(|(tile, _)| *tile == t) {
                Some((_, mask)) => *mask |= 1 << cell,
                None => contribution.push((t, 1u16 << cell)),
            }
        }
    }

    // Flatten to (tile, j, mask, merge) slots: the first contribution per
    // output value overwrites, the rest merge.
    let mut slots: Vec<((isize, isize), MaxSel)> = Vec::new();
    for (j, contribs) in contributions.iter().enumerate() {
        for (n, (tile, mask)) in contribs.iter().enumerate() {
            slots.push((*tile, MaxSel { mask: *mask, out_idx: j as u8, merge: n > 0 }));
        }
    }

    // Pack slots into micro-ops: group by input tile (preserving the
    // merge-after-overwrite order per output value), four slots per cycle.
    // Sort stably by tile so each tile's slots are contiguous.
    slots.sort_by_key(|(tile, _)| *tile);
    let mut ops = Vec::new();
    let mut i = 0;
    while i < slots.len() {
        let tile = slots[i].0;
        let mut sels = [MaxSel::IDLE; 4];
        let mut n = 0;
        while i < slots.len() && slots[i].0 == tile && n < 4 {
            sels[n] = slots[i].1;
            n += 1;
            i += 1;
        }
        ops.push(MicroOp { in_ty: tile.0, in_tx: tile.1, sels });
    }
    ops
}

/// Executes the full program for one output tile, fetching input tiles via
/// the closure (the model backend's path; the cycle kernel executes the
/// same ops against the banks one cycle at a time).
pub fn run_tile_program(
    op: PoolPadOp,
    oty: usize,
    otx: usize,
    mut fetch: impl FnMut(isize, isize) -> Tile<Sm8>,
) -> (Tile<Sm8>, usize) {
    let program = compile_tile_program(op, oty, otx);
    let cycles = program.len();
    let mut out = Tile::zero();
    for mop in &program {
        let input = fetch(mop.in_ty, mop.in_tx);
        apply_micro_op(&mut out, &input, mop);
    }
    (out, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use zskip_nn::pool::maxpool_quant;
    use zskip_tensor::{Tensor, TiledFeatureMap};

    fn quantize(t: &Tensor<i32>) -> Tensor<Sm8> {
        t.map(Sm8::from_i32_saturating)
    }

    fn run_layer(input: &Tensor<Sm8>, op: PoolPadOp, out_h: usize, out_w: usize) -> Tensor<Sm8> {
        let tiled = TiledFeatureMap::from_tensor(input);
        let out_tiles_y = out_h.div_ceil(TILE_DIM);
        let out_tiles_x = out_w.div_ceil(TILE_DIM);
        let mut out = TiledFeatureMap::zeros(zskip_tensor::Shape::new(input.shape().c, out_h, out_w));
        for c in 0..input.shape().c {
            for oty in 0..out_tiles_y {
                for otx in 0..out_tiles_x {
                    let (tile, _) = run_tile_program(op, oty, otx, |ty, tx| tiled.tile_or_zero(c, ty, tx));
                    *out.tile_mut(c, oty, otx) = tile;
                }
            }
        }
        out.to_tensor().cropped(out_h, out_w)
    }

    #[test]
    fn pool_2x2_matches_reference_and_costs_4_cycles_per_tile() {
        let input = quantize(&Tensor::from_fn(2, 16, 16, |c, y, x| ((c * 97 + y * 17 + x * 3) % 255) as i32 - 127));
        let got = run_layer(&input, PoolPadOp::MaxPool { k: 2, stride: 2 }, 8, 8);
        let want = maxpool_quant(&input, 2, 2);
        assert_eq!(got, want);
        // Cost: 2x2/s2 output tile reads 4 input tiles, 1 cycle each.
        let prog = compile_tile_program(PoolPadOp::MaxPool { k: 2, stride: 2 }, 0, 0);
        assert_eq!(prog.len(), 4);
    }

    #[test]
    fn pool_3x3_stride_2_matches_reference() {
        let input = quantize(&Tensor::from_fn(1, 19, 19, |_, y, x| ((y * 19 + x) % 250) as i32 - 125));
        // out = (19 - 3)/2 + 1 = 9.
        let got = run_layer(&input, PoolPadOp::MaxPool { k: 3, stride: 2 }, 9, 9);
        let want = maxpool_quant(&input, 3, 2);
        assert_eq!(got, want);
    }

    #[test]
    fn pool_handles_all_negative_inputs() {
        // Regression guard: output registers initialize to zero, so merge
        // order must ensure the first contribution overwrites.
        let input = quantize(&Tensor::from_fn(1, 8, 8, |_, y, x| -((y * 8 + x) as i32) - 1));
        let got = run_layer(&input, PoolPadOp::MaxPool { k: 2, stride: 2 }, 4, 4);
        let want = maxpool_quant(&input, 2, 2);
        assert_eq!(got, want);
        assert!(got.as_slice().iter().all(|v| v.to_i32() < 0));
    }

    #[test]
    fn pad_matches_reference() {
        let input = quantize(&Tensor::from_fn(2, 6, 6, |c, y, x| (c as i32 + 1) * ((y * 6 + x) as i32 - 17)));
        let got = run_layer(&input, PoolPadOp::Pad { amount: 1 }, 8, 8);
        let want = input.padded(1);
        assert_eq!(got, want);
    }

    #[test]
    fn pad_2_matches_reference() {
        let input = quantize(&Tensor::from_fn(1, 5, 7, |_, y, x| (y * 7 + x) as i32 - 10));
        let got = run_layer(&input, PoolPadOp::Pad { amount: 2 }, 9, 11);
        let want = input.padded(2);
        assert_eq!(got, want);
    }

    #[test]
    fn interior_pad_tile_costs_few_cycles() {
        // A pad-by-1 output tile draws from at most 4 input tiles with
        // 1+3+3+9 values: ceil costs 1+1+1+3 = 6 cycles.
        let prog = compile_tile_program(PoolPadOp::Pad { amount: 1 }, 1, 1);
        assert!(prog.len() <= 6, "prog len {}", prog.len());
    }

    #[test]
    fn max_units_never_exceed_four_per_cycle() {
        for op in [PoolPadOp::MaxPool { k: 3, stride: 1 }, PoolPadOp::MaxPool { k: 2, stride: 2 }, PoolPadOp::Pad { amount: 1 }] {
            for oty in 0..3 {
                for otx in 0..3 {
                    for mop in compile_tile_program(op, oty, otx) {
                        let active = mop.sels.iter().filter(|s| s.mask != 0).count();
                        assert!((1..=4).contains(&active));
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn arbitrary_pooling_matches_reference(
            vals in proptest::collection::vec(-127i32..=127, 144),
            k in 1u8..=4,
            stride in 1u8..=3,
        ) {
            let input = quantize(&Tensor::from_vec(1, 12, 12, vals));
            let out_h = (12 - k as usize) / stride as usize + 1;
            let got = run_layer(&input, PoolPadOp::MaxPool { k, stride }, out_h, out_h);
            let want = maxpool_quant(&input, k as usize, stride as usize);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn arbitrary_padding_matches_reference(
            vals in proptest::collection::vec(-127i32..=127, 36),
            amount in 1u8..=3,
        ) {
            let input = quantize(&Tensor::from_vec(1, 6, 6, vals));
            let a = amount as usize;
            let got = run_layer(&input, PoolPadOp::Pad { amount }, 6 + 2 * a, 6 + 2 * a);
            prop_assert_eq!(got, input.padded(a));
        }
    }
}
