//! The design-space autotuner behind `zskip tune`.
//!
//! The paper's Figs. 6–8 are a hand-run exploration over four HLS
//! variants; this module automates it and extends it to every knob the
//! stack grew since: a typed [`SearchSpace`] over hardware (variant,
//! instances, placement, park hysteresis) and software (backend,
//! threads, kernel tier, caches, batch shaping) dimensions, two
//! seeded-deterministic [`Searcher`]s, pluggable lower-is-better
//! [`Objective`]s, a fingerprint-keyed evaluation cache, and a versioned
//! [`TunedConfig`] artifact that
//! [`SessionBuilder::from_tuned`](crate::session::SessionBuilder::from_tuned)
//! and the CLI's `--config` flag load back.
//!
//! ```
//! use zskip_core::tune::{Objective, SearchSpace, Searcher, Tuner};
//! # use zskip_nn::eval::synthetic_inputs;
//! # let qnet = zskip_core::tune::doctest_qnet();
//! let inputs = synthetic_inputs(1, 5, qnet.spec.input);
//! let outcome = Tuner::new(SearchSpace::hls(), Objective::Cycles, &qnet, &inputs)
//!     .seed(1)
//!     .budget(16)
//!     .run();
//! assert!(outcome.best_score <= outcome.default_score);
//! assert_eq!(outcome.best.provenance.as_ref().unwrap().seed, 1);
//! ```
//!
//! Determinism contract: with a deterministic objective (`cycles`), the
//! same seed, space and budget produce a byte-identical artifact — the
//! searchers draw every choice from one
//! [`SplitMix64`](crate::rng::SplitMix64) stream and the evaluator is a
//! pure function of the config. Wall-clock objectives (latency, throughput, p99)
//! reproduce the same *search trajectory* only insofar as measured
//! scores order the same way; their provenance embeds the measured
//! score. See docs/TUNING.md.

mod artifact;
mod objective;
mod search;
mod space;

pub use artifact::{Provenance, TunedConfig, ARTIFACT_VERSION};
pub use objective::{default_score, Evaluator, Objective};
pub use search::{SearchResult, Searcher};
pub use space::{Knob, Point, SearchSpace, SpaceKind};

use zskip_nn::model::QuantizedNetwork;
use zskip_tensor::Tensor;

/// Default fresh-evaluation budget (`zskip tune --budget`): enough for
/// several coordinate-descent sweeps over the built-in spaces.
pub const DEFAULT_BUDGET: u64 = 96;

/// Default tuner seed. Arbitrary but fixed: artifacts produced with the
/// defaults are reproducible across machines and releases.
pub const DEFAULT_SEED: u64 = 0x5aca_de09;

/// One configured tuning run: space + objective + searcher + seed +
/// budget over a workload. Build with [`Tuner::new`], adjust with the
/// builder methods, then [`Tuner::run`].
#[derive(Debug)]
pub struct Tuner<'a> {
    space: SearchSpace,
    searcher: Searcher,
    seed: u64,
    budget: u64,
    evaluator: Evaluator<'a>,
}

/// What a tuning run produced: the best artifact (provenance embedded)
/// plus the numbers reports and gates compare.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Best configuration found, with [`Provenance`] filled in.
    pub best: TunedConfig,
    /// Its score (lower is better; units per the objective).
    pub best_score: f64,
    /// The default configuration's score on the same workload.
    pub default_score: f64,
    /// Fresh evaluations spent.
    pub evals: u64,
    /// Evaluations answered by the fingerprint cache.
    pub cache_hits: u64,
}

impl TuneOutcome {
    /// best/default improvement as a ratio (> 1 means the tuned config
    /// is better; 1.10 = 10% better). Infinity-scored defaults (which
    /// the built-in spaces never produce) yield NaN, which fails every
    /// `>=` gate — the conservative direction.
    pub fn speedup(&self) -> f64 {
        self.default_score / self.best_score
    }
}

impl<'a> Tuner<'a> {
    /// A tuner over `space` scoring `objective` on `qnet`/`inputs`, with
    /// the default searcher (coordinate descent), [`DEFAULT_SEED`] and
    /// [`DEFAULT_BUDGET`].
    ///
    /// # Panics
    /// When `inputs` is empty (see [`Evaluator::new`]).
    pub fn new(
        space: SearchSpace,
        objective: Objective,
        qnet: &'a QuantizedNetwork,
        inputs: &'a [Tensor<f32>],
    ) -> Tuner<'a> {
        Tuner {
            space,
            searcher: Searcher::CoordinateDescent,
            seed: DEFAULT_SEED,
            budget: DEFAULT_BUDGET,
            evaluator: Evaluator::new(objective, qnet, inputs),
        }
    }

    /// Selects the search algorithm.
    pub fn searcher(mut self, searcher: Searcher) -> Tuner<'a> {
        self.searcher = searcher;
        self
    }

    /// Seeds the searcher's random stream.
    pub fn seed(mut self, seed: u64) -> Tuner<'a> {
        self.seed = seed;
        self
    }

    /// Caps fresh evaluations (cache hits are free).
    pub fn budget(mut self, budget: u64) -> Tuner<'a> {
        self.budget = budget;
        self
    }

    /// Runs the search and packages the best point as an artifact with
    /// provenance.
    pub fn run(mut self) -> TuneOutcome {
        let result = self.searcher.run(&self.space, &mut self.evaluator, self.seed, self.budget);
        let mut best = self.space.config_at(&result.best_point);
        best.provenance = Some(Provenance {
            seed: self.seed,
            budget: self.budget,
            objective: self.evaluator.objective().name().to_string(),
            space: self.space.name().to_string(),
            searcher: self.searcher.name().to_string(),
            score: result.best_score,
            evals: self.evaluator.fresh_evals(),
            cache_hits: self.evaluator.cache_hits(),
        });
        TuneOutcome {
            best,
            best_score: result.best_score,
            default_score: result.default_score,
            evals: self.evaluator.fresh_evals(),
            cache_hits: self.evaluator.cache_hits(),
        }
    }
}

/// A tiny quantized network for the module's doctest. Hidden from docs;
/// real callers bring their own workload.
#[doc(hidden)]
pub fn doctest_qnet() -> QuantizedNetwork {
    use zskip_nn::eval::synthetic_inputs;
    use zskip_nn::layer::{LayerSpec, NetworkSpec};
    use zskip_nn::model::{Network, SyntheticModelConfig};
    use zskip_quant::DensityProfile;
    use zskip_tensor::Shape;
    let spec = NetworkSpec {
        name: "tune-doctest".into(),
        input: Shape::new(2, 8, 8),
        layers: vec![LayerSpec::Conv {
            name: "c0".into(),
            in_c: 2,
            out_c: 4,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        }],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 9, density: DensityProfile::uniform(1, 0.5) },
    );
    let calib = synthetic_inputs(2, 1, spec.input);
    net.quantize(&calib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::tests::tiny_qnet;
    use zskip_nn::eval::synthetic_inputs;

    #[test]
    fn tuner_embeds_full_provenance() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let outcome = Tuner::new(SearchSpace::hls(), Objective::Cycles, &qnet, &inputs)
            .searcher(Searcher::Spsa)
            .seed(11)
            .budget(12)
            .run();
        let p = outcome.best.provenance.as_ref().expect("provenance embedded");
        assert_eq!(p.seed, 11);
        assert_eq!(p.budget, 12);
        assert_eq!(p.objective, "cycles");
        assert_eq!(p.space, "hls");
        assert_eq!(p.searcher, "spsa");
        assert_eq!(p.score, outcome.best_score);
        assert_eq!(p.evals, outcome.evals);
        assert_eq!(p.cache_hits, outcome.cache_hits);
        assert!(outcome.evals <= 12);
        assert!(outcome.speedup() >= 1.0);
    }

    #[test]
    fn same_seed_same_artifact_bytes() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let run = || {
            Tuner::new(SearchSpace::hls(), Objective::Cycles, &qnet, &inputs)
                .seed(3)
                .budget(32)
                .run()
                .best
                .to_json_string()
        };
        assert_eq!(run(), run());
    }
}
