//! Typed search spaces: which knobs the tuner may move and the candidate
//! values each may take.
//!
//! A space is an ordered list of [`Knob`]s; a [`Point`] is one index per
//! knob. Candidate lists are explicit and finite — bounds *and* steps in
//! one place — so the searchers never synthesize a value the
//! [`SessionBuilder`](crate::session::SessionBuilder) would reject as a
//! matter of course, and every point has a canonical
//! [`TunedConfig`](crate::tune::TunedConfig) it denotes. Every knob's
//! candidate list contains the session default, and the default point
//! selects exactly [`TunedConfig::default`] — the baseline the tuner's
//! improvement is measured against.

use crate::exec::sched::Placement;
use crate::exec::BackendKind;
use crate::tune::TunedConfig;
use zskip_hls::Variant;
use zskip_nn::simd::KernelTier;

/// One tunable dimension: the knob's identity plus its ordered candidate
/// values. Ordering matters — the searchers step by index, so adjacent
/// candidates should be adjacent in effect (instances 1 → 2 → 4, not a
/// shuffled list).
#[derive(Debug, Clone, PartialEq)]
pub enum Knob {
    /// Execution backend. The cycle backend is deliberately absent from
    /// the built-in spaces: it is orders of magnitude slower to evaluate
    /// and bit-identical to the model backend, so searching it buys
    /// nothing (see docs/TUNING.md).
    Backend(Vec<BackendKind>),
    /// Intra-image conv worker threads (cpu backend).
    Threads(Vec<usize>),
    /// SIMD kernel tier; `None` = process-wide dispatch (auto).
    Kernel(Vec<Option<KernelTier>>),
    /// Packed-weight cache on/off.
    WeightCache(Vec<bool>),
    /// Batch-pool workers (0 = host auto).
    BatchWorkers(Vec<usize>),
    /// Request-coalescing cutoff.
    MaxBatch(Vec<usize>),
    /// Adaptive batch window in milliseconds.
    BatchWindowMs(Vec<u64>),
    /// Admission-control queue depth.
    QueueDepth(Vec<usize>),
    /// HLS variant (the paper's Fig. 6 axis).
    Variant(Vec<Variant>),
    /// Simulated instance count (scale-out ladder).
    Instances(Vec<usize>),
    /// Multi-instance placement.
    Placement(Vec<Placement>),
    /// Event-scheduler park hysteresis; `None` = engine default.
    ParkHysteresis(Vec<Option<u32>>),
}

impl Knob {
    /// The knob's stable name (used in artifacts, reports and docs).
    pub fn name(&self) -> &'static str {
        match self {
            Knob::Backend(_) => "backend",
            Knob::Threads(_) => "threads",
            Knob::Kernel(_) => "kernel",
            Knob::WeightCache(_) => "weight_cache",
            Knob::BatchWorkers(_) => "batch_workers",
            Knob::MaxBatch(_) => "max_batch",
            Knob::BatchWindowMs(_) => "batch_window_ms",
            Knob::QueueDepth(_) => "queue_depth",
            Knob::Variant(_) => "variant",
            Knob::Instances(_) => "instances",
            Knob::Placement(_) => "placement",
            Knob::ParkHysteresis(_) => "park_hysteresis",
        }
    }

    /// Number of candidate values.
    pub fn len(&self) -> usize {
        match self {
            Knob::Backend(v) => v.len(),
            Knob::Threads(v) => v.len(),
            Knob::Kernel(v) => v.len(),
            Knob::WeightCache(v) => v.len(),
            Knob::BatchWorkers(v) => v.len(),
            Knob::MaxBatch(v) => v.len(),
            Knob::BatchWindowMs(v) => v.len(),
            Knob::QueueDepth(v) => v.len(),
            Knob::Variant(v) => v.len(),
            Knob::Instances(v) => v.len(),
            Knob::Placement(v) => v.len(),
            Knob::ParkHysteresis(v) => v.len(),
        }
    }

    /// Whether the candidate list is empty (never true for the built-in
    /// spaces; [`SearchSpace::new`] rejects it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes candidate `idx` into `config`.
    ///
    /// # Panics
    /// When `idx` is out of range (searchers clamp to the candidate list).
    pub fn apply(&self, idx: usize, config: &mut TunedConfig) {
        match self {
            Knob::Backend(v) => config.backend = v[idx],
            Knob::Threads(v) => config.threads = v[idx],
            Knob::Kernel(v) => config.kernel = v[idx],
            Knob::WeightCache(v) => config.weight_cache = v[idx],
            Knob::BatchWorkers(v) => config.batch_workers = v[idx],
            Knob::MaxBatch(v) => config.max_batch = v[idx],
            Knob::BatchWindowMs(v) => config.batch_window_ms = v[idx],
            Knob::QueueDepth(v) => config.queue_depth = v[idx],
            Knob::Variant(v) => config.variant = v[idx],
            Knob::Instances(v) => config.instances = v[idx],
            Knob::Placement(v) => config.placement = v[idx],
            Knob::ParkHysteresis(v) => config.park_hysteresis = v[idx],
        }
    }

    /// The index of the session-default value in the candidate list, or
    /// `None` if the list omits it (validate rejects that for built-in
    /// spaces: the baseline must be representable).
    pub fn default_index(&self) -> Option<usize> {
        let d = TunedConfig::default();
        match self {
            Knob::Backend(v) => v.iter().position(|&x| x == d.backend),
            Knob::Threads(v) => v.iter().position(|&x| x == d.threads),
            Knob::Kernel(v) => v.iter().position(|&x| x == d.kernel),
            Knob::WeightCache(v) => v.iter().position(|&x| x == d.weight_cache),
            Knob::BatchWorkers(v) => v.iter().position(|&x| x == d.batch_workers),
            Knob::MaxBatch(v) => v.iter().position(|&x| x == d.max_batch),
            Knob::BatchWindowMs(v) => v.iter().position(|&x| x == d.batch_window_ms),
            Knob::QueueDepth(v) => v.iter().position(|&x| x == d.queue_depth),
            Knob::Variant(v) => v.iter().position(|&x| x == d.variant),
            Knob::Instances(v) => v.iter().position(|&x| x == d.instances),
            Knob::Placement(v) => v.iter().position(|&x| x == d.placement),
            Knob::ParkHysteresis(v) => v.iter().position(|&x| x == d.park_hysteresis),
        }
    }
}

/// One position in a [`SearchSpace`]: a candidate index per knob.
pub type Point = Vec<usize>;

/// The named built-in spaces the CLI exposes (`--space`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// Host-side knobs: backend, threads, kernel, caches, batch shaping.
    Software,
    /// Hardware-side knobs: variant, instances, placement, park
    /// hysteresis — the automated Fig. 6/7/8 exploration.
    Hls,
    /// Both of the above in one space.
    Full,
}

impl SpaceKind {
    /// All kinds, in documentation order.
    pub const ALL: [SpaceKind; 3] = [SpaceKind::Software, SpaceKind::Hls, SpaceKind::Full];

    /// The CLI/serialization name.
    pub fn name(self) -> &'static str {
        match self {
            SpaceKind::Software => "software",
            SpaceKind::Hls => "hls",
            SpaceKind::Full => "full",
        }
    }
}

impl std::str::FromStr for SpaceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<SpaceKind, String> {
        match s {
            "software" => Ok(SpaceKind::Software),
            "hls" => Ok(SpaceKind::Hls),
            "full" => Ok(SpaceKind::Full),
            other => Err(format!("unknown space '{other}' (use software | hls | full)")),
        }
    }
}

impl std::fmt::Display for SpaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered set of [`Knob`]s the searchers move through.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    name: String,
    knobs: Vec<Knob>,
}

impl SearchSpace {
    /// A custom space from explicit knobs (tests and ablations; the CLI
    /// uses the named constructors).
    ///
    /// # Errors
    /// `config.invalid` when a knob has no candidates, omits the session
    /// default, or appears twice.
    pub fn new(name: impl Into<String>, knobs: Vec<Knob>) -> Result<SearchSpace, crate::Error> {
        let space = SearchSpace { name: name.into(), knobs };
        space.validate()?;
        Ok(space)
    }

    fn validate(&self) -> Result<(), crate::Error> {
        for (i, knob) in self.knobs.iter().enumerate() {
            if knob.is_empty() {
                return Err(crate::Error::InvalidConfig(format!(
                    "search space '{}': knob '{}' has no candidates",
                    self.name,
                    knob.name()
                )));
            }
            if knob.default_index().is_none() {
                return Err(crate::Error::InvalidConfig(format!(
                    "search space '{}': knob '{}' omits the session default \
                     (the baseline must be representable)",
                    self.name,
                    knob.name()
                )));
            }
            if self.knobs[..i].iter().any(|k| k.name() == knob.name()) {
                return Err(crate::Error::InvalidConfig(format!(
                    "search space '{}': duplicate knob '{}'",
                    self.name,
                    knob.name()
                )));
            }
        }
        Ok(())
    }

    /// The software space: every host-side knob of the session. The
    /// candidate lists bracket the defaults with the values the PR-4/6/7
    /// benchmarks showed matter.
    pub fn software() -> SearchSpace {
        SearchSpace {
            name: SpaceKind::Software.name().to_string(),
            knobs: vec![
                Knob::Backend(vec![BackendKind::Model, BackendKind::Cpu]),
                Knob::Threads(vec![1, 2, 4]),
                Knob::Kernel(vec![None, Some(KernelTier::Scalar)]),
                Knob::WeightCache(vec![true, false]),
                Knob::BatchWorkers(vec![0, 1, 2, 4]),
                Knob::MaxBatch(vec![1, 4, 8, 16]),
                Knob::BatchWindowMs(vec![0, 1, 2, 5]),
                Knob::QueueDepth(vec![64, 256]),
            ],
        }
    }

    /// The hardware space: the paper's four variants crossed with the
    /// scale-out ladder and placements — automated Fig. 6/7/8-style
    /// exploration. Park hysteresis rides along: it never changes
    /// simulated cycles (a flat dimension under the `cycles` objective),
    /// but it is a real knob for simulator wall time.
    pub fn hls() -> SearchSpace {
        SearchSpace {
            name: SpaceKind::Hls.name().to_string(),
            knobs: vec![
                Knob::Variant(Variant::all().to_vec()),
                Knob::Instances(vec![1, 2, 4]),
                Knob::Placement(vec![
                    Placement::Auto,
                    Placement::Stripe,
                    Placement::Image,
                    Placement::Pipeline,
                ]),
                Knob::ParkHysteresis(vec![None, Some(1), Some(4), Some(16)]),
            ],
        }
    }

    /// The union of [`SearchSpace::software`] and [`SearchSpace::hls`].
    pub fn full() -> SearchSpace {
        let mut knobs = SearchSpace::software().knobs;
        knobs.extend(SearchSpace::hls().knobs);
        SearchSpace { name: SpaceKind::Full.name().to_string(), knobs }
    }

    /// The built-in space for a [`SpaceKind`].
    pub fn named(kind: SpaceKind) -> SearchSpace {
        match kind {
            SpaceKind::Software => SearchSpace::software(),
            SpaceKind::Hls => SearchSpace::hls(),
            SpaceKind::Full => SearchSpace::full(),
        }
    }

    /// The space's name (embedded in artifact provenance).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The knobs, in search order.
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// The point denoting the out-of-the-box session.
    pub fn default_point(&self) -> Point {
        self.knobs
            .iter()
            .map(|k| k.default_index().expect("validated: every knob holds the default"))
            .collect()
    }

    /// The [`TunedConfig`] a point denotes. Knobs outside this space keep
    /// their [`TunedConfig::default`] values.
    ///
    /// # Panics
    /// When the point's length or an index is out of range (searchers
    /// only construct in-range points).
    pub fn config_at(&self, point: &Point) -> TunedConfig {
        assert_eq!(point.len(), self.knobs.len(), "point arity matches the space");
        let mut config = TunedConfig::default();
        for (knob, &idx) in self.knobs.iter().zip(point) {
            knob.apply(idx, &mut config);
        }
        config
    }

    /// Total number of distinct points (the product of candidate counts).
    pub fn cardinality(&self) -> u128 {
        self.knobs.iter().map(|k| k.len() as u128).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_spaces_validate_and_hold_the_default() {
        for kind in SpaceKind::ALL {
            let space = SearchSpace::named(kind);
            space.validate().expect("built-in space is valid");
            assert_eq!(space.name(), kind.name());
            let config = space.config_at(&space.default_point());
            assert_eq!(config, TunedConfig::default(), "{kind}: default point is the baseline");
            assert!(space.cardinality() > 1);
        }
    }

    #[test]
    fn full_space_is_the_union() {
        let full = SearchSpace::full();
        let expected: Vec<&str> = SearchSpace::software()
            .knobs()
            .iter()
            .chain(SearchSpace::hls().knobs())
            .map(|k| k.name())
            .collect();
        let got: Vec<&str> = full.knobs().iter().map(|k| k.name()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn config_at_moves_exactly_the_indexed_knobs() {
        let space = SearchSpace::hls();
        let mut point = space.default_point();
        point[0] = 0; // 16-unopt
        point[2] = 3; // pipeline
        let config = space.config_at(&point);
        assert_eq!(config.variant, Variant::U16Unopt);
        assert_eq!(config.placement, Placement::Pipeline);
        assert_eq!(config.instances, 1, "untouched knob keeps the default");
        assert_eq!(config.backend, TunedConfig::default().backend, "out-of-space knob untouched");
    }

    #[test]
    fn custom_space_rejects_degenerate_knobs() {
        let err = SearchSpace::new("empty", vec![Knob::Threads(vec![])]).unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        let err = SearchSpace::new("no-default", vec![Knob::Threads(vec![2, 4])]).unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        assert!(err.to_string().contains("session default"));
        let err = SearchSpace::new(
            "dup",
            vec![Knob::Threads(vec![1, 2]), Knob::Threads(vec![1, 4])],
        )
        .unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        assert!(err.to_string().contains("duplicate"));
    }
}
