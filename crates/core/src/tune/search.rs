//! The seeded-deterministic searchers: coordinate descent and SPSA.
//!
//! Both walk a [`SearchSpace`] by per-knob candidate *index*, draw every
//! random choice from one [`SplitMix64`] stream seeded by the caller,
//! and spend a budget counted in **fresh** evaluations — points answered
//! by the evaluator's fingerprint cache are free. Same seed, same space,
//! same budget → the same sequence of evaluations and the same best
//! point, bit for bit; `tests/tune.rs` pins that with a property test.
//!
//! Coordinate descent is exhaustive per dimension: starting from the
//! default point it sweeps every candidate of one knob while holding the
//! others, keeps the argmin, and repeats over seeded-shuffled knob
//! orders until a full sweep improves nothing. Because the first sweep
//! of the `variant` knob evaluates all four paper variants, a
//! coordinate-descent run over the `hls` space can never do worse than
//! the best hand-picked variant — the Fig. 6/7/8 guarantee.
//!
//! SPSA (simultaneous perturbation stochastic approximation) probes
//! `x + Δ` and `x - Δ` for a random sign vector Δ, steps each knob
//! opposite the estimated gradient sign, and accepts greedily. Two
//! evaluations per iteration regardless of dimensionality — the right
//! trade when the space is wide and the objective noisy (Grail tunes
//! its NNUE the same way).

use crate::rng::SplitMix64;
use crate::tune::objective::Evaluator;
use crate::tune::space::{Point, SearchSpace};

/// Which search algorithm to run (`--searcher`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Searcher {
    /// Exhaustive per-knob sweeps to a local optimum (default).
    CoordinateDescent,
    /// Two-point stochastic gradient estimation.
    Spsa,
}

impl Searcher {
    /// All searchers, in documentation order.
    pub const ALL: [Searcher; 2] = [Searcher::CoordinateDescent, Searcher::Spsa];

    /// The CLI/serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Searcher::CoordinateDescent => "cd",
            Searcher::Spsa => "spsa",
        }
    }
}

impl std::str::FromStr for Searcher {
    type Err = String;

    fn from_str(s: &str) -> Result<Searcher, String> {
        match s {
            "cd" => Ok(Searcher::CoordinateDescent),
            "spsa" => Ok(Searcher::Spsa),
            other => Err(format!("unknown searcher '{other}' (use cd | spsa)")),
        }
    }
}

impl std::fmt::Display for Searcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a search found.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best point visited.
    pub best_point: Point,
    /// Its score (lower is better).
    pub best_score: f64,
    /// The default point's score — the baseline every report compares
    /// against. Evaluated first, unconditionally (it is fresh eval #1
    /// and counts toward the budget; a zero budget still measures it).
    pub default_score: f64,
}

impl Searcher {
    /// Runs the search over `space`, spending at most `budget` fresh
    /// evaluations from `evaluator` (cache hits are free). Deterministic
    /// in (`seed`, space, budget) given a deterministic objective.
    pub fn run(
        self,
        space: &SearchSpace,
        evaluator: &mut Evaluator<'_>,
        seed: u64,
        budget: u64,
    ) -> SearchResult {
        match self {
            Searcher::CoordinateDescent => coordinate_descent(space, evaluator, seed, budget),
            Searcher::Spsa => spsa(space, evaluator, seed, budget),
        }
    }
}

/// Seeded Fisher–Yates over the knob indices.
fn shuffled_dims(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    order
}

fn coordinate_descent(
    space: &SearchSpace,
    evaluator: &mut Evaluator<'_>,
    seed: u64,
    budget: u64,
) -> SearchResult {
    let mut rng = SplitMix64::new(seed);
    let mut current = space.default_point();
    let default_score = evaluator.score(&space.config_at(&current));
    let mut best_score = default_score;
    loop {
        let mut improved = false;
        for dim in shuffled_dims(space.knobs().len(), &mut rng) {
            for idx in 0..space.knobs()[dim].len() {
                if idx == current[dim] {
                    continue;
                }
                if evaluator.fresh_evals() >= budget {
                    return SearchResult { best_point: current, best_score, default_score };
                }
                let mut cand = current.clone();
                cand[dim] = idx;
                let score = evaluator.score(&space.config_at(&cand));
                // Strict improvement only: ties keep the incumbent, so
                // flat dimensions (park hysteresis under `cycles`) stay
                // at their defaults and runs stay deterministic.
                if score < best_score {
                    best_score = score;
                    current = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            return SearchResult { best_point: current, best_score, default_score };
        }
    }
}

fn spsa(
    space: &SearchSpace,
    evaluator: &mut Evaluator<'_>,
    seed: u64,
    budget: u64,
) -> SearchResult {
    let mut rng = SplitMix64::new(seed);
    let dims = space.knobs().len();
    let clamp = |dim: usize, idx: i64| -> usize {
        idx.clamp(0, space.knobs()[dim].len() as i64 - 1) as usize
    };
    let mut current = space.default_point();
    let default_score = evaluator.score(&space.config_at(&current));
    let mut current_score = default_score;
    let mut best_point = current.clone();
    let mut best_score = default_score;
    // The cache makes revisited points free, so budget alone cannot
    // bound the loop once the walk starts cycling through known points;
    // the iteration cap does.
    let max_iters = budget.saturating_mul(4).max(16);
    for _ in 0..max_iters {
        if evaluator.fresh_evals() >= budget {
            break;
        }
        let delta: Vec<i64> = (0..dims).map(|_| rng.next_sign()).collect();
        let probe = |signs: i64, pt: &Point| -> Point {
            pt.iter()
                .enumerate()
                .map(|(d, &i)| clamp(d, i as i64 + signs * delta[d]))
                .collect()
        };
        let plus = probe(1, &current);
        let minus = probe(-1, &current);
        let sp = evaluator.score(&space.config_at(&plus));
        if sp < best_score {
            best_score = sp;
            best_point = plus.clone();
        }
        if evaluator.fresh_evals() >= budget {
            break;
        }
        let sm = evaluator.score(&space.config_at(&minus));
        if sm < best_score {
            best_score = sm;
            best_point = minus.clone();
        }
        // Step each knob one index opposite the estimated gradient sign.
        // Infinite probes (invalid corners) carry no usable gradient.
        let diff = sp - sm;
        let mut cand: Point = if diff.is_finite() && diff != 0.0 {
            current
                .iter()
                .enumerate()
                .map(|(d, &i)| {
                    let g_sign = if diff > 0.0 { delta[d] } else { -delta[d] };
                    clamp(d, i as i64 - g_sign)
                })
                .collect()
        } else {
            current.clone()
        };
        if cand == current {
            // Flat (or unusable) estimate: kick one random knob so the
            // walk keeps exploring instead of stalling.
            let dim = rng.next_below(dims as u64) as usize;
            cand[dim] = rng.next_below(space.knobs()[dim].len() as u64) as usize;
        }
        if evaluator.fresh_evals() >= budget {
            break;
        }
        let sc = evaluator.score(&space.config_at(&cand));
        if sc < best_score {
            best_score = sc;
            best_point = cand.clone();
        }
        if sc < current_score {
            current_score = sc;
            current = cand;
        }
    }
    SearchResult { best_point, best_score, default_score }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::tests::tiny_qnet;
    use crate::tune::Objective;
    use zskip_nn::eval::synthetic_inputs;

    #[test]
    fn searcher_names_round_trip() {
        for s in Searcher::ALL {
            assert_eq!(s.name().parse::<Searcher>(), Ok(s));
        }
        assert!("greedy".parse::<Searcher>().is_err());
    }

    #[test]
    fn shuffle_is_seeded_and_a_permutation() {
        let mut a = SplitMix64::new(3);
        let mut b = SplitMix64::new(3);
        let pa = shuffled_dims(8, &mut a);
        let pb = shuffled_dims(8, &mut b);
        assert_eq!(pa, pb);
        let mut sorted = pa.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        let mut c = SplitMix64::new(4);
        // Different seeds give a different order for 8 elements almost
        // surely; this seed pair does (pinned by determinism).
        assert_ne!(shuffled_dims(8, &mut c), pa);
    }

    #[test]
    fn cd_over_hls_space_beats_every_hand_picked_variant() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let space = SearchSpace::hls();
        let mut evaluator = Evaluator::new(Objective::Cycles, &qnet, &inputs);
        let result =
            Searcher::CoordinateDescent.run(&space, &mut evaluator, 1, 64);
        // The variant sweep covers all four paper variants, so the best
        // found can never be worse than the best of the four.
        for variant in zskip_hls::Variant::all() {
            let hand = crate::tune::TunedConfig {
                variant,
                ..crate::tune::TunedConfig::default()
            };
            let hand_score = evaluator.score(&hand);
            assert!(
                result.best_score <= hand_score,
                "{}: tuned {} > hand-picked {}",
                variant,
                result.best_score,
                hand_score
            );
        }
        assert!(result.best_score <= result.default_score);
    }

    #[test]
    fn both_searchers_are_seed_deterministic() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let space = SearchSpace::hls();
        for searcher in Searcher::ALL {
            let mut e1 = Evaluator::new(Objective::Cycles, &qnet, &inputs);
            let mut e2 = Evaluator::new(Objective::Cycles, &qnet, &inputs);
            let r1 = searcher.run(&space, &mut e1, 42, 24);
            let r2 = searcher.run(&space, &mut e2, 42, 24);
            assert_eq!(r1, r2, "{searcher}");
            assert_eq!(e1.fresh_evals(), e2.fresh_evals(), "{searcher}");
        }
    }

    #[test]
    fn budget_caps_fresh_evaluations() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let space = SearchSpace::hls();
        for searcher in Searcher::ALL {
            let mut evaluator = Evaluator::new(Objective::Cycles, &qnet, &inputs);
            let _ = searcher.run(&space, &mut evaluator, 7, 5);
            assert!(evaluator.fresh_evals() <= 5, "{searcher}: {}", evaluator.fresh_evals());
        }
    }
}
