//! The versioned `TunedConfig` artifact: every tunable knob of a
//! [`Session`](crate::session::Session) plus the provenance of how the
//! tuner found it, serialized through `zskip-json`.
//!
//! The artifact is the tuner's output contract: `zskip tune` writes one,
//! [`SessionBuilder::from_tuned`](crate::session::SessionBuilder::from_tuned)
//! and the CLI's `--config <file>` flag load it, and
//! `zskip analyze --config` explains it. Serialization is canonical —
//! field order is fixed, floats render through the shared `zskip-json`
//! writer — so the determinism contract ("same seed + space + budget →
//! byte-identical artifact") holds at the byte level, not just
//! structurally.

use std::fs;
use std::path::Path;

use crate::error::Error;
use crate::exec::sched::Placement;
use crate::exec::BackendKind;
use crate::session::{
    SessionBuilder, DEFAULT_BATCH_WINDOW_MS, DEFAULT_MAX_BATCH, DEFAULT_QUEUE_DEPTH,
};
use zskip_hls::Variant;
use zskip_json::{Json, ToJson};
use zskip_nn::simd::KernelTier;

/// Current artifact schema version. Loaders reject other versions with
/// `config.invalid` rather than guessing at field semantics.
pub const ARTIFACT_VERSION: u64 = 1;

/// How a [`TunedConfig`] came to be: the search that produced it and the
/// score it measured. Scores from wall-clock objectives (latency,
/// throughput, p99) are measurements of the tuning host; the `cycles`
/// objective's score is simulated time and fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Seed the searcher ran with.
    pub seed: u64,
    /// Fresh-evaluation budget the search was given.
    pub budget: u64,
    /// Objective name (see [`Objective::name`](crate::tune::Objective::name)).
    pub objective: String,
    /// Search-space name (`software` | `hls` | `full`).
    pub space: String,
    /// Searcher name (`cd` | `spsa`).
    pub searcher: String,
    /// Best score found (lower is better; units depend on the objective).
    pub score: f64,
    /// Fresh evaluations actually spent.
    pub evals: u64,
    /// Evaluations answered by the fingerprint cache.
    pub cache_hits: u64,
}

impl ToJson for Provenance {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("budget", self.budget.to_json()),
            ("objective", self.objective.to_json()),
            ("space", self.space.to_json()),
            ("searcher", self.searcher.to_json()),
            ("score", self.score.to_json()),
            ("evals", self.evals.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
        ])
    }
}

/// The complete tunable configuration of a session: hardware side
/// (variant, instances, placement, park hysteresis) and software side
/// (backend, threads, kernel tier, caches, batch shaping). This is the
/// search point the tuner moves through and the artifact it emits.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedConfig {
    /// HLS variant supplying the datapath geometry and clock.
    pub variant: Variant,
    /// Simulated accelerator instances (scale-out ladder).
    pub instances: usize,
    /// Execution backend.
    pub backend: BackendKind,
    /// Intra-image conv worker threads (cpu backend).
    pub threads: usize,
    /// Pinned SIMD kernel tier; `None` = process-wide dispatch.
    pub kernel: Option<KernelTier>,
    /// Process-wide packed-weight cache on/off.
    pub weight_cache: bool,
    /// Event-scheduler park hysteresis (cycle backend); `None` = engine
    /// default. Simulated cycles are bit-identical for every value.
    pub park_hysteresis: Option<u32>,
    /// Multi-instance placement.
    pub placement: Placement,
    /// Batch-pool worker threads (0 = host auto).
    pub batch_workers: usize,
    /// Request-coalescing cutoff.
    pub max_batch: usize,
    /// Adaptive batch window in milliseconds.
    pub batch_window_ms: u64,
    /// Admission-control queue depth.
    pub queue_depth: usize,
    /// How the search found this point; `None` for hand-written configs.
    pub provenance: Option<Provenance>,
}

impl Default for TunedConfig {
    /// The out-of-the-box session: the paper's 256-opt variant with the
    /// [`SessionBuilder`] defaults — exactly what `Session::builder
    /// (AccelConfig::for_variant(U256Opt)).build()` gives you. Tuned
    /// scores are compared against this baseline.
    fn default() -> TunedConfig {
        TunedConfig {
            variant: Variant::U256Opt,
            instances: 1,
            backend: BackendKind::Model,
            threads: 1,
            kernel: None,
            weight_cache: true,
            park_hysteresis: None,
            placement: Placement::Auto,
            batch_workers: 0,
            max_batch: DEFAULT_MAX_BATCH,
            batch_window_ms: DEFAULT_BATCH_WINDOW_MS,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            provenance: None,
        }
    }
}

/// Looks up a variant by its serialized label (`Variant::label`).
fn variant_from_label(label: &str) -> Option<Variant> {
    Variant::all().into_iter().find(|v| v.label() == label)
}

fn invalid(reason: impl Into<String>) -> Error {
    Error::InvalidConfig(reason.into())
}

impl ToJson for TunedConfig {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version", ARTIFACT_VERSION.to_json()),
            ("variant", self.variant.label().to_json()),
            ("instances", self.instances.to_json()),
            ("backend", self.backend.name().to_json()),
            ("threads", self.threads.to_json()),
            (
                "kernel",
                match self.kernel {
                    Some(t) => t.name().to_json(),
                    None => Json::Null,
                },
            ),
            ("weight_cache", self.weight_cache.to_json()),
            (
                "park_hysteresis",
                match self.park_hysteresis {
                    Some(t) => (t as u64).to_json(),
                    None => Json::Null,
                },
            ),
            ("placement", self.placement.name().to_json()),
            ("batch_workers", self.batch_workers.to_json()),
            ("max_batch", self.max_batch.to_json()),
            ("batch_window_ms", self.batch_window_ms.to_json()),
            ("queue_depth", self.queue_depth.to_json()),
        ];
        if let Some(p) = &self.provenance {
            fields.push(("provenance", p.to_json()));
        }
        Json::obj(fields)
    }
}

impl TunedConfig {
    /// Parses an artifact from its JSON text.
    ///
    /// # Errors
    /// `config.invalid` on malformed JSON, a version mismatch, a missing
    /// or mistyped field, or an unknown enum name.
    pub fn from_json_str(text: &str) -> Result<TunedConfig, Error> {
        let json = Json::parse(text).map_err(|e| invalid(format!("tuned config: {e}")))?;
        TunedConfig::from_json(&json)
    }

    /// Parses an artifact from a parsed [`Json`] value.
    ///
    /// # Errors
    /// See [`TunedConfig::from_json_str`].
    pub fn from_json(json: &Json) -> Result<TunedConfig, Error> {
        let field = |name: &str| -> Result<&Json, Error> {
            json.get(name).ok_or_else(|| invalid(format!("tuned config: missing field '{name}'")))
        };
        let u64_field = |name: &str| -> Result<u64, Error> {
            field(name)?
                .as_u64()
                .ok_or_else(|| invalid(format!("tuned config: field '{name}' must be an integer")))
        };
        let str_field = |name: &str| -> Result<&str, Error> {
            field(name)?
                .as_str()
                .ok_or_else(|| invalid(format!("tuned config: field '{name}' must be a string")))
        };
        let version = u64_field("version")?;
        if version != ARTIFACT_VERSION {
            return Err(invalid(format!(
                "tuned config: version {version} not supported (this build reads version {ARTIFACT_VERSION})"
            )));
        }
        let variant_label = str_field("variant")?;
        let variant = variant_from_label(variant_label)
            .ok_or_else(|| invalid(format!("tuned config: unknown variant '{variant_label}'")))?;
        let backend: BackendKind =
            str_field("backend")?.parse().map_err(|e| invalid(format!("tuned config: {e}")))?;
        let kernel = match field("kernel")? {
            Json::Null => None,
            j => {
                let name = j.as_str().ok_or_else(|| {
                    invalid("tuned config: field 'kernel' must be a string or null")
                })?;
                Some(
                    KernelTier::parse(name)
                        .ok_or_else(|| invalid(format!("tuned config: unknown kernel '{name}'")))?,
                )
            }
        };
        let park_hysteresis = match field("park_hysteresis")? {
            Json::Null => None,
            j => {
                let ticks = j.as_u64().ok_or_else(|| {
                    invalid("tuned config: field 'park_hysteresis' must be an integer or null")
                })?;
                Some(u32::try_from(ticks).map_err(|_| {
                    invalid(format!("tuned config: park_hysteresis {ticks} out of range"))
                })?)
            }
        };
        let placement: Placement =
            str_field("placement")?.parse().map_err(|e| invalid(format!("tuned config: {e}")))?;
        let weight_cache = field("weight_cache")?
            .as_bool()
            .ok_or_else(|| invalid("tuned config: field 'weight_cache' must be a boolean"))?;
        let provenance = match json.get("provenance") {
            None => None,
            Some(p) => {
                let pfield = |name: &str| -> Result<&Json, Error> {
                    p.get(name).ok_or_else(|| {
                        invalid(format!("tuned config: provenance missing field '{name}'"))
                    })
                };
                Some(Provenance {
                    seed: pfield("seed")?
                        .as_u64()
                        .ok_or_else(|| invalid("tuned config: provenance seed must be an integer"))?,
                    budget: pfield("budget")?
                        .as_u64()
                        .ok_or_else(|| invalid("tuned config: provenance budget must be an integer"))?,
                    objective: pfield("objective")?
                        .as_str()
                        .ok_or_else(|| invalid("tuned config: provenance objective must be a string"))?
                        .to_string(),
                    space: pfield("space")?
                        .as_str()
                        .ok_or_else(|| invalid("tuned config: provenance space must be a string"))?
                        .to_string(),
                    searcher: pfield("searcher")?
                        .as_str()
                        .ok_or_else(|| invalid("tuned config: provenance searcher must be a string"))?
                        .to_string(),
                    score: pfield("score")?
                        .as_f64()
                        .ok_or_else(|| invalid("tuned config: provenance score must be a number"))?,
                    evals: pfield("evals")?
                        .as_u64()
                        .ok_or_else(|| invalid("tuned config: provenance evals must be an integer"))?,
                    cache_hits: pfield("cache_hits")?.as_u64().ok_or_else(|| {
                        invalid("tuned config: provenance cache_hits must be an integer")
                    })?,
                })
            }
        };
        Ok(TunedConfig {
            variant,
            instances: u64_field("instances")? as usize,
            backend,
            threads: u64_field("threads")? as usize,
            kernel,
            weight_cache,
            park_hysteresis,
            placement,
            batch_workers: u64_field("batch_workers")? as usize,
            max_batch: u64_field("max_batch")? as usize,
            batch_window_ms: u64_field("batch_window_ms")?,
            queue_depth: u64_field("queue_depth")? as usize,
            provenance,
        })
    }

    /// The canonical serialized artifact text (what `save` writes).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    /// `config.invalid` wrapping the I/O failure (the unified error has
    /// no I/O arm; a config that cannot be persisted is unusable).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let path = path.as_ref();
        fs::write(path, self.to_json_string())
            .map_err(|e| invalid(format!("cannot write tuned config {}: {e}", path.display())))
    }

    /// Reads an artifact from `path`.
    ///
    /// # Errors
    /// `config.invalid` on I/O failure or any parse failure
    /// (see [`TunedConfig::from_json_str`]).
    pub fn load(path: impl AsRef<Path>) -> Result<TunedConfig, Error> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)
            .map_err(|e| invalid(format!("cannot read tuned config {}: {e}", path.display())))?;
        TunedConfig::from_json_str(&text)
    }

    /// The evaluation-cache key: the canonical serialization of every
    /// knob, excluding provenance (two searches reaching the same point
    /// must share a cache entry even though their provenance differs).
    pub fn fingerprint(&self) -> String {
        let mut bare = self.clone();
        bare.provenance = None;
        bare.to_json_string()
    }

    /// A [`SessionBuilder`] configured with every knob of this artifact,
    /// starting from
    /// [`AccelConfig::for_variant_instances`](crate::config::AccelConfig::for_variant_instances)
    /// of the variant/instances pair. Call `.build()` — which validates —
    /// or layer further overrides first (the CLI's explicit flags do).
    pub fn session(&self) -> SessionBuilder {
        let config = crate::config::AccelConfig::for_variant_instances(self.variant, self.instances);
        let mut b = SessionBuilder::new(config)
            .backend(self.backend)
            .threads(self.threads)
            .weight_cache(self.weight_cache)
            .placement(self.placement)
            .batch_workers(self.batch_workers)
            .max_batch(self.max_batch)
            .batch_window(std::time::Duration::from_millis(self.batch_window_ms))
            .queue_depth(self.queue_depth);
        if let Some(tier) = self.kernel {
            b = b.kernel(tier);
        }
        if let Some(ticks) = self.park_hysteresis {
            b = b.park_hysteresis(ticks);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_byte_identically() {
        let config = TunedConfig::default();
        let text = config.to_json_string();
        let back = TunedConfig::from_json_str(&text).expect("parses");
        assert_eq!(back, config);
        assert_eq!(back.to_json_string(), text, "canonical form is a fixed point");
    }

    #[test]
    fn provenance_round_trips() {
        let config = TunedConfig {
            provenance: Some(Provenance {
                seed: 7,
                budget: 64,
                objective: "cycles".into(),
                space: "hls".into(),
                searcher: "cd".into(),
                score: 0.001953125, // dyadic: exact in f64 and in decimal
                evals: 40,
                cache_hits: 24,
            }),
            ..TunedConfig::default()
        };
        let back = TunedConfig::from_json_str(&config.to_json_string()).expect("parses");
        assert_eq!(back, config);
    }

    #[test]
    fn fingerprint_ignores_provenance() {
        let mut a = TunedConfig::default();
        let b = TunedConfig {
            provenance: Some(Provenance {
                seed: 1,
                budget: 2,
                objective: "latency".into(),
                space: "software".into(),
                searcher: "spsa".into(),
                score: 3.0,
                evals: 4,
                cache_hits: 5,
            }),
            ..TunedConfig::default()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.threads = 4;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn rejects_malformed_artifacts() {
        for (text, why) in [
            ("not json", "parse failure"),
            (r#"{"version":99}"#, "future version"),
            (r#"{"version":1}"#, "missing fields"),
        ] {
            let err = TunedConfig::from_json_str(text).unwrap_err();
            assert_eq!(err.code(), "config.invalid", "{why}: {err}");
        }
        // An unknown enum name fails even with every field present.
        let mut text = TunedConfig::default().to_json_string();
        text = text.replace("\"256-opt\"", "\"999-opt\"");
        let err = TunedConfig::from_json_str(&text).unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        assert!(err.to_string().contains("999-opt"));
    }

    #[test]
    fn session_applies_every_knob() {
        let config = TunedConfig {
            variant: Variant::U256Opt,
            instances: 4,
            backend: BackendKind::Cpu,
            threads: 2,
            kernel: Some(KernelTier::Scalar),
            weight_cache: false,
            park_hysteresis: Some(3),
            placement: Placement::Pipeline,
            batch_workers: 2,
            max_batch: 5,
            batch_window_ms: 7,
            queue_depth: 11,
            provenance: None,
        };
        let session = config.session().build().expect("valid");
        let d = session.driver();
        assert_eq!(d.backend, BackendKind::Cpu);
        assert_eq!(d.threads, 2);
        assert_eq!(d.kernel_tier, KernelTier::Scalar);
        assert!(!d.weight_cache);
        assert_eq!(d.park_hysteresis, Some(3));
        assert_eq!(d.config.instances, 4);
        let b = session.batch_config();
        assert_eq!(b.placement, Placement::Pipeline);
        assert_eq!(b.workers, 2);
        assert_eq!(b.max_batch, 5);
        assert_eq!(b.batch_window, std::time::Duration::from_millis(7));
        assert_eq!(b.queue_depth, 11);
    }
}
