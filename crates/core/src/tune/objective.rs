//! Pluggable objectives and the cached evaluator the searchers call.
//!
//! Every objective scores a [`TunedConfig`] as **lower is better**, in
//! seconds, so searchers and reports never branch on direction:
//!
//! * [`Objective::Latency`] — wall-clock seconds for one image;
//! * [`Objective::Throughput`] — wall-clock seconds *per image* over a
//!   batch (the reciprocal of images/s);
//! * [`Objective::ServeP99`] — 99th-percentile request latency in
//!   seconds through the serving daemon under a request burst;
//! * [`Objective::Cycles`] — *simulated* seconds for one image
//!   (makespan cycles × the variant's cycle time), fully deterministic.
//!
//! The first three measure the tuning host and carry its noise; `cycles`
//! is the deterministic objective the byte-identical-artifact contract
//! is pinned on. It is evaluated through the transaction-level model in
//! stats-only mode, which is cycle-identical to the event-driven
//! simulation by the PR-5 differential property tests — a fact the
//! `tests/tune.rs` suite re-asserts — so scoring a point costs
//! milliseconds instead of minutes.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::driver::BackendKind;
use crate::tune::TunedConfig;
use zskip_nn::model::QuantizedNetwork;
use zskip_tensor::Tensor;

/// What the tuner optimizes. See the module docs for units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Single-image wall-clock latency.
    Latency,
    /// Batch throughput (scored as seconds per image).
    Throughput,
    /// Serving-daemon p99 request latency.
    ServeP99,
    /// Simulated single-image time on the modeled hardware
    /// (deterministic).
    Cycles,
}

impl Objective {
    /// All objectives, in documentation order.
    pub const ALL: [Objective; 4] =
        [Objective::Latency, Objective::Throughput, Objective::ServeP99, Objective::Cycles];

    /// The CLI/serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Latency => "latency",
            Objective::Throughput => "throughput",
            Objective::ServeP99 => "p99",
            Objective::Cycles => "cycles",
        }
    }

    /// Whether the score is a pure function of the config (no wall
    /// clock). Only deterministic objectives can honor the
    /// byte-identical-artifact contract including the provenance score.
    pub fn is_deterministic(self) -> bool {
        matches!(self, Objective::Cycles)
    }
}

impl std::str::FromStr for Objective {
    type Err = String;

    fn from_str(s: &str) -> Result<Objective, String> {
        match s {
            "latency" => Ok(Objective::Latency),
            "throughput" => Ok(Objective::Throughput),
            "p99" => Ok(Objective::ServeP99),
            "cycles" => Ok(Objective::Cycles),
            other => {
                Err(format!("unknown objective '{other}' (use latency | throughput | p99 | cycles)"))
            }
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The cached scoring oracle: owns the fingerprint → score map, so a
/// point revisited by any searcher (or by the coordinate-descent sweep
/// re-checking its incumbent) is free and does not burn budget.
///
/// A config that fails to build or run scores [`f64::INFINITY`]: the
/// searchers treat structural invalidity (a placement that cannot cover
/// the instance count, say) as "maximally bad", not fatal, so one bad
/// corner of a space never aborts a search.
pub struct Evaluator<'a> {
    objective: Objective,
    qnet: &'a QuantizedNetwork,
    inputs: &'a [Tensor<f32>],
    cache: HashMap<String, f64>,
    fresh_evals: u64,
    cache_hits: u64,
}

impl<'a> Evaluator<'a> {
    /// An evaluator scoring `objective` on `qnet` over `inputs`.
    /// Wall-clock objectives use every input (latency uses the first);
    /// `cycles` simulates the first input only — simulated time per image
    /// is input-independent on this accelerator (cycle counts are
    /// value-independent; only geometry matters).
    ///
    /// # Panics
    /// When `inputs` is empty — there is nothing to score.
    pub fn new(
        objective: Objective,
        qnet: &'a QuantizedNetwork,
        inputs: &'a [Tensor<f32>],
    ) -> Evaluator<'a> {
        assert!(!inputs.is_empty(), "evaluator needs at least one input");
        Evaluator {
            objective,
            qnet,
            inputs,
            cache: HashMap::new(),
            fresh_evals: 0,
            cache_hits: 0,
        }
    }

    /// The objective being scored.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Scores a config, consulting the fingerprint cache first. Returns
    /// [`f64::INFINITY`] for configs that fail to build or run.
    pub fn score(&mut self, config: &TunedConfig) -> f64 {
        let key = config.fingerprint();
        if let Some(&score) = self.cache.get(&key) {
            self.cache_hits += 1;
            return score;
        }
        self.fresh_evals += 1;
        let score = self.measure(config).unwrap_or(f64::INFINITY);
        self.cache.insert(key, score);
        score
    }

    /// Scores a config with no caching — the raw measurement
    /// (`tests/tune.rs` compares this against direct
    /// [`Session`](crate::session::Session) runs).
    ///
    /// # Errors
    /// Whatever building or running the session fails with;
    /// [`Evaluator::score`] maps these to infinity.
    pub fn measure(&self, config: &TunedConfig) -> Result<f64, crate::Error> {
        match self.objective {
            Objective::Cycles => self.measure_cycles(config),
            Objective::Latency => {
                let session = config.session().build()?;
                // One warmup run primes the packed-weight cache and the
                // scratch arena, then the best of two timed runs scores
                // the steady state (min is the noise-robust statistic
                // for a lower-bound-shaped distribution).
                let input = &self.inputs[0];
                session.infer(self.qnet, input)?;
                let mut best = f64::INFINITY;
                for _ in 0..2 {
                    let t = Instant::now();
                    session.infer(self.qnet, input)?;
                    best = best.min(t.elapsed().as_secs_f64());
                }
                Ok(best)
            }
            Objective::Throughput => {
                let session = config.session().build()?;
                session.run_batch(self.qnet, self.inputs)?; // warmup
                let t = Instant::now();
                session.run_batch(self.qnet, self.inputs)?;
                Ok(t.elapsed().as_secs_f64() / self.inputs.len() as f64)
            }
            Objective::ServeP99 => {
                let session = config.session().build()?;
                let engine =
                    crate::serve::ServeEngine::start(session, Arc::new(self.qnet.clone()));
                let handle = engine.handle();
                let (tx, rx) = mpsc::channel();
                let mut submitted = 0u64;
                for (i, input) in self.inputs.iter().enumerate() {
                    // A rejected submit (admission control under a tiny
                    // queue_depth candidate) is part of the config's
                    // behavior, not an evaluation failure; the p99 of
                    // what was admitted still scores it.
                    if handle.submit(format!("tune-{i}"), input.clone(), tx.clone()).is_ok() {
                        submitted += 1;
                    }
                }
                drop(tx);
                for _ in 0..submitted {
                    let reply = rx.recv().expect("serve loop answers every admitted request");
                    reply.result?;
                }
                handle.shutdown();
                let stats = engine.join();
                if stats.served == 0 {
                    return Ok(f64::INFINITY);
                }
                Ok(stats.p99_us() as f64 * 1e-6)
            }
        }
    }

    /// The deterministic hardware objective: simulated seconds for one
    /// image under the config's variant/instances/placement, via the
    /// transaction model in stats-only mode (cycle-identical to the
    /// event-driven simulation; see the module docs).
    fn measure_cycles(&self, config: &TunedConfig) -> Result<f64, crate::Error> {
        let session = config
            .session()
            .backend(BackendKind::Model)
            .functional(false)
            .build()?;
        let report = session.run_sharded(self.qnet, &self.inputs[..1])?;
        let seconds = report.makespan_cycles as f64 * session.driver().config.cycle_seconds();
        Ok(seconds)
    }

    /// Fresh (cache-missing) evaluations performed so far.
    pub fn fresh_evals(&self) -> u64 {
        self.fresh_evals
    }

    /// Evaluations answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }
}

impl std::fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("objective", &self.objective)
            .field("cached", &self.cache.len())
            .field("fresh_evals", &self.fresh_evals)
            .field("cache_hits", &self.cache_hits)
            .finish()
    }
}

/// A convenience used by reports: a [`Session`](crate::session::Session)
/// is not needed to know the deterministic score of the default config —
/// build one evaluator, score [`TunedConfig::default`].
pub fn default_score(
    objective: Objective,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
) -> f64 {
    Evaluator::new(objective, qnet, inputs).score(&TunedConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::tests::tiny_qnet;
    use zskip_nn::eval::synthetic_inputs;

    #[test]
    fn objective_names_round_trip() {
        for o in Objective::ALL {
            assert_eq!(o.name().parse::<Objective>(), Ok(o));
        }
        assert!("speed".parse::<Objective>().is_err());
        assert!(Objective::Cycles.is_deterministic());
        assert!(!Objective::Latency.is_deterministic());
    }

    #[test]
    fn cycles_score_is_deterministic_and_cached() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let mut eval = Evaluator::new(Objective::Cycles, &qnet, &inputs);
        let config = TunedConfig::default();
        let a = eval.score(&config);
        let b = eval.score(&config);
        assert_eq!(a, b);
        assert!(a.is_finite() && a > 0.0);
        assert_eq!(eval.fresh_evals(), 1, "second score hits the cache");
        assert_eq!(eval.cache_hits(), 1);
        // A second evaluator reproduces the score exactly.
        let mut eval2 = Evaluator::new(Objective::Cycles, &qnet, &inputs);
        assert_eq!(eval2.score(&config), a);
    }

    #[test]
    fn invalid_config_scores_infinity_not_error() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let mut eval = Evaluator::new(Objective::Cycles, &qnet, &inputs);
        let bad = TunedConfig { max_batch: 0, ..TunedConfig::default() };
        assert_eq!(eval.score(&bad), f64::INFINITY);
    }

    #[test]
    fn park_hysteresis_is_flat_under_cycles() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(1, 5, qnet.spec.input);
        let mut eval = Evaluator::new(Objective::Cycles, &qnet, &inputs);
        let a = eval.score(&TunedConfig::default());
        let b = eval.score(&TunedConfig { park_hysteresis: Some(1), ..TunedConfig::default() });
        assert_eq!(a, b, "hysteresis is a simulator-wall-time knob only");
    }
}
