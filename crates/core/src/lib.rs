//! The zero-weight-skipping CNN inference accelerator (paper Figs. 3-5).
//!
//! This crate is the paper's primary contribution, rebuilt as a simulated
//! microarchitecture:
//!
//! * [`config`] — runtime configuration tying an HLS variant (clock,
//!   MACs/cycle, bank capacity) to the simulated accelerator;
//! * [`isa`] — the instruction set the ARM host issues (convolution,
//!   padding, max-pooling) with a binary encoding;
//! * [`bank`] — the four dual-port on-FPGA SRAM banks (one tile word per
//!   port per cycle);
//! * [`layout`] — how tiled feature maps map onto banks (channel `c` lives
//!   in bank `c mod 4`, giving each data-staging unit private read access
//!   to its quarter of the IFMs);
//! * [`weights`] — packed zero-skip weight streams for an OFM group, in
//!   scratchpad byte format, with lockstep lane iteration;
//! * [`poolpad`] — the micro-op programs that drive the generic
//!   padding/max-pooling unit (any window, stride or pad amount);
//! * [`cycle`] — the **cycle-exact backend**: 20 streaming kernels
//!   (4 each of data-staging/control, convolution, accumulator, pool/pad,
//!   write-to-memory) plus a main controller, connected by FIFOs on the
//!   `zskip-sim` engine, synchronized by a Pthreads-style barrier;
//! * [`model`] — the **transaction-level backend**: closed-form cycle
//!   costs (validated cycle-for-cycle against [`cycle`] by property tests)
//!   with functional results from the `zskip-nn` golden reference, fast
//!   enough for full VGG-16 sweeps;
//! * [`exec`] — the execution-backend layer: the staged per-layer stripe
//!   pipeline (planning under bank capacity, weight packing, instruction
//!   generation, DMA orchestration, multi-instance scale-out), the
//!   `StripeBackend` trait the interchangeable targets — transaction
//!   model, cycle simulation, host SIMD — implement, and the
//!   [`exec::sched`] multi-instance placement scheduler (stripe-,
//!   image- and layer-pipelined sharding with an HLS-derived cost model);
//! * [`driver`] — the host-side driver: layer walking, geometry checks,
//!   backend dispatch, host FC/softmax fallback, reporting;
//! * [`session`] — the curated host-facing surface: a validated
//!   [`Session`] bundling one driver configuration with the shared batch
//!   knobs, which every CLI subcommand routes through;
//! * [`serve`] — the inference serving daemon: a bounded submission
//!   queue with adaptive batching over the batch engine, plus the
//!   newline-delimited JSON wire protocol (`zskip serve`);
//! * [`rng`] — the workspace-wide seeded [`SplitMix64`](rng::SplitMix64)
//!   generator, the one idiom behind every "seeded-deterministic"
//!   contract in the repo;
//! * [`tune`] — the design-space autotuner (`zskip tune`): typed search
//!   spaces over the session and HLS-variant knobs, seeded coordinate
//!   descent and SPSA searchers, cached evaluation, and the versioned
//!   [`TunedConfig`] artifact that
//!   [`SessionBuilder::from_tuned`](session::SessionBuilder::from_tuned)
//!   loads.

pub mod analysis;
pub mod bank;
pub mod batch;
pub mod config;
pub mod cycle;
pub mod driver;
pub mod error;
pub mod exec;
pub mod fault;
pub mod isa;
pub mod layout;
pub mod model;
pub mod poolpad;
pub mod report;
pub mod rng;
pub mod serve;
pub mod session;
pub mod tune;
pub mod weights;

pub use analysis::LayerPackingStats;
pub use bank::BankSet;
pub use batch::{
    run_batch, run_batch_resilient, BatchItemReport, BatchReport, ResilientBatchReport, RetryPolicy,
};
pub use config::AccelConfig;
pub use driver::{
    BackendKind, Driver, DriverBuilder, DriverError, InferenceReport, LayerReport, PassStats,
    SocHandle,
};
pub use exec::pipeline::weight_cache_stats;
pub use error::Error;
pub use exec::sched::{run_sharded, CostModel, Placement, ShardReport};
pub use exec::{PassCtx, StripeBackend};
pub use fault::{run_campaign, CampaignConfig, CampaignReport, TrialOutcome, TrialResult};
pub use isa::{ConvInstr, Instruction, PoolPadInstr, PoolPadOp};
pub use layout::FmLayout;
pub use serve::{
    RequestStats, ServeEngine, ServeError, ServeHandle, ServeReply, ServeStats,
};
pub use session::{BatchConfig, Session, SessionBuilder};
pub use tune::{
    Objective, Provenance, SearchSpace, Searcher, SpaceKind, TuneOutcome, TunedConfig, Tuner,
};
pub use weights::GroupWeights;
