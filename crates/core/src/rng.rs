//! The one seeded-determinism idiom for the whole workspace.
//!
//! Every component that needs reproducible pseudo-randomness — fault-plan
//! selection, synthetic test data, the [`tune`](crate::tune) searchers —
//! draws from the same [`SplitMix64`] generator, defined once in the
//! dependency-free `zskip-fault` crate and re-exported here so core
//! consumers don't need to know where it lives. Same seed, same stream,
//! on every host: the generator is pure integer arithmetic with no
//! platform-dependent behavior.
//!
//! ```
//! use zskip_core::rng::SplitMix64;
//! let mut a = SplitMix64::new(9);
//! let mut b = SplitMix64::new(9);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.next_below(10) < 10);
//! ```

pub use zskip_fault::{splitmix64, SplitMix64};
