//! Feature-map layout on the SRAM banks.
//!
//! Channel `c` of a feature map lives entirely in bank `c mod 4`. Each
//! data-staging unit `s` manages the IFM channels congruent to `s` and so
//! reads only its own bank — no port contention; each accumulator lane `o`
//! produces OFM channels congruent to `o`, so write-to-memory units also
//! get private write ports. Within a bank, a channel's tiles are row-major
//! (paper Fig. 2) and channels are stored consecutively.

use crate::config::AccelConfig;
use zskip_quant::Sm8;
use zskip_tensor::{Shape, TiledFeatureMap, TILE_DIM};

/// Where a (stripe of a) tiled feature map lives in the banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmLayout {
    /// Base word address within every bank.
    pub base: usize,
    /// Number of channels.
    pub channels: usize,
    /// Tiles per row.
    pub tiles_x: usize,
    /// Tile rows resident.
    pub tile_rows: usize,
}

impl FmLayout {
    /// Layout for a full (unstriped) feature map of the given shape.
    pub fn full(base: usize, shape: Shape) -> FmLayout {
        FmLayout {
            base,
            channels: shape.c,
            tiles_x: shape.w.div_ceil(TILE_DIM),
            tile_rows: shape.h.div_ceil(TILE_DIM),
        }
    }

    /// The bank holding channel `c`.
    #[inline]
    pub fn bank_of(c: usize) -> usize {
        c % AccelConfig::BANKS
    }

    /// Word address of tile `(c, ty, tx)`; `ty` is stripe-local.
    ///
    /// # Panics
    /// Debug-panics on out-of-range coordinates.
    #[inline]
    pub fn addr(&self, c: usize, ty: usize, tx: usize) -> usize {
        debug_assert!(c < self.channels && ty < self.tile_rows && tx < self.tiles_x,
            "tile ({c},{ty},{tx}) outside layout {self:?}");
        self.base + (c / AccelConfig::BANKS) * self.tile_rows * self.tiles_x + ty * self.tiles_x + tx
    }

    /// Words occupied per bank (worst bank: ceil(channels / banks) planes).
    pub fn words_per_bank(&self) -> usize {
        self.channels.div_ceil(AccelConfig::BANKS) * self.tile_rows * self.tiles_x
    }

    /// First word address past this layout in every bank.
    pub fn end(&self) -> usize {
        self.base + self.words_per_bank()
    }

    /// Loads a tiled feature map (or a band of its tile rows) into banks
    /// via host-side pokes. `row_range` selects the stripe (global tile
    /// rows); the layout's `tile_rows` must equal its length.
    ///
    /// # Panics
    /// Panics if geometry disagrees or the bank would overflow.
    pub fn store(
        &self,
        banks: &mut crate::bank::BankSet,
        fm: &TiledFeatureMap<Sm8>,
        row_range: std::ops::Range<usize>,
    ) {
        assert_eq!(self.channels, fm.channels(), "channel mismatch");
        assert_eq!(self.tiles_x, fm.tiles_x(), "tiles_x mismatch");
        assert_eq!(self.tile_rows, row_range.len(), "stripe height mismatch");
        assert!(row_range.end <= fm.tiles_y(), "stripe beyond feature map");
        assert!(self.end() <= banks.capacity(), "layout overflows bank capacity");
        for c in 0..self.channels {
            for (local, ty) in row_range.clone().enumerate() {
                for tx in 0..self.tiles_x {
                    banks.poke(Self::bank_of(c), self.addr(c, local, tx), *fm.tile(c, ty, tx));
                }
            }
        }
    }

    /// Reads a band of tile rows back from the banks into a tiled feature
    /// map at the given global row range.
    ///
    /// # Panics
    /// Panics if geometry disagrees.
    pub fn load(
        &self,
        banks: &crate::bank::BankSet,
        fm: &mut TiledFeatureMap<Sm8>,
        row_range: std::ops::Range<usize>,
    ) {
        self.load_channels(banks, fm, row_range, 0..self.channels);
    }

    /// Like [`FmLayout::load`] but restricted to a channel range — used
    /// when two accelerator instances each produced half the output
    /// channels of the same stripe.
    ///
    /// # Panics
    /// Panics if geometry disagrees or the channel range is out of bounds.
    pub fn load_channels(
        &self,
        banks: &crate::bank::BankSet,
        fm: &mut TiledFeatureMap<Sm8>,
        row_range: std::ops::Range<usize>,
        channels: std::ops::Range<usize>,
    ) {
        assert_eq!(self.channels, fm.channels(), "channel mismatch");
        assert_eq!(self.tiles_x, fm.tiles_x(), "tiles_x mismatch");
        assert_eq!(self.tile_rows, row_range.len(), "stripe height mismatch");
        assert!(channels.end <= self.channels, "channel range out of bounds");
        for c in channels {
            for (local, ty) in row_range.clone().enumerate() {
                for tx in 0..self.tiles_x {
                    *fm.tile_mut(c, ty, tx) = banks.peek(Self::bank_of(c), self.addr(c, local, tx));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::BankSet;
    use zskip_tensor::Tensor;

    fn fm(c: usize, h: usize, w: usize) -> TiledFeatureMap<Sm8> {
        let t = Tensor::from_fn(c, h, w, |c, y, x| Sm8::from_i32_saturating(((c * 31 + y * 7 + x) % 120) as i32 - 60));
        TiledFeatureMap::from_tensor(&t)
    }

    #[test]
    fn addresses_are_unique_within_a_bank() {
        let l = FmLayout::full(10, Shape::new(8, 16, 16));
        let mut seen = std::collections::HashSet::new();
        for c in 0..8 {
            for ty in 0..4 {
                for tx in 0..4 {
                    assert!(seen.insert((FmLayout::bank_of(c), l.addr(c, ty, tx))));
                }
            }
        }
        assert_eq!(seen.len(), 8 * 16);
    }

    #[test]
    fn channels_mod_banks_share_no_bank() {
        assert_eq!(FmLayout::bank_of(0), FmLayout::bank_of(4));
        assert_ne!(FmLayout::bank_of(1), FmLayout::bank_of(2));
    }

    #[test]
    fn store_load_round_trip_full_map() {
        let f = fm(6, 12, 8);
        let l = FmLayout::full(0, Shape::new(6, 12, 8));
        let mut banks = BankSet::with_geometry(4, 64);
        l.store(&mut banks, &f, 0..3);
        let mut g = TiledFeatureMap::zeros(Shape::new(6, 12, 8));
        l.load(&banks, &mut g, 0..3);
        assert_eq!(f, g);
    }

    #[test]
    fn store_load_round_trip_stripe() {
        let f = fm(4, 32, 8);
        let stripe = FmLayout { base: 5, channels: 4, tiles_x: 2, tile_rows: 3 };
        let mut banks = BankSet::with_geometry(4, 64);
        stripe.store(&mut banks, &f, 2..5);
        let mut g = TiledFeatureMap::zeros(Shape::new(4, 32, 8));
        stripe.load(&banks, &mut g, 2..5);
        for c in 0..4 {
            for ty in 2..5 {
                for tx in 0..2 {
                    assert_eq!(g.tile(c, ty, tx), f.tile(c, ty, tx));
                }
            }
        }
        // Rows outside the stripe stay zero.
        assert_eq!(*g.tile(0, 0, 0), zskip_tensor::Tile::zero());
    }

    #[test]
    fn words_per_bank_covers_worst_bank() {
        // 5 channels over 4 banks: bank 0 holds 2 planes.
        let l = FmLayout::full(0, Shape::new(5, 8, 8));
        assert_eq!(l.words_per_bank(), 2 * 2 * 2);
        assert_eq!(l.end(), 8);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn store_checks_capacity() {
        let f = fm(4, 64, 64);
        let l = FmLayout::full(0, Shape::new(4, 64, 64));
        let mut banks = BankSet::with_geometry(4, 16);
        l.store(&mut banks, &f, 0..16);
    }
}
