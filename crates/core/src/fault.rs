//! The built-in fault-injection campaign behind `zskip faults`.
//!
//! Injects one fault per trial — each at a different site of the stack —
//! and classifies how the system degrades. A robust stack never panics
//! and never hangs: every trial must end in one of
//!
//! * **identical** — the run absorbed the fault (e.g. a transient FIFO
//!   stall only delays the pipeline) and produced bit-identical output;
//! * **recovered** — the first attempt failed with a structured error,
//!   and a retry (the one-shot fault is consumed) produced bit-identical
//!   output;
//! * **structured-error** — the failure is permanent but was reported as
//!   a typed [`Error`] with a stable [`code`](Error::code), never a
//!   panic. Deadlocks additionally name the wedged FIFO.
//!
//! A trial whose fault never fires, or that completes with *wrong*
//! output and no error, is **vulnerable** — [`CampaignReport::survived`]
//! fails and the CLI exits non-zero.

use crate::batch::{run_batch_resilient, RetryPolicy};
use crate::config::AccelConfig;
use crate::driver::{BackendKind, Driver, DriverError};
use crate::error::Error;
use zskip_fault::{FaultKind, FaultPlan};
use zskip_hls::AccelArch;
use zskip_json::Json;
use zskip_nn::eval::synthetic_inputs;
use zskip_nn::layer::{conv3x3, maxpool2x2, NetworkSpec};
use zskip_nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip_quant::{DensityProfile, Sm8};
use zskip_sim::SimError;
use zskip_soc::csr::{status, AccelCsr, CsrFile, ACCEL_CSR_BASE, CSR_BLOCK_LEN};
use zskip_soc::{AvalonBus, HostCpu};
use zskip_tensor::{Shape, Tensor};

/// How one fault trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The run completed with bit-identical output despite the fault.
    Identical,
    /// The first attempt failed with a structured error; a retry
    /// completed with bit-identical output.
    Recovered,
    /// The failure is permanent but surfaced as a typed error.
    StructuredError,
    /// The fault never fired, or the run silently produced wrong output.
    Vulnerable,
}

impl TrialOutcome {
    /// Stable label for the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            TrialOutcome::Identical => "identical",
            TrialOutcome::Recovered => "recovered",
            TrialOutcome::StructuredError => "structured-error",
            TrialOutcome::Vulnerable => "VULNERABLE",
        }
    }
}

/// One row of the survivability matrix.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Injection site (see `zskip_fault` docs for the naming scheme).
    pub site: String,
    /// The fault injected there (its `Display` form).
    pub fault: String,
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Stable error code ([`Error::code`]) when an error was observed.
    pub code: Option<&'static str>,
    /// Human-readable account of what happened.
    pub detail: String,
    /// Whether the injected fault actually fired.
    pub fired: bool,
}

/// The survivability matrix of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One row per trial.
    pub trials: Vec<TrialResult>,
}

impl CampaignReport {
    /// `true` when every trial fired its fault and degraded gracefully.
    pub fn survived(&self) -> bool {
        self.trials.iter().all(|t| t.fired && t.outcome != TrialOutcome::Vulnerable)
    }

    /// Trial count per outcome: `(identical, recovered, errors, vulnerable)`.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        let count = |o| self.trials.iter().filter(|t| t.outcome == o).count();
        (
            count(TrialOutcome::Identical),
            count(TrialOutcome::Recovered),
            count(TrialOutcome::StructuredError),
            count(TrialOutcome::Vulnerable),
        )
    }

    /// The JSON survivability report `zskip faults --json` emits.
    pub fn to_json(&self) -> Json {
        let (identical, recovered, errors, vulnerable) = self.tally();
        Json::obj([
            ("survived", Json::Bool(self.survived())),
            ("trials", Json::Num(self.trials.len() as f64)),
            ("identical", Json::Num(identical as f64)),
            ("recovered", Json::Num(recovered as f64)),
            ("structured_errors", Json::Num(errors as f64)),
            ("vulnerable", Json::Num(vulnerable as f64)),
            (
                "matrix",
                Json::Arr(
                    self.trials
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("site", Json::Str(t.site.clone())),
                                ("fault", Json::Str(t.fault.clone())),
                                ("outcome", Json::Str(t.outcome.label().into())),
                                (
                                    "code",
                                    t.code.map(|c| Json::Str(c.into())).unwrap_or(Json::Null),
                                ),
                                ("fired", Json::Bool(t.fired)),
                                ("detail", Json::Str(t.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Campaign parameters. The defaults are the fast configuration
/// `scripts/verify.sh` runs; larger inputs only make the same faults fire
/// deeper into the run.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Input height/width of the synthetic network the trials run.
    pub hw: usize,
    /// Seed for synthetic weights and inputs.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { hw: 8, seed: 7 }
    }
}

fn campaign_net(cfg: &CampaignConfig) -> (QuantizedNetwork, Vec<Tensor<f32>>) {
    let spec = NetworkSpec {
        name: "fault-campaign".into(),
        input: Shape::new(3, cfg.hw, cfg.hw),
        layers: vec![conv3x3("c1", 3, 6), maxpool2x2("p1"), conv3x3("c2", 6, 4)],
    };
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: cfg.seed, density: DensityProfile::uniform(2, 0.5) },
    );
    let calib = synthetic_inputs(cfg.seed ^ 1, 2, spec.input);
    let qnet = net.quantize(&calib);
    let inputs = synthetic_inputs(cfg.seed ^ 2, 4, spec.input);
    (qnet, inputs)
}

fn accel_config() -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 }, 100.0)
}

/// Runs one inference trial: inject `kind` at `site`, run, retry once on
/// a transient error (the one-shot fault is consumed by then), and
/// compare against the fault-free output.
fn inference_trial(
    site: &str,
    at: u64,
    kind: FaultKind,
    backend: BackendKind,
    qnet: &QuantizedNetwork,
    input: &Tensor<f32>,
    clean: &[Sm8],
) -> TrialResult {
    let plan = FaultPlan::new().inject(site, at, kind).shared();
    let driver = match Driver::builder(accel_config()).backend(backend).fault_plan(plan.clone()).build() {
        Ok(d) => d,
        Err(e) => {
            return TrialResult {
                site: site.into(),
                fault: kind.to_string(),
                outcome: TrialOutcome::Vulnerable,
                code: None,
                detail: format!("driver construction failed: {e}"),
                fired: false,
            }
        }
    };
    let first = driver.run_network(qnet, input);
    let fired = !plan.lock().unwrap_or_else(|e| e.into_inner()).fired().is_empty();
    let (outcome, code, detail) = match first {
        Ok(report) if report.output == clean => {
            (TrialOutcome::Identical, None, "completed with bit-identical output".to_string())
        }
        Ok(_) => (
            TrialOutcome::Vulnerable,
            None,
            "completed with WRONG output and no error".to_string(),
        ),
        Err(e) => classify_failed_attempt(e, &driver, qnet, input, clean),
    };
    TrialResult { site: site.into(), fault: kind.to_string(), outcome, code, detail, fired }
}

/// A first attempt failed with `e`: retry (transient errors only) and
/// classify.
fn classify_failed_attempt(
    e: DriverError,
    driver: &Driver,
    qnet: &QuantizedNetwork,
    input: &Tensor<f32>,
    clean: &[Sm8],
) -> (TrialOutcome, Option<&'static str>, String) {
    let wedged = match &e {
        DriverError::Sim(s @ SimError::Deadlock { .. }) => {
            s.wedged().map(|w| format!("; wedged fifo: {}", w.name))
        }
        _ => None,
    };
    let code = Error::from(e.clone()).code();
    if !e.is_transient() {
        return (TrialOutcome::StructuredError, Some(code), format!("{e}{}", wedged.unwrap_or_default()));
    }
    match driver.run_network(qnet, input) {
        Ok(report) if report.output == clean => (
            TrialOutcome::Recovered,
            Some(code),
            format!("first attempt: {e}; retry completed bit-identical"),
        ),
        Ok(_) => (TrialOutcome::Vulnerable, Some(code), format!("retry after '{e}' produced WRONG output")),
        Err(e2) => (
            TrialOutcome::StructuredError,
            Some(Error::from(e2.clone()).code()),
            format!("{e}; retry also failed: {e2}{}", wedged.unwrap_or_default()),
        ),
    }
}

/// Runs one host-protocol trial on a bus + CSR + host system: launch,
/// device-side completion, quiesce-wait — with `kind` injected at `site`.
fn host_trial(site: &str, at: u64, kind: FaultKind) -> TrialResult {
    let plan = FaultPlan::new().inject(site, at, kind).shared();
    let mut bus = AvalonBus::new();
    bus.set_fault_plan(plan.clone());
    let mut csr = CsrFile::new();
    csr.set_fault_plan(plan.clone());
    let handle = bus.map("accel-csr", ACCEL_CSR_BASE, CSR_BLOCK_LEN, Box::new(csr));
    let mut host = HostCpu::new();
    host.set_fault_plan(plan.clone());

    let run = |host: &mut HostCpu, bus: &mut AvalonBus| -> Result<u32, Error> {
        host.launch(bus, 0x40, 4)?;
        // Device side: the accelerator consumes the doorbell and quiesces.
        bus.slave_mut(handle).mm_write(AccelCsr::Status as u32, status::DONE);
        Ok(host.wait_quiescent(bus, 64)?)
    };

    let first = run(&mut host, &mut bus);
    let fired = !plan.lock().unwrap_or_else(|e| e.into_inner()).fired().is_empty();
    let (outcome, code, detail) = match first {
        Ok(_) => (TrialOutcome::Identical, None, "protocol completed".to_string()),
        Err(e) => {
            let code = e.code();
            // A hung accelerator stays hung: re-polling cannot recover it.
            if code == "host.unresponsive" {
                (TrialOutcome::StructuredError, Some(code), e.to_string())
            } else {
                match run(&mut host, &mut bus) {
                    Ok(_) => (
                        TrialOutcome::Recovered,
                        Some(code),
                        format!("first attempt: {e}; retry completed"),
                    ),
                    Err(e2) => (
                        TrialOutcome::StructuredError,
                        Some(e2.code()),
                        format!("{e}; retry also failed: {e2}"),
                    ),
                }
            }
        }
    };
    TrialResult { site: site.into(), fault: kind.to_string(), outcome, code, detail, fired }
}

/// A resilient-batch trial: one poisoned item of a small batch must not
/// take the others down, and the survivors must match the fault-free run.
fn batch_trial(qnet: &QuantizedNetwork, inputs: &[Tensor<f32>], clean: &[Vec<Sm8>]) -> TrialResult {
    let site = "dma:xfer";
    let kind = FaultKind::DmaCorrupt { xor: 0x20 };
    let plan = FaultPlan::new().inject(site, 4, kind).shared();
    let driver = Driver::builder(accel_config())
        .fault_plan(plan.clone())
        .build()
        .expect("campaign config is valid");
    let report = run_batch_resilient(&driver, qnet, inputs, 2, RetryPolicy::default());
    let fired = !plan.lock().unwrap_or_else(|e| e.into_inner()).fired().is_empty();
    let ok = report.succeeded() == inputs.len()
        && report
            .items
            .iter()
            .zip(clean)
            .all(|(item, want)| item.result.as_ref().map(|r| &r.output == want).unwrap_or(false));
    let (outcome, detail) = if ok && report.retries() >= 1 {
        (
            TrialOutcome::Recovered,
            format!(
                "batch of {}: 1 item absorbed the fault, {} retry, all outputs bit-identical",
                inputs.len(),
                report.retries()
            ),
        )
    } else if ok {
        (TrialOutcome::Vulnerable, "fault did not perturb the batch".to_string())
    } else {
        (
            TrialOutcome::Vulnerable,
            format!("batch degraded: {} of {} succeeded", report.succeeded(), inputs.len()),
        )
    };
    TrialResult {
        site: format!("{site} (batch)"),
        fault: kind.to_string(),
        outcome,
        code: None,
        detail,
        fired,
    }
}

/// Runs the built-in fault matrix and returns the survivability report.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let (qnet, inputs) = campaign_net(cfg);
    let input = &inputs[0];
    let clean_driver = Driver::builder(accel_config())
        .backend(BackendKind::Model)
        .build()
        .expect("campaign config is valid");
    let clean = clean_driver.run_network(&qnet, input).expect("fault-free run succeeds").output;
    let clean_cycle = Driver::builder(accel_config())
        .backend(BackendKind::Cycle)
        .build()
        .expect("campaign config is valid")
        .run_network(&qnet, input)
        .expect("fault-free cycle run succeeds")
        .output;
    let clean_batch: Vec<Vec<Sm8>> = inputs
        .iter()
        .map(|i| clean_driver.run_network(&qnet, i).expect("fault-free run succeeds").output)
        .collect();

    let mut trials = Vec::new();
    // DMA faults on the model and cpu backends (the DMA path is
    // backend-agnostic, and cpu's functional output is bit-identical to
    // model's, so the same clean reference serves both).
    for backend in [BackendKind::Model, BackendKind::Cpu] {
        for kind in [FaultKind::DmaTruncate { tiles: 1 }, FaultKind::DmaCorrupt { xor: 0x40 }] {
            let mut trial = inference_trial("dma:xfer", 2, kind, backend, &qnet, input, &clean);
            if backend != BackendKind::Model {
                trial.site = format!("dma:xfer ({backend})");
            }
            trials.push(trial);
        }
    }
    // FIFO faults on the cycle backend. The `done` queue is load-bearing
    // in every pass, so a stall there always lands: a bounded stall only
    // delays the pipeline, an unbounded one wedges it.
    trials.push(inference_trial(
        "fifo:done:pop",
        10,
        FaultKind::FifoStall { cycles: 200 },
        BackendKind::Cycle,
        &qnet,
        input,
        &clean_cycle,
    ));
    trials.push(inference_trial(
        "fifo:done:pop",
        10,
        FaultKind::FifoStall { cycles: u64::MAX },
        BackendKind::Cycle,
        &qnet,
        input,
        &clean_cycle,
    ));
    // Host driver-protocol faults.
    trials.push(host_trial("avalon:write", 1, FaultKind::BusTimeout));
    trials.push(host_trial("avalon:read", 0, FaultKind::BusTimeout));
    trials.push(host_trial("csr:status", 0, FaultKind::CsrBitFlip { bit: 2 }));
    trials.push(host_trial("accel:quiesce", 0, FaultKind::Hang));
    // Batch-level degradation.
    trials.push(batch_trial(&qnet, &inputs, &clean_batch));

    CampaignReport { trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_survives_every_single_fault() {
        let report = run_campaign(&CampaignConfig::default());
        assert!(report.trials.len() >= 8);
        for t in &report.trials {
            assert!(t.fired, "fault at {} never fired", t.site);
            assert_ne!(t.outcome, TrialOutcome::Vulnerable, "{}: {}", t.site, t.detail);
        }
        assert!(report.survived());
        // At least five distinct sites are exercised.
        let sites: std::collections::BTreeSet<&str> =
            report.trials.iter().map(|t| t.site.as_str()).collect();
        assert!(sites.len() >= 5, "sites: {sites:?}");
        // The cpu backend is part of the matrix.
        assert!(sites.contains("dma:xfer (cpu)"), "sites: {sites:?}");
    }

    #[test]
    fn deadlock_trial_names_the_wedged_fifo() {
        let report = run_campaign(&CampaignConfig::default());
        let deadlock = report
            .trials
            .iter()
            .find(|t| t.code == Some("sim.deadlock"))
            .expect("the permanent FIFO stall must deadlock");
        // The injected stall is one-shot, so the retry recovers; the
        // first attempt's deadlock still names the wedged FIFO.
        assert_eq!(deadlock.outcome, TrialOutcome::Recovered);
        assert!(deadlock.detail.contains("wedged fifo: done"), "detail: {}", deadlock.detail);
    }

    #[test]
    fn json_report_round_trips_the_verdict() {
        let report = run_campaign(&CampaignConfig::default());
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("\"survived\": true"), "{json}");
        assert!(json.contains("\"site\": \"accel:quiesce\""));
        assert!(json.contains("\"code\": \"host.unresponsive\""));
    }
}
