//! Offline packing analysis: what zero-skipping will buy, before running.
//!
//! The packing procedure "only needs to be done once for a given CNN model
//! such as VGG-16" (paper §III-B). Since cycle costs depend only on weight
//! sparsity and geometry, the packed form predicts per-layer throughput
//! exactly — this module computes those predictions plus the structural
//! statistics (non-zero histograms, lockstep bubbles, scratchpad bytes)
//! that explain them. The `zskip analyze` CLI prints the result.

use crate::config::AccelConfig;
use crate::weights::GroupWeights;
use zskip_nn::conv::QuantConvWeights;

/// Packing statistics for one conv layer on a given accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPackingStats {
    /// Layer name.
    pub name: String,
    /// Weight density (fraction non-zero).
    pub density: f64,
    /// Histogram of per-weight-tile non-zero counts (index 0..=16).
    pub nnz_histogram: [u64; 17],
    /// Total packed scratchpad bytes across all groups.
    pub scratchpad_bytes: u64,
    /// Weight-application steps with lockstep lanes (sum over groups and
    /// IFMs of the per-IFM maximum lane nnz).
    pub lockstep_steps: u64,
    /// Idle lane-slots from nnz imbalance across concurrent filters.
    pub bubble_slots: u64,
    /// Steps if each lane could skip independently (the ideal the paper's
    /// filter-grouping future work approaches).
    pub ideal_steps: u64,
    /// Steps actually charged after the 4-cycle IFM quad-load floor.
    pub floored_steps: u64,
    /// IFM channels skipped outright (all lanes zero).
    pub skipped_channels: u64,
    /// Filter lanes of the analyzed configuration.
    pub lanes: usize,
}

impl LayerPackingStats {
    /// Analyzes one quantized conv layer for an accelerator configuration.
    pub fn analyze(name: &str, qw: &QuantConvWeights, config: &AccelConfig) -> LayerPackingStats {
        let lanes = config.lanes;
        let mut s = LayerPackingStats {
            name: name.to_string(),
            density: qw.density(),
            nnz_histogram: [0; 17],
            scratchpad_bytes: 0,
            lockstep_steps: 0,
            bubble_slots: 0,
            ideal_steps: 0,
            floored_steps: 0,
            skipped_channels: 0,
            lanes,
        };
        for g in 0..qw.out_c.div_ceil(lanes) {
            let gw = GroupWeights::from_filters(qw, g * lanes, lanes);
            s.scratchpad_bytes += gw.total_bytes() as u64;
            for ifm in 0..gw.ifm_count() {
                let steps = gw.steps(ifm) as u64;
                let mut lane_sum = 0u64;
                for lane in 0..lanes {
                    let nnz = gw.lane_tile(ifm, lane).nnz();
                    s.nnz_histogram[nnz.min(16)] += 1;
                    lane_sum += nnz as u64;
                }
                if steps == 0 {
                    s.skipped_channels += 1;
                    continue;
                }
                s.lockstep_steps += steps;
                s.bubble_slots += steps * lanes as u64 - lane_sum;
                s.ideal_steps += lane_sum.div_ceil(lanes as u64);
                s.floored_steps += steps.max(4);
            }
        }
        s
    }

    /// Fraction of lane-slots wasted as bubbles (0 when perfectly
    /// balanced).
    pub fn bubble_fraction(&self) -> f64 {
        let total = self.lockstep_steps * self.lanes as u64;
        if total == 0 {
            0.0
        } else {
            self.bubble_slots as f64 / total as f64
        }
    }

    /// Predicted speedup of zero-skipping over the no-skip baseline
    /// (16 cycles per weight tile), after the 4-cycle floor. Fully-skipped
    /// channels count as free under skipping and 16 cycles without it.
    pub fn predicted_skip_speedup(&self) -> f64 {
        if self.floored_steps == 0 {
            return 1.0;
        }
        // Histogram entries are per (group, ifm, lane): divide by the lane
        // count to recover (group, ifm) weight-tile applications.
        let group_ifm_pairs = self.nnz_histogram.iter().sum::<u64>() / self.lanes as u64;
        (group_ifm_pairs.max(1) * 16) as f64 / self.floored_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_hls::AccelArch;
    use zskip_quant::{Requantizer, Sm8};

    fn config() -> AccelConfig {
        AccelConfig::from_arch(&AccelArch::full(1), 150.0)
    }

    fn layer(out_c: usize, in_c: usize, keep_mod: usize) -> QuantConvWeights {
        QuantConvWeights::new(
            out_c,
            in_c,
            3,
            (0..out_c * in_c * 9)
                .map(|i| if i % keep_mod == 0 { Sm8::from_i32_saturating((i % 13) as i32 - 6) } else { Sm8::ZERO })
                .collect(),
            vec![0; out_c],
            Requantizer::IDENTITY,
            true,
        )
    }

    #[test]
    fn dense_layer_has_no_bubbles_and_nine_steps() {
        // keep_mod 1: every weight non-zero except values that hash to 0.
        let mut qw = layer(8, 4, 1);
        qw.w = (0..8 * 4 * 9).map(|_| Sm8::from_i32_saturating(3)).collect();
        qw.invalidate_caches();
        let s = LayerPackingStats::analyze("dense", &qw, &config());
        assert_eq!(s.density, 1.0);
        assert_eq!(s.bubble_slots, 0);
        // Every tile has exactly 9 nnz (3x3 kernel in a 4x4 tile).
        assert_eq!(s.nnz_histogram[9], 8 * 4 / 4 * 4);
        assert_eq!(s.lockstep_steps, (8 / 4 * 4 * 9) as u64);
        assert_eq!(s.skipped_channels, 0);
    }

    #[test]
    fn sparse_layer_shows_bubbles_and_floor() {
        let qw = layer(8, 8, 7); // ~1-2 nnz per tile, uneven
        let s = LayerPackingStats::analyze("sparse", &qw, &config());
        assert!(s.density < 0.2, "density {}", s.density);
        assert!(s.bubble_slots > 0, "uneven lanes must bubble");
        assert!(s.floored_steps >= s.lockstep_steps, "floor only adds");
        assert!(s.ideal_steps <= s.lockstep_steps, "ideal skips lane-independently");
        assert!(s.bubble_fraction() > 0.0 && s.bubble_fraction() < 1.0);
    }

    #[test]
    fn fully_zero_layer_skips_all_channels() {
        let mut qw = layer(4, 4, 1);
        qw.w.iter_mut().for_each(|w| *w = Sm8::ZERO);
        qw.invalidate_caches();
        let s = LayerPackingStats::analyze("zero", &qw, &config());
        assert_eq!(s.skipped_channels, 4);
        assert_eq!(s.lockstep_steps, 0);
        assert_eq!(s.predicted_skip_speedup(), 1.0);
    }

    #[test]
    fn skip_speedup_bounded_by_four() {
        let qw = layer(8, 8, 16); // extremely sparse
        let s = LayerPackingStats::analyze("very-sparse", &qw, &config());
        let speedup = s.predicted_skip_speedup();
        assert!(speedup <= 4.0 + 1e-9, "floor bounds speedup, got {speedup}");
        assert!(speedup > 3.0, "sparse layer should approach the bound, got {speedup}");
    }

    #[test]
    fn scratchpad_bytes_match_group_serialization() {
        let qw = layer(8, 4, 3);
        let s = LayerPackingStats::analyze("l", &qw, &config());
        let manual: u64 = (0..2).map(|g| GroupWeights::from_filters(&qw, g * 4, 4).to_bytes().len() as u64).sum();
        assert_eq!(s.scratchpad_bytes, manual);
    }
}
