//! [`BackendKind::Model`]: the transaction-level backend.
//!
//! Issues every instruction batch to the closed-form cycle model
//! (`crate::model`), which computes cycles from weight sparsity and
//! geometry and — unless the driver runs in stats-only mode — the
//! functional arithmetic from the golden reference kernels.
//!
//! [`BackendKind::Model`]: crate::exec::BackendKind::Model

use super::pipeline::{self, Exec};
use super::{PassCtx, StripeBackend};
use crate::driver::DriverError;
use crate::isa::PoolPadOp;
use crate::report::PassStats;
use zskip_nn::conv::QuantConvWeights;
use zskip_quant::Sm8;
use zskip_tensor::{Shape, TiledFeatureMap};

/// The transaction-level backend (see module docs).
pub(crate) struct ModelBackend;

impl StripeBackend for ModelBackend {
    fn conv_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        let exec = Exec::Model { functional: ctx.driver.functional };
        pipeline::conv_pass(ctx.driver, ctx.soc, exec, name, input, qw, out_shape, ctx.src_addr, ctx.dst_addr)
    }

    fn poolpad_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        let exec = Exec::Model { functional: ctx.driver.functional };
        pipeline::poolpad_pass(ctx.driver, ctx.soc, exec, name, input, op, out_shape, ctx.src_addr, ctx.dst_addr)
    }
}
