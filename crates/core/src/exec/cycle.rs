//! [`BackendKind::Cycle`]: the cycle-exact backend.
//!
//! Issues every instruction batch to the full kernel-level simulation
//! (`crate::cycle`): 20 streaming kernels plus a main controller,
//! connected by FIFOs on the `zskip-sim` engine. Slow, but the oracle
//! the closed-form model is validated against; also the only backend
//! where `fifo:*` fault injections have a meaning.
//!
//! [`BackendKind::Cycle`]: crate::exec::BackendKind::Cycle

use super::pipeline::{self, Exec};
use super::{PassCtx, StripeBackend};
use crate::driver::DriverError;
use crate::isa::PoolPadOp;
use crate::report::PassStats;
use zskip_nn::conv::QuantConvWeights;
use zskip_quant::Sm8;
use zskip_tensor::{Shape, TiledFeatureMap};

/// The cycle-exact backend (see module docs).
pub(crate) struct CycleBackend;

impl StripeBackend for CycleBackend {
    fn conv_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        pipeline::conv_pass(ctx.driver, ctx.soc, Exec::Cycle, name, input, qw, out_shape, ctx.src_addr, ctx.dst_addr)
    }

    fn poolpad_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        pipeline::poolpad_pass(ctx.driver, ctx.soc, Exec::Cycle, name, input, op, out_shape, ctx.src_addr, ctx.dst_addr)
    }
}
