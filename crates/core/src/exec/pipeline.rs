//! The staged per-layer pipeline shared by every [`StripeBackend`].
//!
//! One accelerator pass always runs the same stages, whatever executes
//! the arithmetic:
//!
//! 1. **stage** — serialize the tiled input FM and the packed group
//!    weights into the DDR model;
//! 2. **stripe** — for each planned stripe: DMA the IFM rows into banks,
//!    preload the scratchpad weights, issue the instruction batch to the
//!    instruction executor, then DMA the OFM rows back out;
//! 3. **collect** — merge per-instance cycles, DMA cycles and activity
//!    counters into a [`PassStats`].
//!
//! Because stripe plans, DMA descriptor sequences and instruction
//! streams are value-independent, two backends running this pipeline on
//! the same layer observe identical DDR traffic, identical injected DMA
//! faults and (for the closed-form executor) identical cycle counts —
//! the invariant `tests/backend_equivalence.rs` locks down.
//!
//! [`StripeBackend`]: crate::exec::StripeBackend

use crate::bank::BankSet;
use crate::cycle;
use crate::driver::{Driver, DriverError};
use crate::isa::{ConvInstr, Instruction, PoolPadInstr, PoolPadOp};
use crate::layout::FmLayout;
use crate::model;
use crate::report::PassStats;
use crate::weights::GroupWeights;
use std::sync::{Arc, OnceLock};
use zskip_fault::SharedFaultPlan;
use zskip_nn::conv::QuantConvWeights;
use zskip_quant::cache::{CacheStats, Fingerprint, WeightCache};
use zskip_quant::grouping::FilterGrouping;
use zskip_quant::Sm8;
use zskip_sim::Counters;
use zskip_soc::ddr::DdrModel;
use zskip_soc::dma::{DmaController, TILE_BYTES};
use zskip_tensor::{Shape, Tensor, TiledFeatureMap, TILE_DIM};

/// DDR feature-map region stride: each execution-plan slot owns one
/// fixed region of this size, so a skip-branch activation stays resident
/// in DDR without the next pass's output overwriting it (the classic
/// linear chain degenerates to two regions — the old A/B ping-pong).
/// 32 MiB holds the largest tiled VGG-16 feature map with room to spare.
pub const DDR_FM_STRIDE: usize = 32 << 20;

/// Scratch region for the explicit pad pass's intermediate feature map.
/// The padded image is consumed immediately by the following conv pass,
/// so it never occupies a plan slot.
pub const DDR_FM_PAD: usize = 256 << 20;

const DDR_WEIGHTS: usize = 512 << 20;

/// Start of execution-plan slot `slot`'s DDR feature-map region.
///
/// # Panics
/// Panics if the slot's region would collide with the pad scratch region
/// (the driver checks a plan's slot count up front).
pub fn slot_addr(slot: usize) -> usize {
    let addr = slot * DDR_FM_STRIDE;
    assert!(addr + DDR_FM_STRIDE <= DDR_FM_PAD, "slot {slot} exceeds the DDR feature-map window");
    addr
}

/// Mutable SoC context threaded through a network run: the DDR model and
/// the DMA engine the staged pipeline moves feature maps with. Opaque to
/// callers; created per inference by the driver, or explicitly for the
/// single-pass benchmarking entry points ([`Driver::conv_pass`]).
pub struct SocHandle {
    pub(crate) ddr: DdrModel,
    pub(crate) dma: DmaController,
    /// Reused serialization buffer for staging FMs into DDR: grows to the
    /// largest FM of the network on the first image, then stops
    /// allocating (the DDR-staging analogue of the `Scratch` arena).
    staging: Vec<u8>,
}

impl SocHandle {
    /// Creates a fresh SoC context (1 GiB DDR, default timing).
    pub fn new() -> SocHandle {
        SocHandle::with_plan(None)
    }

    /// A SoC context with a fault plan attached to its DMA engine.
    pub fn with_faults(plan: SharedFaultPlan) -> SocHandle {
        SocHandle::with_plan(Some(plan))
    }

    pub(crate) fn with_plan(plan: Option<SharedFaultPlan>) -> SocHandle {
        // 1 GiB DDR4 region, default System I timing.
        let mut dma = DmaController::new();
        if let Some(plan) = plan {
            dma.set_fault_plan(plan);
        }
        SocHandle { ddr: DdrModel::new(1 << 30), dma, staging: Vec::new() }
    }

    /// Total DDR traffic so far (reads + writes), in bytes.
    pub(crate) fn ddr_bytes(&self) -> u64 {
        self.ddr.bytes_read() + self.ddr.bytes_written()
    }

    /// Serializes a tiled FM and writes it to DDR at `addr`, reusing the
    /// handle's staging buffer (allocation-free once warmed). The byte
    /// image and DDR traffic are identical to
    /// [`fm_to_bytes`] + `write_block`.
    fn stage_fm(&mut self, addr: usize, fm: &TiledFeatureMap<Sm8>) {
        self.staging.clear();
        self.staging.reserve(fm.tile_count() * TILE_BYTES);
        for t in fm.as_tiles() {
            for v in t.as_array() {
                self.staging.push(v.to_bits());
            }
        }
        self.ddr.write_block(addr, &self.staging);
    }
}

impl Default for SocHandle {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializes a tiled FM into the DDR byte image (channel-major,
/// row-major tiles, 16 bytes per tile).
pub fn fm_to_bytes(fm: &TiledFeatureMap<Sm8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(fm.tile_count() * TILE_BYTES);
    for t in fm.as_tiles() {
        for v in t.as_array() {
            out.push(v.to_bits());
        }
    }
    out
}

/// Densifies a tiled FM into `out` at its logical extent, reusing the
/// allocation (the inverse of [`TiledFeatureMap::from_tensor`], which
/// re-zeroes the round-up region on the way back).
pub(crate) fn fm_to_tensor_into(fm: &TiledFeatureMap<Sm8>, out: &mut Tensor<Sm8>) {
    let s = fm.logical_shape();
    out.reset(s.c, s.h, s.w);
    for c in 0..s.c {
        for y in 0..s.h {
            let (ty, iy) = (y / TILE_DIM, y % TILE_DIM);
            for x in 0..s.w {
                out[(c, y, x)] = fm.tile(c, ty, x / TILE_DIM)[(iy, x % TILE_DIM)];
            }
        }
    }
}

/// One conv layer's packed OFM-group weights, staged once: the parsed
/// [`GroupWeights`] plus their concatenated scratchpad byte image with
/// per-group offsets. Packing a VGG-scale layer (filter tiling, zero-skip
/// entry packing, serialization) is value-independent work that PR-5
/// repeated for every image; a [`WeightCache`] keyed by the layer's
/// content fingerprint makes it a first-image cost shared by every
/// driver in the process.
pub(crate) struct PackedLayerWeights {
    /// One entry per OFM group, in group order.
    pub(crate) groups: Vec<GroupWeights>,
    /// All groups' scratchpad bytes, concatenated in group order.
    pub(crate) blob: Vec<u8>,
    /// Byte offset of each group within `blob`.
    pub(crate) offsets: Vec<usize>,
}

impl PackedLayerWeights {
    fn build(qw: &QuantConvWeights, lanes: usize, zero_skipping: bool) -> PackedLayerWeights {
        let groups: Vec<GroupWeights> = (0..qw.out_c.div_ceil(lanes))
            .map(|g| GroupWeights::from_filters_with_skipping(qw, g * lanes, lanes, zero_skipping))
            .collect();
        let mut offsets = Vec::with_capacity(groups.len());
        let mut blob = Vec::with_capacity(groups.iter().map(GroupWeights::total_bytes).sum());
        for g in &groups {
            offsets.push(blob.len());
            blob.extend_from_slice(&g.to_bytes());
        }
        PackedLayerWeights { groups, blob, offsets }
    }

    /// The byte range of group `gi` within [`PackedLayerWeights::blob`].
    fn group_span(&self, gi: usize) -> std::ops::Range<usize> {
        self.offsets[gi]..self.offsets.get(gi + 1).copied().unwrap_or(self.blob.len())
    }

    fn heap_bytes(&self) -> usize {
        self.groups.iter().map(GroupWeights::heap_bytes).sum::<usize>()
            + self.blob.capacity()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
    }
}

/// The process-wide packed-group-weight cache. Keyed by the layer's
/// content fingerprint combined with the packing parameters (lanes,
/// zero-skipping), so two accelerator configurations never alias.
fn group_cache() -> &'static WeightCache<PackedLayerWeights> {
    static CACHE: OnceLock<WeightCache<PackedLayerWeights>> = OnceLock::new();
    CACHE.get_or_init(WeightCache::new)
}

/// Statistics of the process-wide packed-group-weight cache (entries,
/// hits, misses, resident bytes) — surfaced by `zskip analyze`.
pub fn weight_cache_stats() -> CacheStats {
    group_cache().stats()
}

/// Resolves (building on first use) the packed group weights for a conv
/// layer under the driver's packing parameters.
fn packed_groups(driver: &Driver, qw: &QuantConvWeights) -> Arc<PackedLayerWeights> {
    let lanes = driver.config.lanes;
    if !driver.weight_cache {
        return Arc::new(PackedLayerWeights::build(qw, lanes, driver.zero_skipping));
    }
    let key = Fingerprint::new()
        .u64(qw.fingerprint())
        .u64(lanes as u64)
        .u64(driver.zero_skipping as u64)
        .finish();
    group_cache().get_or_insert_with(
        key,
        || PackedLayerWeights::build(qw, lanes, driver.zero_skipping),
        PackedLayerWeights::heap_bytes,
    )
}

/// Which instruction executor a staged pass issues its batches to.
///
/// This is the *only* point where backends diverge inside the pipeline;
/// everything else (staging, striping, DMA) is shared.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Exec {
    /// Transaction-level model: closed-form cycles. With
    /// `functional: false` the arithmetic is skipped — cycle counts and
    /// counters are value-independent, so they are unchanged.
    Model {
        /// Run the functional arithmetic alongside the cycle model.
        functional: bool,
    },
    /// Cycle-exact simulation of all kernels.
    Cycle,
}

impl Exec {
    /// Executes an instruction batch, returning cycles and the banks.
    ///
    /// `prepacked`, when present, carries one parsed [`GroupWeights`] per
    /// conv instruction (in stream order): the model executor then skips
    /// re-parsing the scratchpad image it already serialized from those
    /// very groups. The cycle backend always parses — its data-staging
    /// kernels consume the byte stream, like the hardware.
    fn run(
        &self,
        driver: &Driver,
        mut banks: BankSet,
        scratchpad: Vec<u8>,
        instrs: &[Instruction],
        counters: &mut Counters,
        prepacked: Option<&[GroupWeights]>,
    ) -> Result<(u64, BankSet), DriverError> {
        match self {
            Exec::Model { functional } => {
                let outcome = match prepacked {
                    Some(groups) => model::run_instructions_prepacked(
                        &driver.config,
                        &mut banks,
                        instrs,
                        counters,
                        *functional,
                        groups,
                    ),
                    None => model::run_instructions_with_mode(
                        &driver.config,
                        &mut banks,
                        &scratchpad,
                        instrs,
                        counters,
                        *functional,
                    ),
                };
                Ok((outcome.cycles, banks))
            }
            Exec::Cycle => {
                let outcome = cycle::run_instructions_configured(
                    &driver.config,
                    banks,
                    scratchpad,
                    instrs,
                    u64::MAX,
                    driver.fault_plan().cloned(),
                    driver.park_hysteresis,
                )
                .map_err(DriverError::Sim)?;
                counters.merge(&outcome.counters);
                Ok((outcome.cycles, outcome.banks))
            }
        }
    }
}

/// Runs one staged convolution pass (input already padded; stride 1).
/// `src_addr`/`dst_addr` are the DDR regions the input is staged in and
/// the output is written back to — the plan slots' regions during a
/// network run ([`slot_addr`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_pass(
    driver: &Driver,
    soc: &mut SocHandle,
    exec: Exec,
    name: &str,
    input: &TiledFeatureMap<Sm8>,
    qw: &QuantConvWeights,
    out_shape: Shape,
    src_addr: usize,
    dst_addr: usize,
) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
    // Optional future-work filter grouping: reorder output channels by
    // non-zero count so lockstep lanes balance; un-permuted on output.
    let grouping = if driver.filter_grouping {
        let nnz: Vec<usize> = (0..qw.out_c).map(|o| qw.output_filter_nnz(o)).collect();
        Some(FilterGrouping::by_nnz(&nnz, driver.config.lanes))
    } else {
        None
    };
    let permuted;
    let qw = if let Some(g) = &grouping {
        permuted = permute_filters(qw, &g.order);
        &permuted
    } else {
        qw
    };

    let in_rows = input.tiles_y();
    let out = TiledFeatureMap::<Sm8>::zeros(out_shape);
    let out_rows = out.tiles_y();
    let words_in = input.channels().div_ceil(4) * input.tiles_x();
    let words_out = out_shape.c.div_ceil(4) * out.tiles_x();
    let stripes =
        super::stripes::plan_stripes(name, None, out_rows, in_rows, words_in, words_out, driver.config.bank_tiles)?;

    // Stage activations and packed weights in DDR. Under a filter
    // grouping the permuted layer is image-local, so it bypasses the
    // shared cache (its fingerprint would be recomputed per image anyway).
    soc.stage_fm(src_addr, input);
    let packed = if grouping.is_some() {
        Arc::new(PackedLayerWeights::build(qw, driver.config.lanes, driver.zero_skipping))
    } else {
        packed_groups(driver, qw)
    };
    let groups = &packed.groups;
    soc.ddr.write_block(DDR_WEIGHTS, &packed.blob);

    let mut stats = PassStats {
        per_instance_cycles: vec![0; driver.config.instances],
        stripes: stripes.len(),
        striping_factor: stripes.iter().map(|s| s.in_hi - s.in_lo).sum::<usize>() as f64
            / in_rows.max(1) as f64,
        ..Default::default()
    };
    let mut out_fm = out;

    // Work distribution across instances: multi-stripe layers give each
    // instance separate stripes (the paper's "each instance operates
    // concurrently on separate stripes of FMs"); single-stripe layers
    // (deep, small-FM) instead replicate the IFM stripe into both
    // instances' banks and split the OFM groups between them.
    let split_groups = stripes.len() < driver.config.instances && driver.config.instances > 1;

    for (si, stripe) in stripes.iter().enumerate() {
        let in_layout = FmLayout {
            base: 0,
            channels: input.channels(),
            tiles_x: input.tiles_x(),
            tile_rows: stripe.in_hi - stripe.in_lo,
        };
        let out_layout = FmLayout {
            base: in_layout.end(),
            channels: out_shape.c,
            tiles_x: out_fm.tiles_x(),
            tile_rows: stripe.out_b - stripe.out_a,
        };

        let parts = if split_groups { driver.config.instances } else { 1 };
        let chunk = groups.len().div_ceil(parts);
        for part in 0..parts {
            let instance = if split_groups { part } else { si % driver.config.instances };
            let group_range = (part * chunk)..((part + 1) * chunk).min(groups.len());
            if group_range.is_empty() {
                continue;
            }
            let mut banks = BankSet::new(&driver.config);

            // DMA in: one descriptor per channel (replicated per part
            // when groups are split — both instances need the IFMs).
            stats.io_dma_cycles +=
                dma_fm_stripe(soc, src_addr, input, stripe.in_lo..stripe.in_hi, &in_layout, &mut banks, true)?;

            // Per-group: weight preload + conv instruction. The
            // scratchpad image is copied from the staged blob — the
            // same bytes `GroupWeights::to_bytes` produced, without
            // re-serializing per image.
            let mut scratchpad = Vec::new();
            let mut instrs = Vec::new();
            for gi in group_range.clone() {
                let span = packed.group_span(gi);
                let bytes = span.len();
                let (_, wcycles) = soc.ddr.read_block(DDR_WEIGHTS + span.start, bytes);
                stats.weight_dma_cycles += wcycles;
                let ofm_first = gi * driver.config.lanes;
                let wgt_base = scratchpad.len() as u32;
                scratchpad.extend_from_slice(&packed.blob[span]);
                let active = driver.config.lanes.min(qw.out_c - ofm_first);
                let mut bias = [0i32; 4];
                for (lane, b) in bias.iter_mut().enumerate().take(active) {
                    *b = qw.bias_acc[ofm_first + lane].clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                }
                instrs.push(Instruction::Conv(ConvInstr {
                    ofm_first: ofm_first as u16,
                    ifm_count: qw.in_c as u16,
                    ifm_base: 0,
                    ifm_tiles_x: in_layout.tiles_x as u16,
                    ifm_tile_rows: in_layout.tile_rows as u16,
                    ifm_row_offset: (stripe.out_a - stripe.in_lo) as u16,
                    ofm_base: out_layout.base as u32,
                    ofm_tiles_x: out_layout.tiles_x as u16,
                    ofm_tile_rows: out_layout.tile_rows as u16,
                    wgt_base,
                    bias,
                    requant_mult: qw.requant.mult as u16,
                    requant_shift: qw.requant.shift as u8,
                    relu: qw.relu,
                    active_lanes: active as u8,
                }));
            }

            // Hand the already-parsed groups to the model executor only
            // on the cached path, so `weight_cache(false)` measures the
            // PR-5 baseline (scratchpad parse included) for the bench
            // speedup gate.
            let prepacked = (driver.weight_cache && grouping.is_none())
                .then(|| &groups[group_range.clone()]);
            let (cycles, result_banks) =
                exec.run(driver, banks, scratchpad, &instrs, &mut stats.counters, prepacked)?;
            stats.per_instance_cycles[instance] += cycles;
            let mut banks = result_banks;

            // DMA out this part's OFM channels.
            out_layout.load_channels(
                &banks,
                &mut out_fm,
                stripe.out_a..stripe.out_b,
                (part * chunk * driver.config.lanes)
                    ..(((part + 1) * chunk * driver.config.lanes).min(out_shape.c)),
            );
            stats.io_dma_cycles +=
                dma_fm_stripe(soc, dst_addr, &out_fm, stripe.out_a..stripe.out_b, &out_layout, &mut banks, false)?;
        }
    }

    stats.finish();
    // Tile-aligned compute fills whole tiles; cells beyond the logical
    // extent are don't-cares that downstream boundary windows must
    // read as zero.
    out_fm.zero_round_up_region();
    // Undo the grouping permutation so downstream layers see model
    // channel order (host-side relabeling; free at DMA time).
    if let Some(g) = &grouping {
        out_fm = unpermute_channels(&out_fm, &g.order);
    }
    Ok((out_fm, stats))
}

/// Runs one staged pad or pool pass (DDR regions as in [`conv_pass`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn poolpad_pass(
    driver: &Driver,
    soc: &mut SocHandle,
    exec: Exec,
    name: &str,
    input: &TiledFeatureMap<Sm8>,
    op: PoolPadOp,
    out_shape: Shape,
    src_addr: usize,
    dst_addr: usize,
) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
    let in_rows = input.tiles_y();
    let mut out_fm = TiledFeatureMap::<Sm8>::zeros(out_shape);
    let out_rows = out_fm.tiles_y();
    let channels = input.channels();
    let words_in = channels.div_ceil(4) * input.tiles_x();
    let words_out = channels.div_ceil(4) * out_fm.tiles_x();
    let stripes = super::stripes::plan_stripes(
        name,
        Some(op),
        out_rows,
        in_rows,
        words_in,
        words_out,
        driver.config.bank_tiles,
    )?;

    soc.stage_fm(src_addr, input);

    let mut stats = PassStats {
        per_instance_cycles: vec![0; driver.config.instances],
        stripes: stripes.len(),
        striping_factor: stripes.iter().map(|s| s.in_hi - s.in_lo).sum::<usize>() as f64
            / in_rows.max(1) as f64,
        ..Default::default()
    };

    for (si, stripe) in stripes.iter().enumerate() {
        let instance = si % driver.config.instances;
        let mut banks = BankSet::new(&driver.config);
        let in_layout = FmLayout {
            base: 0,
            channels,
            tiles_x: input.tiles_x(),
            tile_rows: stripe.in_hi - stripe.in_lo,
        };
        let out_layout = FmLayout {
            base: in_layout.end(),
            channels,
            tiles_x: out_fm.tiles_x(),
            tile_rows: stripe.out_b - stripe.out_a,
        };
        stats.io_dma_cycles +=
            dma_fm_stripe(soc, src_addr, input, stripe.in_lo..stripe.in_hi, &in_layout, &mut banks, true)?;

        let instr = Instruction::PoolPad(PoolPadInstr {
            channels: channels as u16,
            in_base: 0,
            in_tiles_x: in_layout.tiles_x as u16,
            in_tile_rows: in_layout.tile_rows as u16,
            in_row_start: stripe.in_lo as u16,
            out_base: out_layout.base as u32,
            out_tiles_x: out_layout.tiles_x as u16,
            out_tile_rows: out_layout.tile_rows as u16,
            out_row_start: stripe.out_a as u16,
            op,
        });
        let (cycles, result_banks) =
            exec.run(driver, banks, Vec::new(), &[instr], &mut stats.counters, None)?;
        stats.per_instance_cycles[instance] += cycles;
        let mut banks = result_banks;
        out_layout.load(&banks, &mut out_fm, stripe.out_a..stripe.out_b);
        stats.io_dma_cycles +=
            dma_fm_stripe(soc, dst_addr, &out_fm, stripe.out_a..stripe.out_b, &out_layout, &mut banks, false)?;
    }
    stats.finish();
    out_fm.zero_round_up_region();
    Ok((out_fm, stats))
}

/// Moves one FM stripe between DDR and banks via the DMA engine,
/// returning the cycle cost. `to_banks` selects the direction.
///
/// # Errors
/// [`DriverError::Dma`]: with a well-planned stripe this only happens
/// under injected faults (truncation, parity).
fn dma_fm_stripe(
    soc: &mut SocHandle,
    ddr_base: usize,
    fm: &TiledFeatureMap<Sm8>,
    rows: std::ops::Range<usize>,
    layout: &FmLayout,
    banks: &mut BankSet,
    to_banks: bool,
) -> Result<u64, DriverError> {
    use zskip_soc::dma::{DmaDescriptor, DmaDirection};
    let mut cycles = 0;
    let tiles_per_row = fm.tiles_x();
    let rows_per_channel = fm.tiles_y();
    for c in 0..fm.channels() {
        let ddr_addr = ddr_base + (c * rows_per_channel + rows.start) * tiles_per_row * TILE_BYTES;
        let desc = DmaDescriptor {
            direction: if to_banks { DmaDirection::DdrToBank } else { DmaDirection::BankToDdr },
            ddr_addr,
            bank: FmLayout::bank_of(c),
            bank_tile_index: layout.addr(c, 0, 0),
            tiles: rows.len() * tiles_per_row,
        };
        cycles += soc.dma.run(&desc, &mut soc.ddr, banks).map_err(DriverError::Dma)?;
    }
    Ok(cycles)
}

/// Reorders a layer's output filters (weights + bias) by `order`.
fn permute_filters(qw: &QuantConvWeights, order: &[usize]) -> QuantConvWeights {
    let kk = qw.k * qw.k;
    let per_filter = qw.in_c * kk;
    let mut w = Vec::with_capacity(qw.w.len());
    let mut bias = Vec::with_capacity(qw.bias_acc.len());
    for &o in order {
        w.extend_from_slice(&qw.w[o * per_filter..(o + 1) * per_filter]);
        bias.push(qw.bias_acc[o]);
    }
    QuantConvWeights::new(qw.out_c, qw.in_c, qw.k, w, bias, qw.requant, qw.relu)
}

/// Un-permutes channels of an FM produced under a filter grouping.
fn unpermute_channels(fm: &TiledFeatureMap<Sm8>, order: &[usize]) -> TiledFeatureMap<Sm8> {
    let mut out = TiledFeatureMap::zeros(fm.logical_shape());
    for (pos, &orig) in order.iter().enumerate() {
        for ty in 0..fm.tiles_y() {
            for tx in 0..fm.tiles_x() {
                *out.tile_mut(orig, ty, tx) = *fm.tile(pos, ty, tx);
            }
        }
    }
    out
}
