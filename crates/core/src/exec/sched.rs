//! Multi-instance placement scheduling: stripe-parallel, image-parallel
//! and layer-pipelined execution across N accelerator instances.
//!
//! The paper's fastest variant (`512-opt`) is already two instances
//! working separate stripes of one layer. This module generalizes that to
//! N instances and adds two placements the paper's scale-out remark
//! ("software changes alone would allow us to scale out the design
//! further") enables:
//!
//! * [`Placement::Stripe`] — every instance works separate stripes (or
//!   split OFM groups) of the *same* layer, exactly the existing
//!   [`pipeline`](crate::exec::pipeline) distribution; images run
//!   sequentially. Best single-image latency on shallow networks.
//! * [`Placement::Image`] — a batch is sharded round-robin across
//!   instances, one whole image per instance. Near-linear throughput,
//!   but every image still pays its full weight-staging cost.
//! * [`Placement::Pipeline`] — the network's layers are partitioned into
//!   N contiguous blocks; instance k runs block k of image i while
//!   instance k-1 runs block k-1 of image i+1. Block weights are loaded
//!   once and stay resident, so the per-image weight staging of the
//!   serial schedule is hidden behind upstream compute.
//! * [`Placement::Auto`] — pick one of the above from the instance
//!   count, batch size and network depth (see [`Placement::resolve`]).
//!
//! **Determinism contract.** Every placement is bit-identical to an
//! `instances: 1` run of the same configuration: image- and
//! layer-pipelined placements execute each image through a
//! single-instance view of the driver (same bank capacity, same stripe
//! plans, same DMA descriptors), and the stripe placement's instance
//! distribution never changes the arithmetic. Placement only decides
//! *when* and *where* work runs in simulated time; `tests/sharding.rs`
//! locks this down differentially across all three backends.
//!
//! The per-N cost model ([`CostModel`]) comes from the HLS model's
//! congestion-derated fmax: N instances are synthesized onto the
//! smallest device of a ladder (the paper's Arria 10 SX660, the GT1150
//! it names for scale-out, then hypothetically doubled GT1150-class
//! parts) and the resulting operating clock converts the schedule's
//! makespan cycles into wall time.

use crate::config::AccelConfig;
use crate::driver::{Driver, DriverError};
use crate::report::InferenceReport;
use zskip_hls::{synthesize, AccelArch, Device, Variant};
use zskip_nn::layer::LayerSpec;
use zskip_nn::model::QuantizedNetwork;
use zskip_nn::scratch::Scratch;
use zskip_tensor::{Shape, Tensor, TILE_DIM};

/// How work is placed onto the configured accelerator instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Pick a placement from instance count, batch size and network depth.
    Auto,
    /// All instances work separate stripes of the same layer (the
    /// `512-opt` distribution, generalized); images run sequentially.
    Stripe,
    /// One whole image per instance, round-robin over the batch.
    Image,
    /// Contiguous layer blocks per instance, images streamed through.
    Pipeline,
}

impl Placement {
    /// All placements, in documentation order.
    pub const ALL: [Placement; 4] =
        [Placement::Auto, Placement::Stripe, Placement::Image, Placement::Pipeline];

    /// The CLI/serialization name (`auto` | `stripe` | `image` | `pipeline`).
    pub fn name(self) -> &'static str {
        match self {
            Placement::Auto => "auto",
            Placement::Stripe => "stripe",
            Placement::Image => "image",
            Placement::Pipeline => "pipeline",
        }
    }

    /// Resolves `Auto` for a concrete workload: `instances` simulated
    /// instances, `images` batch items, `accel_layers` accelerator-run
    /// layers (conv + pool). Explicit placements resolve to themselves.
    ///
    /// The heuristic: one instance has nothing to place (`Stripe`); a
    /// single image cannot be image-sharded, so deep networks pipeline
    /// and shallow ones stripe; a batch at least as large as the
    /// instance count shards image-parallel (near-linear throughput);
    /// a smaller batch pipelines to keep every instance busy.
    pub fn resolve(self, instances: usize, images: usize, accel_layers: usize) -> Placement {
        match self {
            Placement::Auto => {
                if instances <= 1 {
                    Placement::Stripe
                } else if images <= 1 {
                    if accel_layers >= 2 {
                        Placement::Pipeline
                    } else {
                        Placement::Stripe
                    }
                } else if images >= instances {
                    Placement::Image
                } else {
                    Placement::Pipeline
                }
            }
            explicit => explicit,
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Placement, String> {
        match s {
            "auto" => Ok(Placement::Auto),
            "stripe" => Ok(Placement::Stripe),
            "image" => Ok(Placement::Image),
            "pipeline" => Ok(Placement::Pipeline),
            other => {
                Err(format!("unknown placement '{other}' (use auto | stripe | image | pipeline)"))
            }
        }
    }
}

/// The HLS-derived cost of running N instances: the smallest device of
/// the scale-out ladder that fits them, and the congestion-derated
/// operating clock there. This is what makes cross-N comparisons honest:
/// more instances may mean a bigger (hypothetical) device or a slower
/// clock, never free parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Instance count this model was synthesized for.
    pub instances: usize,
    /// The architecture synthesized (variant datapath, N instances,
    /// bank capacity dividing the fixed RAM budget).
    pub arch: AccelArch,
    /// Congestion-derated operating clock in MHz.
    pub clock_mhz: f64,
    /// Name of the chosen device.
    pub device: &'static str,
    /// ALM utilization on that device (drives the congestion derate).
    pub alm_utilization: f64,
    /// Whether the design fits the device. `false` only past the end of
    /// the ladder; the clock is then heavily derated.
    pub fits: bool,
}

/// The device ladder for scale-out: the paper's SX660, the GT1150 it
/// names for further scale-out, then hypothetically doubled GT1150-class
/// parts (the paper's extrapolation taken literally).
fn device_ladder() -> [Device; 5] {
    let g = Device::arria10_gt1150();
    [
        Device::arria10_sx660(),
        g,
        Device { name: "Arria 10 GT1150 x2", alms: g.alms * 2, dsps: g.dsps * 2, m20k: g.m20k * 2 },
        Device { name: "Arria 10 GT1150 x4", alms: g.alms * 4, dsps: g.dsps * 4, m20k: g.m20k * 4 },
        Device { name: "Arria 10 GT1150 x8", alms: g.alms * 8, dsps: g.dsps * 8, m20k: g.m20k * 8 },
    ]
}

impl CostModel {
    /// Highest device utilization the model considers routable. The
    /// paper's 512-opt closed timing at ~82% ALM but "routing ... failed
    /// at higher performance targets due to high congestion"; above this
    /// ceiling the design moves to the next ladder device instead of
    /// shipping an unroutable part.
    pub const ROUTABLE_UTILIZATION: f64 = 0.85;

    /// Synthesizes `instances` copies of `variant`'s datapath onto the
    /// smallest ladder device that fits with routable headroom
    /// ([`CostModel::ROUTABLE_UTILIZATION`]), returning the
    /// congestion-derated cost there; past the end of the ladder the
    /// largest device is used regardless. The single- and two-instance
    /// points reproduce the paper's 256-opt (150 MHz) and 512-opt
    /// (congestion-limited ~117 MHz) numbers because the SX660 is first
    /// on the ladder and the ceiling sits above its 512-opt utilization.
    ///
    /// # Panics
    /// When `instances` is zero (validated upstream by
    /// [`DriverBuilder::build`](crate::driver::DriverBuilder::build)).
    pub fn for_instances(variant: Variant, instances: usize) -> CostModel {
        assert!(instances >= 1, "need at least one instance");
        let base = variant.arch();
        let arch = AccelArch {
            conv_units: base.conv_units,
            lanes: base.lanes,
            instances,
            bank_tiles: 32_768 / instances,
        };
        let constraints = variant.constraints();
        let ladder = device_ladder();
        let mut best = None;
        for device in &ladder {
            let r = synthesize(&arch, &constraints, device);
            let fits = r.utilization.fits();
            best = Some(CostModel {
                instances,
                arch,
                clock_mhz: r.operating_mhz,
                device: device.name,
                alm_utilization: r.utilization.alm,
                fits,
            });
            if fits && r.utilization.max() <= Self::ROUTABLE_UTILIZATION {
                break;
            }
        }
        best.expect("ladder is non-empty")
    }
}

/// The schedule of one sharded batch: per-image reports plus the
/// placement's simulated timeline.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The placement that actually ran (never [`Placement::Auto`]).
    pub placement: Placement,
    /// Instances scheduled over.
    pub instances: usize,
    /// Per-image inference reports, in submission order. Outputs are
    /// bit-identical to an `instances: 1` run of the same configuration.
    pub items: Vec<InferenceReport>,
    /// Simulated wall cycles for the whole batch under this placement.
    pub makespan_cycles: u64,
    /// Reconstructed single-instance serial cycles for the same batch
    /// (the `instances: 1` wall the speedup is measured against).
    pub serial_cycles: u64,
    /// Busy (compute) cycles per instance.
    pub per_instance_busy: Vec<u64>,
    /// Idle cycles each pipeline stage spent waiting for upstream,
    /// attributed to the first layer of the stage's block. Empty for
    /// non-pipelined placements.
    pub layer_bubbles: Vec<(String, u64)>,
    /// Weight-staging cycles left on the critical path.
    pub staging_exposed_cycles: u64,
    /// Weight-staging cycles the serial schedule pays that this
    /// placement hides (resident block weights) — zero for stripe and
    /// image placements, which re-stage weights per image.
    pub staging_hidden_cycles: u64,
}

impl ShardReport {
    /// Mean instance utilization: busy cycles over `instances x makespan`.
    pub fn utilization(&self) -> f64 {
        if self.makespan_cycles == 0 || self.instances == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_instance_busy.iter().sum();
        busy as f64 / (self.instances as f64 * self.makespan_cycles as f64)
    }

    /// Cycle-count speedup over the reconstructed serial schedule.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 1.0;
        }
        self.serial_cycles as f64 / self.makespan_cycles as f64
    }

    /// Simulated images per second at the configuration's clock.
    pub fn images_per_s(&self, config: &AccelConfig) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.items.len() as f64 / (self.makespan_cycles as f64 * config.cycle_seconds())
    }
}

/// Accelerator-run layers of a spec (conv + pool; FC and softmax run on
/// the host ARM).
fn accel_layer_count(qnet: &QuantizedNetwork) -> usize {
    qnet.spec
        .layers
        .iter()
        .filter(|l| matches!(l, LayerSpec::Conv { .. } | LayerSpec::MaxPool { .. }))
        .count()
}

/// Reconstructs the single-instance wall cycles of an N-instance run:
/// per layer, compute is the *sum* over instances (one instance would
/// run every batch itself) under the same `max(compute, io) + weight`
/// overlap. Only the stripe placement needs this; image and pipeline
/// items are literal single-instance runs whose totals *are* the serial
/// cost.
fn serial_cycles(items: &[InferenceReport]) -> u64 {
    items
        .iter()
        .flat_map(|r| r.layers.iter())
        .map(|l| {
            let compute: u64 = l.stats.per_instance_cycles.iter().sum();
            compute.max(l.stats.io_dma_cycles) + l.stats.weight_dma_cycles
        })
        .sum()
}

/// The exact serial cost of items that already ran single-instance.
fn serial_cycles_exact(items: &[InferenceReport]) -> u64 {
    items.iter().map(|r| r.total_cycles).sum()
}

/// A `Driver` view with the same geometry but a single instance: the
/// reference schedule image- and layer-pipelined placements execute each
/// image through. Bank capacity is untouched, so stripe plans, DMA
/// descriptors, cycle counts and outputs are exactly those of an
/// `instances: 1` run.
fn single_instance_view(driver: &Driver) -> Driver {
    let mut view = driver.clone();
    view.config.instances = 1;
    view
}

/// How many instances the stripe placement can keep busy on one layer:
/// round-robin over the stripe plan when it is long enough, otherwise
/// the OFM-group split (conv only).
fn layer_stripe_coverage(
    name: &str,
    instances: usize,
    stripes: usize,
    groups: Option<usize>,
) -> (String, usize) {
    let coverage = if stripes >= instances {
        instances
    } else {
        stripes.max(groups.unwrap_or(0)).min(instances)
    };
    (name.to_string(), coverage)
}

/// Validates that an *explicit* stripe placement can occupy every
/// instance on at least one layer, by re-running the planner's geometry.
///
/// # Errors
/// [`DriverError::InvalidConfig`] (stable code `config.invalid`) when no
/// layer's stripe plan or group split reaches `instances`;
/// [`DriverError::LayerTooLarge`] when a layer cannot be striped at all
/// (the same error the run itself would surface).
fn validate_stripe_coverage(driver: &Driver, qnet: &QuantizedNetwork) -> Result<(), DriverError> {
    let n = driver.config.instances;
    let bank = driver.config.bank_tiles;
    let shapes = qnet.spec.shapes().map_err(|e| DriverError::InvalidNetwork(e.to_string()))?;
    let rows = |h: usize| h.div_ceil(TILE_DIM);
    let words = |c: usize, w: usize| c.div_ceil(4) * w.div_ceil(TILE_DIM);
    let mut best: Option<(String, usize)> = None;
    let mut seen = false;
    for (li, layer) in qnet.spec.layers.iter().enumerate() {
        let cov = match layer {
            LayerSpec::Conv { name, pad, out_c, .. } => {
                let s = shapes[li];
                let padded = Shape::new(s.c, s.h + 2 * pad, s.w + 2 * pad);
                let out = shapes[li + 1];
                let stripes = super::stripes::plan_stripes(
                    name,
                    None,
                    rows(out.h),
                    rows(padded.h),
                    words(padded.c, padded.w),
                    words(out.c, out.w),
                    bank,
                )?
                .len();
                let groups = out_c.div_ceil(driver.config.lanes);
                layer_stripe_coverage(name, n, stripes, Some(groups))
            }
            LayerSpec::MaxPool { name, k, stride } => {
                let s = shapes[li];
                let out = shapes[li + 1];
                let op = crate::isa::PoolPadOp::MaxPool { k: *k as u8, stride: *stride as u8 };
                let stripes = super::stripes::plan_stripes(
                    name,
                    Some(op),
                    rows(out.h),
                    rows(s.h),
                    words(s.c, s.w),
                    words(out.c, out.w),
                    bank,
                )?
                .len();
                layer_stripe_coverage(name, n, stripes, None)
            }
            _ => continue,
        };
        seen = true;
        if best.as_ref().map(|(_, c)| cov.1 > *c).unwrap_or(true) {
            best = Some(cov);
        }
    }
    match best {
        _ if !seen => Ok(()), // no accelerator layers: nothing to cover
        Some((_, c)) if c >= n => Ok(()),
        Some((name, c)) => Err(DriverError::InvalidConfig(format!(
            "stripe placement cannot cover {n} instances: the widest layer ('{name}') \
             occupies only {c} (use --placement image | pipeline, or fewer instances)"
        ))),
        None => Ok(()),
    }
}

/// Runs a batch across the driver's configured instances under a
/// placement, returning the per-image reports plus the placement's
/// simulated timeline. `Auto` resolves per [`Placement::resolve`].
///
/// # Errors
/// Everything [`Driver::run_network`] surfaces, plus
/// [`DriverError::InvalidConfig`] when an explicit stripe placement
/// cannot occupy every instance on any layer.
pub fn run_sharded(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    placement: Placement,
) -> Result<ShardReport, DriverError> {
    let n = driver.config.instances.max(1);
    let resolved = placement.resolve(n, inputs.len(), accel_layer_count(qnet));
    if placement == Placement::Stripe && n > 1 {
        validate_stripe_coverage(driver, qnet)?;
    }
    match resolved {
        Placement::Stripe => run_stripe(driver, qnet, inputs, n),
        Placement::Image => run_image(driver, qnet, inputs, n),
        Placement::Pipeline => run_pipeline(driver, qnet, inputs, n),
        Placement::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// Stripe placement: the existing in-layer instance distribution;
/// images run back to back.
fn run_stripe(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    n: usize,
) -> Result<ShardReport, DriverError> {
    let mut scratch = Scratch::new();
    let mut items = Vec::with_capacity(inputs.len());
    let mut busy = vec![0u64; n];
    let mut makespan = 0u64;
    let mut exposed = 0u64;
    for input in inputs {
        let rep = driver.run_network_scratch(qnet, input, &mut scratch)?;
        for l in &rep.layers {
            for (k, c) in l.stats.per_instance_cycles.iter().enumerate() {
                busy[k] += c;
            }
            exposed += l.stats.weight_dma_cycles;
        }
        makespan += rep.total_cycles;
        items.push(rep);
    }
    let serial = serial_cycles(&items);
    Ok(ShardReport {
        placement: Placement::Stripe,
        instances: n,
        items,
        makespan_cycles: makespan,
        serial_cycles: serial,
        per_instance_busy: busy,
        layer_bubbles: Vec::new(),
        staging_exposed_cycles: exposed,
        staging_hidden_cycles: 0,
    })
}

/// Image placement: image `i` runs whole on instance `i mod n`; the
/// batch's makespan is the busiest instance's lane.
fn run_image(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    n: usize,
) -> Result<ShardReport, DriverError> {
    let view = single_instance_view(driver);
    let mut scratch = Scratch::new();
    let mut items = Vec::with_capacity(inputs.len());
    let mut lane = vec![0u64; n];
    let mut exposed = 0u64;
    for (i, input) in inputs.iter().enumerate() {
        let rep = view.run_network_scratch(qnet, input, &mut scratch)?;
        lane[i % n] += rep.total_cycles;
        exposed += rep.layers.iter().map(|l| l.stats.weight_dma_cycles).sum::<u64>();
        items.push(rep);
    }
    let serial = serial_cycles_exact(&items);
    Ok(ShardReport {
        placement: Placement::Image,
        instances: n,
        items,
        makespan_cycles: lane.iter().copied().max().unwrap_or(0),
        serial_cycles: serial,
        per_instance_busy: lane,
        layer_bubbles: Vec::new(),
        staging_exposed_cycles: exposed,
        staging_hidden_cycles: 0,
    })
}

/// Splits `cycles.len()` layers into `blocks` contiguous blocks balanced
/// by cycle weight, returning each layer's block id. Every block gets at
/// least one layer.
fn partition_blocks(cycles: &[u64], blocks: usize) -> Vec<usize> {
    let total: u64 = cycles.iter().sum::<u64>().max(1);
    let mut assign = vec![0usize; cycles.len()];
    let mut b = 0usize;
    let mut cum = 0u64;
    for (i, c) in cycles.iter().enumerate() {
        // Latest index at which block b+1 can still open while leaving
        // one layer for every later block.
        let must_open = i >= cycles.len() - (blocks - 1 - b);
        let past_boundary = cum * blocks as u64 >= (b as u64 + 1) * total;
        if b + 1 < blocks && i > 0 && (past_boundary || must_open) {
            b += 1;
        }
        assign[i] = b;
        cum += c;
    }
    assign
}

/// Simulates the pipeline event schedule for one contiguous partition:
/// per-block resident-weight preloads (`w`), per-image block compute
/// (`x`), `images` identical images streamed through. Returns the
/// makespan.
fn pipeline_makespan(w: &[u64], x: &[u64], images: usize) -> u64 {
    let mut avail = w.to_vec();
    let mut makespan = 0u64;
    for _ in 0..images {
        let mut upstream = 0u64;
        for (a, &xk) in avail.iter_mut().zip(x) {
            let done = upstream.max(*a) + xk;
            *a = done;
            upstream = done;
        }
        makespan = upstream;
    }
    makespan
}

/// Picks the contiguous partition with the smallest simulated makespan,
/// searching every boundary placement when the combination count is
/// small (it is for real networks: VGG-16 at 8 blocks is ~80k
/// candidates) and falling back to the balanced heuristic otherwise.
/// The search is what lets a single image win: it leaves weight-heavy
/// layers downstream so their resident preload hides under upstream
/// compute.
fn choose_partition(layer_w: &[u64], layer_x: &[u64], blocks: usize, images: usize) -> Vec<usize> {
    let n = layer_x.len();
    let fallback = partition_blocks(layer_x, blocks);
    if blocks < 2 || n < blocks {
        return fallback;
    }
    // C(n-1, blocks-1) candidates; cap the exact search.
    let mut count: u128 = 1;
    for i in 0..(blocks - 1) {
        count = count * (n - 1 - i) as u128 / (i + 1) as u128;
        if count > 200_000 {
            return fallback;
        }
    }
    let mut best = fallback.clone();
    let mut best_span = {
        let (w, x) = block_sums(layer_w, layer_x, &fallback, blocks);
        pipeline_makespan(&w, &x, images)
    };
    // Enumerate boundary sets recursively: bounds[b] is the first layer
    // of block b+1.
    let mut bounds = vec![0usize; blocks - 1];
    let mut stack = vec![(0usize, 1usize)]; // (boundary index, candidate position)
    while let Some((bi, pos)) = stack.pop() {
        if pos > n - (blocks - 1 - bi) {
            continue;
        }
        stack.push((bi, pos + 1));
        bounds[bi] = pos;
        if bi + 1 < blocks - 1 {
            stack.push((bi + 1, pos + 1));
            continue;
        }
        let mut assign = vec![0usize; n];
        let mut b = 0usize;
        for (i, a) in assign.iter_mut().enumerate() {
            if b < blocks - 1 && i == bounds[b] {
                b += 1;
            }
            *a = b;
        }
        let (w, x) = block_sums(layer_w, layer_x, &assign, blocks);
        let span = pipeline_makespan(&w, &x, images);
        if span < best_span {
            best_span = span;
            best = assign;
        }
    }
    best
}

fn block_sums(
    layer_w: &[u64],
    layer_x: &[u64],
    assign: &[usize],
    blocks: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut w = vec![0u64; blocks];
    let mut x = vec![0u64; blocks];
    for (i, &b) in assign.iter().enumerate() {
        w[b] += layer_w[i];
        x[b] += layer_x[i];
    }
    (w, x)
}

/// Layer-pipelined placement: contiguous layer blocks per instance,
/// images streamed through; block weights loaded once and resident.
fn run_pipeline(
    driver: &Driver,
    qnet: &QuantizedNetwork,
    inputs: &[Tensor<f32>],
    n: usize,
) -> Result<ShardReport, DriverError> {
    let view = single_instance_view(driver);
    let mut scratch = Scratch::new();
    let mut items = Vec::with_capacity(inputs.len());
    for input in inputs {
        items.push(view.run_network_scratch(qnet, input, &mut scratch)?);
    }
    if items.is_empty() {
        return Ok(ShardReport {
            placement: Placement::Pipeline,
            instances: n,
            items,
            makespan_cycles: 0,
            serial_cycles: 0,
            per_instance_busy: vec![0; n],
            layer_bubbles: Vec::new(),
            staging_exposed_cycles: 0,
            staging_hidden_cycles: 0,
        });
    }

    // Partition layers into contiguous blocks by minimizing the
    // simulated makespan over boundary placements (cycle counts are
    // value-independent, so the first image's weights speak for all).
    // Compute is balanced *net of weight staging*: block weights are
    // resident, so steady-state stage time excludes them.
    let layer_w: Vec<u64> = items[0].layers.iter().map(|l| l.stats.weight_dma_cycles).collect();
    let layer_x: Vec<u64> =
        items[0].layers.iter().map(|l| l.stats.total_cycles - l.stats.weight_dma_cycles).collect();
    let active = layer_x.iter().filter(|&&c| c > 0).count();
    let blocks = n.min(active).max(1);
    let assign = choose_partition(&layer_w, &layer_x, blocks, items.len());

    // One-time weight preload per block: block weights stay resident
    // across images (each instance runs the same layers every image).
    let mut w = vec![0u64; blocks];
    let mut first_layer = vec![None::<String>; blocks];
    for (li, l) in items[0].layers.iter().enumerate() {
        w[assign[li]] += l.stats.weight_dma_cycles;
        let slot = &mut first_layer[assign[li]];
        if slot.is_none() && l.stats.total_cycles > 0 {
            *slot = Some(l.name.clone());
        }
    }

    // Event schedule: avail[k] is when instance k is next free (after
    // its one-time preload, then after each image's block).
    let mut avail = w.clone();
    let mut busy = vec![0u64; blocks];
    let mut bubbles = vec![0u64; blocks];
    let mut exposed = 0u64;
    let mut makespan = 0u64;
    let mut per_image_w = 0u64;
    for (i, item) in items.iter().enumerate() {
        let mut upstream = 0u64;
        for k in 0..blocks {
            // Resident weights: compute excludes the per-image weight
            // staging the serial schedule pays.
            let x: u64 = item
                .layers
                .iter()
                .enumerate()
                .filter(|(li, _)| assign[*li] == k)
                .map(|(_, l)| l.stats.total_cycles - l.stats.weight_dma_cycles)
                .sum();
            if i == 0 {
                // The preload is exposed only where upstream compute
                // does not already cover the wait.
                exposed += avail[k].saturating_sub(upstream).min(w[k]);
                per_image_w = w.iter().sum();
            }
            let start = upstream.max(avail[k]);
            bubbles[k] += start - avail[k];
            let done = start + x;
            busy[k] += x;
            avail[k] = done;
            upstream = done;
        }
        makespan = upstream;
    }

    let serial = serial_cycles_exact(&items);
    let staged_serial = per_image_w * items.len() as u64;
    Ok(ShardReport {
        placement: Placement::Pipeline,
        instances: n,
        items,
        makespan_cycles: makespan,
        serial_cycles: serial,
        per_instance_busy: busy,
        layer_bubbles: first_layer
            .into_iter()
            .zip(bubbles)
            .map(|(name, b)| (name.unwrap_or_else(|| "host".into()), b))
            .collect(),
        staging_exposed_cycles: exposed,
        staging_hidden_cycles: staged_serial.saturating_sub(exposed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_names_round_trip() {
        for p in Placement::ALL {
            assert_eq!(p.name().parse::<Placement>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn unknown_placement_name_is_an_error() {
        let err = "diagonal".parse::<Placement>().unwrap_err();
        assert!(err.contains("unknown placement 'diagonal'"), "{err}");
        assert!(err.contains("auto | stripe | image | pipeline"), "{err}");
    }

    #[test]
    fn auto_resolution_heuristic() {
        use Placement::*;
        assert_eq!(Auto.resolve(1, 8, 10), Stripe);
        assert_eq!(Auto.resolve(4, 1, 10), Pipeline);
        assert_eq!(Auto.resolve(4, 1, 1), Stripe);
        assert_eq!(Auto.resolve(4, 8, 10), Image);
        assert_eq!(Auto.resolve(4, 2, 10), Pipeline);
        // Explicit placements are never overridden.
        assert_eq!(Stripe.resolve(4, 8, 10), Stripe);
        assert_eq!(Image.resolve(1, 1, 1), Image);
        assert_eq!(Pipeline.resolve(1, 1, 1), Pipeline);
    }

    #[test]
    fn partition_is_contiguous_balanced_and_exhaustive() {
        let cycles = [10, 10, 10, 10, 40, 10, 10, 10];
        let assign = partition_blocks(&cycles, 4);
        assert_eq!(assign.len(), cycles.len());
        // Monotone block ids covering 0..blocks.
        let mut prev = 0;
        for &b in &assign {
            assert!(b >= prev && b <= prev + 1, "contiguous: {assign:?}");
            prev = b;
        }
        assert_eq!(prev, 3, "all blocks used: {assign:?}");
        // The heavy layer does not get lumped with everything after it.
        let heavy_block = assign[4];
        let heavy_total: u64 =
            cycles.iter().zip(&assign).filter(|(_, &b)| b == heavy_block).map(|(c, _)| *c).sum();
        assert!(heavy_total <= 60, "balanced: {assign:?}");
    }

    #[test]
    fn partition_degenerate_cases() {
        assert_eq!(partition_blocks(&[5], 1), vec![0]);
        assert_eq!(partition_blocks(&[5, 5], 2), vec![0, 1]);
        // More blocks requested than layers is prevented by the caller
        // (blocks = n.min(active)); equal counts give one layer each.
        assert_eq!(partition_blocks(&[1, 100, 1], 3), vec![0, 1, 2]);
        // All-zero cycle weights still partition without panicking.
        assert_eq!(partition_blocks(&[0, 0, 0], 2).last(), Some(&1));
    }

    #[test]
    fn cost_model_reproduces_paper_points_and_scales_out() {
        let one = CostModel::for_instances(Variant::U256Opt, 1);
        assert_eq!(one.device, "Arria 10 SX660");
        assert!((one.clock_mhz - 150.0).abs() < 1.0, "256-opt {:.0} MHz", one.clock_mhz);

        let two = CostModel::for_instances(Variant::U256Opt, 2);
        assert_eq!(two.device, "Arria 10 SX660");
        assert!((105.0..=135.0).contains(&two.clock_mhz), "512-opt {:.0} MHz", two.clock_mhz);

        // Four instances fit the GT1150 only at ~93% ALM — past the
        // routability ceiling — so they land on the first hypothetical
        // scale-out device, back at the requested clock.
        let four = CostModel::for_instances(Variant::U256Opt, 4);
        assert!(four.fits, "4x must fit the ladder: {four:?}");
        assert_eq!(four.device, "Arria 10 GT1150 x2");
        assert!(four.clock_mhz >= 140.0, "4x clock {:.0} MHz", four.clock_mhz);
        assert!(four.alm_utilization <= CostModel::ROUTABLE_UTILIZATION);
        assert_eq!(four.arch.bank_tiles, 32_768 / 4);

        let eight = CostModel::for_instances(Variant::U256Opt, 8);
        assert!(eight.fits, "8x must fit the ladder: {eight:?}");
    }

    #[test]
    fn layer_coverage_prefers_stripes_then_groups() {
        // Enough stripes: full coverage.
        assert_eq!(layer_stripe_coverage("c", 4, 7, Some(2)).1, 4);
        // Too few stripes: the group split caps coverage.
        assert_eq!(layer_stripe_coverage("c", 4, 1, Some(2)).1, 2);
        assert_eq!(layer_stripe_coverage("c", 4, 1, Some(16)).1, 4);
        // Pool layers cannot split groups.
        assert_eq!(layer_stripe_coverage("p", 4, 1, None).1, 1);
    }
}
