//! Stripe planning: subdividing a layer so input + output fit the banks.
//!
//! Large layers are subdivided into stripes whose input and output both
//! fit the SRAM banks (paper Fig. 2), with the halo re-fetch overhead
//! that inflates the ideal throughput by "~15% but varies by layer".
//! The planner is pure geometry — every backend executes the same stripe
//! plan, which is what makes their cycle counts and DMA traffic
//! comparable.

use crate::driver::DriverError;
use crate::isa::PoolPadOp;

/// One stripe of a pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stripe {
    /// Output tile rows [a, b).
    pub(crate) out_a: usize,
    pub(crate) out_b: usize,
    /// Input tile rows [lo, hi) resident.
    pub(crate) in_lo: usize,
    pub(crate) in_hi: usize,
}

/// Input tile-row range needed for output tile rows `[a, b)`.
pub(crate) fn input_rows_for(op: Option<PoolPadOp>, a: usize, b: usize, in_rows: usize) -> (usize, usize) {
    let (lo, hi) = match op {
        // Convolution on pre-padded input: out row r needs in rows r..r+2.
        None => (a, b + 1),
        Some(PoolPadOp::MaxPool { k, stride }) => {
            let (k, s) = (k as usize, stride as usize);
            (a * s, ((4 * b - 1) * s + k - 1) / 4 + 1)
        }
        Some(PoolPadOp::Pad { amount }) => {
            let p = amount as usize;
            ((4 * a).saturating_sub(p) / 4, (4 * b).saturating_sub(p).div_ceil(4).max(1))
        }
    };
    (lo.min(in_rows), hi.min(in_rows).max(lo.min(in_rows)))
}

/// Plans stripes so input + output words fit the banks.
pub(crate) fn plan_stripes(
    layer: &str,
    op: Option<PoolPadOp>,
    out_rows: usize,
    in_rows: usize,
    words_in_per_row: usize,
    words_out_per_row: usize,
    bank_tiles: usize,
) -> Result<Vec<Stripe>, DriverError> {
    let fits = |a: usize, ro: usize| {
        let (lo, hi) = input_rows_for(op, a, a + ro, in_rows);
        (hi - lo) * words_in_per_row + ro * words_out_per_row <= bank_tiles
    };
    let mut stripes = Vec::new();
    let mut a = 0;
    while a < out_rows {
        let mut ro = out_rows - a;
        while ro > 1 && !fits(a, ro) {
            ro -= 1;
        }
        if !fits(a, ro) {
            let (lo, hi) = input_rows_for(op, a, a + 1, in_rows);
            return Err(DriverError::LayerTooLarge {
                layer: layer.to_string(),
                needed: (hi - lo) * words_in_per_row + words_out_per_row,
                capacity: bank_tiles,
            });
        }
        let (in_lo, in_hi) = input_rows_for(op, a, a + ro, in_rows);
        stripes.push(Stripe { out_a: a, out_b: a + ro, in_lo, in_hi });
        a += ro;
    }
    Ok(stripes)
}

#[cfg(test)]
mod stripe_math_tests {
    use super::*;

    #[test]
    fn conv_needs_one_halo_row_below() {
        // Output tile rows [a, b) read input tile rows [a, b+1) (3x3 conv
        // on pre-padded input anchored at the same tile row).
        assert_eq!(input_rows_for(None, 0, 4, 100), (0, 5));
        assert_eq!(input_rows_for(None, 7, 9, 100), (7, 10));
        // Clamped at the input extent.
        assert_eq!(input_rows_for(None, 7, 9, 9), (7, 9));
    }

    #[test]
    fn pool_2x2_s2_maps_rows_two_to_one() {
        let op = Some(PoolPadOp::MaxPool { k: 2, stride: 2 });
        // Out tile row r covers element rows 4r..4r+4 -> in elements
        // 8r..8r+8 -> in tile rows 2r..2r+2.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 2));
        assert_eq!(input_rows_for(op, 3, 5, 100), (6, 10));
    }

    #[test]
    fn pool_3x3_s2_needs_overlap_row() {
        let op = Some(PoolPadOp::MaxPool { k: 3, stride: 2 });
        // Last element of out tile row 0 is row 3: window rows 6..9 ->
        // in tile rows 0..3.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 3));
    }

    #[test]
    fn pad_shifts_rows_up_by_the_amount() {
        let op = Some(PoolPadOp::Pad { amount: 1 });
        // Out tile row 0 (elements 0..4) reads in elements -1..3 -> tile 0.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 1));
        // Out tile row 2 (elements 8..12) reads in elements 7..11 ->
        // tiles 1..3.
        assert_eq!(input_rows_for(op, 2, 3, 100), (1, 3));
    }

    #[test]
    fn planner_covers_output_exactly_once_under_pressure() {
        let stripes = plan_stripes("t", None, 17, 18, 10, 12, 80).expect("fits");
        let mut next = 0;
        for s in &stripes {
            assert_eq!(s.out_a, next, "no gaps or overlaps");
            assert!(s.out_b > s.out_a);
            // Capacity respected.
            assert!((s.in_hi - s.in_lo) * 10 + (s.out_b - s.out_a) * 12 <= 80);
            next = s.out_b;
        }
        assert_eq!(next, 17);
        assert!(stripes.len() > 1, "pressure must force striping");
    }

    #[test]
    fn planner_reports_impossible_capacity() {
        let err = plan_stripes("t", None, 4, 5, 10, 12, 20).unwrap_err();
        match err {
            DriverError::LayerTooLarge { needed, capacity, .. } => {
                assert!(needed > capacity);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    mod planner_properties {
        use super::*;
        use proptest::prelude::*;

        /// Pass geometries as they occur on residual blocks: the conv
        /// pass (including the 1x1 projection, where the output extent
        /// equals the input extent), the skip-branch downsample pool, and
        /// the pre-pad pass feeding the next conv.
        fn geometry_strategy() -> impl Strategy<Value = (Option<PoolPadOp>, usize, usize)> {
            let op = prop_oneof![
                Just(None),
                Just(Some(PoolPadOp::MaxPool { k: 2, stride: 2 })),
                Just(Some(PoolPadOp::MaxPool { k: 3, stride: 2 })),
                Just(Some(PoolPadOp::Pad { amount: 1 })),
            ];
            (op, 1usize..=40).prop_map(|(op, out_rows)| {
                let in_rows = match op {
                    // Conv on pre-padded input: one halo row below.
                    None => out_rows + 1,
                    Some(PoolPadOp::MaxPool { stride, .. }) => out_rows * stride as usize,
                    Some(PoolPadOp::Pad { amount }) => {
                        (4 * out_rows).saturating_sub(2 * amount as usize).div_ceil(4).max(1)
                    }
                };
                (op, out_rows, in_rows)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Against the row-range oracle: a successful plan covers the
            /// output rows exactly once in order, every stripe's resident
            /// input range is exactly what `input_rows_for` demands, and
            /// input + output words fit the bank on every stripe.
            #[test]
            fn plans_cover_output_exactly_once_within_capacity(
                geom in geometry_strategy(),
                words_in in 1usize..=16,
                words_out in 1usize..=16,
                bank_tiles in 1usize..=256,
            ) {
                let (op, out_rows, in_rows) = geom;
                match plan_stripes("p", op, out_rows, in_rows, words_in, words_out, bank_tiles) {
                    Ok(stripes) => {
                        let mut next = 0;
                        for s in &stripes {
                            prop_assert_eq!(s.out_a, next, "gap or overlap at {}", s.out_a);
                            prop_assert!(s.out_b > s.out_a, "empty stripe");
                            let (lo, hi) = input_rows_for(op, s.out_a, s.out_b, in_rows);
                            prop_assert_eq!((s.in_lo, s.in_hi), (lo, hi));
                            prop_assert!(
                                (hi - lo) * words_in + (s.out_b - s.out_a) * words_out <= bank_tiles,
                                "stripe [{}, {}) over capacity", s.out_a, s.out_b
                            );
                            next = s.out_b;
                        }
                        prop_assert_eq!(next, out_rows, "output rows not fully covered");
                    }
                    Err(DriverError::LayerTooLarge { needed, capacity, .. }) => {
                        // Failure is only legal when some single output row
                        // already overflows the bank.
                        prop_assert_eq!(capacity, bank_tiles);
                        prop_assert!(needed > capacity);
                        let overflow = (0..out_rows).any(|a| {
                            let (lo, hi) = input_rows_for(op, a, a + 1, in_rows);
                            (hi - lo) * words_in + words_out > bank_tiles
                        });
                        prop_assert!(overflow, "rejected a plannable layer");
                    }
                    Err(other) => prop_assert!(false, "unexpected error {:?}", other),
                }
            }

            /// The planner is greedy-maximal: no stripe could have taken
            /// one more output row without overflowing the bank (except
            /// the last, which is bounded by the layer itself).
            #[test]
            fn stripes_are_maximal(
                geom in geometry_strategy(),
                words_in in 1usize..=16,
                words_out in 1usize..=16,
                bank_tiles in 1usize..=256,
            ) {
                let (op, out_rows, in_rows) = geom;
                let Ok(stripes) = plan_stripes("p", op, out_rows, in_rows, words_in, words_out, bank_tiles)
                else { return Ok(()) };
                for s in &stripes {
                    if s.out_b == out_rows {
                        continue;
                    }
                    let (lo, hi) = input_rows_for(op, s.out_a, s.out_b + 1, in_rows);
                    prop_assert!(
                        (hi - lo) * words_in + (s.out_b + 1 - s.out_a) * words_out > bank_tiles,
                        "stripe [{}, {}) left capacity on the table", s.out_a, s.out_b
                    );
                }
            }
        }
    }
}
