//! Stripe planning: subdividing a layer so input + output fit the banks.
//!
//! Large layers are subdivided into stripes whose input and output both
//! fit the SRAM banks (paper Fig. 2), with the halo re-fetch overhead
//! that inflates the ideal throughput by "~15% but varies by layer".
//! The planner is pure geometry — every backend executes the same stripe
//! plan, which is what makes their cycle counts and DMA traffic
//! comparable.

use crate::driver::DriverError;
use crate::isa::PoolPadOp;

/// One stripe of a pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stripe {
    /// Output tile rows [a, b).
    pub(crate) out_a: usize,
    pub(crate) out_b: usize,
    /// Input tile rows [lo, hi) resident.
    pub(crate) in_lo: usize,
    pub(crate) in_hi: usize,
}

/// Input tile-row range needed for output tile rows `[a, b)`.
pub(crate) fn input_rows_for(op: Option<PoolPadOp>, a: usize, b: usize, in_rows: usize) -> (usize, usize) {
    let (lo, hi) = match op {
        // Convolution on pre-padded input: out row r needs in rows r..r+2.
        None => (a, b + 1),
        Some(PoolPadOp::MaxPool { k, stride }) => {
            let (k, s) = (k as usize, stride as usize);
            (a * s, ((4 * b - 1) * s + k - 1) / 4 + 1)
        }
        Some(PoolPadOp::Pad { amount }) => {
            let p = amount as usize;
            ((4 * a).saturating_sub(p) / 4, (4 * b).saturating_sub(p).div_ceil(4).max(1))
        }
    };
    (lo.min(in_rows), hi.min(in_rows).max(lo.min(in_rows)))
}

/// Plans stripes so input + output words fit the banks.
pub(crate) fn plan_stripes(
    layer: &str,
    op: Option<PoolPadOp>,
    out_rows: usize,
    in_rows: usize,
    words_in_per_row: usize,
    words_out_per_row: usize,
    bank_tiles: usize,
) -> Result<Vec<Stripe>, DriverError> {
    let fits = |a: usize, ro: usize| {
        let (lo, hi) = input_rows_for(op, a, a + ro, in_rows);
        (hi - lo) * words_in_per_row + ro * words_out_per_row <= bank_tiles
    };
    let mut stripes = Vec::new();
    let mut a = 0;
    while a < out_rows {
        let mut ro = out_rows - a;
        while ro > 1 && !fits(a, ro) {
            ro -= 1;
        }
        if !fits(a, ro) {
            let (lo, hi) = input_rows_for(op, a, a + 1, in_rows);
            return Err(DriverError::LayerTooLarge {
                layer: layer.to_string(),
                needed: (hi - lo) * words_in_per_row + words_out_per_row,
                capacity: bank_tiles,
            });
        }
        let (in_lo, in_hi) = input_rows_for(op, a, a + ro, in_rows);
        stripes.push(Stripe { out_a: a, out_b: a + ro, in_lo, in_hi });
        a += ro;
    }
    Ok(stripes)
}

#[cfg(test)]
mod stripe_math_tests {
    use super::*;

    #[test]
    fn conv_needs_one_halo_row_below() {
        // Output tile rows [a, b) read input tile rows [a, b+1) (3x3 conv
        // on pre-padded input anchored at the same tile row).
        assert_eq!(input_rows_for(None, 0, 4, 100), (0, 5));
        assert_eq!(input_rows_for(None, 7, 9, 100), (7, 10));
        // Clamped at the input extent.
        assert_eq!(input_rows_for(None, 7, 9, 9), (7, 9));
    }

    #[test]
    fn pool_2x2_s2_maps_rows_two_to_one() {
        let op = Some(PoolPadOp::MaxPool { k: 2, stride: 2 });
        // Out tile row r covers element rows 4r..4r+4 -> in elements
        // 8r..8r+8 -> in tile rows 2r..2r+2.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 2));
        assert_eq!(input_rows_for(op, 3, 5, 100), (6, 10));
    }

    #[test]
    fn pool_3x3_s2_needs_overlap_row() {
        let op = Some(PoolPadOp::MaxPool { k: 3, stride: 2 });
        // Last element of out tile row 0 is row 3: window rows 6..9 ->
        // in tile rows 0..3.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 3));
    }

    #[test]
    fn pad_shifts_rows_up_by_the_amount() {
        let op = Some(PoolPadOp::Pad { amount: 1 });
        // Out tile row 0 (elements 0..4) reads in elements -1..3 -> tile 0.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 1));
        // Out tile row 2 (elements 8..12) reads in elements 7..11 ->
        // tiles 1..3.
        assert_eq!(input_rows_for(op, 2, 3, 100), (1, 3));
    }

    #[test]
    fn planner_covers_output_exactly_once_under_pressure() {
        let stripes = plan_stripes("t", None, 17, 18, 10, 12, 80).expect("fits");
        let mut next = 0;
        for s in &stripes {
            assert_eq!(s.out_a, next, "no gaps or overlaps");
            assert!(s.out_b > s.out_a);
            // Capacity respected.
            assert!((s.in_hi - s.in_lo) * 10 + (s.out_b - s.out_a) * 12 <= 80);
            next = s.out_b;
        }
        assert_eq!(next, 17);
        assert!(stripes.len() > 1, "pressure must force striping");
    }

    #[test]
    fn planner_reports_impossible_capacity() {
        let err = plan_stripes("t", None, 4, 5, 10, 12, 20).unwrap_err();
        match err {
            DriverError::LayerTooLarge { needed, capacity, .. } => {
                assert!(needed > capacity);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
