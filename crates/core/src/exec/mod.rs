//! Execution backends behind the driver: the staged stripe pipeline and
//! the [`StripeBackend`] trait its interchangeable targets implement.
//!
//! The paper's accelerator stack is multi-backend in spirit — the same
//! per-layer instructions drive a transaction-level model, a cycle-exact
//! simulation and (on the FPGA) the real engines. This module makes that
//! shape explicit:
//!
//! * [`pipeline`] — the staged per-layer pipeline every backend shares:
//!   stage FM + packed weights in DDR, execute stripes (DMA in →
//!   instruction batch → DMA out), collect [`PassStats`] and counters;
//! * [`sched`] — the multi-instance placement scheduler above the
//!   pipeline: stripe-parallel, image-parallel and layer-pipelined
//!   sharding across N instances, with the HLS-derived per-N cost model;
//! * `stripes` — pure stripe-planning geometry under bank capacity;
//! * `model` — [`BackendKind::Model`]: closed-form cycles, functional
//!   arithmetic from the golden reference (fast; the default);
//! * `cycle` — [`BackendKind::Cycle`]: cycle-exact simulation of all
//!   kernels on the `zskip-sim` engine (slow; for validation);
//! * `cpu` — [`BackendKind::Cpu`]: functional results from the
//!   `zskip-nn` SIMD `_into` kernels on a per-session [`Scratch`] arena,
//!   cycles estimated by the closed-form model (the fastest functional
//!   path).
//!
//! All backends are bit-identical in output and DMA-fault behaviour, and
//! Model/Cpu are cycle-identical — see `tests/backend_equivalence.rs`
//! and `docs/ARCHITECTURE.md` (which also documents how to add a
//! backend).

pub(crate) mod cpu;
pub(crate) mod cycle;
pub(crate) mod model;
pub mod pipeline;
pub mod sched;
pub(crate) mod stripes;

pub use pipeline::{fm_to_bytes, SocHandle};

use crate::driver::{Driver, DriverError};
use crate::isa::PoolPadOp;
use crate::report::PassStats;
use zskip_nn::conv::QuantConvWeights;
use zskip_nn::scratch::Scratch;
use zskip_quant::Sm8;
use zskip_tensor::{Shape, TiledFeatureMap};

/// Which execution backend computes each stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Transaction-level model: closed-form cycles (fast; default).
    Model,
    /// Cycle-exact simulation of all kernels (slow; for validation).
    Cycle,
    /// Host SIMD kernels for the arithmetic, closed-form cycle model for
    /// the statistics (fastest functional path).
    Cpu,
}

impl BackendKind {
    /// All backends, in documentation order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Model, BackendKind::Cycle, BackendKind::Cpu];

    /// The CLI/serialization name (`model` | `cycle` | `cpu`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Model => "model",
            BackendKind::Cycle => "cycle",
            BackendKind::Cpu => "cpu",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendKind, String> {
        match s {
            "model" => Ok(BackendKind::Model),
            "cycle" => Ok(BackendKind::Cycle),
            "cpu" => Ok(BackendKind::Cpu),
            other => Err(format!("unknown backend '{other}' (use model | cycle | cpu)")),
        }
    }
}

/// Per-pass execution context a [`StripeBackend`] runs against: the
/// driver configuration, the SoC models (DDR + DMA) shared across the
/// layers of one inference, and the session's scratch arena.
pub struct PassCtx<'a> {
    /// The driver (configuration, flags, fault plan).
    pub driver: &'a Driver,
    /// SoC context: DDR staging + DMA engine, shared across passes.
    pub soc: &'a mut SocHandle,
    /// Per-session scratch arena (CPU-backend compute buffers).
    pub scratch: &'a mut Scratch,
    /// DDR address of the region the pass's input feature map is staged
    /// in — the producing plan slot's region during a network run
    /// ([`pipeline::slot_addr`]).
    pub src_addr: usize,
    /// DDR address of the region the pass's output feature map is
    /// written back to.
    pub dst_addr: usize,
}

/// One execution target for the staged per-layer pipeline.
///
/// The contract every implementation must honour:
///
/// * **Bit-identical outputs.** The returned feature map must equal the
///   golden software reference (`QuantizedNetwork::forward_quant`)
///   exactly, including the zeroed round-up region beyond the logical
///   extent.
/// * **Shared pipeline.** Stripe planning, DDR staging and DMA issue go
///   through [`pipeline`] so DMA traffic and injected `dma:*` faults
///   behave identically across backends (fault detection is
///   value-independent).
/// * **Honest statistics.** `PassStats` cycles must come from an actual
///   execution or a validated model of one — never fabricated.
///
/// See `docs/ARCHITECTURE.md` for how to add a backend.
pub trait StripeBackend {
    /// Runs one convolution pass (input already padded; stride 1).
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    fn conv_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError>;

    /// Runs one pad or max-pool pass.
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    fn poolpad_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError>;
}

/// The backend implementation for a [`BackendKind`].
pub fn backend(kind: BackendKind) -> &'static dyn StripeBackend {
    match kind {
        BackendKind::Model => &model::ModelBackend,
        BackendKind::Cycle => &cycle::CycleBackend,
        BackendKind::Cpu => &cpu::CpuBackend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn unknown_backend_name_is_an_error() {
        let err = "gpu".parse::<BackendKind>().unwrap_err();
        assert!(err.contains("unknown backend 'gpu'"), "{err}");
        assert!(err.contains("model | cycle | cpu"), "{err}");
    }
}
