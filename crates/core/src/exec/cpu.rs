//! [`BackendKind::Cpu`]: host SIMD kernels with modelled cycles.
//!
//! The fastest functional path: layer arithmetic runs through the
//! `zskip-nn` SIMD `_into` kernels (tier-dispatched, allocation-free on
//! a warmed [`Scratch`] arena), while cycle counts, activity counters
//! and DDR traffic come from running the shared staged pipeline with
//! the closed-form model's arithmetic switched off — which is exact,
//! because those statistics are value-independent.
//!
//! Bit-identical outputs follow by transitivity: the SIMD kernels equal
//! the scalar golden reference (cross-tier property suite,
//! `tests/kernel_tiers.rs`), and the Model backend's functional path
//! equals the same reference (`tests/backend_equivalence.rs`). Because
//! the stats pass issues the very same DMA descriptor sequence, injected
//! `dma:*` faults fire and surface identically too.
//!
//! [`BackendKind::Cpu`]: crate::exec::BackendKind::Cpu
//! [`Scratch`]: zskip_nn::scratch::Scratch

use super::pipeline::{self, fm_to_tensor_into, Exec};
use super::{PassCtx, StripeBackend};
use crate::driver::DriverError;
use crate::isa::PoolPadOp;
use crate::report::PassStats;
use zskip_nn::conv::{conv2d_quant_into, conv2d_quant_into_pool, QuantConvWeights};
use zskip_nn::gemm::{conv2d_gemm_quant_pool, conv2d_gemm_quant_tier};
use zskip_nn::pool::maxpool_quant_into;
use zskip_nn::simd::KernelTier;
use zskip_quant::Sm8;
use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

/// The host-SIMD backend (see module docs).
pub(crate) struct CpuBackend;

/// The stats-only executor the CPU backend charges cycles with.
const STATS: Exec = Exec::Model { functional: false };

impl StripeBackend for CpuBackend {
    fn conv_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        // Cycles, counters, DDR traffic and fault behaviour from the
        // staged pipeline; its (uncomputed) output tiles are discarded.
        let (_, stats) = pipeline::conv_pass(ctx.driver, ctx.soc, STATS, name, input, qw, out_shape, ctx.src_addr, ctx.dst_addr)?;
        let (src, dst, acc, tier, pool) = ctx.scratch.pass_buffers_pool();
        fm_to_tensor_into(input, src);
        // The pipeline input is pre-padded by the explicit pad pass and
        // stride-1 by the driver's geometry checks, so pad = 0 here
        // yields exactly `out_shape`. With a worker pool attached the
        // output channels split across it — bit-exact at any width.
        //
        // Kernel choice: on SIMD tiers the row-panel GEMM is the fastest
        // host path by a wide margin (see `BENCH_kernels.json`); on the
        // scalar tier the packed direct conv wins, and keeping it there
        // also exercises the accelerator-analogue kernel end-to-end under
        // `ZSKIP_KERNEL=scalar`. All variants are bit-identical
        // (cross-kernel property suite, `tests/kernel_tiers.rs`).
        if tier == KernelTier::Scalar {
            match pool {
                Some(p) => conv2d_quant_into_pool(src, qw, 1, 0, tier, p, acc, dst),
                None => conv2d_quant_into(src, qw, 1, 0, tier, acc, dst),
            }
            debug_assert_eq!(dst.shape(), out_shape);
            Ok((TiledFeatureMap::from_tensor(dst), stats))
        } else {
            let out = match pool {
                Some(p) => conv2d_gemm_quant_pool(src, qw, 1, 0, tier, p),
                None => conv2d_gemm_quant_tier(src, qw, 1, 0, tier),
            };
            debug_assert_eq!(out.shape(), out_shape);
            Ok((TiledFeatureMap::from_tensor(&out), stats))
        }
    }

    fn poolpad_pass(
        &self,
        ctx: &mut PassCtx<'_>,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        let (_, stats) = pipeline::poolpad_pass(ctx.driver, ctx.soc, STATS, name, input, op, out_shape, ctx.src_addr, ctx.dst_addr)?;
        let (src, dst, _, _) = ctx.scratch.pass_buffers();
        fm_to_tensor_into(input, src);
        match op {
            PoolPadOp::MaxPool { k, stride } => {
                maxpool_quant_into(src, k as usize, stride as usize, dst);
            }
            PoolPadOp::Pad { amount } => pad_into(src, amount as usize, dst),
        }
        debug_assert_eq!(dst.shape(), out_shape);
        Ok((TiledFeatureMap::from_tensor(dst), stats))
    }
}

/// Zero-pads `src` by `pad` on each spatial side into `dst`, reusing the
/// allocation (the in-place analogue of [`Tensor::padded`]).
fn pad_into(src: &Tensor<Sm8>, pad: usize, dst: &mut Tensor<Sm8>) {
    let s = src.shape();
    dst.reset(s.c, s.h + 2 * pad, s.w + 2 * pad);
    for c in 0..s.c {
        for y in 0..s.h {
            for x in 0..s.w {
                dst[(c, y + pad, x + pad)] = src[(c, y, x)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fm_round_trip_preserves_logical_extent() {
        let t = Tensor::from_fn(3, 7, 5, |c, y, x| Sm8::from_i32_saturating((c * 17 + y * 5 + x) as i32 - 30));
        let fm = TiledFeatureMap::from_tensor(&t);
        let mut back = Tensor::zeros(1, 1, 1);
        fm_to_tensor_into(&fm, &mut back);
        assert_eq!(back, t);
    }

    #[test]
    fn pad_into_matches_padded() {
        let t = Tensor::from_fn(2, 6, 6, |c, y, x| Sm8::from_i32_saturating((c + y * 3 + x) as i32 - 8));
        let mut dst = Tensor::zeros(1, 1, 1);
        pad_into(&t, 2, &mut dst);
        assert_eq!(dst, t.padded(2));
    }
}
