//! The four dual-port on-FPGA SRAM banks.
//!
//! "An entire tile of data (16 values) can be read from an SRAM bank in a
//! single cycle. The on-FPGA SRAM banks are dual-port: reads are from port
//! A; writes are to port B." (paper §III-A). The paper's RTL post-
//! processing step gave reads and writes exclusive ports precisely to
//! avoid arbitration; we enforce one read and one write per bank per cycle
//! and count violations as conflicts.

use crate::config::AccelConfig;
use zskip_quant::Sm8;
use zskip_soc::dma::{TileStore, TILE_BYTES};
use zskip_tensor::Tile;

/// Per-bank access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Port-A reads performed.
    pub reads: u64,
    /// Port-B writes performed.
    pub writes: u64,
    /// Read attempts refused because port A was busy this cycle.
    pub read_conflicts: u64,
    /// Write attempts refused because port B was busy this cycle.
    pub write_conflicts: u64,
}

/// A set of SRAM banks storing tile words of [`Sm8`] values.
///
/// Port exclusivity is tracked by stamping each port with the cycle of its
/// last grant instead of a flag cleared every cycle: a port is busy iff its
/// stamp equals the current cycle. This removes the need for any per-cycle
/// maintenance call, so an event-driven simulation can park every kernel
/// touching the banks without someone having to tick just to reset ports.
#[derive(Debug, Clone)]
pub struct BankSet {
    banks: Vec<Vec<Tile<Sm8>>>,
    read_stamp: Vec<u64>,
    write_stamp: Vec<u64>,
    stats: Vec<BankStats>,
}

impl BankSet {
    /// Creates zeroed banks per the configuration.
    pub fn new(config: &AccelConfig) -> BankSet {
        Self::with_geometry(AccelConfig::BANKS, config.bank_tiles)
    }

    /// Creates zeroed banks with explicit geometry.
    pub fn with_geometry(banks: usize, tiles_per_bank: usize) -> BankSet {
        BankSet {
            banks: vec![vec![Tile::zero(); tiles_per_bank]; banks],
            read_stamp: vec![u64::MAX; banks],
            write_stamp: vec![u64::MAX; banks],
            stats: vec![BankStats::default(); banks],
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Capacity of each bank in tile words.
    pub fn capacity(&self) -> usize {
        self.banks.first().map_or(0, Vec::len)
    }

    /// Cycle-free read (host/DMA-side or model backend; no port
    /// accounting).
    ///
    /// # Panics
    /// Panics on out-of-range bank or address.
    pub fn peek(&self, bank: usize, addr: usize) -> Tile<Sm8> {
        self.banks[bank][addr]
    }

    /// Cycle-free write (host/DMA-side or model backend).
    pub fn poke(&mut self, bank: usize, addr: usize, tile: Tile<Sm8>) {
        self.banks[bank][addr] = tile;
    }

    /// Port-A read at the given cycle: succeeds at most once per bank per
    /// cycle.
    pub fn read_port_a(&mut self, bank: usize, addr: usize, cycle: u64) -> Option<Tile<Sm8>> {
        if self.read_stamp[bank] == cycle {
            self.stats[bank].read_conflicts += 1;
            return None;
        }
        self.read_stamp[bank] = cycle;
        self.stats[bank].reads += 1;
        Some(self.banks[bank][addr])
    }

    /// Port-B write at the given cycle: succeeds at most once per bank per
    /// cycle.
    pub fn write_port_b(&mut self, bank: usize, addr: usize, tile: Tile<Sm8>, cycle: u64) -> bool {
        if self.write_stamp[bank] == cycle {
            self.stats[bank].write_conflicts += 1;
            return false;
        }
        self.write_stamp[bank] = cycle;
        self.stats[bank].writes += 1;
        self.banks[bank][addr] = tile;
        true
    }

    /// Per-bank statistics.
    pub fn stats(&self) -> &[BankStats] {
        &self.stats
    }

    /// Total reads across banks.
    pub fn total_reads(&self) -> u64 {
        self.stats.iter().map(|s| s.reads).sum()
    }

    /// Total writes across banks.
    pub fn total_writes(&self) -> u64 {
        self.stats.iter().map(|s| s.writes).sum()
    }
}

impl TileStore for BankSet {
    fn banks(&self) -> usize {
        self.bank_count()
    }

    fn bank_capacity(&self) -> usize {
        self.capacity()
    }

    fn write_tile_bytes(&mut self, bank: usize, index: usize, bytes: &[u8; TILE_BYTES]) {
        let mut tile = Tile::zero();
        for (i, b) in bytes.iter().enumerate() {
            tile.as_mut_array()[i] = Sm8::from_bits(*b);
        }
        self.banks[bank][index] = tile;
    }

    fn read_tile_bytes(&self, bank: usize, index: usize) -> [u8; TILE_BYTES] {
        let tile = &self.banks[bank][index];
        let mut out = [0u8; TILE_BYTES];
        for (i, v) in tile.as_array().iter().enumerate() {
            out[i] = v.to_bits();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_of(v: i32) -> Tile<Sm8> {
        Tile::from_fn(|_, _| Sm8::from_i32_saturating(v))
    }

    #[test]
    fn poke_peek_round_trip() {
        let mut b = BankSet::with_geometry(4, 8);
        b.poke(2, 3, tile_of(7));
        assert_eq!(b.peek(2, 3), tile_of(7));
        assert_eq!(b.peek(2, 4), Tile::zero());
    }

    #[test]
    fn one_read_per_bank_per_cycle() {
        let mut b = BankSet::with_geometry(4, 8);
        b.poke(0, 0, tile_of(1));
        b.poke(0, 1, tile_of(2));
        assert_eq!(b.read_port_a(0, 0, 0), Some(tile_of(1)));
        assert_eq!(b.read_port_a(0, 1, 0), None, "port A busy");
        // Other banks unaffected.
        assert!(b.read_port_a(1, 0, 0).is_some());
        // Next cycle: port free again.
        assert_eq!(b.read_port_a(0, 1, 1), Some(tile_of(2)));
        assert_eq!(b.stats()[0].read_conflicts, 1);
    }

    #[test]
    fn reads_and_writes_use_independent_ports() {
        let mut b = BankSet::with_geometry(4, 8);
        b.poke(0, 0, tile_of(5));
        // Same cycle: read port A and write port B on the same bank.
        assert!(b.read_port_a(0, 0, 0).is_some());
        assert!(b.write_port_b(0, 1, tile_of(9), 0));
        assert!(!b.write_port_b(0, 2, tile_of(9), 0), "port B busy");
        assert_eq!(b.peek(0, 1), tile_of(9));
        assert_eq!(b.stats()[0].write_conflicts, 1);
        assert_eq!(b.total_reads(), 1);
        assert_eq!(b.total_writes(), 1);
    }

    #[test]
    fn tile_store_preserves_sign_magnitude_bits() {
        let mut b = BankSet::with_geometry(2, 4);
        let mut bytes = [0u8; TILE_BYTES];
        bytes[0] = 0x85; // -5 in sign+magnitude
        bytes[15] = 0x7f; // +127
        b.write_tile_bytes(1, 2, &bytes);
        assert_eq!(b.peek(1, 2).as_array()[0].to_i32(), -5);
        assert_eq!(b.peek(1, 2).as_array()[15].to_i32(), 127);
        assert_eq!(b.read_tile_bytes(1, 2), bytes);
    }
}
