//! Inference statistics: per-pass, per-layer and whole-network reports.

use crate::config::AccelConfig;
use zskip_quant::Sm8;
use zskip_sim::Counters;

/// Statistics of one accelerator pass (pad, conv, or pool).
#[derive(Debug, Clone, Default)]
pub struct PassStats {
    /// Compute cycles of the busiest instance.
    pub compute_cycles: u64,
    /// Per-instance compute cycles.
    pub per_instance_cycles: Vec<u64>,
    /// IFM + OFM DMA cycles (shared System I bus).
    pub io_dma_cycles: u64,
    /// Scratchpad weight preload cycles.
    pub weight_dma_cycles: u64,
    /// Wall cycles with the overlap policy:
    /// `max(compute, io_dma) + weight_dma`.
    pub total_cycles: u64,
    /// Number of stripes.
    pub stripes: usize,
    /// Ideal-inflating striping factor: fetched input tile rows over the
    /// un-striped minimum (>= 1).
    pub striping_factor: f64,
    /// Merged activity counters.
    pub counters: Counters,
}

impl PassStats {
    /// Folds per-instance cycles into the overlap-policy wall cycles.
    pub(crate) fn finish(&mut self) {
        self.compute_cycles = self.per_instance_cycles.iter().copied().max().unwrap_or(0);
        self.total_cycles = self.compute_cycles.max(self.io_dma_cycles) + self.weight_dma_cycles;
    }

    /// Accumulates another pass (e.g. pad + conv of the same layer).
    /// Passes run back to back, so instance `k`'s cycles add
    /// element-wise; `compute_cycles` stays the sum of per-pass maxima
    /// (there is a barrier between passes, not between instances).
    pub fn merge(&mut self, other: &PassStats) {
        if self.per_instance_cycles.len() < other.per_instance_cycles.len() {
            self.per_instance_cycles.resize(other.per_instance_cycles.len(), 0);
        }
        for (mine, theirs) in self.per_instance_cycles.iter_mut().zip(&other.per_instance_cycles) {
            *mine += theirs;
        }
        self.compute_cycles += other.compute_cycles;
        self.io_dma_cycles += other.io_dma_cycles;
        self.weight_dma_cycles += other.weight_dma_cycles;
        self.total_cycles += other.total_cycles;
        self.stripes += other.stripes;
        self.striping_factor = self.striping_factor.max(other.striping_factor);
        self.counters.merge(&other.counters);
    }
}

/// Per-layer inference report.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name from the network spec.
    pub name: String,
    /// `true` for conv layers (the ones the paper's figures evaluate).
    pub is_conv: bool,
    /// Dense MAC count of the layer (pruning does not reduce this; the
    /// paper's *effective* GOPS divides dense work by elapsed time).
    pub dense_macs: u64,
    /// Accelerator statistics (zeroed for host-executed layers).
    pub stats: PassStats,
}

impl LayerReport {
    /// Elapsed seconds at the configured clock.
    pub fn seconds(&self, config: &AccelConfig) -> f64 {
        self.stats.total_cycles as f64 * config.cycle_seconds()
    }

    /// Effective GOPS: dense ops (2 x MACs) over elapsed time.
    pub fn effective_gops(&self, config: &AccelConfig) -> f64 {
        let s = self.seconds(config);
        if s == 0.0 {
            0.0
        } else {
            2.0 * self.dense_macs as f64 / s / 1e9
        }
    }
}

/// Whole-network inference report.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Per-layer reports, in execution order.
    pub layers: Vec<LayerReport>,
    /// Final quantized outputs (logits for classifier networks).
    pub output: Vec<Sm8>,
    /// Total accelerator cycles across layers.
    pub total_cycles: u64,
    /// Total DDR traffic in bytes.
    pub ddr_bytes: u64,
}

impl InferenceReport {
    /// Conv-layer reports only (the population of paper Figs. 7-8).
    pub fn conv_layers(&self) -> impl Iterator<Item = &LayerReport> {
        self.layers.iter().filter(|l| l.is_conv)
    }

    /// Mean effective GOPS across conv layers (paper Fig. 8 "average").
    pub fn mean_gops(&self, config: &AccelConfig) -> f64 {
        let v: Vec<f64> = self.conv_layers().map(|l| l.effective_gops(config)).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Best conv-layer effective GOPS (paper Fig. 8 "peak").
    pub fn peak_gops(&self, config: &AccelConfig) -> f64 {
        self.conv_layers().map(|l| l.effective_gops(config)).fold(0.0, f64::max)
    }

    /// Mean MAC-array switching activity over the run: actually-issued
    /// multiplies over peak slots. Feeds the power model's average-power
    /// estimate (peak power uses activity 1.0).
    pub fn mean_mac_activity(&self, config: &AccelConfig) -> f64 {
        let macs: u64 = self.layers.iter().map(|l| l.stats.counters.get("macs")).sum();
        let cycles: u64 = self.layers.iter().map(|l| l.stats.total_cycles).sum();
        if cycles == 0 {
            return 0.0;
        }
        (macs as f64 / (cycles as f64 * config.macs_per_cycle() as f64)).min(1.0)
    }
}
