//! The accelerator instruction set.
//!
//! The ARM host "issues instructions to the DMA and accelerator by writing
//! to the memory mapped address" (paper §III); the data-staging/control
//! units "receive an instruction from the ARM processor to perform
//! convolution, padding, or max-pooling" (§III-A). Instructions are
//! fixed-size 48-byte records with a binary encoding so the stream can be
//! staged through DDR and DMA like any other data.

use std::fmt;

/// A convolution instruction: compute a stripe of one OFM group
/// (`lanes` consecutive output channels) to completion, output-stationary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvInstr {
    /// First output channel of the group (a multiple of the lane count).
    pub ofm_first: u16,
    /// Number of input channels.
    pub ifm_count: u16,
    /// IFM stripe: base word address within each bank.
    pub ifm_base: u32,
    /// IFM tiles per row (padded layout).
    pub ifm_tiles_x: u16,
    /// IFM tile rows resident (stripe height incl. halo).
    pub ifm_tile_rows: u16,
    /// First IFM tile row (stripe-local) anchoring output row 0.
    pub ifm_row_offset: u16,
    /// OFM stripe: base word address within each bank.
    pub ofm_base: u32,
    /// OFM tiles per row.
    pub ofm_tiles_x: u16,
    /// OFM tile rows computed by this instruction.
    pub ofm_tile_rows: u16,
    /// Scratchpad byte offset of the group's packed weights.
    pub wgt_base: u32,
    /// Per-lane bias, in accumulator domain.
    pub bias: [i32; 4],
    /// Requantizer multiplier (16-bit).
    pub requant_mult: u16,
    /// Requantizer right-shift.
    pub requant_shift: u8,
    /// Whether ReLU is fused before requantization.
    pub relu: bool,
    /// Number of active lanes (< lane count only for the ragged final
    /// group of a layer whose output-channel count is not a multiple of
    /// the lane count).
    pub active_lanes: u8,
}

/// Pool/pad operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolPadOp {
    /// Max-pooling with a `k x k` window and the given stride.
    MaxPool {
        /// Window edge length.
        k: u8,
        /// Stride.
        stride: u8,
    },
    /// Zero-pad the perimeter by `amount` elements.
    Pad {
        /// Padding on each side.
        amount: u8,
    },
}

/// A padding or max-pooling instruction over all channels of a stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPadInstr {
    /// Number of channels.
    pub channels: u16,
    /// Input stripe base word address within each bank.
    pub in_base: u32,
    /// Input tiles per row.
    pub in_tiles_x: u16,
    /// Input tile rows resident.
    pub in_tile_rows: u16,
    /// Global input tile row resident at stripe-local row 0.
    pub in_row_start: u16,
    /// Output stripe base word address within each bank.
    pub out_base: u32,
    /// Output tiles per row.
    pub out_tiles_x: u16,
    /// Output tile rows produced by this instruction.
    pub out_tile_rows: u16,
    /// Global output tile row of stripe-local output row 0 (the pool/pad
    /// micro-op compiler works in global coordinates because the tile
    /// mapping of a strided window is not affine in tile space).
    pub out_row_start: u16,
    /// The operation.
    pub op: PoolPadOp,
}

/// One accelerator instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Convolution over one OFM group stripe.
    Conv(ConvInstr),
    /// Padding or pooling over all channels of a stripe.
    PoolPad(PoolPadInstr),
}

/// Encoded instruction size in bytes.
pub const INSTR_BYTES: usize = 48;

/// Instruction decode error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than [`INSTR_BYTES`] bytes available.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown pool/pad sub-operation.
    BadPoolOp(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadPoolOp(op) => write!(f, "unknown pool/pad sub-op {op:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn put_u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }
    fn put_u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }
    fn put_u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }
    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        v
    }
    fn i32(&mut self) -> i32 {
        self.u32() as i32
    }
}

impl Instruction {
    /// Encodes into the fixed 48-byte record.
    pub fn encode(&self) -> [u8; INSTR_BYTES] {
        let mut out = [0u8; INSTR_BYTES];
        let mut c = Cursor { buf: &mut out, pos: 0 };
        match self {
            Instruction::Conv(i) => {
                c.put_u8(1);
                c.put_u8(u8::from(i.relu));
                c.put_u16(i.ofm_first);
                c.put_u16(i.ifm_count);
                c.put_u32(i.ifm_base);
                c.put_u16(i.ifm_tiles_x);
                c.put_u16(i.ifm_tile_rows);
                c.put_u16(i.ifm_row_offset);
                c.put_u32(i.ofm_base);
                c.put_u16(i.ofm_tiles_x);
                c.put_u16(i.ofm_tile_rows);
                c.put_u32(i.wgt_base);
                for b in i.bias {
                    c.put_i32(b);
                }
                c.put_u16(i.requant_mult);
                c.put_u8(i.requant_shift);
                c.put_u8(i.active_lanes);
            }
            Instruction::PoolPad(i) => {
                c.put_u8(2);
                match i.op {
                    PoolPadOp::MaxPool { k, stride } => {
                        c.put_u8(1);
                        c.put_u8(k);
                        c.put_u8(stride);
                    }
                    PoolPadOp::Pad { amount } => {
                        c.put_u8(2);
                        c.put_u8(amount);
                        c.put_u8(0);
                    }
                }
                c.put_u16(i.channels);
                c.put_u32(i.in_base);
                c.put_u16(i.in_tiles_x);
                c.put_u16(i.in_tile_rows);
                c.put_u16(i.in_row_start);
                c.put_u32(i.out_base);
                c.put_u16(i.out_tiles_x);
                c.put_u16(i.out_tile_rows);
                c.put_u16(i.out_row_start);
            }
        }
        out
    }

    /// Decodes one instruction from the head of `bytes`.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncation or invalid opcodes.
    pub fn decode(bytes: &[u8]) -> Result<Instruction, DecodeError> {
        if bytes.len() < INSTR_BYTES {
            return Err(DecodeError::Truncated);
        }
        let mut r = Reader { buf: bytes, pos: 0 };
        match r.u8() {
            1 => {
                let relu = r.u8() != 0;
                let ofm_first = r.u16();
                let ifm_count = r.u16();
                let ifm_base = r.u32();
                let ifm_tiles_x = r.u16();
                let ifm_tile_rows = r.u16();
                let ifm_row_offset = r.u16();
                let ofm_base = r.u32();
                let ofm_tiles_x = r.u16();
                let ofm_tile_rows = r.u16();
                let wgt_base = r.u32();
                let bias = [r.i32(), r.i32(), r.i32(), r.i32()];
                let requant_mult = r.u16();
                let requant_shift = r.u8();
                let active_lanes = r.u8();
                Ok(Instruction::Conv(ConvInstr {
                    ofm_first,
                    ifm_count,
                    ifm_base,
                    ifm_tiles_x,
                    ifm_tile_rows,
                    ifm_row_offset,
                    ofm_base,
                    ofm_tiles_x,
                    ofm_tile_rows,
                    wgt_base,
                    bias,
                    requant_mult,
                    requant_shift,
                    relu,
                    active_lanes,
                }))
            }
            2 => {
                let sub = r.u8();
                let a = r.u8();
                let b = r.u8();
                let op = match sub {
                    1 => PoolPadOp::MaxPool { k: a, stride: b },
                    2 => PoolPadOp::Pad { amount: a },
                    other => return Err(DecodeError::BadPoolOp(other)),
                };
                Ok(Instruction::PoolPad(PoolPadInstr {
                    channels: r.u16(),
                    in_base: r.u32(),
                    in_tiles_x: r.u16(),
                    in_tile_rows: r.u16(),
                    in_row_start: r.u16(),
                    out_base: r.u32(),
                    out_tiles_x: r.u16(),
                    out_tile_rows: r.u16(),
                    out_row_start: r.u16(),
                    op,
                }))
            }
            other => Err(DecodeError::BadOpcode(other)),
        }
    }

    /// Encodes a whole instruction stream.
    pub fn encode_stream(instrs: &[Instruction]) -> Vec<u8> {
        let mut out = Vec::with_capacity(instrs.len() * INSTR_BYTES);
        for i in instrs {
            out.extend_from_slice(&i.encode());
        }
        out
    }

    /// Decodes a whole instruction stream.
    ///
    /// # Errors
    /// Returns the first [`DecodeError`] encountered.
    pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
        if !bytes.len().is_multiple_of(INSTR_BYTES) {
            return Err(DecodeError::Truncated);
        }
        bytes.chunks(INSTR_BYTES).map(Instruction::decode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_conv() -> Instruction {
        Instruction::Conv(ConvInstr {
            ofm_first: 12,
            ifm_count: 64,
            ifm_base: 0x100,
            ifm_tiles_x: 57,
            ifm_tile_rows: 10,
            ifm_row_offset: 1,
            ofm_base: 0x4000,
            ofm_tiles_x: 56,
            ofm_tile_rows: 8,
            wgt_base: 0x20,
            bias: [1, -2, 3, -4],
            requant_mult: 40_000,
            requant_shift: 21,
            relu: true,
            active_lanes: 4,
        })
    }

    fn sample_pool() -> Instruction {
        Instruction::PoolPad(PoolPadInstr {
            channels: 64,
            in_base: 0,
            in_tiles_x: 56,
            in_tile_rows: 56,
            in_row_start: 0,
            out_base: 0x8000,
            out_tiles_x: 28,
            out_tile_rows: 28,
            out_row_start: 0,
            op: PoolPadOp::MaxPool { k: 2, stride: 2 },
        })
    }

    #[test]
    fn conv_round_trips() {
        let i = sample_conv();
        assert_eq!(Instruction::decode(&i.encode()).unwrap(), i);
    }

    #[test]
    fn pool_and_pad_round_trip() {
        let p = sample_pool();
        assert_eq!(Instruction::decode(&p.encode()).unwrap(), p);
        let pad = Instruction::PoolPad(PoolPadInstr {
            op: PoolPadOp::Pad { amount: 1 },
            ..match p {
                Instruction::PoolPad(pi) => pi,
                _ => unreachable!(),
            }
        });
        assert_eq!(Instruction::decode(&pad.encode()).unwrap(), pad);
    }

    #[test]
    fn stream_round_trips() {
        let stream = vec![sample_conv(), sample_pool(), sample_conv()];
        let bytes = Instruction::encode_stream(&stream);
        assert_eq!(bytes.len(), 3 * INSTR_BYTES);
        assert_eq!(Instruction::decode_stream(&bytes).unwrap(), stream);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Instruction::decode(&[0u8; 10]).unwrap_err(), DecodeError::Truncated);
        let mut bad = sample_conv().encode();
        bad[0] = 9;
        assert_eq!(Instruction::decode(&bad).unwrap_err(), DecodeError::BadOpcode(9));
        let mut badpool = sample_pool().encode();
        badpool[1] = 7;
        assert_eq!(Instruction::decode(&badpool).unwrap_err(), DecodeError::BadPoolOp(7));
        assert!(Instruction::decode_stream(&[0u8; INSTR_BYTES + 1]).is_err());
    }

    proptest! {
        #[test]
        fn conv_encoding_is_bijective(
            ofm_first in 0u16..1024,
            ifm_count in 1u16..1024,
            ifm_base in 0u32..1_000_000,
            tiles in 1u16..256,
            rows in 1u16..256,
            bias in proptest::array::uniform4(-1_000_000i32..1_000_000),
            mult in 1u16..=u16::MAX,
            shift in 0u8..32,
            relu in proptest::bool::ANY,
        ) {
            let i = Instruction::Conv(ConvInstr {
                ofm_first, ifm_count, ifm_base,
                ifm_tiles_x: tiles, ifm_tile_rows: rows, ifm_row_offset: rows / 2,
                ofm_base: ifm_base / 2, ofm_tiles_x: tiles, ofm_tile_rows: rows,
                wgt_base: 64, bias, requant_mult: mult, requant_shift: shift, relu,
                active_lanes: (ofm_first % 4 + 1) as u8,
            });
            prop_assert_eq!(Instruction::decode(&i.encode()).unwrap(), i);
        }
    }
}

impl std::fmt::Display for Instruction {
    /// Disassembly form, one instruction per line.
    ///
    /// ```text
    /// conv  ofm[0..4) ifm x64 @0x0 57x10+0 -> @0x4000 56x8 wgt@0x20 requant 40000>>21 relu
    /// pool  max2x2/2 ch64 @0x0 56x56 r0 -> @0x8000 28x28 r0
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instruction::Conv(i) => write!(
                f,
                "conv  ofm[{}..{}) ifm x{} @{:#x} {}x{}+{} -> @{:#x} {}x{} wgt@{:#x} requant {}>>{}{}",
                i.ofm_first,
                i.ofm_first + i.active_lanes as u16,
                i.ifm_count,
                i.ifm_base,
                i.ifm_tiles_x,
                i.ifm_tile_rows,
                i.ifm_row_offset,
                i.ofm_base,
                i.ofm_tiles_x,
                i.ofm_tile_rows,
                i.wgt_base,
                i.requant_mult,
                i.requant_shift,
                if i.relu { " relu" } else { "" },
            ),
            Instruction::PoolPad(i) => {
                match i.op {
                    PoolPadOp::MaxPool { k, stride } => write!(f, "pool  max{k}x{k}/{stride}")?,
                    PoolPadOp::Pad { amount } => write!(f, "pad   +{amount}")?,
                }
                write!(
                    f,
                    " ch{} @{:#x} {}x{} r{} -> @{:#x} {}x{} r{}",
                    i.channels,
                    i.in_base,
                    i.in_tiles_x,
                    i.in_tile_rows,
                    i.in_row_start,
                    i.out_base,
                    i.out_tiles_x,
                    i.out_tile_rows,
                    i.out_row_start,
                )
            }
        }
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn disassembly_is_readable_and_distinct() {
        let conv = Instruction::Conv(ConvInstr {
            ofm_first: 8,
            ifm_count: 64,
            ifm_base: 0x100,
            ifm_tiles_x: 57,
            ifm_tile_rows: 10,
            ifm_row_offset: 0,
            ofm_base: 0x4000,
            ofm_tiles_x: 56,
            ofm_tile_rows: 8,
            wgt_base: 0x20,
            bias: [0; 4],
            requant_mult: 40_000,
            requant_shift: 21,
            relu: true,
            active_lanes: 4,
        });
        let text = conv.to_string();
        assert!(text.starts_with("conv"), "{text}");
        assert!(text.contains("ofm[8..12)") && text.contains("relu") && text.contains("40000>>21"), "{text}");

        let pool = Instruction::PoolPad(PoolPadInstr {
            channels: 64,
            in_base: 0,
            in_tiles_x: 56,
            in_tile_rows: 56,
            in_row_start: 0,
            out_base: 0x8000,
            out_tiles_x: 28,
            out_tile_rows: 28,
            out_row_start: 0,
            op: PoolPadOp::MaxPool { k: 2, stride: 2 },
        });
        assert!(pool.to_string().contains("max2x2/2"), "{pool}");

        let pad = Instruction::PoolPad(PoolPadInstr {
            op: PoolPadOp::Pad { amount: 1 },
            ..match pool {
                Instruction::PoolPad(p) => p,
                _ => unreachable!(),
            }
        });
        assert!(pad.to_string().starts_with("pad   +1"), "{pad}");
    }
}
