//! The cycle-exact accelerator backend.
//!
//! Assembles the paper's Fig. 3 microarchitecture on the `zskip-sim`
//! engine: per instance, `units` data-staging/control kernels, `units`
//! convolution kernels, `lanes` accumulator kernels synchronized by a
//! Pthreads-style barrier, `units` pool/pad kernels and `units`
//! write-to-memory kernels, plus a main controller — 21 kernels for the
//! full 256-MAC configuration, every one a streaming unit fed by FIFOs
//! exactly as LegUp synthesizes Pthreads threads.

pub mod accum;
pub mod conv;
pub mod ctrl;
pub mod host;
pub mod msg;
pub mod poolpad_unit;
pub mod staging;
pub mod write;

pub use host::{HostLayer, HostModel};

use crate::bank::BankSet;
use crate::config::AccelConfig;
use crate::isa::Instruction;
use msg::Msg;
use std::cell::RefCell;
use std::rc::Rc;
use zskip_fault::SharedFaultPlan;
use zskip_sim::{Barrier, Counters, Engine, Fifo, RunReport, SchedMode, SimError};

/// Result of running an instruction stream on the cycle-exact backend.
#[derive(Debug)]
pub struct CycleOutcome {
    /// Total cycles from dispatch of the first instruction to completion
    /// of the last write.
    pub cycles: u64,
    /// The banks after execution (OFM data written in place).
    pub banks: BankSet,
    /// Activity counters (MACs, bank traffic, bubbles) for the power
    /// model.
    pub counters: Counters,
    /// Full per-kernel statistics.
    pub report: RunReport,
}

/// Runs an instruction stream to completion on one accelerator instance.
///
/// `banks` must hold the resident IFM stripe in the layout the
/// instructions reference; `scratchpad` holds the packed weight image.
///
/// Uses the event-driven scheduler: kernels blocked on a FIFO park on its
/// wait list instead of being re-polled every cycle. The result is
/// bit-identical to the dense stepper ([`run_instructions_dense`] is the
/// oracle; a property test pins the equivalence).
///
/// # Errors
/// Propagates [`SimError`] (deadlock or cycle limit) — either indicates a
/// malformed instruction stream or an RTL-level bug.
pub fn run_instructions(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    instructions: &[Instruction],
    max_cycles: u64,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Preloaded(instructions.to_vec()),
        max_cycles,
        None,
        false,
        None,
        SchedMode::EventDriven,
        None,
    )?;
    Ok(outcome)
}

/// [`run_instructions`] on the dense stepper: every kernel ticks every
/// cycle. Slower, but the semantics are defined by inspection — this is
/// the oracle the event-driven scheduler is checked against.
///
/// # Errors
/// See [`run_instructions`].
pub fn run_instructions_dense(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    instructions: &[Instruction],
    max_cycles: u64,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Preloaded(instructions.to_vec()),
        max_cycles,
        None,
        false,
        None,
        SchedMode::Dense,
        None,
    )?;
    Ok(outcome)
}

/// Like [`run_instructions`], with a [`zskip_fault::FaultPlan`] attached
/// to the engine: `fifo:<name>:push` / `fifo:<name>:pop` injections stall
/// the named FIFO port at their trigger cycle. All other behaviour is
/// identical, and passing a plan with no `fifo:` injections is exactly
/// [`run_instructions`].
///
/// # Errors
/// See [`run_instructions`]; an injected permanent stall surfaces as
/// [`SimError::Deadlock`] naming the wedged FIFO.
pub fn run_instructions_with_faults(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    instructions: &[Instruction],
    max_cycles: u64,
    plan: SharedFaultPlan,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Preloaded(instructions.to_vec()),
        max_cycles,
        None,
        false,
        Some(plan),
        SchedMode::EventDriven,
        None,
    )?;
    Ok(outcome)
}

/// The session-configurable entry point the exec pipeline uses: an
/// optional fault plan plus an optional park-hysteresis override for the
/// event scheduler (see [`zskip_sim::EngineBuilder::park_hysteresis`]).
/// `None` for both is exactly [`run_instructions`]. The hysteresis is a
/// scheduling-cost knob only — cycle counts and bank contents are
/// bit-identical for every value (the `tune` module exploits this: it
/// searches the knob for simulator wall time without perturbing the
/// simulated score).
///
/// # Errors
/// See [`run_instructions`].
pub fn run_instructions_configured(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    instructions: &[Instruction],
    max_cycles: u64,
    plan: Option<SharedFaultPlan>,
    park_hysteresis: Option<u32>,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Preloaded(instructions.to_vec()),
        max_cycles,
        None,
        false,
        plan,
        SchedMode::EventDriven,
        park_hysteresis,
    )?;
    Ok(outcome)
}

/// [`run_instructions_dense`] with the engine's idle-cycle fast-forward
/// enabled. The accelerator's datapath pipelines work every cycle of a
/// pass, so whole-design quiescent stretches are rare and this is
/// bit-identical to the dense run by construction — a property test pins
/// that. Designs embedding the accelerator alongside sleepy host-side
/// kernels get the skipping for free. For the accelerator alone, the
/// event-driven [`run_instructions`] is the faster path.
///
/// # Errors
/// See [`run_instructions`].
pub fn run_instructions_fast(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    instructions: &[Instruction],
    max_cycles: u64,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Preloaded(instructions.to_vec()),
        max_cycles,
        None,
        true,
        None,
        SchedMode::Dense,
        None,
    )?;
    Ok(outcome)
}

/// Like [`run_instructions`], additionally recording an activity waveform
/// of up to `trace_cycles` cycles (see [`zskip_sim::Trace`]).
///
/// # Errors
/// See [`run_instructions`].
pub fn run_instructions_traced(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    instructions: &[Instruction],
    max_cycles: u64,
    trace_cycles: usize,
) -> Result<(CycleOutcome, zskip_sim::Trace), SimError> {
    let (outcome, trace) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Preloaded(instructions.to_vec()),
        max_cycles,
        Some(trace_cycles),
        false,
        None,
        SchedMode::EventDriven,
        None,
    )?;
    Ok((outcome, trace.expect("tracing was enabled")))
}

/// Runs a hosted system design: the accelerator instance plus the
/// [`host::HostKernel`] that stages, dispatches and polls each layer.
/// Long host-side staging and polling gaps quiesce the whole design, so
/// the event-driven scheduler jumps them — this is the workload class
/// where it beats the dense stepper by the widest margin, and a property
/// test pins the two bit-identical ([`run_hosted_dense`] is the oracle).
///
/// # Errors
/// See [`run_instructions`].
pub fn run_hosted(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    host: HostModel,
    max_cycles: u64,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Hosted(host),
        max_cycles,
        None,
        false,
        None,
        SchedMode::EventDriven,
        None,
    )?;
    Ok(outcome)
}

/// [`run_hosted`] on the dense stepper — the oracle for hosted designs.
///
/// # Errors
/// See [`run_instructions`].
pub fn run_hosted_dense(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    host: HostModel,
    max_cycles: u64,
) -> Result<CycleOutcome, SimError> {
    let (outcome, _) = run_instructions_inner(
        config,
        banks,
        scratchpad,
        Feed::Hosted(host),
        max_cycles,
        None,
        false,
        None,
        SchedMode::Dense,
        None,
    )?;
    Ok(outcome)
}

/// How the main controller receives its instruction stream.
enum Feed {
    /// The full stream is preloaded into the controller (accelerator-only
    /// designs; the paper's measurement setup after staging).
    Preloaded(Vec<Instruction>),
    /// A host kernel stages and dispatches the stream layer by layer.
    Hosted(HostModel),
}

#[allow(clippy::too_many_arguments)]
fn run_instructions_inner(
    config: &AccelConfig,
    banks: BankSet,
    scratchpad: Vec<u8>,
    feed: Feed,
    max_cycles: u64,
    trace_cycles: Option<usize>,
    fast_forward: bool,
    fault_plan: Option<SharedFaultPlan>,
    sched: SchedMode,
    park_hysteresis: Option<u32>,
) -> Result<(CycleOutcome, Option<zskip_sim::Trace>), SimError> {
    assert_eq!(config.units, config.lanes, "accumulator lanes map 1:1 onto write units");
    let units = config.units;
    let banks = Rc::new(RefCell::new(banks));
    let scratchpad = Rc::new(scratchpad);
    let barrier = Rc::new(RefCell::new(Barrier::new(config.lanes)));
    let mut engine: Engine<Msg> = Engine::new();
    engine.set_scheduler(sched);
    if let Some(ticks) = park_hysteresis {
        engine.set_park_hysteresis(ticks);
    }
    if let Some(capacity) = trace_cycles {
        engine.enable_trace(capacity);
    }
    if fast_forward {
        engine.enable_fast_forward();
    }
    if let Some(plan) = fault_plan {
        engine.set_fault_plan(plan);
    }

    // FIFOs. Command/config queues are depth-2 (dispatch is one message
    // deep plus shutdown); data queues use the configured depth.
    let depth = config.fifo_depth;
    let staging_cmds: Vec<_> = (0..units).map(|s| engine.add_fifo(Fifo::new(format!("cmd{s}"), 2))).collect();
    let conv_work: Vec<_> = (0..units).map(|s| engine.add_fifo(Fifo::new(format!("work{s}"), depth))).collect();
    let pool_work: Vec<_> = (0..units).map(|s| engine.add_fifo(Fifo::new(format!("pwork{s}"), depth))).collect();
    // lane_fifos[s][o]: conv unit s -> accumulator o.
    let lane_fifos: Vec<Vec<_>> = (0..units)
        .map(|s| (0..config.lanes).map(|o| engine.add_fifo(Fifo::new(format!("prod{s}_{o}"), depth))).collect())
        .collect();
    let accum_cfgs: Vec<_> = (0..config.lanes).map(|o| engine.add_fifo(Fifo::new(format!("acfg{o}"), 2))).collect();
    let accum_out: Vec<_> = (0..config.lanes).map(|o| engine.add_fifo(Fifo::new(format!("aout{o}"), 2))).collect();
    let pool_out: Vec<_> = (0..units).map(|s| engine.add_fifo(Fifo::new(format!("pout{s}"), 2))).collect();
    let write_cmds: Vec<_> = (0..units).map(|s| engine.add_fifo(Fifo::new(format!("wcmd{s}"), 2))).collect();
    let done = engine.add_fifo(Fifo::new("done", units.max(2)));

    // Kernels, in Fig. 3 order.
    for s in 0..units {
        engine.add_kernel(Box::new(staging::StagingKernel::new(
            s,
            config,
            Rc::clone(&banks),
            Rc::clone(&scratchpad),
            staging_cmds[s],
            conv_work[s],
            pool_work[s],
        )));
    }
    for s in 0..units {
        let lanes: Rc<[_]> = lane_fifos[s].clone().into();
        engine.add_kernel(Box::new(conv::ConvKernel::new(s, conv_work[s], lanes)));
    }
    for o in 0..config.lanes {
        let inputs: Rc<[_]> = (0..units).map(|s| lane_fifos[s][o]).collect::<Vec<_>>().into();
        engine.add_kernel(Box::new(accum::AccumKernel::new(
            o,
            accum_cfgs[o],
            inputs,
            accum_out[o],
            Rc::clone(&barrier),
        )));
    }
    for s in 0..units {
        engine.add_kernel(Box::new(poolpad_unit::PoolPadKernel::new(s, pool_work[s], pool_out[s])));
    }
    for s in 0..units {
        engine.add_kernel(Box::new(write::WriteKernel::new(
            s,
            Rc::clone(&banks),
            write_cmds[s],
            vec![accum_out[s], pool_out[s]],
            done,
        )));
    }
    // Controller last among the accelerator's kernels, matching the
    // paper's dispatch topology (it feeds every cmd FIFO, so its pushes
    // land after all consumers ticked). In hosted mode the host CPU
    // registers after it, outside the accelerator proper.
    match feed {
        Feed::Preloaded(instructions) => {
            engine.add_kernel(Box::new(ctrl::CtrlKernel::new(
                *config,
                instructions,
                staging_cmds,
                accum_cfgs,
                write_cmds,
                done,
            )));
        }
        Feed::Hosted(model) => {
            let instr_q = engine.add_fifo(Fifo::new("hinstr", 2));
            let done_cap = model.layers.iter().map(|l| l.instrs.len()).max().unwrap_or(1).max(2);
            let host_done = engine.add_fifo(Fifo::new("hdone", done_cap));
            engine.add_kernel(Box::new(ctrl::CtrlKernel::new_hosted(
                *config,
                instr_q,
                host_done,
                staging_cmds,
                accum_cfgs,
                write_cmds,
                done,
            )));
            // The longest legal quiescent stretch is a staging sleep or a
            // poll gap; give the deadlock detector room beyond both.
            let longest_gap = model
                .layers
                .iter()
                .map(|l| l.staging_cycles)
                .max()
                .unwrap_or(0)
                .max(model.poll_interval);
            engine.set_deadlock_window(longest_gap.saturating_add(10_000));
            engine.add_kernel(Box::new(host::HostKernel::new(model, instr_q, host_done)));
        }
    }

    let report = engine.run(max_cycles)?;
    let trace = engine.trace().cloned();
    drop(engine);
    let banks = Rc::try_unwrap(banks).expect("engine dropped, sole owner").into_inner();
    Ok((CycleOutcome { cycles: report.cycles, banks, counters: report.counters.clone(), report }, trace))
}

#[cfg(test)]
mod tests;
