//! The data-staging/control kernel.
//!
//! Each staging unit manages its subset of the IFM channels and their
//! packed weights. For convolution it iterates OFM tile positions; per
//! position it streams each active IFM's packed weight entries (one per
//! cycle, four lanes in lockstep) together with the quad region of IFM
//! tiles, while prefetching the next quad from its SRAM bank — the source
//! of the 4-cycle-per-weight-tile floor ("at least four clock cycles must
//! be spent processing a weight tile", paper §III-B1). For pad/pool it
//! streams micro-ops to the pool/pad unit. The paper split this
//! controller's FSM into separate convolution and pad/pool functions; the
//! two `State` arms mirror that split.

use super::msg::{ConvWork, Msg, PoolWork};
use crate::bank::BankSet;
use crate::config::AccelConfig;
use crate::isa::{ConvInstr, Instruction, PoolPadInstr};
use crate::layout::FmLayout;
use crate::poolpad::{compile_tile_program, MicroOp};
use crate::weights::GroupWeights;
use std::cell::RefCell;
use std::rc::Rc;
use zskip_quant::{PackedEntry, Sm8};
use zskip_sim::{CounterId, Ctx, FifoId, Horizon, Kernel, Progress};
use zskip_tensor::Tile;

/// One (position, IFM) phase of a convolution instruction.
#[derive(Debug, Clone)]
struct Phase {
    /// Position index (row-major over the OFM stripe).
    pos: u32,
    /// Global IFM channel.
    ifm: u32,
    /// Lockstep steps (max lane nnz; > 0, zero-step IFMs are skipped).
    steps: u32,
    /// Cycle budget: `max(4, steps, weight-fetch cycles)`.
    budget: u32,
    /// Whether this is the last phase of its position.
    last_of_pos: bool,
}

#[derive(Debug)]
enum State {
    /// Waiting for a command.
    Idle,
    /// Executing a convolution instruction. Boxed: the per-lane entry
    /// queues make this variant an order of magnitude larger than the
    /// rest, and `tick_conv` moves the state out and back every cycle.
    Conv(Box<ConvState>),
    /// Executing a pool/pad instruction.
    Pool(PoolState),
    /// Forwarding shutdown to the conv and pool/pad units downstream.
    Finishing {
        /// Shutdown delivered to the conv unit.
        conv_sent: bool,
        /// Shutdown delivered to the pool/pad unit.
        pool_sent: bool,
    },
    /// Shut down.
    Finished,
}

#[derive(Debug)]
struct ConvState {
    instr: ConvInstr,
    weights: GroupWeights,
    phases: Vec<Phase>,
    /// Per-lane packed entries of the current phase.
    lane_entries: [Vec<PackedEntry>; 4],
    phase_idx: usize,
    /// Cycle within the current phase.
    t: u32,
    /// Quad region for the current phase (prefetched).
    region: [Sm8; 64],
    /// Quad region being prefetched for the next phase.
    next_region: [Sm8; 64],
    /// Initial 4-cycle fill countdown (pipeline prologue).
    fill: u32,
    /// Pending end-of-position marker.
    marker: bool,
    /// Marker-only positions remaining (fully-pruned group).
    marker_only_positions: u32,
}

#[derive(Debug)]
struct PoolState {
    instr: PoolPadInstr,
    /// Channels handled by this unit.
    channels: Vec<u32>,
    ch_idx: usize,
    /// Output tile index, row-major over the stripe.
    tile_idx: u32,
    program: Vec<MicroOp>,
    op_idx: usize,
}

/// The data-staging/control kernel.
pub struct StagingKernel {
    name: String,
    index: usize,
    units: usize,
    lanes: usize,
    weight_bytes_per_cycle: usize,
    banks: Rc<RefCell<BankSet>>,
    scratchpad: Rc<Vec<u8>>,
    cmd: FifoId,
    conv_out: FifoId,
    pool_out: FifoId,
    state: State,
    /// Interned (`weights_applied`, `macs`, `bubble_lanes`) ids — these
    /// fire every streaming cycle, so the name lookup is paid once.
    conv_counters: Option<(CounterId, CounterId, CounterId)>,
    pool_counter: Option<CounterId>,
}

impl StagingKernel {
    /// Creates staging unit `index` of `units`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        config: &AccelConfig,
        banks: Rc<RefCell<BankSet>>,
        scratchpad: Rc<Vec<u8>>,
        cmd: FifoId,
        conv_out: FifoId,
        pool_out: FifoId,
    ) -> StagingKernel {
        assert!(AccelConfig::BANKS.is_multiple_of(config.units), "units must divide the bank count");
        StagingKernel {
            name: format!("staging{index}"),
            index,
            units: config.units,
            lanes: config.lanes,
            weight_bytes_per_cycle: config.weight_bytes_per_cycle,
            banks,
            scratchpad,
            cmd,
            conv_out,
            pool_out,
            state: State::Idle,
            conv_counters: None,
            pool_counter: None,
        }
    }

    /// IFM channels this unit manages for a channel count.
    fn my_channels(&self, channels: u32) -> Vec<u32> {
        (0..channels).filter(|c| (*c as usize) % self.units == self.index).collect()
    }

    /// Builds the phase list for a conv instruction.
    fn build_conv(&self, instr: ConvInstr) -> ConvState {
        let weights = GroupWeights::from_bytes(
            &self.scratchpad[instr.wgt_base as usize..],
            instr.ifm_count as usize,
            self.lanes,
        )
        .expect("driver wrote a well-formed scratchpad image");
        let positions = instr.ofm_tile_rows as u32 * instr.ofm_tiles_x as u32;
        let my_ifms: Vec<u32> = self
            .my_channels(instr.ifm_count as u32)
            .into_iter()
            .filter(|&i| weights.steps(i as usize) > 0)
            .collect();
        let mut phases = Vec::with_capacity(positions as usize * my_ifms.len());
        for pos in 0..positions {
            for (k, &ifm) in my_ifms.iter().enumerate() {
                let steps = weights.steps(ifm as usize) as u32;
                let wfetch = (weights.ifm_bytes(ifm as usize) as u32).div_ceil(self.weight_bytes_per_cycle as u32);
                phases.push(Phase {
                    pos,
                    ifm,
                    steps,
                    budget: 4u32.max(steps).max(wfetch),
                    last_of_pos: k + 1 == my_ifms.len(),
                });
            }
        }
        let marker_only_positions = if my_ifms.is_empty() { positions } else { 0 };
        ConvState {
            instr,
            weights,
            phases,
            lane_entries: Default::default(),
            phase_idx: 0,
            t: 0,
            region: [Sm8::ZERO; 64],
            next_region: [Sm8::ZERO; 64],
            fill: 4,
            marker: false,
            marker_only_positions,
        }
    }

    /// Reads one tile of the quad of phase `p` through port A, charging
    /// the read; out-of-range tiles are zero without a bank access.
    fn fetch_quad_tile(&self, instr: &ConvInstr, p: &Phase, quad_idx: u32, cycle: u64) -> Tile<Sm8> {
        let (r, c) = ((quad_idx / 2) as usize, (quad_idx % 2) as usize);
        let positions_x = instr.ofm_tiles_x as usize;
        let (ty, tx) = ((p.pos as usize) / positions_x, (p.pos as usize) % positions_x);
        let row = ty + instr.ifm_row_offset as usize + r;
        let col = tx + c;
        if row >= instr.ifm_tile_rows as usize || col >= instr.ifm_tiles_x as usize {
            return Tile::zero();
        }
        let layout = FmLayout {
            base: instr.ifm_base as usize,
            channels: instr.ifm_count as usize,
            tiles_x: instr.ifm_tiles_x as usize,
            tile_rows: instr.ifm_tile_rows as usize,
        };
        let bank = FmLayout::bank_of(p.ifm as usize);
        let addr = layout.addr(p.ifm as usize, row, col);
        self.banks
            .borrow_mut()
            .read_port_a(bank, addr, cycle)
            .expect("staging unit owns port A of its bank(s)")
    }

    fn place_quad_tile(region: &mut [Sm8; 64], quad_idx: u32, tile: &Tile<Sm8>) {
        let (r, c) = ((quad_idx / 2) as usize, (quad_idx % 2) as usize);
        for y in 0..4 {
            for x in 0..4 {
                region[(r * 4 + y) * 8 + c * 4 + x] = tile[(y, x)];
            }
        }
    }

    /// Loads the per-lane entry vectors for phase `idx`.
    fn load_lane_entries(state: &mut ConvState, idx: usize, lanes: usize) {
        let ifm = state.phases[idx].ifm as usize;
        for lane in 0..4 {
            state.lane_entries[lane] = if lane < lanes {
                state.weights.lane_tile(ifm, lane).entries().to_vec()
            } else {
                Vec::new()
            };
        }
    }

    fn tick_conv(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        // Take the state out to sidestep borrow conflicts with &self.
        let State::Conv(mut st) = std::mem::replace(&mut self.state, State::Idle) else {
            unreachable!("tick_conv called in conv state");
        };
        let progress = self.tick_conv_inner(&mut st, ctx);
        self.state = if conv_finished(&st) { State::Idle } else { State::Conv(st) };
        progress
    }

    fn tick_conv_inner(&mut self, st: &mut ConvState, ctx: &mut Ctx<'_, Msg>) -> Progress {
        // Fully-pruned group: emit one end-of-position marker per position.
        if st.marker_only_positions > 0 {
            return match ctx.fifos.try_push(self.conv_out, Msg::EndPosition) {
                Ok(()) => {
                    st.marker_only_positions -= 1;
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            };
        }
        if st.phases.is_empty() {
            return Progress::Busy; // zero-position instruction; finishes immediately
        }

        // Pipeline prologue: fill the first quad, 1 tile per cycle.
        if st.fill > 0 {
            let quad_idx = 4 - st.fill;
            let tile = self.fetch_quad_tile(&st.instr, &st.phases[0], quad_idx, ctx.cycle);
            Self::place_quad_tile(&mut st.region, quad_idx, &tile);
            st.fill -= 1;
            if st.fill == 0 {
                Self::load_lane_entries(st, 0, self.lanes);
            }
            return Progress::Busy;
        }

        // Pending end-of-position marker occupies its own FIFO slot.
        if st.marker {
            return match ctx.fifos.try_push(self.conv_out, Msg::EndPosition) {
                Ok(()) => {
                    st.marker = false;
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            };
        }

        let phase = st.phases[st.phase_idx].clone();

        // Work push first: if the FIFO is full we stall the whole cycle
        // (prefetch shares the stall, as in hardware where the pipeline
        // enable gates both).
        if st.t < phase.steps {
            let mut lanes: [Option<PackedEntry>; 4] = [None; 4];
            for (lane, entries) in st.lane_entries.iter().enumerate() {
                lanes[lane] = entries.get(st.t as usize).copied();
            }
            let work = Msg::ConvWork(Box::new(ConvWork { region: st.region, lanes }));
            if ctx.fifos.try_push(self.conv_out, work).is_err() {
                return Progress::Blocked;
            }
            let active = lanes.iter().filter(|l| l.is_some()).count() as u64;
            let (applied, macs, bubbles) = *self.conv_counters.get_or_insert_with(|| {
                (
                    ctx.counters.intern("weights_applied"),
                    ctx.counters.intern("macs"),
                    ctx.counters.intern("bubble_lanes"),
                )
            });
            ctx.counters.add_id(applied, active);
            ctx.counters.add_id(macs, active * 16);
            ctx.counters.add_id(bubbles, self.lanes as u64 - active);
        }

        // Prefetch one tile of the next phase's quad during cycles 0..4.
        if st.t < 4 {
            if let Some(next) = st.phases.get(st.phase_idx + 1) {
                let tile = self.fetch_quad_tile(&st.instr, next, st.t, ctx.cycle);
                Self::place_quad_tile(&mut st.next_region, st.t, &tile);
            }
        }

        st.t += 1;
        if st.t == phase.budget {
            // Phase complete: rotate the prefetched quad in.
            st.t = 0;
            st.phase_idx += 1;
            st.region = st.next_region;
            if st.phase_idx < st.phases.len() {
                Self::load_lane_entries(st, st.phase_idx, self.lanes);
            }
            if phase.last_of_pos {
                st.marker = true;
            }
        }
        Progress::Busy
    }

    fn build_pool(&self, instr: PoolPadInstr) -> PoolState {
        PoolState {
            instr,
            channels: self.my_channels(instr.channels as u32),
            ch_idx: 0,
            tile_idx: 0,
            program: Vec::new(),
            op_idx: 0,
        }
    }

    fn tick_pool(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        let State::Pool(mut st) = std::mem::replace(&mut self.state, State::Idle) else {
            unreachable!("tick_pool called in pool state");
        };
        let progress = self.tick_pool_inner(&mut st, ctx);
        let finished = st.ch_idx >= st.channels.len();
        self.state = if finished { State::Idle } else { State::Pool(st) };
        progress
    }

    fn tick_pool_inner(&mut self, st: &mut PoolState, ctx: &mut Ctx<'_, Msg>) -> Progress {
        let instr = st.instr;
        let positions = instr.out_tile_rows as u32 * instr.out_tiles_x as u32;
        if st.channels.is_empty() || positions == 0 {
            st.ch_idx = st.channels.len();
            return Progress::Busy;
        }
        let c = st.channels[st.ch_idx] as usize;

        // (Re)compile the program at each output-tile boundary.
        if st.op_idx == 0 && st.program.is_empty() {
            let oty_local = (st.tile_idx / instr.out_tiles_x as u32) as usize;
            let otx = (st.tile_idx % instr.out_tiles_x as u32) as usize;
            st.program = compile_tile_program(instr.op, instr.out_row_start as usize + oty_local, otx);
            // A fully-border output tile (possible only in degenerate
            // geometries) still costs one cycle to write zeros.
            if st.program.is_empty() {
                st.program.push(MicroOp {
                    in_ty: -1,
                    in_tx: -1,
                    sels: [crate::poolpad::MaxSel::IDLE; 4],
                });
            }
        }

        let mop = st.program[st.op_idx];
        // Fetch the input tile (global coords -> stripe-local).
        let local_ty = mop.in_ty - instr.in_row_start as isize;
        let input = if local_ty < 0
            || mop.in_tx < 0
            || local_ty >= instr.in_tile_rows as isize
            || mop.in_tx >= instr.in_tiles_x as isize
        {
            Tile::zero()
        } else {
            let layout = FmLayout {
                base: instr.in_base as usize,
                channels: instr.channels as usize,
                tiles_x: instr.in_tiles_x as usize,
                tile_rows: instr.in_tile_rows as usize,
            };
            let addr = layout.addr(c, local_ty as usize, mop.in_tx as usize);
            self.banks
                .borrow_mut()
                .read_port_a(FmLayout::bank_of(c), addr, ctx.cycle)
                .expect("staging unit owns port A of its bank(s)")
        };

        let last = st.op_idx + 1 == st.program.len();
        let oty_local = st.tile_idx / instr.out_tiles_x as u32;
        let otx = st.tile_idx % instr.out_tiles_x as u32;
        let out_addr = instr.out_base
            + (c as u32 / AccelConfig::BANKS as u32)
                * instr.out_tile_rows as u32
                * instr.out_tiles_x as u32
            + oty_local * instr.out_tiles_x as u32
            + otx;
        let msg = Msg::PoolWork(PoolWork {
            input,
            sels: mop.sels,
            last,
            out_bank: FmLayout::bank_of(c) as u8,
            out_addr,
        });
        if ctx.fifos.try_push(self.pool_out, msg).is_err() {
            // The fetched read is replayed next cycle; hardware would gate
            // the read enable, so un-charge is not needed (the retry is a
            // second read, matching a stalled pipeline holding its request).
            return Progress::Blocked;
        }
        let pool_ops = *self.pool_counter.get_or_insert_with(|| ctx.counters.intern("pool_microops"));
        ctx.counters.add_id(pool_ops, 1);

        st.op_idx += 1;
        if st.op_idx == st.program.len() {
            st.op_idx = 0;
            st.program.clear();
            st.tile_idx += 1;
            if st.tile_idx == positions {
                st.tile_idx = 0;
                st.ch_idx += 1;
            }
        }
        Progress::Busy
    }
}

fn conv_finished(st: &ConvState) -> bool {
    st.marker_only_positions == 0 && !st.marker && (st.phases.is_empty() || st.phase_idx >= st.phases.len())
}

impl Kernel<Msg> for StagingKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn horizon(&self) -> Horizon {
        // A blocked pool tick charges its bank read *before* the push
        // attempt (the retry is a second read, like a stalled pipeline
        // holding its request), so pool stalls must keep ticking. Every
        // other blocked/idle path is a pure FIFO probe.
        match self.state {
            State::Pool(_) => Horizon::Opaque,
            _ => Horizon::Reactive,
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        match &self.state {
            State::Finished => Progress::Done,
            State::Idle => match ctx.fifos.try_pop(self.cmd) {
                Some(Msg::Cmd(Instruction::Conv(i))) => {
                    self.state = State::Conv(Box::new(self.build_conv(i)));
                    Progress::Busy
                }
                Some(Msg::Cmd(Instruction::PoolPad(i))) => {
                    self.state = State::Pool(self.build_pool(i));
                    Progress::Busy
                }
                Some(Msg::Shutdown) => {
                    self.state = State::Finishing { conv_sent: false, pool_sent: false };
                    Progress::Busy
                }
                Some(other) => panic!("staging received unexpected message {other:?}"),
                None => Progress::Idle,
            },
            State::Finishing { conv_sent, pool_sent } => {
                let (mut conv_sent, mut pool_sent) = (*conv_sent, *pool_sent);
                if !conv_sent && ctx.fifos.try_push(self.conv_out, Msg::Shutdown).is_ok() {
                    conv_sent = true;
                }
                if !pool_sent && ctx.fifos.try_push(self.pool_out, Msg::Shutdown).is_ok() {
                    pool_sent = true;
                }
                if conv_sent && pool_sent {
                    self.state = State::Finished;
                    Progress::Done
                } else {
                    self.state = State::Finishing { conv_sent, pool_sent };
                    Progress::Blocked
                }
            }
            State::Conv(_) => self.tick_conv(ctx),
            State::Pool(_) => self.tick_pool(ctx),
        }
    }
}
