//! FIFO message payloads of the cycle-exact accelerator.
//!
//! Each variant corresponds to a hardware FIFO payload format; the enum
//! exists because the simulation engine carries one message type per
//! design (`zskip-sim` is generic over it).

use crate::isa::Instruction;
use crate::poolpad::MaxSel;
use zskip_quant::{PackedEntry, Sm8};
use zskip_tensor::Tile;

/// Per-instruction configuration for an accumulator lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumCfg {
    /// Whether this lane's output channel exists (ragged final group).
    pub active: bool,
    /// Bias preloaded into the accumulators at each position.
    pub bias: i64,
    /// Requantizer multiplier.
    pub mult: u16,
    /// Requantizer shift.
    pub shift: u8,
    /// Fused ReLU.
    pub relu: bool,
    /// OFM tile positions this instruction computes.
    pub positions: u32,
    /// Number of convolution units feeding this lane (markers expected
    /// per position).
    pub units: u8,
    /// Destination bank for this lane's OFM tiles.
    pub out_bank: u8,
    /// Word address of the lane's first OFM tile (position 0).
    pub out_base: u32,
}

/// One cycle of convolution work from a data-staging unit: the current
/// quad region of one IFM plus one packed weight per filter lane.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvWork {
    /// The four contiguous IFM tiles as an 8x8 row-major region
    /// (paper Fig. 4a).
    pub region: [Sm8; 64],
    /// One packed (offset, value) weight per lane; `None` lanes are
    /// pipeline bubbles from non-zero-count imbalance.
    pub lanes: [Option<PackedEntry>; 4],
}

/// One cycle of pool/pad work: an input tile plus MAX-unit selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolWork {
    /// The input tile (zero tile when the address was out of range).
    pub input: Tile<Sm8>,
    /// The four MAX-unit selections for this cycle.
    pub sels: [MaxSel; 4],
    /// Whether this is the final micro-op of the current output tile.
    pub last: bool,
    /// Destination bank of the completed output tile.
    pub out_bank: u8,
    /// Destination word address of the completed output tile.
    pub out_addr: u32,
}

/// A message on some FIFO of the design.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Main controller -> staging: execute an instruction.
    Cmd(Instruction),
    /// Main controller -> accumulators: per-instruction configuration.
    Accum(AccumCfg),
    /// Main controller -> write units: expect this many output tiles.
    WriteExpect(u32),
    /// Main controller -> any unit: run ended, shut down.
    Shutdown,
    /// Staging -> conv: one weight-application cycle.
    ConvWork(Box<ConvWork>),
    /// Staging -> conv: all weights of the current tile position sent.
    EndPosition,
    /// Conv -> accumulator: 16 products for one lane.
    Products([i32; 16]),
    /// Conv -> accumulator: forwarded end-of-position marker.
    AccumEnd,
    /// Staging -> pool/pad: one micro-op with its input tile.
    PoolWork(PoolWork),
    /// Accumulator or pool/pad -> write unit: a completed OFM tile.
    OfmTile {
        /// Destination bank.
        bank: u8,
        /// Destination word address.
        addr: u32,
        /// The tile data.
        tile: Tile<Sm8>,
    },
    /// Write unit -> main controller: instruction's tiles all written.
    Done,
}
