//! Cycle-backend correctness tests: bit-exactness against the golden
//! software model, zero-skipping effects, pool/pad instructions.

use super::*;
use crate::isa::{ConvInstr, PoolPadInstr, PoolPadOp};
use crate::layout::FmLayout;
use crate::weights::GroupWeights;
use zskip_hls::AccelArch;
use zskip_nn::conv::{conv2d_quant, QuantConvWeights};
use zskip_quant::{Requantizer, Sm8};
use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

fn config() -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 }, 100.0)
}

fn input_tensor(c: usize, h: usize, w: usize) -> Tensor<Sm8> {
    Tensor::from_fn(c, h, w, |c, y, x| Sm8::from_i32_saturating(((c * 37 + y * 11 + x * 5) % 200) as i32 - 100))
}

fn weights(out_c: usize, in_c: usize, zero_every: usize) -> QuantConvWeights {
    let w: Vec<Sm8> = (0..out_c * in_c * 9)
        .map(|i| {
            if i % zero_every == 0 {
                Sm8::ZERO
            } else {
                Sm8::from_i32_saturating((i % 15) as i32 - 7)
            }
        })
        .collect();
    QuantConvWeights::new(
        out_c,
        in_c,
        3,
        w,
        (0..out_c as i64).map(|o| o * 3 - 2).collect(),
        Requantizer::from_ratio(1.0 / 64.0),
        true,
    )
}

/// Builds the bank image, scratchpad and instruction stream for a conv
/// layer (pre-padded input resident, single stripe), runs the cycle
/// backend and returns (output tensor, cycles).
pub(super) fn run_conv(cfg: &AccelConfig, qw: &QuantConvWeights, input: &Tensor<Sm8>) -> (Tensor<Sm8>, u64) {
    let (outcome, out_layout) = run_conv_outcome(cfg, qw, input, run_instructions);
    let (h, w) = (input.shape().h, input.shape().w);
    let out_shape = Shape::new(qw.out_c, h, w);
    let mut got = TiledFeatureMap::zeros(out_shape);
    out_layout.load(&outcome.banks, &mut got, 0..out_layout.tile_rows);
    (got.to_tensor().cropped(h, w), outcome.cycles)
}

/// Like [`run_conv`] but parameterized over the backend entry point and
/// returning the full [`CycleOutcome`] for report comparisons.
pub(super) fn run_conv_outcome(
    cfg: &AccelConfig,
    qw: &QuantConvWeights,
    input: &Tensor<Sm8>,
    run: impl Fn(&AccelConfig, BankSet, Vec<u8>, &[Instruction], u64) -> Result<super::CycleOutcome, zskip_sim::SimError>,
) -> (super::CycleOutcome, FmLayout) {
    let (h, w) = (input.shape().h, input.shape().w);
    let padded = input.padded(1);
    let tiled_in = TiledFeatureMap::from_tensor(&padded);
    let in_layout = FmLayout::full(0, padded.shape());
    let out_shape = Shape::new(qw.out_c, h, w);
    let out_layout = FmLayout::full(in_layout.end(), out_shape);

    let mut banks = BankSet::new(cfg);
    in_layout.store(&mut banks, &tiled_in, 0..tiled_in.tiles_y());

    let mut scratchpad = Vec::new();
    let mut instrs = Vec::new();
    for g in 0..qw.out_c.div_ceil(cfg.lanes) {
        let ofm_first = g * cfg.lanes;
        let gw = GroupWeights::from_filters(qw, ofm_first, cfg.lanes);
        let wgt_base = scratchpad.len() as u32;
        scratchpad.extend_from_slice(&gw.to_bytes());
        let active = cfg.lanes.min(qw.out_c - ofm_first);
        let mut bias = [0i32; 4];
        for (lane, b) in bias.iter_mut().enumerate().take(active) {
            *b = qw.bias_acc[ofm_first + lane] as i32;
        }
        instrs.push(Instruction::Conv(ConvInstr {
            ofm_first: ofm_first as u16,
            ifm_count: qw.in_c as u16,
            ifm_base: in_layout.base as u32,
            ifm_tiles_x: in_layout.tiles_x as u16,
            ifm_tile_rows: in_layout.tile_rows as u16,
            ifm_row_offset: 0,
            ofm_base: out_layout.base as u32,
            ofm_tiles_x: out_layout.tiles_x as u16,
            ofm_tile_rows: out_layout.tile_rows as u16,
            wgt_base,
            bias,
            requant_mult: qw.requant.mult as u16,
            requant_shift: qw.requant.shift as u8,
            relu: qw.relu,
            active_lanes: active as u8,
        }));
    }

    let outcome = run(cfg, banks, scratchpad, &instrs, 10_000_000).expect("run completes");
    (outcome, out_layout)
}

#[test]
fn fast_forward_matches_cycle_by_cycle_on_vgg16_layer() {
    // conv1_1 of the scaled VGG-16 (3 -> 64 channels, 3x3, mixed
    // sparsity): the fast-forward entry point must produce the identical
    // output, cycle count, per-kernel stats and counters. The
    // accelerator's kernels are Reactive (their blocked ticks are pure
    // FIFO probes), so a whole-design quiescent cycle may legally be
    // replayed — this pins that enabling the feature cannot perturb the
    // simulation.
    let cfg = config();
    let qw = weights(64, 3, 4);
    let input = input_tensor(3, 8, 8);
    let (plain, layout) = run_conv_outcome(&cfg, &qw, &input, run_instructions_dense);
    let (fast, _) = run_conv_outcome(&cfg, &qw, &input, run_instructions_fast);

    assert_eq!(plain.cycles, fast.cycles, "cycle counts must match");
    assert_eq!(plain.report, fast.report, "kernel stats and counters must match");
    assert_eq!(plain.counters, fast.counters);
    let extract = |outcome: &super::CycleOutcome| {
        let mut got = TiledFeatureMap::zeros(Shape::new(qw.out_c, 8, 8));
        layout.load(&outcome.banks, &mut got, 0..layout.tile_rows);
        got.to_tensor().cropped(8, 8)
    };
    let out = extract(&plain);
    assert_eq!(out, extract(&fast), "outputs must be bit-identical");
    assert_eq!(out, conv2d_quant(&input, &qw, 1, 1), "and match the golden model");
}

#[test]
fn event_scheduler_matches_dense_on_vgg16_layer() {
    // The event-driven scheduler (the default behind `run_instructions`)
    // must be indistinguishable from the dense oracle on the full
    // accelerator: same output bits, same cycle count, same per-kernel
    // stats and counters — with a meaningful number of parks actually
    // exercised (the controller parks on `done`, write units on their
    // tile inputs, staging on full work FIFOs).
    let cfg = config();
    let qw = weights(64, 3, 4);
    let input = input_tensor(3, 8, 8);
    let (dense, layout) = run_conv_outcome(&cfg, &qw, &input, run_instructions_dense);
    let (event, _) = run_conv_outcome(&cfg, &qw, &input, run_instructions);

    assert_eq!(dense.cycles, event.cycles, "cycle counts must match");
    assert_eq!(dense.report, event.report, "kernel stats and counters must match");
    assert_eq!(dense.counters, event.counters);
    assert!(event.report.sched.parks > 0, "event run must actually park kernels");
    assert_eq!(dense.report.sched.parks, 0, "dense run never parks");
    let extract = |outcome: &super::CycleOutcome| {
        let mut got = TiledFeatureMap::zeros(Shape::new(qw.out_c, 8, 8));
        layout.load(&outcome.banks, &mut got, 0..layout.tile_rows);
        got.to_tensor().cropped(8, 8)
    };
    let out = extract(&dense);
    assert_eq!(out, extract(&event), "outputs must be bit-identical");
    assert_eq!(out, conv2d_quant(&input, &qw, 1, 1), "and match the golden model");
}

/// A hosted-mode entry point under test.
type HostedRun = fn(&AccelConfig, BankSet, Vec<u8>, HostModel, u64) -> Result<CycleOutcome, zskip_sim::SimError>;

/// Adapter so the hosted entry points fit [`run_conv_outcome`]'s
/// signature: splits the instruction stream into layers with the given
/// staging latencies and wraps it into a [`HostModel`].
fn hosted(
    staging: &'static [u64],
    poll_interval: u64,
    run: HostedRun,
) -> impl Fn(&AccelConfig, BankSet, Vec<u8>, &[Instruction], u64) -> Result<CycleOutcome, zskip_sim::SimError> {
    move |cfg, banks, scratch, instrs, max| {
        let per_layer = instrs.len().div_ceil(staging.len());
        let layers = instrs
            .chunks(per_layer.max(1))
            .zip(staging)
            .map(|(chunk, &staging_cycles)| HostLayer { staging_cycles, instrs: chunk.to_vec() })
            .collect();
        run(cfg, banks, scratch, HostModel { poll_interval, layers }, max)
    }
}

#[test]
fn hosted_event_matches_dense_and_jumps_staging() {
    // The hosted system design (host kernel staging, dispatching and
    // polling each layer, §IV-C) under the event scheduler must be
    // bit-identical to the dense oracle while jumping the long staging
    // and polling gaps. Staging latencies deliberately exceed the default
    // 10k-cycle deadlock window — the hosted wiring widens the window to
    // the longest gap, and both steppers must agree it's not a deadlock.
    const STAGING: &[u64] = &[30_000, 15_000, 45_000];
    let cfg = config();
    let qw = weights(64, 3, 4);
    let input = input_tensor(3, 8, 8);
    let (dense, layout) = run_conv_outcome(&cfg, &qw, &input, hosted(STAGING, 200, run_hosted_dense));
    let (event, _) = run_conv_outcome(&cfg, &qw, &input, hosted(STAGING, 200, run_hosted));

    assert_eq!(dense.cycles, event.cycles, "cycle counts must match");
    assert_eq!(dense.report, event.report, "kernel stats and counters must match");
    assert_eq!(dense.counters, event.counters);
    assert_eq!(dense.report.sched.parks, 0, "dense run never parks");
    assert!(event.report.sched.parks > 0, "host and accelerator kernels must park");
    let total_staging: u64 = STAGING.iter().sum();
    assert!(
        event.report.sched.idle_jumped > total_staging / 2,
        "staging gaps must be jumped, not ground through: {:?}",
        event.report.sched
    );
    assert_eq!(event.report.sched.executed_cycles + event.report.sched.idle_jumped, event.cycles);

    let extract = |outcome: &super::CycleOutcome| {
        let mut got = TiledFeatureMap::zeros(Shape::new(qw.out_c, 8, 8));
        layout.load(&outcome.banks, &mut got, 0..layout.tile_rows);
        got.to_tensor().cropped(8, 8)
    };
    let out = extract(&dense);
    assert_eq!(out, extract(&event), "outputs must be bit-identical");
    assert_eq!(out, conv2d_quant(&input, &qw, 1, 1), "and match the golden model");
}

#[test]
fn hosted_run_pays_staging_over_preloaded() {
    // Same instruction stream, hosted vs. preloaded: identical output
    // banks, but the hosted run pays the staging latency and the
    // poll-interval quantization on top of the compute cycles.
    const STAGING: &[u64] = &[20_000, 20_000];
    let cfg = config();
    let qw = weights(16, 3, 4);
    let input = input_tensor(3, 8, 8);
    let (plain, layout) = run_conv_outcome(&cfg, &qw, &input, run_instructions);
    let (hosted_out, _) = run_conv_outcome(&cfg, &qw, &input, hosted(STAGING, 500, run_hosted));

    let extract = |outcome: &super::CycleOutcome| {
        let mut got = TiledFeatureMap::zeros(Shape::new(qw.out_c, 8, 8));
        layout.load(&outcome.banks, &mut got, 0..layout.tile_rows);
        got.to_tensor().cropped(8, 8)
    };
    assert_eq!(extract(&plain), extract(&hosted_out), "hosted run computes the same result");
    let total_staging: u64 = STAGING.iter().sum();
    assert!(
        hosted_out.cycles > plain.cycles + total_staging,
        "hosted run must pay staging on top of compute: {} vs {} + {}",
        hosted_out.cycles,
        plain.cycles,
        total_staging
    );
}

#[test]
fn conv_matches_golden_model_bit_exact() {
    let cfg = config();
    let qw = weights(8, 8, 5);
    let input = input_tensor(8, 12, 12);
    let (got, _) = run_conv(&cfg, &qw, &input);
    assert_eq!(got, conv2d_quant(&input, &qw, 1, 1));
}

#[test]
fn conv_matches_with_ragged_group() {
    // 10 OFMs: the final group has 2 active lanes.
    let cfg = config();
    let qw = weights(10, 5, 4);
    let input = input_tensor(5, 8, 8);
    let (got, _) = run_conv(&cfg, &qw, &input);
    assert_eq!(got, conv2d_quant(&input, &qw, 1, 1));
}

#[test]
fn conv_matches_on_16_unopt_architecture() {
    let base = AccelConfig::from_arch(&AccelArch::single_submodule(), 55.0);
    let cfg = AccelConfig { bank_tiles: 4096, ..base };
    let qw = weights(5, 3, 3);
    let input = input_tensor(3, 8, 8);
    let (got, _) = run_conv(&cfg, &qw, &input);
    assert_eq!(got, conv2d_quant(&input, &qw, 1, 1));
}

#[test]
fn non_square_feature_maps_work() {
    let cfg = config();
    let qw = weights(4, 3, 6);
    let input = input_tensor(3, 6, 14);
    let (got, _) = run_conv(&cfg, &qw, &input);
    assert_eq!(got, conv2d_quant(&input, &qw, 1, 1));
}

#[test]
fn pruned_weights_take_fewer_cycles_and_stay_exact() {
    let cfg = config();
    let input = input_tensor(8, 16, 16);

    let dense = weights(8, 8, usize::MAX); // nothing zeroed
    let (out_dense, dense_cycles) = run_conv(&cfg, &dense, &input);
    assert_eq!(out_dense, conv2d_quant(&input, &dense, 1, 1));

    let sparse = weights(8, 8, 2); // roughly half the weights zero
    let (out_sparse, sparse_cycles) = run_conv(&cfg, &sparse, &input);
    assert_eq!(out_sparse, conv2d_quant(&input, &sparse, 1, 1));

    assert!(
        sparse_cycles < dense_cycles,
        "zero-skipping must save cycles: sparse {sparse_cycles} vs dense {dense_cycles}"
    );
}

#[test]
fn four_cycle_floor_limits_sparse_speedup() {
    // With only 1 non-zero weight per tile, cycles are floored by the
    // 4-cycle IFM quad load: speedup over 8 nnz is at most 2x-ish, far
    // from 8x.
    let cfg = config();
    let input = input_tensor(4, 16, 16);

    let mut nearly_empty = weights(4, 4, usize::MAX);
    // Keep exactly one non-zero weight per (o, i) filter.
    for o in 0..4 {
        for i in 0..4 {
            for ky in 0..3 {
                for kx in 0..3 {
                    if !(ky == 1 && kx == 1) {
                        let idx = ((o * 4 + i) * 3 + ky) * 3 + kx;
                        nearly_empty.w[idx] = Sm8::ZERO;
                    }
                }
            }
        }
    }
    nearly_empty.invalidate_caches();
    let (out1, one_cycles) = run_conv(&cfg, &nearly_empty, &input);
    assert_eq!(out1, conv2d_quant(&input, &nearly_empty, 1, 1));

    let dense = weights(4, 4, usize::MAX); // 9 nnz per tile
    let (_, dense_cycles) = run_conv(&cfg, &dense, &input);

    let speedup = dense_cycles as f64 / one_cycles as f64;
    assert!(speedup < 3.0, "floor must cap the speedup, got {speedup:.2}x");
    assert!(speedup > 1.5, "sparse run should still be faster, got {speedup:.2}x");
}

#[test]
fn fully_pruned_group_writes_bias_only_tiles() {
    let cfg = config();
    let mut qw = weights(4, 4, 5);
    qw.w.iter_mut().for_each(|w| *w = Sm8::ZERO);
    qw.invalidate_caches();
    qw.relu = false;
    qw.requant = Requantizer::IDENTITY;
    qw.bias_acc = vec![7, -3, 0, 120];
    let input = input_tensor(4, 8, 8);
    let (got, _) = run_conv(&cfg, &qw, &input);
    for o in 0..4 {
        for v in got.channel(o) {
            assert_eq!(v.to_i32() as i64, qw.bias_acc[o]);
        }
    }
}

#[test]
fn pool_instruction_matches_reference() {
    let cfg = config();
    let input = input_tensor(8, 16, 16);
    let tiled_in = TiledFeatureMap::from_tensor(&input);
    let in_layout = FmLayout::full(0, input.shape());
    let out_shape = Shape::new(8, 8, 8);
    let out_layout = FmLayout::full(in_layout.end(), out_shape);
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled_in, 0..4);
    let instr = Instruction::PoolPad(PoolPadInstr {
        channels: 8,
        in_base: 0,
        in_tiles_x: 4,
        in_tile_rows: 4,
        in_row_start: 0,
        out_base: out_layout.base as u32,
        out_tiles_x: 2,
        out_tile_rows: 2,
        out_row_start: 0,
        op: PoolPadOp::MaxPool { k: 2, stride: 2 },
    });
    let outcome = run_instructions(&cfg, banks, Vec::new(), &[instr], 1_000_000).expect("run completes");
    let mut got = TiledFeatureMap::zeros(out_shape);
    out_layout.load(&outcome.banks, &mut got, 0..2);
    assert_eq!(got.to_tensor().cropped(8, 8), zskip_nn::pool::maxpool_quant(&input, 2, 2));
}

#[test]
fn pad_instruction_matches_reference() {
    let cfg = config();
    let input = input_tensor(4, 8, 8);
    let tiled_in = TiledFeatureMap::from_tensor(&input);
    let in_layout = FmLayout::full(0, input.shape());
    let out_shape = Shape::new(4, 10, 10);
    let out_layout = FmLayout::full(in_layout.end(), out_shape);
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled_in, 0..2);
    let instr = Instruction::PoolPad(PoolPadInstr {
        channels: 4,
        in_base: 0,
        in_tiles_x: 2,
        in_tile_rows: 2,
        in_row_start: 0,
        out_base: out_layout.base as u32,
        out_tiles_x: 3,
        out_tile_rows: 3,
        out_row_start: 0,
        op: PoolPadOp::Pad { amount: 1 },
    });
    let outcome = run_instructions(&cfg, banks, Vec::new(), &[instr], 1_000_000).expect("run completes");
    let mut got = TiledFeatureMap::zeros(out_shape);
    out_layout.load(&outcome.banks, &mut got, 0..3);
    assert_eq!(got.to_tensor().cropped(10, 10), input.padded(1));
}

#[test]
fn empty_stream_finishes_quickly() {
    let cfg = config();
    let outcome = run_instructions(&cfg, BankSet::new(&cfg), Vec::new(), &[], 10_000).expect("run completes");
    assert!(outcome.cycles < 50, "cycles {}", outcome.cycles);
}

#[test]
fn counters_record_macs_and_bubbles() {
    let cfg = config();
    let qw = weights(8, 8, 3);
    let input = input_tensor(8, 8, 8);
    let padded = input.padded(1);
    let tiled_in = TiledFeatureMap::from_tensor(&padded);
    let in_layout = FmLayout::full(0, padded.shape());
    let out_layout = FmLayout::full(in_layout.end(), Shape::new(8, 8, 8));
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled_in, 0..tiled_in.tiles_y());
    let gw = GroupWeights::from_filters(&qw, 0, 4);
    let scratchpad = gw.to_bytes();
    let instr = Instruction::Conv(ConvInstr {
        ofm_first: 0,
        ifm_count: 8,
        ifm_base: 0,
        ifm_tiles_x: in_layout.tiles_x as u16,
        ifm_tile_rows: in_layout.tile_rows as u16,
        ifm_row_offset: 0,
        ofm_base: out_layout.base as u32,
        ofm_tiles_x: 2,
        ofm_tile_rows: 2,
        wgt_base: 0,
        bias: [0; 4],
        requant_mult: qw.requant.mult as u16,
        requant_shift: qw.requant.shift as u8,
        relu: true,
        active_lanes: 4,
    });
    let outcome = run_instructions(&cfg, banks, scratchpad, &[instr], 1_000_000).expect("run completes");
    // MACs: group nnz x 16 values x 4 positions.
    assert_eq!(outcome.counters.get("macs"), gw.total_nnz() as u64 * 16 * 4);
    // Bubbles appear because the filters have unequal nnz.
    assert!(outcome.counters.get("bubble_lanes") > 0);
    assert!(outcome.counters.get("ofm_tiles_written") == 16);
}

/// A mixed stream — pad, conv, pool back to back in one doorbell — runs
/// in order with correct dataflow between instructions.
#[test]
fn mixed_instruction_stream_chains_correctly() {
    let cfg = config();
    let (c_in, h, w) = (4usize, 8usize, 8usize);
    let input = input_tensor(c_in, h, w);
    let qw = weights(4, c_in, 3);

    // Layouts: raw input -> padded -> conv output -> pooled output.
    let raw = FmLayout::full(0, input.shape());
    let padded_shape = Shape::new(c_in, h + 2, w + 2);
    let padded = FmLayout::full(raw.end(), padded_shape);
    let conv_shape = Shape::new(4, h, w);
    let conv_out = FmLayout::full(padded.end(), conv_shape);
    let pool_shape = Shape::new(4, h / 2, w / 2);
    let pool_out = FmLayout::full(conv_out.end(), pool_shape);

    let mut banks = BankSet::new(&cfg);
    let tiled = TiledFeatureMap::from_tensor(&input);
    raw.store(&mut banks, &tiled, 0..tiled.tiles_y());

    let gw = GroupWeights::from_filters(&qw, 0, cfg.lanes);
    let scratchpad = gw.to_bytes();

    let stream = vec![
        Instruction::PoolPad(PoolPadInstr {
            channels: c_in as u16,
            in_base: raw.base as u32,
            in_tiles_x: raw.tiles_x as u16,
            in_tile_rows: raw.tile_rows as u16,
            in_row_start: 0,
            out_base: padded.base as u32,
            out_tiles_x: padded.tiles_x as u16,
            out_tile_rows: padded.tile_rows as u16,
            out_row_start: 0,
            op: PoolPadOp::Pad { amount: 1 },
        }),
        Instruction::Conv(ConvInstr {
            ofm_first: 0,
            ifm_count: c_in as u16,
            ifm_base: padded.base as u32,
            ifm_tiles_x: padded.tiles_x as u16,
            ifm_tile_rows: padded.tile_rows as u16,
            ifm_row_offset: 0,
            ofm_base: conv_out.base as u32,
            ofm_tiles_x: conv_out.tiles_x as u16,
            ofm_tile_rows: conv_out.tile_rows as u16,
            wgt_base: 0,
            bias: [1, -2, 3, -4],
            requant_mult: qw.requant.mult as u16,
            requant_shift: qw.requant.shift as u8,
            relu: true,
            active_lanes: 4,
        }),
        Instruction::PoolPad(PoolPadInstr {
            channels: 4,
            in_base: conv_out.base as u32,
            in_tiles_x: conv_out.tiles_x as u16,
            in_tile_rows: conv_out.tile_rows as u16,
            in_row_start: 0,
            out_base: pool_out.base as u32,
            out_tiles_x: pool_out.tiles_x as u16,
            out_tile_rows: pool_out.tile_rows as u16,
            out_row_start: 0,
            op: PoolPadOp::MaxPool { k: 2, stride: 2 },
        }),
    ];

    let mut qw_bias = qw.clone();
    qw_bias.bias_acc = vec![1, -2, 3, -4];
    let want = zskip_nn::pool::maxpool_quant(&conv2d_quant(&input, &qw_bias, 1, 1), 2, 2);

    let outcome = run_instructions(&cfg, banks, scratchpad, &stream, 10_000_000).expect("runs");
    let mut got = TiledFeatureMap::zeros(pool_shape);
    pool_out.load(&outcome.banks, &mut got, 0..pool_out.tile_rows);
    assert_eq!(got.to_tensor().cropped(h / 2, w / 2), want);

    // Same stream on the model backend: identical final banks region.
    let mut model_banks = BankSet::new(&cfg);
    let tiled = TiledFeatureMap::from_tensor(&input);
    raw.store(&mut model_banks, &tiled, 0..tiled.tiles_y());
    let gw2 = GroupWeights::from_filters(&qw, 0, cfg.lanes);
    crate::model::run_instructions(&cfg, &mut model_banks, &gw2.to_bytes(), &stream, &mut zskip_sim::Counters::new());
    let mut got2 = TiledFeatureMap::zeros(pool_shape);
    pool_out.load(&model_banks, &mut got2, 0..pool_out.tile_rows);
    assert_eq!(got2.to_tensor().cropped(h / 2, w / 2), want);
}
