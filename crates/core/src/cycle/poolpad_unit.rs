//! The padding/max-pooling unit kernel (paper Fig. 5).
//!
//! Holds one OFM tile of output registers; each cycle applies one micro-op
//! (four MAX-unit selections over the incoming IFM tile, routed to the
//! output registers through the update muxes). When the micro-op marked
//! `last` lands, the completed tile ships to the write-to-memory unit and
//! the registers clear.

use super::msg::Msg;
use crate::poolpad::apply_micro_op;
use crate::poolpad::MicroOp;
use zskip_quant::Sm8;
use zskip_sim::{CounterId, Ctx, FifoId, Horizon, Kernel, Progress};
use zskip_tensor::Tile;

/// The pool/pad unit.
pub struct PoolPadKernel {
    name: String,
    input: FifoId,
    out: FifoId,
    reg: Tile<Sm8>,
    finished: bool,
    /// Interned `max_ops` id — fires on every micro-op.
    max_ops_counter: Option<CounterId>,
}

impl PoolPadKernel {
    /// Creates pool/pad unit `index`.
    pub fn new(index: usize, input: FifoId, out: FifoId) -> PoolPadKernel {
        PoolPadKernel {
            name: format!("poolpad{index}"),
            input,
            out,
            reg: Tile::zero(),
            finished: false,
            max_ops_counter: None,
        }
    }
}

impl Kernel<Msg> for PoolPadKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn horizon(&self) -> Horizon {
        // Blocked and idle ticks only probe FIFOs (room check + pop).
        Horizon::Reactive
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        if self.finished {
            return Progress::Done;
        }
        // Hold off when the output FIFO cannot take a completed tile; the
        // whole unit stalls (one pipeline enable, as in hardware).
        if !ctx.fifos.has_room(self.out) {
            return if ctx.fifos.is_empty(self.input) { Progress::Idle } else { Progress::Blocked };
        }
        match ctx.fifos.try_pop(self.input) {
            Some(Msg::PoolWork(work)) => {
                let mop = MicroOp { in_ty: 0, in_tx: 0, sels: work.sels };
                apply_micro_op(&mut self.reg, &work.input, &mop);
                let max_ops =
                    *self.max_ops_counter.get_or_insert_with(|| ctx.counters.intern("max_ops"));
                ctx.counters.add_id(max_ops, work.sels.iter().filter(|s| s.mask != 0).count() as u64);
                if work.last {
                    let tile = std::mem::replace(&mut self.reg, Tile::zero());
                    ctx.fifos
                        .try_push(self.out, Msg::OfmTile { bank: work.out_bank, addr: work.out_addr, tile })
                        .expect("room checked above");
                }
                Progress::Busy
            }
            Some(Msg::Shutdown) => {
                self.finished = true;
                Progress::Done
            }
            Some(other) => panic!("pool/pad unit received unexpected message {other:?}"),
            None => Progress::Idle,
        }
    }
}
