//! The convolution unit kernel.
//!
//! Each cycle it accepts one [`ConvWork`] item: a quad region of IFM data
//! and up to four packed weights (one per filter lane). For each present
//! lane it performs 16 sign+magnitude multiplies — the weight's intra-tile
//! offset steers which 4x4 window of the quad region feeds the multipliers
//! (paper Fig. 4b) — and forwards the 16 products to that lane's
//! accumulator. 4 lanes x 16 = 64 multiplies per cycle per unit; four
//! units give the paper's 256 multiplications per cycle.

use super::msg::{ConvWork, Msg};
use std::rc::Rc;
use zskip_sim::{Ctx, FifoId, Horizon, Kernel, Progress};
use zskip_tensor::offset_to_dydx;

/// The convolution unit.
pub struct ConvKernel {
    name: String,
    /// Work/marker input from the staging unit.
    input: FifoId,
    /// One output FIFO per accumulator lane.
    lane_out: Rc<[FifoId]>,
}

impl ConvKernel {
    /// Creates conv unit `index` with its lane output FIFOs.
    pub fn new(index: usize, input: FifoId, lane_out: Rc<[FifoId]>) -> ConvKernel {
        ConvKernel { name: format!("conv{index}"), input, lane_out }
    }

    /// The steering network + multipliers for one lane (Fig. 4b).
    fn multiply(work: &ConvWork, lane: usize) -> Option<[i32; 16]> {
        let entry = work.lanes[lane]?;
        let (dy, dx) = offset_to_dydx(entry.offset);
        let mut products = [0i32; 16];
        for (j, p) in products.iter_mut().enumerate() {
            let (jy, jx) = (j / 4, j % 4);
            // The weight's offset selects the 4x4 window of the 8x8 quad
            // region that aligns with the OFM tile.
            let v = work.region[(dy + jy) * 8 + (dx + jx)];
            *p = entry.value.mul_exact(v);
        }
        Some(products)
    }
}

impl Kernel<Msg> for ConvKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn horizon(&self) -> Horizon {
        // Blocked and idle ticks only probe FIFOs (room check + pop).
        Horizon::Reactive
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        // Structural hazard check: every lane FIFO must have room before
        // we commit to popping (the hardware pipeline stalls as a whole).
        for &f in self.lane_out.iter() {
            if !ctx.fifos.has_room(f) {
                return if ctx.fifos.is_empty(self.input) { Progress::Idle } else { Progress::Blocked };
            }
        }
        match ctx.fifos.try_pop(self.input) {
            Some(Msg::ConvWork(work)) => {
                for (lane, &f) in self.lane_out.iter().enumerate() {
                    if let Some(products) = Self::multiply(&work, lane) {
                        ctx.fifos.try_push(f, Msg::Products(products)).expect("room checked above");
                    }
                }
                Progress::Busy
            }
            Some(Msg::EndPosition) => {
                for &f in self.lane_out.iter() {
                    ctx.fifos.try_push(f, Msg::AccumEnd).expect("room checked above");
                }
                Progress::Busy
            }
            Some(Msg::Shutdown) => Progress::Done,
            Some(other) => panic!("conv unit received unexpected message {other:?}"),
            None => Progress::Idle,
        }
    }
}
