//! The write-to-memory unit kernel.
//!
//! Drains completed OFM tiles (from its accumulator lane and its pool/pad
//! unit) into the SRAM banks through port B, one tile per cycle, and
//! reports instruction completion to the main controller once the expected
//! number of tiles has landed.

use super::msg::Msg;
use crate::bank::BankSet;
use std::cell::RefCell;
use std::rc::Rc;
use zskip_sim::{CounterId, Ctx, FifoId, Horizon, Kernel, Progress};

/// The write-to-memory unit.
pub struct WriteKernel {
    name: String,
    banks: Rc<RefCell<BankSet>>,
    cmd: FifoId,
    /// Tile inputs: accumulator lane output and pool/pad output.
    inputs: Vec<FifoId>,
    done_out: FifoId,
    expected: Option<u32>,
    written: u32,
    finished: bool,
    /// Interned `ofm_tiles_written` id — fires on every tile landed.
    tiles_counter: Option<CounterId>,
}

impl WriteKernel {
    /// Creates write unit `index` draining the given tile FIFOs.
    pub fn new(
        index: usize,
        banks: Rc<RefCell<BankSet>>,
        cmd: FifoId,
        inputs: Vec<FifoId>,
        done_out: FifoId,
    ) -> WriteKernel {
        WriteKernel {
            name: format!("write{index}"),
            banks,
            cmd,
            inputs,
            done_out,
            expected: None,
            written: 0,
            finished: false,
            tiles_counter: None,
        }
    }
}

impl Kernel<Msg> for WriteKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn horizon(&self) -> Horizon {
        // Bank port B is only touched on the Busy path; blocked and idle
        // ticks are pure FIFO probes.
        Horizon::Reactive
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        if self.finished {
            return Progress::Done;
        }
        let Some(expected) = self.expected else {
            return match ctx.fifos.try_pop(self.cmd) {
                Some(Msg::WriteExpect(n)) => {
                    self.expected = Some(n);
                    self.written = 0;
                    Progress::Busy
                }
                Some(Msg::Shutdown) => {
                    self.finished = true;
                    Progress::Done
                }
                Some(other) => panic!("write unit received unexpected message {other:?}"),
                None => Progress::Idle,
            };
        };

        if self.written == expected {
            return match ctx.fifos.try_push(self.done_out, Msg::Done) {
                Ok(()) => {
                    self.expected = None;
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            };
        }

        // One tile write per cycle: take the first available input.
        for &f in &self.inputs {
            match ctx.fifos.try_pop(f) {
                Some(Msg::OfmTile { bank, addr, tile }) => {
                    let ok =
                        self.banks.borrow_mut().write_port_b(bank as usize, addr as usize, tile, ctx.cycle);
                    assert!(ok, "write unit owns port B of its bank(s)");
                    let tiles = *self
                        .tiles_counter
                        .get_or_insert_with(|| ctx.counters.intern("ofm_tiles_written"));
                    ctx.counters.add_id(tiles, 1);
                    self.written += 1;
                    return Progress::Busy;
                }
                Some(other) => panic!("write unit received unexpected message {other:?}"),
                None => continue,
            }
        }
        Progress::Blocked
    }
}
