//! The main controller kernel.
//!
//! Models the instruction dispatch path of paper Fig. 3's "main
//! controller": receives the instruction stream (already fetched via DMA),
//! configures the staging, accumulator and write units for each
//! instruction, and waits for the write units to confirm completion before
//! dispatching the next. Registered last in the engine so it also commits
//! the SRAM banks' per-cycle port state.

use super::msg::{AccumCfg, Msg};
use crate::bank::BankSet;
use crate::config::AccelConfig;
use crate::isa::{ConvInstr, Instruction};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use zskip_sim::{Ctx, FifoId, Kernel, Progress};

enum State {
    /// Instruction-decode latency countdown.
    Decode(u64),
    /// Push configuration to all units.
    Dispatch,
    /// Await per-write-unit completion.
    WaitDone {
        remaining: usize,
    },
    /// Broadcast shutdown.
    Shutdown,
    Finished,
}

/// The main controller.
pub struct CtrlKernel {
    config: AccelConfig,
    banks: Rc<RefCell<BankSet>>,
    instrs: VecDeque<Instruction>,
    staging_cmds: Vec<FifoId>,
    accum_cfgs: Vec<FifoId>,
    write_cmds: Vec<FifoId>,
    done_in: FifoId,
    state: State,
}

impl CtrlKernel {
    /// Creates the controller with the full instruction stream.
    pub fn new(
        config: AccelConfig,
        banks: Rc<RefCell<BankSet>>,
        instrs: Vec<Instruction>,
        staging_cmds: Vec<FifoId>,
        accum_cfgs: Vec<FifoId>,
        write_cmds: Vec<FifoId>,
        done_in: FifoId,
    ) -> CtrlKernel {
        CtrlKernel {
            config,
            banks,
            instrs: instrs.into(),
            staging_cmds,
            accum_cfgs,
            write_cmds,
            done_in,
            state: State::Decode(AccelConfig::INSTR_OVERHEAD_CYCLES),
        }
    }

    fn accum_cfg(&self, i: &ConvInstr, lane: usize) -> AccumCfg {
        let channel = i.ofm_first as u32 + lane as u32;
        let positions = i.ofm_tile_rows as u32 * i.ofm_tiles_x as u32;
        AccumCfg {
            active: lane < i.active_lanes as usize,
            bias: i.bias[lane] as i64,
            mult: i.requant_mult,
            shift: i.requant_shift,
            relu: i.relu,
            positions,
            units: self.config.units as u8,
            out_bank: (channel % AccelConfig::BANKS as u32) as u8,
            out_base: i.ofm_base + (channel / AccelConfig::BANKS as u32) * positions,
        }
    }

    fn write_expect(&self, instr: &Instruction, unit: usize) -> u32 {
        match instr {
            Instruction::Conv(i) => {
                let positions = i.ofm_tile_rows as u32 * i.ofm_tiles_x as u32;
                if unit < i.active_lanes as usize {
                    positions
                } else {
                    0
                }
            }
            Instruction::PoolPad(i) => {
                let positions = i.out_tile_rows as u32 * i.out_tiles_x as u32;
                let channels = (0..i.channels as usize).filter(|c| c % self.config.units == unit).count() as u32;
                channels * positions
            }
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        let instr = *self.instrs.front().expect("dispatch with an instruction pending");
        // All pushes target distinct FIFOs: legal in one cycle.
        for s in 0..self.config.units {
            ctx.fifos.try_push(self.staging_cmds[s], Msg::Cmd(instr)).expect("cmd FIFO sized for dispatch");
        }
        if let Instruction::Conv(ref c) = instr {
            for lane in 0..self.config.lanes {
                ctx.fifos
                    .try_push(self.accum_cfgs[lane], Msg::Accum(self.accum_cfg(c, lane)))
                    .expect("cfg FIFO sized for dispatch");
            }
        }
        for unit in 0..self.config.units {
            ctx.fifos
                .try_push(self.write_cmds[unit], Msg::WriteExpect(self.write_expect(&instr, unit)))
                .expect("cmd FIFO sized for dispatch");
        }
        self.state = State::WaitDone { remaining: self.config.units };
        Progress::Busy
    }
}

impl Kernel<Msg> for CtrlKernel {
    fn name(&self) -> &str {
        "main-ctrl"
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        let progress = match &mut self.state {
            State::Finished => Progress::Done,
            State::Decode(left) => {
                if self.instrs.is_empty() {
                    self.state = State::Shutdown;
                    Progress::Busy
                } else if *left > 0 {
                    *left -= 1;
                    Progress::Busy
                } else {
                    self.state = State::Dispatch;
                    Progress::Busy
                }
            }
            State::Dispatch => self.dispatch(ctx),
            State::WaitDone { remaining } => match ctx.fifos.try_pop(self.done_in) {
                Some(Msg::Done) => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.instrs.pop_front();
                        self.state = State::Decode(AccelConfig::INSTR_OVERHEAD_CYCLES);
                    }
                    Progress::Busy
                }
                Some(other) => panic!("controller received unexpected message {other:?}"),
                None => Progress::Blocked,
            },
            State::Shutdown => {
                for s in 0..self.config.units {
                    ctx.fifos.try_push(self.staging_cmds[s], Msg::Shutdown).expect("cmd FIFO has room at shutdown");
                    ctx.fifos.try_push(self.write_cmds[s], Msg::Shutdown).expect("cmd FIFO has room at shutdown");
                }
                for lane in 0..self.config.lanes {
                    ctx.fifos.try_push(self.accum_cfgs[lane], Msg::Shutdown).expect("cfg FIFO has room at shutdown");
                }
                self.state = State::Finished;
                Progress::Done
            }
        };
        // Registered last: commit the banks' per-cycle port reservations.
        self.banks.borrow_mut().end_cycle();
        progress
    }
}
