//! The main controller kernel.
//!
//! Models the instruction dispatch path of paper Fig. 3's "main
//! controller": receives the instruction stream (already fetched via DMA),
//! configures the staging, accumulator and write units for each
//! instruction, and waits for the write units to confirm completion before
//! dispatching the next. Bank port arbitration is cycle-stamped inside
//! [`crate::bank::BankSet`], so the controller carries no bank handle and
//! can park like any other kernel while waiting on completions.

use super::msg::{AccumCfg, Msg};
use crate::config::AccelConfig;
use crate::isa::{ConvInstr, Instruction};
use std::collections::VecDeque;
use zskip_sim::{Ctx, FifoId, Horizon, Kernel, Progress};

enum State {
    /// Instruction-decode latency countdown.
    Decode(u64),
    /// Push configuration to all units.
    Dispatch,
    /// Await per-write-unit completion.
    WaitDone {
        remaining: usize,
    },
    /// Broadcast shutdown.
    Shutdown,
    Finished,
}

/// The main controller.
pub struct CtrlKernel {
    config: AccelConfig,
    instrs: VecDeque<Instruction>,
    /// Hosted mode: instructions arrive over this FIFO (from the host
    /// kernel) instead of being preloaded; a `Msg::Shutdown` token ends
    /// the stream.
    instr_in: Option<FifoId>,
    /// Hosted mode: per-instruction completion notifications to the host.
    host_done: Option<FifoId>,
    staging_cmds: Vec<FifoId>,
    accum_cfgs: Vec<FifoId>,
    write_cmds: Vec<FifoId>,
    done_in: FifoId,
    state: State,
}

impl CtrlKernel {
    /// Creates the controller with the full instruction stream.
    pub fn new(
        config: AccelConfig,
        instrs: Vec<Instruction>,
        staging_cmds: Vec<FifoId>,
        accum_cfgs: Vec<FifoId>,
        write_cmds: Vec<FifoId>,
        done_in: FifoId,
    ) -> CtrlKernel {
        CtrlKernel {
            config,
            instrs: instrs.into(),
            instr_in: None,
            host_done: None,
            staging_cmds,
            accum_cfgs,
            write_cmds,
            done_in,
            state: State::Decode(AccelConfig::INSTR_OVERHEAD_CYCLES),
        }
    }

    /// Creates a host-fed controller: instructions are popped from
    /// `instr_in` as the host dispatches them, and each completed
    /// instruction is acknowledged on `host_done`.
    pub fn new_hosted(
        config: AccelConfig,
        instr_in: FifoId,
        host_done: FifoId,
        staging_cmds: Vec<FifoId>,
        accum_cfgs: Vec<FifoId>,
        write_cmds: Vec<FifoId>,
        done_in: FifoId,
    ) -> CtrlKernel {
        let mut ctrl = CtrlKernel::new(config, Vec::new(), staging_cmds, accum_cfgs, write_cmds, done_in);
        ctrl.instr_in = Some(instr_in);
        ctrl.host_done = Some(host_done);
        ctrl
    }

    fn accum_cfg(&self, i: &ConvInstr, lane: usize) -> AccumCfg {
        let channel = i.ofm_first as u32 + lane as u32;
        let positions = i.ofm_tile_rows as u32 * i.ofm_tiles_x as u32;
        AccumCfg {
            active: lane < i.active_lanes as usize,
            bias: i.bias[lane] as i64,
            mult: i.requant_mult,
            shift: i.requant_shift,
            relu: i.relu,
            positions,
            units: self.config.units as u8,
            out_bank: (channel % AccelConfig::BANKS as u32) as u8,
            out_base: i.ofm_base + (channel / AccelConfig::BANKS as u32) * positions,
        }
    }

    fn write_expect(&self, instr: &Instruction, unit: usize) -> u32 {
        match instr {
            Instruction::Conv(i) => {
                let positions = i.ofm_tile_rows as u32 * i.ofm_tiles_x as u32;
                if unit < i.active_lanes as usize {
                    positions
                } else {
                    0
                }
            }
            Instruction::PoolPad(i) => {
                let positions = i.out_tile_rows as u32 * i.out_tiles_x as u32;
                let channels = (0..i.channels as usize).filter(|c| c % self.config.units == unit).count() as u32;
                channels * positions
            }
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        let instr = *self.instrs.front().expect("dispatch with an instruction pending");
        // All pushes target distinct FIFOs: legal in one cycle.
        for s in 0..self.config.units {
            ctx.fifos.try_push(self.staging_cmds[s], Msg::Cmd(instr)).expect("cmd FIFO sized for dispatch");
        }
        if let Instruction::Conv(ref c) = instr {
            for lane in 0..self.config.lanes {
                ctx.fifos
                    .try_push(self.accum_cfgs[lane], Msg::Accum(self.accum_cfg(c, lane)))
                    .expect("cfg FIFO sized for dispatch");
            }
        }
        for unit in 0..self.config.units {
            ctx.fifos
                .try_push(self.write_cmds[unit], Msg::WriteExpect(self.write_expect(&instr, unit)))
                .expect("cmd FIFO sized for dispatch");
        }
        self.state = State::WaitDone { remaining: self.config.units };
        Progress::Busy
    }
}

impl Kernel<Msg> for CtrlKernel {
    fn name(&self) -> &str {
        "main-ctrl"
    }

    fn horizon(&self) -> Horizon {
        // The only blocked path is the `WaitDone` pop, a pure FIFO probe.
        Horizon::Reactive
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        match &mut self.state {
            State::Finished => Progress::Done,
            State::Decode(left) => {
                if self.instrs.is_empty() {
                    if let Some(fi) = self.instr_in {
                        // Host-fed: fetch the next instruction (or the
                        // end-of-stream token) from the dispatch FIFO.
                        return match ctx.fifos.try_pop(fi) {
                            Some(Msg::Cmd(instr)) => {
                                self.instrs.push_back(instr);
                                self.state = State::Decode(AccelConfig::INSTR_OVERHEAD_CYCLES);
                                Progress::Busy
                            }
                            Some(Msg::Shutdown) => {
                                self.state = State::Shutdown;
                                Progress::Busy
                            }
                            Some(other) => panic!("controller received unexpected message {other:?}"),
                            None => Progress::Idle,
                        };
                    }
                    self.state = State::Shutdown;
                    Progress::Busy
                } else if *left > 0 {
                    *left -= 1;
                    Progress::Busy
                } else {
                    self.state = State::Dispatch;
                    Progress::Busy
                }
            }
            State::Dispatch => self.dispatch(ctx),
            State::WaitDone { remaining } => match ctx.fifos.try_pop(self.done_in) {
                Some(Msg::Done) => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.instrs.pop_front();
                        self.state = State::Decode(AccelConfig::INSTR_OVERHEAD_CYCLES);
                        if let Some(hd) = self.host_done {
                            // Completion visible to the host's next poll.
                            ctx.fifos
                                .try_push(hd, Msg::Done)
                                .expect("host completion FIFO sized for the layer");
                        }
                    }
                    Progress::Busy
                }
                Some(other) => panic!("controller received unexpected message {other:?}"),
                None => Progress::Blocked,
            },
            State::Shutdown => {
                for s in 0..self.config.units {
                    ctx.fifos.try_push(self.staging_cmds[s], Msg::Shutdown).expect("cmd FIFO has room at shutdown");
                    ctx.fifos.try_push(self.write_cmds[s], Msg::Shutdown).expect("cmd FIFO has room at shutdown");
                }
                for lane in 0..self.config.lanes {
                    ctx.fifos.try_push(self.accum_cfgs[lane], Msg::Shutdown).expect("cfg FIFO has room at shutdown");
                }
                self.state = State::Finished;
                Progress::Done
            }
        }
    }
}
