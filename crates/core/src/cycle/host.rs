//! The embedded ARM host as an engine-level kernel.
//!
//! The paper's system view (§IV-C): "Software executing on the on-chip
//! ARM processor handles the loading and pre-processing of network
//! weights, biases and test images", then dispatches instructions over
//! the Avalon bridge and polls the accelerator for completion. At the
//! engine level that behaviour is a 22nd kernel: for each layer it
//! *stages* (sleeps out the DMA + pre-processing latency), *dispatches*
//! (streams the layer's instructions to the main controller through a
//! FIFO), and *polls* for quiescence (drains per-instruction completions
//! at a fixed poll interval, parked in between).
//!
//! The host is idle for long, exactly-known stretches, so it declares a
//! [`Horizon::Sleep`] wake cycle and the event-driven scheduler jumps the
//! gaps — the accelerator's kernels park on their empty command FIFOs at
//! the same time, so whole staging stretches cost O(1). The dense stepper
//! grinds through every cycle and remains the oracle: both produce
//! bit-identical reports.

use super::msg::Msg;
use crate::isa::Instruction;
use std::collections::VecDeque;
use zskip_sim::{Ctx, FifoId, Horizon, Kernel, Progress};

/// One layer's worth of host work: the staging latency the host pays
/// before the layer's instructions can be dispatched, then the
/// instructions themselves.
#[derive(Debug, Clone)]
pub struct HostLayer {
    /// Fabric cycles of DMA + ARM-side pre-processing (tiling, padding,
    /// quantization, weight packing) before dispatch.
    pub staging_cycles: u64,
    /// The layer's instruction stream.
    pub instrs: Vec<Instruction>,
}

/// The host-side schedule for a hosted run: per-layer staging latencies
/// and the quiescence poll interval.
#[derive(Debug, Clone)]
pub struct HostModel {
    /// Fabric cycles between completion polls while the accelerator is
    /// crunching a layer (one Avalon status read per poll).
    pub poll_interval: u64,
    /// The layers, dispatched in order.
    pub layers: Vec<HostLayer>,
}

enum State {
    /// Sleeping out the current layer's staging latency.
    Staging {
        layer: HostLayer,
        /// Absolute wake cycle, fixed on the first staging tick.
        until: Option<u64>,
    },
    /// Streaming the layer's instructions to the controller.
    Dispatch {
        queue: VecDeque<Instruction>,
        outstanding: u32,
    },
    /// Polling for the layer's completions.
    Await {
        outstanding: u32,
        next_poll: u64,
    },
    /// All layers done: deliver the shutdown token.
    Shutdown,
    Finished,
}

/// The host CPU kernel.
pub struct HostKernel {
    layers: VecDeque<HostLayer>,
    instr_out: FifoId,
    done_in: FifoId,
    poll_interval: u64,
    state: State,
    horizon: Horizon,
}

impl HostKernel {
    /// Creates the host with its layer schedule, instruction output FIFO
    /// (to the main controller) and completion input FIFO (from it).
    pub fn new(model: HostModel, instr_out: FifoId, done_in: FifoId) -> HostKernel {
        let mut layers: VecDeque<_> = model.layers.into();
        let state = match layers.pop_front() {
            Some(layer) => State::Staging { layer, until: None },
            None => State::Shutdown,
        };
        HostKernel {
            layers,
            instr_out,
            done_in,
            poll_interval: model.poll_interval.max(1),
            state,
            horizon: Horizon::Reactive,
        }
    }

    /// Next state once a layer's completions have all drained.
    fn advance_layer(&mut self) {
        self.state = match self.layers.pop_front() {
            Some(layer) => State::Staging { layer, until: None },
            None => State::Shutdown,
        };
    }
}

impl Kernel<Msg> for HostKernel {
    fn name(&self) -> &str {
        "host-cpu"
    }

    fn horizon(&self) -> Horizon {
        self.horizon
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        match &mut self.state {
            State::Finished => Progress::Done,
            State::Staging { layer, until } => {
                let wake = match *until {
                    Some(w) => w,
                    None => {
                        let w = ctx.cycle + layer.staging_cycles;
                        *until = Some(w);
                        w
                    }
                };
                if ctx.cycle < wake {
                    self.horizon = Horizon::Sleep(wake);
                    return Progress::Idle;
                }
                let queue: VecDeque<_> = std::mem::take(&mut layer.instrs).into();
                let outstanding = queue.len() as u32;
                self.state = State::Dispatch { queue, outstanding };
                self.horizon = Horizon::Reactive;
                Progress::Busy
            }
            State::Dispatch { queue, outstanding } => {
                let Some(&instr) = queue.front() else {
                    if *outstanding == 0 {
                        // Degenerate empty layer: nothing to await.
                        self.advance_layer();
                    } else {
                        // First quiescence poll one interval after dispatch.
                        self.state = State::Await {
                            outstanding: *outstanding,
                            next_poll: ctx.cycle + self.poll_interval,
                        };
                    }
                    return Progress::Busy;
                };
                match ctx.fifos.try_push(self.instr_out, Msg::Cmd(instr)) {
                    Ok(()) => {
                        queue.pop_front();
                        Progress::Busy
                    }
                    Err(_) => Progress::Blocked,
                }
            }
            State::Await { outstanding, next_poll } => {
                if ctx.cycle < *next_poll {
                    self.horizon = Horizon::Sleep(*next_poll);
                    return Progress::Idle;
                }
                // One status read per cycle; a hit keeps draining, a miss
                // schedules the next poll.
                match ctx.fifos.try_pop(self.done_in) {
                    Some(Msg::Done) => {
                        *outstanding -= 1;
                        self.horizon = Horizon::Reactive;
                        if *outstanding == 0 {
                            self.advance_layer();
                        }
                        Progress::Busy
                    }
                    Some(other) => panic!("host received unexpected message {other:?}"),
                    None => {
                        *next_poll = ctx.cycle + self.poll_interval;
                        self.horizon = Horizon::Sleep(*next_poll);
                        Progress::Idle
                    }
                }
            }
            State::Shutdown => {
                self.horizon = Horizon::Reactive;
                match ctx.fifos.try_push(self.instr_out, Msg::Shutdown) {
                    Ok(()) => {
                        self.state = State::Finished;
                        Progress::Done
                    }
                    Err(_) => Progress::Blocked,
                }
            }
        }
    }
}
