//! The accumulator unit kernel.
//!
//! "Each accumulator unit is responsible for maintaining the values of one
//! tile (16 values) in an OFM" (paper §III-A). It sums products arriving
//! from every convolution unit into 16 wide accumulators initialized with
//! the bias; end-of-position markers from all units trigger the fused
//! ReLU + requantization epilogue and the tile's dispatch to the
//! write-to-memory unit. "The completion of all four OFM tiles at a given
//! x/y tile position is synchronized using a Pthreads barrier" (§III-B1) —
//! here a polled [`Barrier`] shared by the accumulator lanes.

use super::msg::{AccumCfg, Msg};
use std::cell::RefCell;
use std::rc::Rc;
use zskip_quant::{Requantizer, Sm8};
use zskip_sim::{Barrier, CounterId, Ctx, FifoId, Horizon, Kernel, Progress};
use zskip_tensor::Tile;

#[derive(Debug)]
struct Run {
    cfg: AccumCfg,
    acc: [i64; 16],
    /// Per-conv-unit end-of-position marker for the current position.
    marked: Vec<bool>,
    pos: u32,
    /// Finalized tile waiting for FIFO room.
    pending: Option<Tile<Sm8>>,
    at_barrier: bool,
}

// `Run` dominates the size (16 wide accumulators + an aligned tile), but
// the enum lives once per long-lived kernel and `Run` is the state every
// tick touches — boxing it would put a pointer chase in the hot path.
#[allow(clippy::large_enum_variant)]
enum State {
    Idle,
    Run(Run),
    Finished,
}

/// The accumulator kernel for one filter lane.
pub struct AccumKernel {
    name: String,
    lane: usize,
    cfg_in: FifoId,
    /// One products FIFO per convolution unit.
    inputs: Rc<[FifoId]>,
    out: FifoId,
    barrier: Rc<RefCell<Barrier>>,
    state: State,
    /// Interned `accum_adds` id — fires on every product pop.
    adds_counter: Option<CounterId>,
}

impl AccumKernel {
    /// Creates accumulator lane `lane`.
    pub fn new(
        lane: usize,
        cfg_in: FifoId,
        inputs: Rc<[FifoId]>,
        out: FifoId,
        barrier: Rc<RefCell<Barrier>>,
    ) -> AccumKernel {
        AccumKernel {
            name: format!("accum{lane}"),
            lane,
            cfg_in,
            inputs,
            out,
            barrier,
            state: State::Idle,
            adds_counter: None,
        }
    }

    fn finalize(run: &Run, lane: usize) -> Tile<Sm8> {
        let requant = Requantizer { mult: run.cfg.mult as u32, shift: run.cfg.shift as u32 };
        let _ = lane;
        let mut t = Tile::zero();
        for (i, &acc) in run.acc.iter().enumerate() {
            t.as_mut_array()[i] = if run.cfg.relu { requant.apply_relu(acc) } else { requant.apply(acc) };
        }
        t
    }

    fn tick_run(&mut self, run: &mut Run, ctx: &mut Ctx<'_, Msg>) -> (Progress, bool) {
        // Stage 3: synchronized position handoff.
        if run.at_barrier {
            if self.barrier.borrow_mut().arrive_and_poll(self.lane) {
                run.at_barrier = false;
                run.pos += 1;
                if run.pos == run.cfg.positions {
                    return (Progress::Busy, true); // instruction complete
                }
                run.acc = [run.cfg.bias; 16];
                run.marked.iter_mut().for_each(|m| *m = false);
                return (Progress::Busy, false);
            }
            return (Progress::Blocked, false);
        }

        // Stage 2: ship the finalized tile.
        if let Some(tile) = run.pending.take() {
            let addr = run.cfg.out_base + run.pos;
            match ctx.fifos.try_push(self.out, Msg::OfmTile { bank: run.cfg.out_bank, addr, tile }) {
                Ok(()) => {
                    run.at_barrier = true;
                    return (Progress::Busy, false);
                }
                Err(_) => {
                    run.pending = Some(tile);
                    return (Progress::Blocked, false);
                }
            }
        }

        // Stage 1: drain products from every conv unit not yet at its
        // position marker.
        let mut progress = Progress::Idle;
        for u in 0..run.cfg.units as usize {
            if run.marked[u] {
                continue;
            }
            match ctx.fifos.try_pop(self.inputs[u]) {
                Some(Msg::Products(p)) => {
                    for (a, v) in run.acc.iter_mut().zip(p) {
                        *a += v as i64;
                    }
                    let adds =
                        *self.adds_counter.get_or_insert_with(|| ctx.counters.intern("accum_adds"));
                    ctx.counters.add_id(adds, 16);
                    progress = Progress::Busy;
                }
                Some(Msg::AccumEnd) => {
                    run.marked[u] = true;
                    progress = Progress::Busy;
                }
                Some(other) => panic!("accumulator received unexpected message {other:?}"),
                None => {
                    if progress == Progress::Idle {
                        progress = Progress::Blocked;
                    }
                }
            }
        }
        if run.marked.iter().take(run.cfg.units as usize).all(|&m| m) {
            // Position complete: requantize; inactive lanes (ragged final
            // group) skip the write but still hit the barrier.
            if run.cfg.active {
                run.pending = Some(Self::finalize(run, self.lane));
            } else {
                run.at_barrier = true;
            }
            progress = Progress::Busy;
        }
        (progress, false)
    }
}

impl Kernel<Msg> for AccumKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn horizon(&self) -> Horizon {
        // Blocked FIFO paths are pure probes (a refused output push
        // restores `pending` intact). The barrier-wait path touches no
        // FIFOs at all, so its Blocked ticks carry an empty watch set and
        // the scheduler keeps polling — exactly what a spin-wait needs.
        Horizon::Reactive
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Msg>) -> Progress {
        match &mut self.state {
            State::Finished => Progress::Done,
            State::Idle => match ctx.fifos.try_pop(self.cfg_in) {
                Some(Msg::Accum(cfg)) => {
                    if cfg.positions == 0 {
                        return Progress::Busy; // degenerate instruction
                    }
                    self.state = State::Run(Run {
                        acc: [cfg.bias; 16],
                        marked: vec![false; cfg.units as usize],
                        pos: 0,
                        pending: None,
                        at_barrier: false,
                        cfg,
                    });
                    Progress::Busy
                }
                Some(Msg::Shutdown) => {
                    self.state = State::Finished;
                    Progress::Done
                }
                Some(other) => panic!("accumulator received unexpected message {other:?}"),
                None => Progress::Idle,
            },
            State::Run(run) => {
                let mut run_taken = std::mem::replace(
                    run,
                    Run {
                        cfg: run.cfg,
                        acc: [0; 16],
                        marked: Vec::new(),
                        pos: 0,
                        pending: None,
                        at_barrier: false,
                    },
                );
                let (progress, complete) = self.tick_run(&mut run_taken, ctx);
                self.state = if complete { State::Idle } else { State::Run(run_taken) };
                progress
            }
        }
    }
}
