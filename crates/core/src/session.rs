//! The curated library surface a host application holds: a validated
//! [`Session`] wrapping one driver configuration plus the batching knobs
//! every consumer of the accelerator shares.
//!
//! The CLI's `infer`, `batch` and `serve` subcommands all route through
//! this type, so a daemon, a one-shot inference and a benchmark are
//! guaranteed to configure the stack identically: backend, intra-image
//! threads, SIMD kernel tier, weight-cache policy and batch shaping live
//! in exactly one builder. The serving daemon
//! ([`ServeEngine`](crate::serve::ServeEngine)) is a thin protocol layer
//! over a `Session`.
//!
//! ```
//! # use zskip_core::{AccelConfig, BackendKind, Session};
//! # use zskip_hls::AccelArch;
//! let config = AccelConfig::from_arch(
//!     &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
//!     100.0,
//! );
//! let session = Session::builder(config).backend(BackendKind::Cpu).build().unwrap();
//! assert!(session.driver().functional);
//! ```

use std::time::Duration;

use crate::batch::{
    run_batch, run_batch_resilient, BatchReport, ResilientBatchReport, RetryPolicy,
};
use crate::config::AccelConfig;
use crate::driver::{BackendKind, Driver, DriverBuilder, InferenceReport};
use crate::error::Error;
use crate::exec::sched::{self, Placement, ShardReport};
use zskip_fault::SharedFaultPlan;
use zskip_nn::model::QuantizedNetwork;
use zskip_nn::simd::KernelTier;
use zskip_nn::Scratch;
use zskip_tensor::Tensor;

/// Default request-coalescing cutoff ([`BatchConfig::max_batch`]).
pub const DEFAULT_MAX_BATCH: usize = 8;
/// Default adaptive batch window in milliseconds
/// ([`BatchConfig::batch_window`]).
pub const DEFAULT_BATCH_WINDOW_MS: u64 = 2;
/// Default admission-control queue depth ([`BatchConfig::queue_depth`]).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Batch shaping and admission-control knobs shared by the batch engine
/// entry points and the serving daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads for the work-stealing batch pool (0 = host auto).
    pub workers: usize,
    /// Requests coalesced into one accelerator batch at most. The serve
    /// loop dispatches a batch as soon as this many requests are queued,
    /// without waiting out the window (the ResNet50-PYNQ host's
    /// `--max_bs` knob).
    pub max_batch: usize,
    /// How long the serve loop waits for more requests after the first
    /// one of a batch arrives. Zero dispatches immediately (lowest
    /// latency); larger windows trade latency for throughput.
    pub batch_window: Duration,
    /// Bounded submission-queue depth: admission control. A submit
    /// against a full queue is rejected with
    /// [`ServeError::Overloaded`](crate::serve::ServeError::Overloaded)
    /// instead of growing without bound — an overloaded server degrades
    /// to explicit backpressure, never collapse.
    pub queue_depth: usize,
    /// Per-request retry policy for transient faults.
    pub retry: RetryPolicy,
    /// Multi-instance placement for sharded batches
    /// ([`Session::run_sharded`]); `Auto` resolves per workload
    /// (see [`Placement::resolve`]).
    pub placement: Placement,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 0,
            max_batch: DEFAULT_MAX_BATCH,
            batch_window: Duration::from_millis(DEFAULT_BATCH_WINDOW_MS),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            retry: RetryPolicy::default(),
            placement: Placement::Auto,
        }
    }
}

/// Validating builder for [`Session`]. Mirrors [`DriverBuilder`] and adds
/// the batch knobs; see the module docs for an example.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    driver: DriverBuilder,
    batch: BatchConfig,
}

impl SessionBuilder {
    /// Starts a builder from an accelerator configuration with the
    /// [`DriverBuilder`] defaults and [`BatchConfig::default`].
    pub fn new(config: AccelConfig) -> SessionBuilder {
        SessionBuilder { driver: DriverBuilder::new(config), batch: BatchConfig::default() }
    }

    /// Starts a builder from a [`TunedConfig`](crate::tune::TunedConfig)
    /// artifact on disk (the output of `zskip tune`; the CLI's
    /// `--config <file>` flag routes through this). Every knob of the
    /// artifact is applied; callers may layer explicit overrides on the
    /// returned builder before `build()` — that is how CLI flags win
    /// over the artifact.
    ///
    /// # Errors
    /// `config.invalid` when the file cannot be read or is not a valid
    /// versioned artifact (see
    /// [`TunedConfig::load`](crate::tune::TunedConfig::load)).
    pub fn from_tuned(path: impl AsRef<std::path::Path>) -> Result<SessionBuilder, Error> {
        Ok(crate::tune::TunedConfig::load(path)?.session())
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: BackendKind) -> SessionBuilder {
        self.driver = self.driver.backend(backend);
        self
    }

    /// Intra-image conv worker threads for the CPU backend
    /// (see [`DriverBuilder::threads`]).
    pub fn threads(mut self, threads: usize) -> SessionBuilder {
        self.driver = self.driver.threads(threads);
        self
    }

    /// Pins the session's SIMD kernel tier (see [`DriverBuilder::kernel`]).
    pub fn kernel(mut self, tier: KernelTier) -> SessionBuilder {
        self.driver = self.driver.kernel(tier);
        self
    }

    /// Overrides the simulated instance count with the RAM-preserving
    /// bank rescale (see [`DriverBuilder::instances`]).
    pub fn instances(mut self, instances: usize) -> SessionBuilder {
        self.driver = self.driver.instances(instances);
        self
    }

    /// Multi-instance placement for [`Session::run_sharded`]
    /// (see [`BatchConfig::placement`]).
    pub fn placement(mut self, placement: Placement) -> SessionBuilder {
        self.batch.placement = placement;
        self
    }

    /// Toggles the process-wide packed-weight cache
    /// (see [`DriverBuilder::weight_cache`]).
    pub fn weight_cache(mut self, on: bool) -> SessionBuilder {
        self.driver = self.driver.weight_cache(on);
        self
    }

    /// Event-scheduler park hysteresis for the cycle backend
    /// (see [`DriverBuilder::park_hysteresis`]).
    pub fn park_hysteresis(mut self, ticks: u32) -> SessionBuilder {
        self.driver = self.driver.park_hysteresis(ticks);
        self
    }

    /// Enables the future-work filter grouping.
    pub fn filter_grouping(mut self, on: bool) -> SessionBuilder {
        self.driver = self.driver.filter_grouping(on);
        self
    }

    /// When `false`, skip functional arithmetic (stats-only sweeps;
    /// model backend only).
    pub fn functional(mut self, on: bool) -> SessionBuilder {
        self.driver = self.driver.functional(on);
        self
    }

    /// When `false`, pack every weight slot (the no-skipping ablation).
    pub fn zero_skipping(mut self, on: bool) -> SessionBuilder {
        self.driver = self.driver.zero_skipping(on);
        self
    }

    /// Attaches a fault plan (see [`DriverBuilder::fault_plan`]).
    pub fn fault_plan(mut self, plan: SharedFaultPlan) -> SessionBuilder {
        self.driver = self.driver.fault_plan(plan);
        self
    }

    /// Replaces the whole batch configuration.
    pub fn batch_config(mut self, batch: BatchConfig) -> SessionBuilder {
        self.batch = batch;
        self
    }

    /// Batch-pool worker threads (0 = host auto).
    pub fn batch_workers(mut self, workers: usize) -> SessionBuilder {
        self.batch.workers = workers;
        self
    }

    /// Request-coalescing cutoff (see [`BatchConfig::max_batch`]).
    pub fn max_batch(mut self, max_batch: usize) -> SessionBuilder {
        self.batch.max_batch = max_batch;
        self
    }

    /// Adaptive batch window (see [`BatchConfig::batch_window`]).
    pub fn batch_window(mut self, window: Duration) -> SessionBuilder {
        self.batch.batch_window = window;
        self
    }

    /// Admission-control queue depth (see [`BatchConfig::queue_depth`]).
    pub fn queue_depth(mut self, depth: usize) -> SessionBuilder {
        self.batch.queue_depth = depth;
        self
    }

    /// Per-request transient-fault retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> SessionBuilder {
        self.batch.retry = retry;
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    /// Everything [`DriverBuilder::build`] rejects, plus a zero
    /// `max_batch` or `queue_depth` (both would deadlock the serve loop).
    pub fn build(self) -> Result<Session, Error> {
        if self.batch.max_batch == 0 {
            return Err(Error::InvalidConfig("max_batch must be nonzero".into()));
        }
        if self.batch.queue_depth == 0 {
            return Err(Error::InvalidConfig("queue_depth must be nonzero".into()));
        }
        let driver = self.driver.build()?;
        Ok(Session { driver, batch: self.batch })
    }
}

/// A validated, reusable inference session: one driver configuration plus
/// the batch knobs. Cheap to clone (the driver is plain data plus Arcs).
#[derive(Debug, Clone)]
pub struct Session {
    driver: Driver,
    batch: BatchConfig,
}

impl Session {
    /// Starts a validating [`SessionBuilder`] for this configuration.
    pub fn builder(config: AccelConfig) -> SessionBuilder {
        SessionBuilder::new(config)
    }

    /// The underlying driver.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// The session's batch configuration.
    pub fn batch_config(&self) -> &BatchConfig {
        &self.batch
    }

    /// The resolved SIMD kernel tier this session computes with.
    pub fn kernel_tier(&self) -> KernelTier {
        self.driver.kernel_tier
    }

    /// Runs one inference.
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    pub fn infer(
        &self,
        qnet: &QuantizedNetwork,
        input: &Tensor<f32>,
    ) -> Result<InferenceReport, Error> {
        Ok(self.driver.run_network(qnet, input)?)
    }

    /// [`Session::infer`] reusing a caller-owned arena (streaming use).
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    pub fn infer_scratch(
        &self,
        qnet: &QuantizedNetwork,
        input: &Tensor<f32>,
        scratch: &mut Scratch,
    ) -> Result<InferenceReport, Error> {
        Ok(self.driver.run_network_scratch(qnet, input, scratch)?)
    }

    /// Runs a batch on the work-stealing pool with this session's worker
    /// count, failing fast on the first error.
    ///
    /// # Errors
    /// See [`run_batch`].
    pub fn run_batch(
        &self,
        qnet: &QuantizedNetwork,
        inputs: &[Tensor<f32>],
    ) -> Result<BatchReport, Error> {
        Ok(run_batch(&self.driver, qnet, inputs, self.batch.workers)?)
    }

    /// Runs a batch where each input carries its own `Result`, with this
    /// session's worker count and retry policy — the entry point the
    /// serving daemon coalesces requests into.
    pub fn run_batch_resilient(
        &self,
        qnet: &QuantizedNetwork,
        inputs: &[Tensor<f32>],
    ) -> ResilientBatchReport {
        run_batch_resilient(&self.driver, qnet, inputs, self.batch.workers, self.batch.retry)
    }

    /// Runs a batch sharded across the configured simulated instances
    /// under this session's [`BatchConfig::placement`], returning the
    /// per-image reports plus the placement's simulated timeline.
    /// Outputs are bit-identical to [`Session::infer`] per image.
    ///
    /// # Errors
    /// See [`crate::exec::sched::run_sharded`].
    pub fn run_sharded(
        &self,
        qnet: &QuantizedNetwork,
        inputs: &[Tensor<f32>],
    ) -> Result<ShardReport, Error> {
        Ok(sched::run_sharded(&self.driver, qnet, inputs, self.batch.placement)?)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use zskip_hls::AccelArch;
    use zskip_nn::eval::synthetic_inputs;
    use zskip_nn::layer::{LayerSpec, NetworkSpec};
    use zskip_nn::model::{Network, SyntheticModelConfig};
    use zskip_quant::DensityProfile;
    use zskip_tensor::Shape;

    fn config() -> AccelConfig {
        AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
            100.0,
        )
    }

    pub(crate) fn tiny_qnet(hw: usize) -> QuantizedNetwork {
        let layers = vec![
            LayerSpec::Conv { name: "c0".into(), in_c: 2, out_c: 4, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::MaxPool { name: "p".into(), k: 2, stride: 2 },
        ];
        let spec = NetworkSpec { name: "session-test".into(), input: Shape::new(2, hw, hw), layers };
        let net = Network::synthetic(
            spec.clone(),
            &SyntheticModelConfig { seed: 9, density: DensityProfile::uniform(1, 0.5) },
        );
        let calib = synthetic_inputs(2, 1, spec.input);
        net.quantize(&calib)
    }

    #[test]
    fn builder_validates_batch_knobs() {
        let err = Session::builder(config()).max_batch(0).build().unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        assert!(err.to_string().contains("max_batch"));
        let err = Session::builder(config()).queue_depth(0).build().unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        assert!(err.to_string().contains("queue_depth"));
        // Driver-level validation still applies.
        let mut cfg = config();
        cfg.lanes = 0;
        let err = Session::builder(cfg).build().unwrap_err();
        assert_eq!(err.code(), "config.invalid");
    }

    #[test]
    fn session_infer_matches_driver_and_batch_paths() {
        let qnet = tiny_qnet(8);
        let inputs = synthetic_inputs(4, 3, qnet.spec.input);
        let session = Session::builder(config()).backend(BackendKind::Model).build().unwrap();
        let direct: Vec<_> = inputs
            .iter()
            .map(|i| session.driver().run_network(&qnet, i).expect("runs"))
            .collect();
        for (input, want) in inputs.iter().zip(&direct) {
            let got = session.infer(&qnet, input).expect("runs");
            assert_eq!(got.output, want.output);
        }
        let batch = session.run_batch(&qnet, &inputs).expect("runs");
        let resilient = session.run_batch_resilient(&qnet, &inputs);
        for ((b, r), want) in batch.reports.iter().zip(&resilient.items).zip(&direct) {
            assert_eq!(b.output, want.output);
            assert_eq!(r.result.as_ref().expect("succeeds").output, want.output);
        }
    }

    // Migrated from the driver's deprecated-shim tests: the builder is
    // the only sanctioned construction path (nothing in-repo calls the
    // deprecated `Driver::new`/`Driver::stats_only` anymore), so what
    // those tests pinned — the legacy defaults and structured rejection
    // of invalid configurations — is asserted on `SessionBuilder` here.
    #[test]
    fn builder_provides_the_legacy_driver_defaults() {
        let session = Session::builder(config()).backend(BackendKind::Cycle).build().unwrap();
        assert_eq!(session.driver().backend, BackendKind::Cycle);
        assert!(session.driver().functional, "legacy Driver::new default");
        assert!(session.driver().zero_skipping, "legacy Driver::new default");

        let stats = Session::builder(config()).functional(false).build().unwrap();
        assert!(!stats.driver().functional, "the Driver::stats_only shape");
        assert!(stats.driver().zero_skipping);
    }

    #[test]
    fn builder_rejects_invalid_config_instead_of_panicking() {
        let mut cfg = config();
        cfg.lanes = 2; // units stays 4: illegal on the cycle backend.
        let err = Session::builder(cfg).backend(BackendKind::Cycle).build().unwrap_err();
        assert_eq!(err.code(), "config.invalid");
        assert!(err.to_string().contains("units == lanes"), "{err}");
    }

    #[test]
    fn session_pins_kernel_tier_and_batch_config() {
        let session = Session::builder(config())
            .kernel(KernelTier::Scalar)
            .max_batch(3)
            .queue_depth(5)
            .batch_window(Duration::from_millis(7))
            .batch_workers(2)
            .retry(RetryPolicy::none())
            .build()
            .unwrap();
        assert_eq!(session.kernel_tier(), KernelTier::Scalar);
        assert_eq!(session.batch_config().max_batch, 3);
        assert_eq!(session.batch_config().queue_depth, 5);
        assert_eq!(session.batch_config().batch_window, Duration::from_millis(7));
        assert_eq!(session.batch_config().workers, 2);
        assert_eq!(session.batch_config().retry, RetryPolicy::none());
    }
}
