//! The host-side driver: what the paper's ARM software does.
//!
//! "Software executing on the on-chip ARM processor handles the loading
//! and pre-processing of network weights, biases and test images.
//! Pre-processing includes the reordering of data into tiled format for
//! our accelerator. The framework sends the instruction and calls the
//! hardware driver for inference." (paper §IV-C)
//!
//! Responsibilities:
//!
//! * **layer walking**: shape propagation, geometry checks, the explicit
//!   pad pass before each padded convolution, and host (ARM) execution
//!   of FC layers and softmax, as in the paper;
//! * **backend dispatch**: each accelerator pass is handed to the
//!   session's [`StripeBackend`](crate::exec::StripeBackend) — the
//!   transaction-level model, the cycle-exact simulation, or the host
//!   SIMD path ([`BackendKind`]);
//! * **reporting**: per-layer [`PassStats`] roll up into an
//!   [`InferenceReport`].
//!
//! The staged per-layer pipeline itself (striping, weight packing, DMA
//! orchestration, multi-instance scale-out) lives in [`crate::exec`].

use crate::config::AccelConfig;
use crate::exec::pipeline::{fm_to_tensor_into, slot_addr, DDR_FM_PAD, DDR_FM_STRIDE};
use crate::exec::{self, PassCtx};
use crate::isa::PoolPadOp;
use zskip_fault::SharedFaultPlan;
use zskip_nn::conv::QuantConvWeights;
use zskip_nn::eltwise::{add_quant_phase1, add_quant_phase2, global_avgpool_quant_into};
use zskip_nn::fc::fc_quant_into;
use zskip_nn::simd::KernelTier;
use zskip_nn::layer::LayerSpec;
use zskip_nn::model::QuantizedNetwork;
use zskip_nn::scratch::Scratch;
use zskip_quant::Sm8;
use zskip_sim::SimError;
use zskip_soc::dma::DmaError;
use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

pub use crate::exec::{fm_to_bytes, BackendKind, SocHandle};
pub use crate::report::{InferenceReport, LayerReport, PassStats};

/// The inference driver.
#[derive(Debug, Clone)]
pub struct Driver {
    /// The accelerator configuration.
    pub config: AccelConfig,
    /// Stripe execution backend.
    pub backend: BackendKind,
    /// Enable the paper's future-work filter grouping (sort filters by
    /// non-zero count before forming lockstep groups).
    pub filter_grouping: bool,
    /// When `false`, skip the functional arithmetic and produce cycle
    /// counts and counters only (cycle counts are value-independent).
    /// Throughput sweeps over full VGG-16 use this. Model backend only.
    pub functional: bool,
    /// When `false`, pack every weight slot (zeros included): the ablation
    /// baseline without the paper's zero-weight skipping.
    pub zero_skipping: bool,
    /// When `true` (the default), packed group weights are resolved
    /// through the process-wide content-keyed cache, so packing and
    /// serialization are a first-image cost instead of a per-image one.
    /// `false` re-packs per image — the PR-5 baseline benchmarks compare
    /// against.
    pub weight_cache: bool,
    /// Intra-image worker count for the CPU backend's conv kernels
    /// (resolved — never 0; 1 means single-threaded). See
    /// [`DriverBuilder::threads`].
    pub threads: usize,
    /// SIMD kernel tier this session's forward passes run with (resolved
    /// — always host-supported). See [`DriverBuilder::kernel`].
    pub kernel_tier: KernelTier,
    /// Event-scheduler park hysteresis for the cycle backend (`None` =
    /// the engine default). Simulator wall-time only; simulated cycle
    /// counts are bit-identical for every value. See
    /// [`DriverBuilder::park_hysteresis`].
    pub park_hysteresis: Option<u32>,
    /// Fault plan threaded into the SoC models and the cycle backend.
    fault_plan: Option<SharedFaultPlan>,
}

/// Driver-level failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// A stripe of even one output tile row cannot fit the banks.
    LayerTooLarge {
        /// Layer name.
        layer: String,
        /// Words needed for the minimal stripe.
        needed: usize,
        /// Bank capacity in words.
        capacity: usize,
    },
    /// The cycle backend failed (deadlock/limit) — an RTL-level bug or an
    /// injected fault. Carries the structured [`SimError`], so a deadlock
    /// still names the wedged FIFO (see [`SimError::wedged`]).
    Sim(SimError),
    /// A DMA descriptor failed (bad plan, truncation or parity fault).
    Dma(DmaError),
    /// The layer uses geometry the accelerator does not implement.
    Unsupported {
        /// Layer name.
        layer: String,
        /// What is unsupported.
        reason: String,
    },
    /// The network spec is inconsistent (shape propagation failed).
    InvalidNetwork(String),
    /// The driver configuration is invalid (see [`DriverBuilder::build`]).
    InvalidConfig(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::LayerTooLarge { layer, needed, capacity } => {
                write!(f, "layer {layer}: minimal stripe needs {needed} words/bank, capacity {capacity}")
            }
            DriverError::Sim(e) => write!(f, "cycle backend failed: {e}"),
            DriverError::Dma(e) => write!(f, "DMA transfer failed: {e}"),
            DriverError::Unsupported { layer, reason } => {
                write!(f, "layer {layer}: unsupported geometry ({reason})")
            }
            DriverError::InvalidNetwork(reason) => write!(f, "invalid network: {reason}"),
            DriverError::InvalidConfig(reason) => write!(f, "invalid driver configuration: {reason}"),
        }
    }
}

impl DriverError {
    /// Whether a retry could plausibly succeed. Transfer and simulation
    /// failures are transient (an injected one-shot fault, a wedged run);
    /// structural errors — geometry, capacity, configuration — are
    /// deterministic and retrying them only wastes work.
    pub fn is_transient(&self) -> bool {
        matches!(self, DriverError::Sim(_) | DriverError::Dma(_))
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Sim(e) => Some(e),
            DriverError::Dma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DriverError {
    fn from(e: SimError) -> DriverError {
        DriverError::Sim(e)
    }
}

impl From<DmaError> for DriverError {
    fn from(e: DmaError) -> DriverError {
        DriverError::Dma(e)
    }
}

/// Validating builder for [`Driver`]. This is the preferred construction
/// path: it rejects degenerate configurations up front instead of letting
/// them surface as panics deep in a pass.
///
/// ```
/// # use zskip_core::{AccelConfig, BackendKind, Driver};
/// # use zskip_hls::AccelArch;
/// let config = AccelConfig::from_arch(
///     &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
///     100.0,
/// );
/// let driver = Driver::builder(config).backend(BackendKind::Cpu).build().unwrap();
/// assert!(driver.functional);
/// ```
#[derive(Debug, Clone)]
pub struct DriverBuilder {
    config: AccelConfig,
    backend: BackendKind,
    filter_grouping: bool,
    functional: bool,
    zero_skipping: bool,
    weight_cache: bool,
    threads: usize,
    instances: Option<usize>,
    kernel: Option<KernelTier>,
    park_hysteresis: Option<u32>,
    fault_plan: Option<SharedFaultPlan>,
}

impl DriverBuilder {
    /// Starts a builder from a configuration, with the defaults of the
    /// legacy `Driver::new` (model backend, functional, zero-skipping on).
    pub fn new(config: AccelConfig) -> DriverBuilder {
        DriverBuilder {
            config,
            backend: BackendKind::Model,
            filter_grouping: false,
            functional: true,
            zero_skipping: true,
            weight_cache: true,
            threads: 1,
            instances: None,
            kernel: None,
            park_hysteresis: None,
            fault_plan: None,
        }
    }

    /// Overrides the configuration's instance count, rescaling bank
    /// capacity so the total simulated SRAM budget
    /// (`bank_tiles x instances`) is preserved — the same geometry rule
    /// `AccelArch::full` applies between the paper's 256-opt and
    /// 512-opt. How the instances are occupied is the placement
    /// scheduler's job ([`crate::exec::sched`]).
    pub fn instances(mut self, instances: usize) -> DriverBuilder {
        self.instances = Some(instances);
        self
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: BackendKind) -> DriverBuilder {
        self.backend = backend;
        self
    }

    /// Enables the future-work filter grouping.
    pub fn filter_grouping(mut self, on: bool) -> DriverBuilder {
        self.filter_grouping = on;
        self
    }

    /// When `false`, skip functional arithmetic (stats-only sweeps).
    pub fn functional(mut self, on: bool) -> DriverBuilder {
        self.functional = on;
        self
    }

    /// When `false`, pack every weight slot (the no-skipping ablation).
    pub fn zero_skipping(mut self, on: bool) -> DriverBuilder {
        self.zero_skipping = on;
        self
    }

    /// When `false`, bypass the process-wide packed-weight cache and
    /// re-pack group weights per image (the PR-5 baseline; benchmarks
    /// use it to measure the cache's speedup honestly).
    pub fn weight_cache(mut self, on: bool) -> DriverBuilder {
        self.weight_cache = on;
        self
    }

    /// Intra-image worker count for the CPU backend's conv kernels:
    /// `1` (the default) is single-threaded, larger values split each
    /// conv layer's output channels across that many threads — bit-exact
    /// at any width (see `zskip-nn`'s `par` module). `0` resolves to the
    /// host's available parallelism at [`DriverBuilder::build`] time.
    /// Other backends compute on the simulated accelerator and ignore
    /// this.
    pub fn threads(mut self, threads: usize) -> DriverBuilder {
        self.threads = threads;
        self
    }

    /// Pins the session's SIMD kernel tier. The default (`None`) is the
    /// process-wide dispatch choice (`ZSKIP_KERNEL` override, else the
    /// widest tier the host supports); an explicitly requested tier the
    /// host cannot execute clamps to the best supported one, mirroring
    /// [`zskip_nn::simd::select_tier`]'s stale-override policy. Check
    /// [`Driver::kernel_tier`] after build to see what was resolved.
    pub fn kernel(mut self, tier: KernelTier) -> DriverBuilder {
        self.kernel = Some(tier);
        self
    }

    /// Park hysteresis for the cycle backend's event scheduler: blocked
    /// kernels park after this many consecutive quiescent ticks (see
    /// [`zskip_sim::EngineBuilder::park_hysteresis`]). Affects simulator
    /// wall time only — simulated cycle counts and results are
    /// bit-identical for every value. Other backends ignore it.
    pub fn park_hysteresis(mut self, ticks: u32) -> DriverBuilder {
        self.park_hysteresis = Some(ticks);
        self
    }

    /// Attaches a fault plan: the driver threads it into the DMA engine
    /// and (on the cycle backend) the simulation engine, so `dma:*` and
    /// `fifo:*` injections fire during [`Driver::run_network`].
    pub fn fault_plan(mut self, plan: SharedFaultPlan) -> DriverBuilder {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the configuration and builds the driver.
    ///
    /// # Errors
    /// [`DriverError::InvalidConfig`] when a structural parameter is zero,
    /// when `units != lanes` on the cycle backend (accumulator lanes map
    /// 1:1 onto write units), when stats-only mode is requested off the
    /// model backend (the cycle simulation cannot switch its arithmetic
    /// off, and the CPU backend *is* the arithmetic), or when an
    /// [`instances`](DriverBuilder::instances) override is zero or leaves
    /// zero bank capacity after the RAM-preserving rescale.
    pub fn build(mut self) -> Result<Driver, DriverError> {
        if let Some(n) = self.instances {
            if n == 0 {
                return Err(DriverError::InvalidConfig("instances must be nonzero".into()));
            }
            let total = self.config.bank_tiles * self.config.instances;
            self.config.instances = n;
            self.config.bank_tiles = total / n;
            if self.config.bank_tiles == 0 {
                return Err(DriverError::InvalidConfig(format!(
                    "{n} instances leave zero bank capacity \
                     (total budget {total} tile words)"
                )));
            }
        }
        let c = &self.config;
        for (name, v) in [
            ("units", c.units),
            ("lanes", c.lanes),
            ("instances", c.instances),
            ("bank_tiles", c.bank_tiles),
            ("fifo_depth", c.fifo_depth),
        ] {
            if v == 0 {
                return Err(DriverError::InvalidConfig(format!("{name} must be nonzero")));
            }
        }
        if self.backend == BackendKind::Cycle && c.units != c.lanes {
            return Err(DriverError::InvalidConfig(format!(
                "cycle backend requires units == lanes (got {} units, {} lanes)",
                c.units, c.lanes
            )));
        }
        if self.backend != BackendKind::Model && !self.functional {
            return Err(DriverError::InvalidConfig(
                "stats-only mode requires the model backend".into(),
            ));
        }
        if self.park_hysteresis == Some(0) {
            return Err(DriverError::InvalidConfig(
                "park_hysteresis must be nonzero (1 parks on the first blocked tick)".into(),
            ));
        }
        Ok(Driver {
            config: self.config,
            backend: self.backend,
            filter_grouping: self.filter_grouping,
            functional: self.functional,
            zero_skipping: self.zero_skipping,
            weight_cache: self.weight_cache,
            threads: if self.threads == 0 {
                zskip_nn::par::ConvPool::auto_threads()
            } else {
                self.threads
            },
            kernel_tier: match self.kernel {
                Some(t) if t.is_supported() => t,
                Some(_) => KernelTier::best_supported(),
                None => zskip_nn::dispatch(),
            },
            park_hysteresis: self.park_hysteresis,
            fault_plan: self.fault_plan,
        })
    }
}

impl Driver {
    /// Creates a driver with the default flags, panicking on an invalid
    /// configuration. Kept as a compatibility shim: it routes through
    /// [`Driver::builder`], which is the supported construction path and
    /// returns a structured [`DriverError::InvalidConfig`] instead of
    /// panicking (see docs/ARCHITECTURE.md for the deprecation policy).
    ///
    /// # Panics
    /// On an invalid configuration (see [`DriverBuilder::build`]).
    #[deprecated(
        since = "0.2.0",
        note = "use Driver::builder(config).backend(backend).build() and handle the error"
    )]
    pub fn new(config: AccelConfig, backend: BackendKind) -> Driver {
        Driver::builder(config).backend(backend).build().expect("invalid driver configuration")
    }

    /// A driver that reports throughput only (no arithmetic), panicking
    /// on an invalid configuration. Kept as a compatibility shim; use
    /// `Driver::builder(config).functional(false).build()`.
    ///
    /// # Panics
    /// On an invalid configuration (see [`DriverBuilder::build`]).
    #[deprecated(
        since = "0.2.0",
        note = "use Driver::builder(config).functional(false).build() and handle the error"
    )]
    pub fn stats_only(config: AccelConfig) -> Driver {
        Driver::builder(config).functional(false).build().expect("invalid driver configuration")
    }

    /// Starts a validating [`DriverBuilder`] for this configuration.
    pub fn builder(config: AccelConfig) -> DriverBuilder {
        DriverBuilder::new(config)
    }

    /// Attaches (or replaces) the fault plan after construction.
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The attached fault plan, if any.
    pub(crate) fn fault_plan(&self) -> Option<&SharedFaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Runs full network inference on the simulated SoC.
    ///
    /// # Errors
    /// [`DriverError::LayerTooLarge`] when a layer cannot be striped into
    /// the banks; [`DriverError::Sim`] on cycle-backend failures;
    /// [`DriverError::Dma`] on DMA faults; [`DriverError::InvalidNetwork`]
    /// when the spec's shapes do not propagate.
    pub fn run_network(
        &self,
        qnet: &QuantizedNetwork,
        input: &Tensor<f32>,
    ) -> Result<InferenceReport, DriverError> {
        let mut scratch = Scratch::new();
        self.run_network_scratch(qnet, input, &mut scratch)
    }

    /// [`Driver::run_network`] reusing a caller-owned [`Scratch`] for the
    /// host-side buffers (input quantization, FC ping-pong) and — on the
    /// CPU backend — the per-pass compute buffers. The batch engine keeps
    /// one arena per worker thread so streaming inference stops
    /// re-allocating those buffers per image.
    ///
    /// # Errors
    /// Same as [`Driver::run_network`].
    pub fn run_network_scratch(
        &self,
        qnet: &QuantizedNetwork,
        input: &Tensor<f32>,
        scratch: &mut Scratch,
    ) -> Result<InferenceReport, DriverError> {
        let mut soc = SocHandle::with_plan(self.fault_plan.clone());
        let backend = exec::backend(self.backend);
        // Attach the intra-image worker pool (a warmup cost on the first
        // image; a no-op when the arena already has this width) and pin
        // the session's kernel tier on the arena.
        scratch.set_threads(self.threads);
        scratch.set_tier(self.kernel_tier);
        let shapes =
            qnet.spec.shapes().map_err(|e| DriverError::InvalidNetwork(e.to_string()))?;
        // The execution plan (topological order, activation liveness,
        // slot assignment) is shared with the software golden model; the
        // driver maps each slot to a fixed DDR feature-map region, so a
        // skip-branch activation stays resident across the branch body.
        let plan = &qnet.plan;
        if plan.slots.max(1) * DDR_FM_STRIDE > DDR_FM_PAD {
            return Err(DriverError::InvalidNetwork(format!(
                "plan needs {} activation slots; the DDR feature-map window holds {}",
                plan.slots,
                DDR_FM_PAD / DDR_FM_STRIDE
            )));
        }
        // Host-side mirror of each slot's resident activation (`None` =
        // slot free). The plan's liveness pass decides when an entry is
        // dropped; the input always starts in slot 0.
        let mut slot_fms: Vec<Option<TiledFeatureMap<Sm8>>> =
            (0..plan.slots.max(1)).map(|_| None).collect();
        {
            let (act_q, _, _) = scratch.host_buffers();
            input.map_into(act_q, |v| qnet.input_params.quantize(v));
            slot_fms[0] = Some(TiledFeatureMap::from_tensor(act_q));
        }
        let mut layers = Vec::new();
        let mut conv_i = 0;
        let mut fc_i = 0;
        // Which FC ping-pong buffer holds the newest activations.
        let mut flat: Option<bool> = None;

        for step in &plan.steps {
            let li = step.layer;
            let layer = &qnet.spec.layers[li];
            match layer {
                LayerSpec::Conv { name, stride, pad, k, .. } => {
                    if *stride != 1 {
                        return Err(DriverError::Unsupported {
                            layer: name.clone(),
                            reason: format!("conv stride {stride}; the datapath is stride-1 (VGG-style)"),
                        });
                    }
                    if *k > zskip_tensor::TILE_DIM {
                        return Err(DriverError::Unsupported {
                            layer: name.clone(),
                            reason: format!("kernel {k}x{k} exceeds the 4x4 weight tile"),
                        });
                    }
                    let src_slot = step.src.expect("conv reads a slot");
                    let dst_slot = step.dst.expect("conv writes a slot");
                    let qw = &qnet.conv[conv_i].weights;
                    let mut stats = PassStats::default();
                    let src_fm = slot_fms[src_slot].as_ref().expect("producer already ran");
                    let mut src_addr = slot_addr(src_slot);
                    // Explicit pad pass (hardware pad instruction); the
                    // padded intermediate lives in the DDR pad region,
                    // never in a plan slot.
                    let padded;
                    let src_fm = if *pad > 0 {
                        let s = src_fm.logical_shape();
                        let (p, pad_stats) = backend.poolpad_pass(
                            &mut PassCtx {
                                driver: self,
                                soc: &mut soc,
                                scratch: &mut *scratch,
                                src_addr,
                                dst_addr: DDR_FM_PAD,
                            },
                            &format!("{name}/pad"),
                            src_fm,
                            PoolPadOp::Pad { amount: *pad as u8 },
                            Shape::new(s.c, s.h + 2 * pad, s.w + 2 * pad),
                        )?;
                        stats.merge(&pad_stats);
                        src_addr = DDR_FM_PAD;
                        padded = p;
                        &padded
                    } else {
                        src_fm
                    };
                    let (out, conv_stats) = backend.conv_pass(
                        &mut PassCtx {
                            driver: self,
                            soc: &mut soc,
                            scratch: &mut *scratch,
                            src_addr,
                            dst_addr: slot_addr(dst_slot),
                        },
                        name,
                        src_fm,
                        qw,
                        shapes[li + 1],
                    )?;
                    stats.merge(&conv_stats);
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: true,
                        dense_macs: layer.macs(shapes[li]),
                        stats,
                    });
                    slot_fms[dst_slot] = Some(out);
                    conv_i += 1;
                }
                LayerSpec::MaxPool { name, k, stride } => {
                    let src_slot = step.src.expect("pool reads a slot");
                    let dst_slot = step.dst.expect("pool writes a slot");
                    let src_fm = slot_fms[src_slot].as_ref().expect("producer already ran");
                    let (out, stats) = backend.poolpad_pass(
                        &mut PassCtx {
                            driver: self,
                            soc: &mut soc,
                            scratch: &mut *scratch,
                            src_addr: slot_addr(src_slot),
                            dst_addr: slot_addr(dst_slot),
                        },
                        name,
                        src_fm,
                        PoolPadOp::MaxPool { k: *k as u8, stride: *stride as u8 },
                        shapes[li + 1],
                    )?;
                    layers.push(LayerReport { name: name.clone(), is_conv: false, dense_macs: 0, stats });
                    slot_fms[dst_slot] = Some(out);
                }
                // A Ref is a pure alias: its plan step re-emits the
                // source slot, no data moves and no pass is issued.
                LayerSpec::Ref { name, .. } => {
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: false,
                        dense_macs: 0,
                        stats: PassStats::default(),
                    });
                }
                LayerSpec::Add { name, relu, .. } => {
                    // Host-side (ARM) residual join, like the FC layers:
                    // both operands are rescaled to the output scale and
                    // summed in i64 before the single saturation — the
                    // exact order of the golden model's oracle.
                    let (ra, rb) = qnet.add_requantizers(step);
                    let dst_slot = step.dst.expect("add writes a slot");
                    let a_fm = slot_fms[step.src.expect("add reads a slot")]
                        .as_ref()
                        .expect("producer already ran");
                    let b_fm = slot_fms[step.operand.expect("add has an operand")]
                        .as_ref()
                        .expect("operand still resident");
                    let (src_t, dst_t, acc, _) = scratch.pass_buffers();
                    fm_to_tensor_into(a_fm, src_t);
                    add_quant_phase1(src_t, ra, acc);
                    fm_to_tensor_into(b_fm, src_t);
                    add_quant_phase2(src_t, rb, *relu, acc, dst_t);
                    let out = TiledFeatureMap::from_tensor(dst_t);
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: false,
                        dense_macs: 0,
                        stats: PassStats::default(),
                    });
                    slot_fms[dst_slot] = Some(out);
                }
                LayerSpec::GlobalAvgPool { name } => {
                    // Host-side: exact i64 channel sums, one requantize.
                    let src_slot = step.src.expect("gap reads a slot");
                    let dst_slot = step.dst.expect("gap writes a slot");
                    let src_fm = slot_fms[src_slot].as_ref().expect("producer already ran");
                    let s = src_fm.logical_shape();
                    let r = qnet.gap_requantizer(step, s.h * s.w);
                    let (src_t, dst_t, _, _) = scratch.pass_buffers();
                    fm_to_tensor_into(src_fm, src_t);
                    global_avgpool_quant_into(src_t, r, dst_t);
                    let out = TiledFeatureMap::from_tensor(dst_t);
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: false,
                        dense_macs: 0,
                        stats: PassStats::default(),
                    });
                    slot_fms[dst_slot] = Some(out);
                }
                LayerSpec::BatchNorm { .. } => {
                    unreachable!("quantization folds batch-norm into the preceding conv")
                }
                LayerSpec::Fc { name, .. } => {
                    // Host-side (ARM) execution, as in the paper; the arena's
                    // FC buffers alternate so nothing is copied or allocated.
                    if flat.is_none() {
                        // Entering the flat head: densify the last
                        // feature map out of its slot.
                        let src_fm = slot_fms[step.src.expect("first fc reads a slot")]
                            .as_ref()
                            .expect("producer already ran");
                        let (act_q, _, _) = scratch.host_buffers();
                        fm_to_tensor_into(src_fm, act_q);
                    }
                    let (act_q, flat_a, flat_b) = scratch.host_buffers();
                    flat = Some(match flat {
                        None => {
                            fc_quant_into(act_q.as_slice(), &qnet.fc[fc_i], flat_a);
                            false
                        }
                        Some(false) => {
                            fc_quant_into(flat_a, &qnet.fc[fc_i], flat_b);
                            true
                        }
                        Some(true) => {
                            fc_quant_into(flat_b, &qnet.fc[fc_i], flat_a);
                            false
                        }
                    });
                    fc_i += 1;
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: false,
                        dense_macs: layer.macs(shapes[li]),
                        stats: PassStats::default(),
                    });
                }
                LayerSpec::Softmax => {
                    // Monotone; host applies it for probabilities, argmax
                    // unchanged on logits.
                }
            }
            // The liveness pass retires slots whose activations have no
            // further consumer: their DDR regions (and host mirrors) are
            // free for reuse from the next step on.
            for &f in &step.frees {
                slot_fms[f] = None;
            }
        }

        let output = match flat {
            None => {
                let fm = slot_fms[plan.output_slot.unwrap_or(0)]
                    .as_ref()
                    .expect("final activation stays resident");
                let (act_q, _, _) = scratch.host_buffers();
                fm_to_tensor_into(fm, act_q);
                act_q.as_slice().to_vec()
            }
            Some(false) => scratch.host_buffers().1.clone(),
            Some(true) => scratch.host_buffers().2.clone(),
        };
        let total_cycles = layers.iter().map(|l| l.stats.total_cycles).sum();
        Ok(InferenceReport { layers, output, total_cycles, ddr_bytes: soc.ddr_bytes() })
    }

    /// Single-layer conv entry point for benches/ablations, on this
    /// driver's backend.
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    pub fn conv_pass(
        &self,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
        soc: &mut SocHandle,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        let mut scratch = Scratch::with_tier(self.kernel_tier);
        scratch.set_threads(self.threads);
        exec::backend(self.backend).conv_pass(
            &mut PassCtx {
                driver: self,
                soc,
                scratch: &mut scratch,
                src_addr: slot_addr(0),
                dst_addr: slot_addr(1),
            },
            name,
            input,
            qw,
            out_shape,
        )
    }

    /// Single-layer pool/pad entry point for benches/ablations, on this
    /// driver's backend.
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    pub fn poolpad_pass(
        &self,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
        soc: &mut SocHandle,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        let mut scratch = Scratch::with_tier(self.kernel_tier);
        exec::backend(self.backend).poolpad_pass(
            &mut PassCtx {
                driver: self,
                soc,
                scratch: &mut scratch,
                src_addr: slot_addr(0),
                dst_addr: slot_addr(1),
            },
            name,
            input,
            op,
            out_shape,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use zskip_hls::AccelArch;

    fn config(bank_tiles: usize, instances: usize) -> AccelConfig {
        AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances, bank_tiles },
            100.0,
        )
    }

    #[test]
    fn builder_validates_configuration() {
        let err = Driver::builder(config(0, 1)).build().unwrap_err();
        assert_eq!(err, DriverError::InvalidConfig("bank_tiles must be nonzero".into()));
        assert_eq!(Error::from(err).code(), "config.invalid");

        let mut cfg = config(4096, 1);
        cfg.lanes = 2; // units stays 4: illegal on the cycle backend.
        let err = Driver::builder(cfg).backend(BackendKind::Cycle).build().unwrap_err();
        assert!(matches!(err, DriverError::InvalidConfig(ref r) if r.contains("units == lanes")));
        assert_eq!(Error::from(err).code(), "config.invalid");
        // The same geometry is fine on the model and CPU backends.
        assert!(Driver::builder(cfg).build().is_ok());
        assert!(Driver::builder(cfg).backend(BackendKind::Cpu).build().is_ok());

        // Stats-only mode exists only on the model backend: the cycle
        // simulation cannot switch its arithmetic off, and the CPU
        // backend is the arithmetic.
        for backend in [BackendKind::Cycle, BackendKind::Cpu] {
            let err = Driver::builder(config(4096, 1)).backend(backend).functional(false).build().unwrap_err();
            assert!(matches!(err, DriverError::InvalidConfig(ref r) if r.contains("stats-only")));
            assert_eq!(Error::from(err).code(), "config.invalid");
        }
    }

    #[test]
    fn every_zero_parameter_is_named_in_its_error() {
        for (field, cfg) in [
            ("units", {
                let mut c = config(4096, 1);
                c.units = 0;
                c
            }),
            ("lanes", {
                let mut c = config(4096, 1);
                c.lanes = 0;
                c
            }),
            ("instances", config(4096, 0)),
            ("bank_tiles", config(0, 1)),
            ("fifo_depth", {
                let mut c = config(4096, 1);
                c.fifo_depth = 0;
                c
            }),
        ] {
            let err = Driver::builder(cfg).build().unwrap_err();
            assert!(
                matches!(err, DriverError::InvalidConfig(ref r) if r.contains(field)),
                "{field}: got {err:?}"
            );
            assert_eq!(Error::from(err).code(), "config.invalid");
        }
    }

    #[test]
    fn instances_override_rescales_bank_capacity() {
        let d = Driver::builder(config(4096, 1)).instances(4).build().unwrap();
        assert_eq!(d.config.instances, 4);
        assert_eq!(d.config.bank_tiles, 1024, "RAM budget is preserved, not replicated");
        // Rescaling down restores the budget.
        let mut cfg = d.config;
        cfg.clock_mhz = 100.0;
        let back = Driver::builder(cfg).instances(1).build().unwrap();
        assert_eq!(back.config.bank_tiles, 4096);

        let err = Driver::builder(config(4096, 1)).instances(0).build().unwrap_err();
        assert!(matches!(err, DriverError::InvalidConfig(ref r) if r.contains("instances")));
        assert_eq!(Error::from(err).code(), "config.invalid");

        let err = Driver::builder(config(2, 1)).instances(4).build().unwrap_err();
        assert!(matches!(err, DriverError::InvalidConfig(ref r) if r.contains("bank capacity")));
        assert_eq!(Error::from(err).code(), "config.invalid");
    }

    #[test]
    fn kernel_tier_resolves_and_clamps() {
        use zskip_nn::simd::KernelTier;
        // Default: the process-wide dispatch choice.
        let d = Driver::builder(config(4096, 1)).build().unwrap();
        assert_eq!(d.kernel_tier, zskip_nn::dispatch());
        // Scalar is supported everywhere and pins exactly.
        let d = Driver::builder(config(4096, 1)).kernel(KernelTier::Scalar).build().unwrap();
        assert_eq!(d.kernel_tier, KernelTier::Scalar);
        // An unsupported request clamps to the best supported tier.
        let d = Driver::builder(config(4096, 1)).kernel(KernelTier::Avx512).build().unwrap();
        assert!(d.kernel_tier.is_supported());
    }
}
